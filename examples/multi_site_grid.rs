//! Multi-site grid: two SAN clusters joined by a WAN backbone through
//! gateways — the "federation of clusters" deployment the paper's
//! crossroads argument is really about.
//!
//! Unlike `wan_file_transfer`/`coupled_simulation`, the sites here are
//! *isolated*: only each site's gateway node touches the backbone, so
//! cross-site traffic shares no network end to end. The `gridtopo`
//! subsystem computes multi-hop routes, the selector resolves cross-site
//! links to relayed decisions, and gateway proxies store-and-forward the
//! streams. Intra-site traffic still rides the straight Myrinet adapter.
//!
//! Run with: `cargo run --example multi_site_grid`

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use padicotm::core::VLinkEvent;
use padicotm::gridtopo::RelayConfig;
use padicotm::prelude::*;

/// One full scenario run; returns a digest of everything observable so the
/// caller can prove determinism.
fn run_once(seed: u64) -> (String, u64) {
    let mut world = SimWorld::new(seed);

    // Two Myrinet+Ethernet sites of four nodes, gateways joined by a
    // VTHD-class WAN backbone.
    let grid = GridTopology::star(
        &mut world,
        &[
            SiteSpec::san_cluster("paris", 4),
            SiteSpec::san_cluster("nice", 4),
        ],
        NetworkSpec::vthd_wan(),
    );
    let (rts, proxies) = runtimes_for_grid(&mut world, &grid, SelectorPreferences::default());

    let paris_worker = grid.site(0).node(1);
    let nice_worker = grid.site(1).node(2);
    let rt_paris = rts[1].clone();
    let rt_nice = rts[grid.site(0).len() + 2].clone();

    // --- Selector decisions -------------------------------------------- //
    let intra = rt_paris.vlink_decision(&world, grid.site(0).node(2));
    let cross = rt_paris.vlink_decision(&world, nice_worker);
    println!("[select] paris1 -> paris2 : {intra:?}");
    println!("[select] paris1 -> nice2  : {cross:?}");
    assert!(
        intra.is_straight_for_parallel(),
        "intra-site must use the SAN"
    );
    assert!(cross.is_relayed(), "cross-site must relay");

    // --- A relayed VLink exchange (stream level) ----------------------- //
    let reply = Rc::new(RefCell::new(Vec::<u8>::new()));
    let r2 = reply.clone();
    rt_nice.vlink_listen(&mut world, 80, move |_w, v: VLink| {
        // Echo service: return every byte.
        let v2 = v.clone();
        v.set_handler(move |world, ev| {
            if ev == VLinkEvent::Readable {
                let data = v2.read_now(world, usize::MAX);
                v2.post_write(world, &data);
            }
        });
    });
    let client = rt_paris.vlink_connect(&mut world, nice_worker, 80);
    println!("[vlink ] method: {:?}", client.method());
    let c2 = client.clone();
    let r3 = r2.clone();
    client.set_handler(move |world, ev| {
        if ev == VLinkEvent::Readable {
            r3.borrow_mut().extend(c2.read_now(world, usize::MAX));
        }
    });
    client.post_write(&mut world, b"simulation state: 4096 cells");
    world.run();
    println!(
        "[vlink ] echoed {} bytes across {} gateway hops at t={}",
        reply.borrow().len(),
        match client.method() {
            VLinkMethod::Relayed { hops } => hops,
            _ => 0,
        },
        world.now()
    );

    // --- Frame-level relaying with bounded gateway queues -------------- //
    let fabric = RelayFabric::new(grid.routes.clone(), RelayConfig::default());
    for node in grid.all_nodes() {
        fabric.attach(&mut world, node);
    }
    let frames_in = Rc::new(Cell::new(0u64));
    let f2 = frames_in.clone();
    fabric.bind(&mut world, nice_worker, 9, move |_w, _m| {
        f2.set(f2.get() + 1)
    });
    for _ in 0..50 {
        fabric
            .send(&mut world, paris_worker, nice_worker, 9, vec![0u8; 1200])
            .unwrap();
    }
    world.run();
    println!("[relay ] {} / 50 frames delivered", frames_in.get());
    for site in &grid.sites {
        let gs = fabric.gateway_stats(site.gateway);
        println!(
            "[relay ] gateway {}-gw: relayed {} frames ({} B), dropped {}, max queue {}",
            site.name,
            gs.frames_relayed,
            gs.bytes_relayed,
            gs.frames_dropped(),
            gs.max_queue_depth
        );
        assert!(gs.frames_relayed > 0, "every gateway must relay");
    }
    for p in &proxies {
        println!(
            "[proxy ] gateway {} spliced {} stream connections ({} B forward, {} B back)",
            p.node(),
            p.stats().connections_relayed,
            p.stats().bytes_forward,
            p.stats().bytes_backward
        );
    }

    // Digest: every observable number, for the determinism check.
    let digest = format!(
        "{:?}|{:?}|{}|{:?}|{}|{:?}|{:?}",
        intra,
        cross,
        reply.borrow().len(),
        frames_in.get(),
        world.now(),
        grid.sites
            .iter()
            .map(|s| fabric.gateway_stats(s.gateway))
            .collect::<Vec<_>>(),
        proxies.iter().map(|p| p.stats()).collect::<Vec<_>>(),
    );
    (digest, world.now().as_nanos())
}

fn main() {
    let (digest_a, t_a) = run_once(2024);
    println!("\n[check ] re-running with the same seed…");
    let (digest_b, t_b) = run_once(2024);
    assert_eq!(
        digest_a, digest_b,
        "runs with one seed must be bit-identical"
    );
    assert_eq!(t_a, t_b);
    println!("\n[check ] deterministic: both runs ended at the same virtual instant with identical stats");
}
