//! Dynamic connection/disconnection for visualization and steering: an MPI
//! computation runs on a cluster while a user's workstation connects over
//! the WAN, watches the simulation through CORBA, and later disconnects —
//! the third usage scenario of §2.1.
//!
//! Run with: `cargo run --example visualization_steering`

use padicotm::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    // A 4-node Myrinet cluster plus one remote workstation over the WAN.
    let mut world = SimWorld::new(4242);
    let cluster =
        simnet::topology::build_san_cluster(&mut world, "compute", 4, NetworkSpec::myrinet_2000());
    let workstation = world.add_node("workstation");
    let wan = world.add_network(NetworkSpec::vthd_wan());
    for &n in cluster.nodes.iter().chain([workstation].iter()) {
        world.attach(n, wan);
    }

    let compute_rts = runtimes_for_cluster(
        &mut world,
        cluster.san.unwrap(),
        &cluster.nodes,
        SelectorPreferences::default(),
    );
    let user_rt = PadicoRuntime::new(
        &mut world,
        workstation,
        None,
        SelectorPreferences::default(),
    );

    // The computation: iterative MPI stencil that keeps a "current field".
    let comms: Vec<MpiComm> = compute_rts
        .iter()
        .map(|rt| {
            let c = rt.circuit_create(&mut world, cluster.nodes.clone(), 600);
            MpiComm::new(&mut world, c)
        })
        .collect();
    let field = Rc::new(RefCell::new(vec![0.0f64; 4]));

    // Rank 0 also exposes the field through a CORBA object for visualization.
    let viz = Orb::new(compute_rts[0].clone(), OrbImpl::OmniOrb4);
    let f2 = field.clone();
    viz.register_servant("field", move |_w, _op, _arg| {
        IdlValue::Sequence(f2.borrow().iter().map(|v| IdlValue::Double(*v)).collect())
    });
    viz.activate(&mut world, 700);

    // Run 5 compute iterations.
    for step in 0..5 {
        for (rank, comm) in comms.iter().enumerate() {
            let field = field.clone();
            comm.allreduce_sum(&mut world, (rank + 1) as f64, move |_w, sum| {
                field.borrow_mut()[rank] = sum * (step + 1) as f64;
            });
        }
        world.run();
    }

    // The user connects dynamically from the workstation (the selector
    // picks a WAN method since only the WAN is shared) and reads the field.
    println!(
        "workstation -> cluster link: {:?}",
        user_rt.vlink_decision(&world, cluster.nodes[0])
    );
    let user_orb = Orb::new(user_rt, OrbImpl::OmniOrb4);
    let field_ref = user_orb.object_ref(cluster.nodes[0], 700, "field");
    user_orb.invoke(
        &mut world,
        &field_ref,
        "snapshot",
        IdlValue::Void,
        |_w, reply| {
            println!("visualization snapshot received: {reply:?}");
        },
    );
    world.run();
    println!("computation kept running; user may disconnect at any time.");
    println!("virtual time elapsed: {}", world.now());
}
