//! Telemetry tour: scrape the unified metrics snapshot, trace one
//! relayed frame's journey hop by hop, and read a flight-recorder
//! timeline after killing a gateway mid-transfer.
//!
//! Run with: `cargo run --example telemetry`

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use padicotm::core::VLinkEvent;
use padicotm::gridtopo::{BackpressureMode, RelayConfig, RelayFabric};
use padicotm::prelude::*;
use padicotm::simnet::TraceEvent;

fn main() {
    let mut world = SimWorld::new(0x7E1E);

    // Typed tracing is off by default (one branch, zero allocation);
    // switch it on before the traffic we want to reconstruct.
    world.events.enable();

    // A two-site grid: every inter-site frame store-and-forwards through
    // both site gateways.
    let grid = GridTopology::star(
        &mut world,
        &[
            SiteSpec::san_cluster("a", 4).with_gateways(2),
            SiteSpec::san_cluster("b", 4).with_gateways(2),
        ],
        NetworkSpec::vthd_wan(),
    );

    // --- 1. Frame-journey tracing over the relay fabric ------------- //
    let fabric = RelayFabric::new(
        grid.routes.clone(),
        RelayConfig {
            backpressure: BackpressureMode::Credit,
            queue_capacity: 16,
            ..Default::default()
        },
    );
    for node in grid.all_nodes() {
        fabric.attach(&mut world, node);
    }
    let src = grid.site(0).node(2);
    let dst = grid.site(1).node(2);
    let delivered = Rc::new(Cell::new(0u64));
    let d = delivered.clone();
    fabric.bind(&mut world, dst, 9, move |_w, _m| d.set(d.get() + 1));
    for _ in 0..3 {
        fabric
            .send(&mut world, src, dst, 9, vec![7u8; 900])
            .unwrap();
    }
    world.run();

    let first_cause = world
        .events
        .events()
        .find_map(|e| match e.event {
            TraceEvent::RelayAccepted { cause, .. } => Some(cause),
            _ => None,
        })
        .expect("traced traffic");
    println!("[trace] journey of frame {first_cause}:");
    for hop in world.events.journey(first_cause) {
        println!("[trace]   {} {:?}", hop.time, hop.event);
    }

    // --- 2. Flight-recorder forensics on a gateway kill -------------- //
    let prefs = SelectorPreferences {
        relay_backpressure: BackpressureMode::Credit,
        gateway_failover: true,
        ..Default::default()
    };
    let (rts, _proxies) = runtimes_for_grid(&mut world, &grid, prefs);
    let src_rt = rts[2].clone();
    let dst_rt = rts[grid.site(0).len() + 3].clone();
    let got: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    let g = got.clone();
    dst_rt.vlink_listen(&mut world, 990, move |_w, v| {
        let v2 = v.clone();
        let g2 = g.clone();
        v.set_handler(move |world, ev| {
            if ev == VLinkEvent::Readable {
                g2.borrow_mut().extend(v2.read_now(world, usize::MAX));
            }
        });
    });
    let payload = vec![5u8; 300_000];
    let client = src_rt.vlink_connect(&mut world, dst_rt.node(), 990);
    client.post_write(&mut world, &payload);

    // Kill the on-route primary gateway once a prefix has crossed.
    let gr = got.clone();
    world.run_while(|| gr.borrow().len() < 60_000);
    let kill_node = grid.site(0).gateways[0];
    rts.iter()
        .find(|rt| rt.node() == kill_node)
        .unwrap()
        .kill(&mut world);
    world.run();
    println!(
        "[kill ] delivered {} / {} bytes exactly once after losing {kill_node}",
        got.borrow().len(),
        payload.len()
    );
    for rt in &rts {
        for dump in rt.flight_dumps() {
            println!("[fdr  ] {dump}");
        }
    }

    // --- 3. One snapshot over every layer ----------------------------- //
    let snap = world.metrics_snapshot();
    println!(
        "[scrape] {} metrics in one namespace; a sample:",
        snap.len()
    );
    for prefix in [
        "sim.world.events_executed",
        "relay.fabric.frames_delivered",
        "relay.gateway.credits_returned",
        "relay.proxy.bytes_forward",
        "route.cache.hits",
        "trunk.credit.streams_opened",
        "trunk.memory.recv_high_water",
    ] {
        for (key, value) in snap.with_prefix(prefix) {
            println!("[scrape]   {key} = {value:?}");
        }
    }
    // The full deterministic export (what CI uploads as an artifact):
    println!("[scrape] to_json() -> {} bytes", snap.to_json().len());
}
