//! Quickstart: bring up PadicoTM-RS on the paper's two-node testbed and
//! exchange traffic with two different middleware systems at once.
//!
//! Run with: `cargo run --example quickstart`

use std::cell::RefCell;
use std::rc::Rc;

use padicotm::prelude::*;

fn main() {
    // The paper's test platform: two dual-PIII nodes with Myrinet-2000 and
    // switched Ethernet-100, simulated.
    let p = simnet::topology::san_pair(2024);
    let mut world = p.world;
    let nodes = vec![p.a, p.b];

    // One PadicoTM runtime per node.
    let rts = runtimes_for_cluster(&mut world, p.san, &nodes, SelectorPreferences::default());

    // Middleware #1 (parallel paradigm): MPI over a Circuit.
    let c0 = rts[0].circuit_create(&mut world, nodes.clone(), 100);
    let c1 = rts[1].circuit_create(&mut world, nodes.clone(), 100);
    let mpi0 = MpiComm::new(&mut world, c0);
    let mpi1 = MpiComm::new(&mut world, c1);
    mpi1.recv(&mut world, Some(0), Some(1), |_world, msg| {
        println!(
            "[mpi  ] rank 1 received {} bytes from rank {}",
            msg.data.len(),
            msg.src
        );
    });
    mpi0.send(&mut world, 1, 1, b"hello from the parallel world");

    // Middleware #2 (distributed paradigm): a CORBA-like ORB over VLink.
    // The selector transparently routes it over the Myrinet SAN too.
    let server = Orb::new(rts[1].clone(), OrbImpl::OmniOrb4);
    server.register_servant("greeter", |_world, _op, arg| {
        if let IdlValue::Str(name) = arg {
            IdlValue::Str(format!("hello, {name}, from the distributed world"))
        } else {
            IdlValue::Void
        }
    });
    server.activate(&mut world, 200);
    let client = Orb::new(rts[0].clone(), OrbImpl::OmniOrb4);
    let objref = client.object_ref(nodes[1], 200, "greeter");
    let reply = Rc::new(RefCell::new(None));
    let r = reply.clone();
    client.invoke(
        &mut world,
        &objref,
        "greet",
        IdlValue::Str("grid user".to_string()),
        move |_world, result| *r.borrow_mut() = Some(result),
    );

    // Run the simulation to completion.
    world.run();
    println!("[corba] reply: {:?}", reply.borrow());
    println!(
        "[info ] link method chosen by the selector for node0 -> node1: {:?}",
        rts[0].vlink_decision(&world, nodes[1])
    );
    println!("[info ] virtual time elapsed: {}", world.now());
}
