//! Code coupling across a grid: an MPI "ocean" code on one cluster and an
//! MPI "atmosphere" code on another cluster exchange boundary data through
//! CORBA, while a SOAP monitor watches progress — the parallel-component
//! scenario that motivates the paper.
//!
//! Run with: `cargo run --example coupled_simulation`

use std::cell::RefCell;
use std::rc::Rc;

use padicotm::prelude::*;

fn main() {
    // Two Myrinet clusters of 4 nodes joined by the VTHD WAN.
    let grid = simnet::topology::two_clusters_over_wan(7, 4);
    let mut world = grid.world;
    let ocean_nodes = grid.cluster_a.nodes.clone();
    let atmos_nodes = grid.cluster_b.nodes.clone();

    let ocean_rts = runtimes_for_cluster(
        &mut world,
        grid.cluster_a.san.unwrap(),
        &ocean_nodes,
        SelectorPreferences::default(),
    );
    let atmos_rts = runtimes_for_cluster(
        &mut world,
        grid.cluster_b.san.unwrap(),
        &atmos_nodes,
        SelectorPreferences::default(),
    );

    // Each code runs MPI internally (intra-component communication).
    let ocean_mpi: Vec<MpiComm> = ocean_rts
        .iter()
        .map(|rt| {
            let c = rt.circuit_create(&mut world, ocean_nodes.clone(), 300);
            MpiComm::new(&mut world, c)
        })
        .collect();
    let atmos_mpi: Vec<MpiComm> = atmos_rts
        .iter()
        .map(|rt| {
            let c = rt.circuit_create(&mut world, atmos_nodes.clone(), 301);
            MpiComm::new(&mut world, c)
        })
        .collect();

    // The atmosphere component exposes a CORBA object for boundary exchange
    // (inter-component communication crosses the WAN with Parallel Streams,
    // chosen automatically by the selector).
    let boundary_server = Orb::new(atmos_rts[0].clone(), OrbImpl::OmniOrb4);
    let received_boundaries = Rc::new(RefCell::new(0u32));
    let rb = received_boundaries.clone();
    boundary_server.register_servant("boundary", move |_w, _op, arg| {
        if let IdlValue::Octets(data) = arg {
            *rb.borrow_mut() += 1;
            IdlValue::Long(data.len() as i32)
        } else {
            IdlValue::Void
        }
    });
    boundary_server.activate(&mut world, 400);

    // A SOAP monitoring endpoint on the ocean side answers progress queries.
    let monitor = SoapEndpoint::new(ocean_rts[0].clone());
    let steps_done = Rc::new(RefCell::new(0u32));
    let sd = steps_done.clone();
    monitor.serve(&mut world, 500, "progress", move |_w, _call| {
        SoapCall::new("progressResponse").param("steps", *sd.borrow())
    });

    println!(
        "inter-component link (ocean rank0 -> atmos rank0): {:?}",
        ocean_rts[0].vlink_decision(&world, atmos_nodes[0])
    );

    // --- three coupling iterations --------------------------------------
    let orb_client = Orb::new(ocean_rts[0].clone(), OrbImpl::OmniOrb4);
    let boundary_ref = orb_client.object_ref(atmos_nodes[0], 400, "boundary");
    for step in 0..3u32 {
        // Ocean: internal halo exchange (all ranks average their field).
        let field_value = 20.0 + step as f64;
        for comm in &ocean_mpi {
            comm.allreduce_sum(&mut world, field_value, |_w, _sum| {});
        }
        // Atmosphere: same internally.
        for comm in &atmos_mpi {
            comm.allreduce_sum(&mut world, 1.0, |_w, _sum| {});
        }
        // Ocean rank 0 ships the boundary field to the atmosphere component.
        let boundary = vec![step as u8; 256 * 1024];
        let steps_done2 = steps_done.clone();
        orb_client.invoke(
            &mut world,
            &boundary_ref,
            "exchange",
            IdlValue::Octets(boundary.into()),
            move |_w, reply| {
                println!("coupling step {step}: atmosphere acknowledged {reply:?} bytes");
                *steps_done2.borrow_mut() += 1;
            },
        );
        world.run();
    }

    // The user connects "from outside" over SOAP to check progress.
    let user = SoapEndpoint::new(ocean_rts[1].clone());
    user.call(
        &mut world,
        ocean_nodes[0],
        500,
        SoapCall::new("progress"),
        |_w, resp| {
            println!(
                "monitor says: {} coupling steps done",
                resp.get("steps").unwrap_or("?")
            )
        },
    );
    world.run();

    println!(
        "boundary exchanges received by the atmosphere component: {}",
        received_boundaries.borrow()
    );
    println!("virtual time elapsed: {}", world.now());
}
