//! Moving a large dataset across wide-area links with the right method:
//! plain TCP vs Parallel Streams on the VTHD WAN, and TCP vs VRP on a lossy
//! trans-continental link — the §3.2 "communication methods" in action.
//!
//! Run with: `cargo run --example wan_file_transfer --release`

use padicotm::prelude::*;
use std::cell::Cell;
use std::cell::RefCell;
use std::rc::Rc;
use transport::{
    ParallelStream, ParallelStreamConfig, TcpStack, UdpHost, VrpConfig, VrpReceiver, VrpSender,
};

fn wan_transfer(streams: usize, bytes: usize) -> f64 {
    let mut p = simnet::topology::wan_pair(99);
    let sa = TcpStack::new(&mut p.world, p.a);
    let sb = TcpStack::new(&mut p.world, p.b);
    let cfg = ParallelStreamConfig {
        n_streams: streams,
        chunk_size: 64 * 1024,
    };
    let received = Rc::new(Cell::new(0usize));
    let server: Rc<RefCell<Option<ParallelStream>>> = Rc::new(RefCell::new(None));
    let s2 = server.clone();
    ParallelStream::listen(&mut p.world, &sb, 2811, cfg.clone(), move |_w, ps| {
        *s2.borrow_mut() = Some(ps)
    });
    let client = ParallelStream::connect(&mut p.world, &sa, p.network, p.b, 2811, cfg);
    p.world.run();
    let srv = server.borrow().clone().unwrap();
    let (r, s3) = (received.clone(), srv.clone());
    srv.set_readable_callback(Box::new(move |world| {
        r.set(r.get() + s3.recv(world, usize::MAX).len());
    }));
    let start = p.world.now();
    client.send_all(&mut p.world, &vec![0u8; bytes]);
    let rr = received.clone();
    p.world.run_while(|| rr.get() < bytes);
    bytes as f64 / p.world.now().since(start).as_secs_f64() / 1e6
}

fn main() {
    let size = 8_000_000;
    println!("== VTHD WAN: 8 MB dataset ==");
    let single = wan_transfer(1, size);
    let parallel = wan_transfer(4, size);
    println!("  single TCP stream   : {single:.1} MB/s");
    println!(
        "  4 parallel streams  : {parallel:.1} MB/s ({:.2}x)",
        parallel / single
    );

    println!("== Lossy trans-continental link: 1 MB dataset ==");
    let mut p = simnet::topology::lossy_internet_pair(17);
    let udp_a = UdpHost::new(&mut p.world, p.a);
    let udp_b = UdpHost::new(&mut p.world, p.b);
    let cfg = VrpConfig {
        tolerance: 0.10,
        ..Default::default()
    };
    VrpReceiver::bind(
        &mut p.world,
        &udp_b,
        p.network,
        7000,
        cfg.clone(),
        |_w, msg| {
            println!(
                "  VRP delivered {:.1}% of the dataset ({} packets missing)",
                msg.delivered_fraction() * 100.0,
                msg.missing_packets.len()
            );
        },
    );
    let done = Rc::new(RefCell::new(None));
    let d = done.clone();
    VrpSender::send(
        &mut p.world,
        &udp_a,
        p.network,
        p.b,
        7000,
        vec![7u8; 1_000_000],
        cfg,
        move |_w, stats| *d.borrow_mut() = Some(stats),
    );
    let dd = done.clone();
    p.world.run_while(|| dd.borrow().is_none());
    let stats = done.borrow().unwrap();
    println!(
        "  VRP goodput         : {:.0} KB/s (elapsed {})",
        stats.goodput_bytes_per_sec() / 1e3,
        stats.elapsed
    );
}
