//! # padicotm — Rust reproduction of the PadicoTM grid communication framework
//!
//! This facade crate re-exports the whole workspace so applications can use
//! a single dependency:
//!
//! * [`simnet`] — the deterministic network simulator standing in for the
//!   paper's hardware testbed (Myrinet-2000, Ethernet-100, VTHD WAN, lossy
//!   Internet links);
//! * [`gridtopo`] — multi-hop routing and gateways for hierarchical,
//!   multi-site grid topologies (sites behind gateways, WAN backbones);
//! * [`transport`] — TCP, UDP, VRP, Parallel Streams, AdOC compression and
//!   secure streams over the simulated networks;
//! * [`madeleine`] — the Madeleine-style SAN message library;
//! * [`netaccess`] — the arbitration layer (MadIO, SysIO, fair polling);
//! * [`core`] — the dual-abstraction framework itself (VLink,
//!   Circuit, selector, personalities, runtime);
//! * [`middleware`] — MPI, CORBA ORBs, Java sockets, SOAP and HLA ported on
//!   top of the framework.
//!
//! See `examples/` for runnable scenarios and the `padico-bench` crate for
//! the experiment harness that regenerates the paper's tables and figures.

#![deny(unsafe_code)]

pub use gridtopo;
pub use madeleine;
pub use middleware;
pub use netaccess;
pub use padico_core as core;
pub use simnet;
pub use transport;

/// Commonly used types for applications built on PadicoTM-RS.
pub mod prelude {
    pub use gridtopo::{
        GridRoutes, GridTopology, HierRouteTable, RelayConfig, RelayFabric, RouteTable, SiteLayout,
        SiteSpec,
    };
    pub use madeleine::{RecvMode, SendMode};
    pub use middleware::{IdlValue, MpiComm, Orb, OrbImpl, SoapCall, SoapEndpoint};
    pub use netaccess::{NetAccess, PollPolicy};
    pub use padico_core::{
        runtimes_for_cluster, runtimes_for_grid, runtimes_for_lan, Circuit, LinkDecision,
        PadicoRuntime, SelectorPreferences, VLink, VLinkMethod,
    };
    pub use simnet::{topology, NetworkSpec, NodeId, SimDuration, SimTime, SimWorld};
    pub use transport::{ByteStream, ByteStreamExt};
}
