//! Facade-level integration test of the multi-site grid subsystem: route
//! determinism, gateway relay accounting, and middleware running
//! transparently across gateway-isolated sites.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use padicotm::gridtopo::{RelayConfig, RelayFabric};
use padicotm::middleware::{IdlValue, Orb, OrbImpl};
use padicotm::prelude::*;

fn two_site_grid(seed: u64) -> (SimWorld, GridTopology) {
    let mut world = SimWorld::new(seed);
    let grid = GridTopology::two_sites(&mut world, 3);
    (world, grid)
}

#[test]
fn routes_are_identical_for_identical_builds() {
    let (_w1, g1) = two_site_grid(11);
    let (_w2, g2) = two_site_grid(11);
    assert_eq!(g1.routes, g2.routes);
    // The seed feeds only the RNG, not the topology: a different seed
    // still yields the same routes for the same build sequence.
    let (_w3, g3) = two_site_grid(12);
    assert_eq!(g1.routes, g3.routes);
}

#[test]
fn gateway_relay_accounting_balances() {
    let (mut world, grid) = two_site_grid(21);
    let fabric = RelayFabric::new(grid.routes.clone(), RelayConfig::default());
    for node in grid.all_nodes() {
        fabric.attach(&mut world, node);
    }
    let src = grid.site(0).node(1);
    let dst = grid.site(1).node(1);
    let got = Rc::new(Cell::new(0u64));
    let g = got.clone();
    fabric.bind(&mut world, dst, 4, move |_w, _m| g.set(g.get() + 1));
    let sent = 40u64;
    for _ in 0..sent {
        fabric
            .send(&mut world, src, dst, 4, vec![1u8; 512])
            .unwrap();
    }
    world.run();
    let gw_a = fabric.gateway_stats(grid.site(0).gateway);
    let gw_b = fabric.gateway_stats(grid.site(1).gateway);
    // Conservation: everything site A's gateway forwarded either reached
    // site B's gateway (then the endpoint) or was dropped on the backbone.
    assert_eq!(gw_a.frames_relayed + gw_a.frames_dropped(), sent);
    assert_eq!(got.get(), fabric.delivered_frames());
    assert_eq!(
        gw_b.frames_relayed,
        fabric.delivered_frames(),
        "site B's gateway forwards exactly what the endpoint received"
    );
    assert_eq!(gw_a.bytes_relayed, gw_a.frames_relayed * 512);
}

#[test]
fn corba_invocation_crosses_the_gateway_chain() {
    // A distributed middleware runs unchanged across gateway-isolated
    // sites: the ORB's VLink is relayed transparently.
    let (mut world, grid) = two_site_grid(31);
    let (rts, proxies) = runtimes_for_grid(&mut world, &grid, SelectorPreferences::default());
    let client_rt = rts[1].clone(); // paris worker
    let server_rt = rts[grid.site(0).len() + 1].clone(); // nice worker
    let server_node = server_rt.node();
    assert!(client_rt.vlink_decision(&world, server_node).is_relayed());

    let server = Orb::new(server_rt, OrbImpl::OmniOrb4);
    server.register_servant("echo", |_w, _op, arg| arg);
    server.activate(&mut world, 850);
    let client = Orb::new(client_rt, OrbImpl::OmniOrb4);
    let objref = client.object_ref(server_node, 850, "echo");
    let got = Rc::new(RefCell::new(None));
    let g = got.clone();
    client.invoke(
        &mut world,
        &objref,
        "id",
        IdlValue::Long(99),
        move |_w, r| {
            *g.borrow_mut() = Some(r);
        },
    );
    world.run();
    assert_eq!(got.borrow().clone(), Some(IdlValue::Long(99)));
    let spliced: u64 = proxies.iter().map(|p| p.stats().connections_relayed).sum();
    assert!(
        spliced >= 2,
        "both gateways must have spliced the ORB stream"
    );
}
