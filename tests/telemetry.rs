//! The unified telemetry layer, observed from outside: conservation
//! invariants checked through [`MetricsSnapshot`] alone (no reaching into
//! component stats structs), frame journeys reconstructed from the typed
//! event ring, flight-recorder forensics after a gateway kill, and the
//! bit-exact determinism of the scraped JSON across identical seeded
//! runs.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use padico_bench::conservation_violations;
use padicotm::core::VLinkEvent;
use padicotm::gridtopo::{BackpressureMode, RelayConfig, RelayFabric};
use padicotm::prelude::*;
use padicotm::simnet::{CauseId, DropCause, MetricsSnapshot, TraceEvent};

/// Builds a two-site relay fabric, pushes `sent` frames across the
/// gateways (with an optional seeded fault injector), and returns the
/// drained world plus the delivered count.
fn relay_scenario(seed: u64, fault_rate: f64, trace: bool) -> (SimWorld, u64, u64) {
    let mut world = SimWorld::new(seed);
    if trace {
        world.events.enable();
    }
    let grid = GridTopology::two_sites(&mut world, 3);
    let fabric = RelayFabric::new(
        grid.routes.clone(),
        RelayConfig {
            backpressure: BackpressureMode::Credit,
            queue_capacity: 16,
            ..Default::default()
        },
    );
    for node in grid.all_nodes() {
        fabric.attach(&mut world, node);
    }
    if fault_rate > 0.0 {
        fabric.inject_gateway_faults(fault_rate, 0xFEED);
    }
    let src = grid.site(0).node(1);
    let dst = grid.site(1).node(1);
    let delivered = Rc::new(Cell::new(0u64));
    let d = delivered.clone();
    fabric.bind(&mut world, dst, 3, move |_w, _m| d.set(d.get() + 1));
    let sent = 40u64;
    for _ in 0..sent {
        fabric
            .send(&mut world, src, dst, 3, vec![9u8; 700])
            .unwrap();
    }
    world.run();
    (world, sent, delivered.get())
}

/// Every relay/credit conservation law must hold on the scraped snapshot
/// alone — the same checks the CI metrics smoke runs — both on a clean
/// run and under seeded gateway faults (faults drop frames but may not
/// leak credits or park anything forever).
#[test]
fn snapshot_conservation_holds_with_and_without_faults() {
    for fault_rate in [0.0, 0.35] {
        let (world, sent, delivered) = relay_scenario(21, fault_rate, false);
        let snap = world.metrics_snapshot();
        let violations = conservation_violations(&snap);
        assert!(
            violations.is_empty(),
            "conservation violated (fault_rate {fault_rate}): {violations:?}"
        );
        // The snapshot's own accounting matches ground truth observed at
        // the endpoints.
        assert_eq!(snap.counter_total("relay.fabric.frames_sent"), sent);
        assert_eq!(
            snap.counter_total("relay.fabric.frames_delivered"),
            delivered
        );
        if fault_rate > 0.0 {
            assert!(
                snap.counter_total("relay.gateway.frames_dropped_fault") > 0,
                "the injector must be visible in the snapshot"
            );
            assert!(delivered < sent);
        } else {
            assert_eq!(delivered, sent);
        }
    }
}

/// A relayed frame's whole journey — origin, both gateway hops, final
/// delivery (or a typed drop) — reconstructs from the event ring by
/// cause id, in causal (virtual-time) order.
#[test]
fn frame_journeys_reconstruct_from_the_event_ring() {
    let (world, sent, _delivered) = relay_scenario(11, 0.35, true);
    let causes: Vec<CauseId> = world
        .events
        .events()
        .filter_map(|e| match e.event {
            TraceEvent::RelayAccepted { cause, .. } => Some(cause),
            _ => None,
        })
        .collect();
    assert_eq!(causes.len() as u64, sent, "one journey per accepted frame");

    let (mut delivered_journeys, mut dropped_journeys) = (0u64, 0u64);
    for cause in causes {
        let journey = world.events.journey(cause);
        assert!(
            matches!(
                journey.first().map(|e| e.event),
                Some(TraceEvent::RelayAccepted { .. })
            ),
            "a journey starts at its origin: {journey:?}"
        );
        for pair in journey.windows(2) {
            assert!(pair[0].time <= pair[1].time, "causal order: {journey:?}");
        }
        match journey.last().map(|e| e.event) {
            Some(TraceEvent::RelayDelivered { .. }) => {
                // A delivered frame crossed both gateways of the route.
                let hops = journey
                    .iter()
                    .filter(|e| matches!(e.event, TraceEvent::RelayForwarded { .. }))
                    .count();
                assert_eq!(hops, 2, "two gateway hops on the two-site route");
                delivered_journeys += 1;
            }
            Some(TraceEvent::RelayDropped { drop_cause, .. }) => {
                assert_eq!(drop_cause, DropCause::Fault, "only faults drop here");
                dropped_journeys += 1;
            }
            other => panic!("a journey ends delivered or dropped, got {other:?}"),
        }
    }
    assert!(delivered_journeys > 0);
    assert!(dropped_journeys > 0, "the 35% injector must show journeys");
    assert_eq!(delivered_journeys + dropped_journeys, sent);

    // Tracing stays strictly opt-in: the same scenario without enable()
    // records nothing.
    let (quiet, _, _) = relay_scenario(11, 0.35, false);
    assert!(quiet.events.is_empty(), "disabled ring must stay empty");
    assert_eq!(quiet.events.dropped(), 0);
}

/// Two identical seeded runs scrape byte-identical JSON; a different
/// seed still produces the same metric key set (the namespace is
/// topology-determined, not timing-determined).
#[test]
fn snapshot_json_is_bit_identical_across_identical_seeded_runs() {
    let json = |seed| {
        let (world, _, _) = relay_scenario(seed, 0.35, false);
        world.metrics_snapshot().to_json()
    };
    assert_eq!(json(77), json(77), "same seed, same bytes");
    let keys = |s: &MetricsSnapshot| s.iter().map(|(k, _)| k.to_string()).collect::<Vec<_>>();
    let (world_a, _, _) = relay_scenario(77, 0.35, false);
    let (world_b, _, _) = relay_scenario(78, 0.35, false);
    assert_eq!(
        keys(&world_a.metrics_snapshot()),
        keys(&world_b.metrics_snapshot()),
        "the key set is stable across seeds"
    );
}

/// Gateway-kill failover, audited through telemetry only: the snapshot
/// must balance every conservation law after the kill + migration, and
/// the per-stream flight recorder must hold the forensic timeline
/// (dial, cut, re-resolve, resume) of the migrated stream.
#[test]
fn failover_leaves_a_balanced_snapshot_and_a_forensic_timeline() {
    const PAYLOAD: usize = 300_000;
    let mut world = SimWorld::new(0xFA110);
    let grid = GridTopology::star(
        &mut world,
        &[
            SiteSpec::san_cluster("a", 4).with_gateways(2),
            SiteSpec::san_cluster("b", 4).with_gateways(2),
        ],
        NetworkSpec::vthd_wan(),
    );
    let prefs = SelectorPreferences {
        relay_backpressure: BackpressureMode::Credit,
        gateway_failover: true,
        ..Default::default()
    };
    let (rts, _proxies) = runtimes_for_grid(&mut world, &grid, prefs);
    let src_rt = rts[2].clone();
    let dst_rt = rts[grid.site(0).len() + 3].clone();
    let kill_node = grid.site(0).gateways[0];
    let kill_rt = rts
        .iter()
        .find(|rt| rt.node() == kill_node)
        .expect("gateway runtime")
        .clone();

    let got: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    let g = got.clone();
    dst_rt.vlink_listen(&mut world, 960, move |_w, v| {
        let v2 = v.clone();
        let g2 = g.clone();
        v.set_handler(move |world, ev| {
            if ev == VLinkEvent::Readable {
                g2.borrow_mut().extend(v2.read_now(world, usize::MAX));
            }
        });
    });
    let payload: Vec<u8> = (0..PAYLOAD).map(|i| (i % 247) as u8).collect();
    let client = src_rt.vlink_connect(&mut world, dst_rt.node(), 960);
    client.post_write(&mut world, &payload);
    let gr = got.clone();
    world.run_while(|| gr.borrow().len() < 60_000);
    kill_rt.kill(&mut world);
    world.run();

    // Ground truth: exactly-once, byte-exact delivery across the seam.
    assert_eq!(*got.borrow(), payload, "byte-exact across the migration");

    // The books balance in the snapshot alone — dead gateway included.
    let snap = world.metrics_snapshot();
    let violations = conservation_violations(&snap);
    assert!(violations.is_empty(), "after the kill: {violations:?}");

    // Forensics: the sender-side survivor holds a flight recorder whose
    // timeline shows the migration (carrier cut → re-resolve → resume).
    let dumps: Vec<String> = rts.iter().flat_map(|rt| rt.flight_dumps()).collect();
    assert!(!dumps.is_empty(), "failover streams keep flight recorders");
    let migrated = dumps.iter().any(|d| d.contains("migrated"));
    assert!(
        migrated,
        "one timeline must record the migration:\n{}",
        dumps.join("\n")
    );
}
