//! End-to-end tests of the zero-copy segmented datapath: relayed streams
//! must deliver bytes in order regardless of how the writer chunks them.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use padicotm::core::{runtimes_for_grid, SelectorPreferences, VLink, VLinkEvent};
use padicotm::gridtopo::{GridTopology, SiteSpec};
use padicotm::simnet::{NetworkSpec, SimWorld};
use padicotm::transport::SegBuf;

/// Builds a two-site grid (3-hop relayed path: SAN, WAN backbone, SAN) and
/// streams `payload` through a relayed VLink in writes of `chunk` bytes.
fn relay_roundtrip(chunk: usize, payload: &[u8]) -> Vec<u8> {
    let mut world = SimWorld::new(77);
    let specs = [
        SiteSpec::san_cluster("s0", 3),
        SiteSpec::san_cluster("s1", 3),
    ];
    let grid = GridTopology::star(&mut world, &specs, NetworkSpec::vthd_wan());
    let (rts, _proxies) = runtimes_for_grid(&mut world, &grid, SelectorPreferences::default());
    let dst = grid.site(1).node(1);
    let src_rt = rts[1].clone();
    let dst_rt = rts[grid.site(0).len() + 1].clone();
    world.run(); // grid bring-up (trunks, listeners)

    let got: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    let done = Rc::new(Cell::new(false));
    let g = got.clone();
    let d = done.clone();
    dst_rt.vlink_listen(&mut world, 910, move |_w, v: VLink| {
        let v2 = v.clone();
        let g = g.clone();
        let d = d.clone();
        v.set_handler(move |world, ev| match ev {
            VLinkEvent::Readable => g.borrow_mut().extend(v2.read_now(world, usize::MAX)),
            VLinkEvent::Finished => d.set(true),
            VLinkEvent::Connected => {}
        });
    });
    let client = src_rt.vlink_connect(&mut world, dst, 910);
    let hops = match client.method() {
        padicotm::core::VLinkMethod::Relayed { hops } => hops,
        other => panic!("expected a relayed link, got {other:?}"),
    };
    assert_eq!(hops, 3, "two gateway-isolated sites give a 3-hop path");
    for piece in payload.chunks(chunk) {
        client.post_write(&mut world, piece);
    }
    client.close(&mut world);
    world.run();
    assert!(done.get(), "relayed stream should finish after close");
    let out = got.borrow().clone();
    out
}

#[test]
fn relayed_stream_delivers_in_order_across_chunk_boundaries() {
    let payload: Vec<u8> = (0..40_000usize).map(|i| (i * 31 % 251) as u8).collect();
    for chunk in [1usize, 7, 4096] {
        let got = relay_roundtrip(chunk, &payload);
        assert_eq!(got.len(), payload.len(), "chunk size {chunk}: wrong length");
        assert_eq!(got, payload, "chunk size {chunk}: bytes reordered");
    }
}

/// The `recv_bytes` fast path returns segments that concatenate to exactly
/// what `recv` would have returned.
#[test]
fn recv_bytes_segments_concatenate_to_recv() {
    use padicotm::simnet::topology;
    use padicotm::transport::{ByteStream, ByteStreamExt, TcpStack};

    let mut p = topology::pair_over(3, NetworkSpec::ethernet_100());
    let sa = TcpStack::new(&mut p.world, p.a);
    let sb = TcpStack::new(&mut p.world, p.b);
    let server: Rc<RefCell<Option<padicotm::transport::TcpConn>>> = Rc::new(RefCell::new(None));
    let s2 = server.clone();
    sb.listen(80, move |_w, c| *s2.borrow_mut() = Some(c));
    let client = sa.connect(&mut p.world, p.network, p.b, 80);
    p.world.run();
    let server = server.borrow().clone().unwrap();

    let payload: Vec<u8> = (0..50_000usize).map(|i| (i % 253) as u8).collect();
    client.send_all(&mut p.world, &payload);
    p.world.run();

    // Drain via the segment fast path into a SegBuf, then compare.
    let mut segs = SegBuf::new();
    loop {
        let chunk = server.recv_bytes(&mut p.world, usize::MAX);
        if chunk.is_empty() {
            break;
        }
        segs.push_bytes(chunk);
    }
    assert_eq!(segs.read_into(usize::MAX), payload);
}
