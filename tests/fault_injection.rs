//! Deterministic fault-injection harness: every fault is driven by a
//! seeded [`SimRng`] (or a fixed virtual-time trigger), so each scenario
//! reproduces bit for bit — kill a trunk carrier mid-stream, discard a
//! seeded fraction of gateway frames, and fill a relay queue to zero
//! credits — asserting no data corruption, no deadlock (the world always
//! drains and streams report their end), and exact loss/drop/credit-stall
//! accounting in both backpressure modes.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use padicotm::core::VLinkEvent;
use padicotm::gridtopo::{BackpressureMode, RelayConfig, RelayFabric};
use padicotm::prelude::*;
use padicotm::simnet::SimRng;

fn grid_prefs(mode: BackpressureMode) -> SelectorPreferences {
    SelectorPreferences {
        relay_backpressure: mode,
        ..Default::default()
    }
}

/// Relayed VLink transfer whose gateway trunk is severed mid-stream: the
/// delivered bytes must be an uncorrupted prefix, the simulation must
/// drain (no deadlock), both endpoints must observe the end of stream,
/// and a fresh relayed connection must re-establish a working trunk.
fn trunk_kill_scenario(mode: BackpressureMode) {
    let mut world = SimWorld::new(0xDEAD);
    let grid = GridTopology::two_sites(&mut world, 3);
    let (rts, _proxies) = runtimes_for_grid(&mut world, &grid, grid_prefs(mode));
    let gw_a_rt = rts[0].clone();
    assert_eq!(gw_a_rt.node(), grid.site(0).gateway);
    let src_rt = rts[1].clone();
    let dst_rt = rts[grid.site(0).len() + 2].clone();
    let dst = dst_rt.node();

    let got: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    let finished = Rc::new(Cell::new(false));
    let (g, f) = (got.clone(), finished.clone());
    dst_rt.vlink_listen(&mut world, 900, move |_w, v| {
        let v2 = v.clone();
        let (g, f) = (g.clone(), f.clone());
        v.set_handler(move |world, ev| match ev {
            VLinkEvent::Readable => g.borrow_mut().extend(v2.read_now(world, usize::MAX)),
            VLinkEvent::Finished => f.set(true),
            VLinkEvent::Connected => {}
        });
    });
    let client = src_rt.vlink_connect(&mut world, dst, 900);
    let payload: Vec<u8> = (0..400_000usize).map(|i| (i % 249) as u8).collect();
    client.post_write(&mut world, &payload);

    // Sever the trunk once a little data has crossed, then let the world
    // drain completely.
    let gr = got.clone();
    world.run_while(|| gr.borrow().len() < 10_000);
    let severed = gw_a_rt.drop_trunks(&mut world);
    assert!(severed >= 1, "the gateway held at least one trunk");
    world.run();

    // No corruption: whatever arrived is a byte-exact prefix.
    let got = got.borrow().clone();
    assert!(got.len() >= 10_000);
    assert_eq!(
        got[..],
        payload[..got.len()],
        "delivered data must be an uncorrupted prefix"
    );
    // No dangling stream: a dead carrier must end the relayed stream (the
    // receiver observes Finished) rather than leaving it waiting forever.
    // Bytes in flight at the kill are lost on the severed trunk and
    // accounted at the gateway (`TrunkMux::lost_bytes` / splice refusals),
    // never silently re-materialized: the delivered prefix above is all
    // the receiver ever gets.
    assert!(finished.get(), "the receiver must see the stream end");
    if mode == BackpressureMode::Credit {
        // With credit windows, most of the payload is still parked at the
        // sending gateway when the carrier dies — it must be lost, not
        // re-materialized out of nowhere. (In drop mode the whole payload
        // may already sit in the carrier's reliable send queues, which an
        // orderly close still drains.)
        assert!(
            got.len() < payload.len(),
            "the kill must cut a windowed transfer short"
        );
    }
    let _ = client;

    // Recovery: a new relayed connection re-establishes a fresh trunk and
    // completes end to end.
    let got2 = Rc::new(RefCell::new(Vec::new()));
    let g2 = got2.clone();
    dst_rt.vlink_listen(&mut world, 901, move |_w, v| {
        let v2 = v.clone();
        let g = g2.clone();
        v.set_handler(move |world, ev| {
            if ev == VLinkEvent::Readable {
                g.borrow_mut().extend(v2.read_now(world, usize::MAX));
            }
        });
    });
    let client2 = src_rt.vlink_connect(&mut world, dst, 901);
    client2.post_write(&mut world, &payload[..50_000]);
    world.run();
    assert_eq!(
        *got2.borrow(),
        payload[..50_000].to_vec(),
        "a fresh trunk must carry a full transfer after the kill"
    );
}

#[test]
fn trunk_carrier_killed_mid_stream_drop_mode() {
    trunk_kill_scenario(BackpressureMode::Drop);
}

#[test]
fn trunk_carrier_killed_mid_stream_credit_mode() {
    trunk_kill_scenario(BackpressureMode::Credit);
}

#[test]
fn trunk_kill_is_deterministic() {
    let run = || {
        let mut world = SimWorld::new(7);
        let grid = GridTopology::two_sites(&mut world, 2);
        let (rts, _proxies) =
            runtimes_for_grid(&mut world, &grid, grid_prefs(BackpressureMode::Credit));
        let dst_rt = rts[3].clone();
        let got: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        dst_rt.vlink_listen(&mut world, 910, move |_w, v| {
            let v2 = v.clone();
            let g = g.clone();
            v.set_handler(move |world, ev| {
                if ev == VLinkEvent::Readable {
                    g.borrow_mut().extend(v2.read_now(world, usize::MAX));
                }
            });
        });
        let client = rts[1].vlink_connect(&mut world, dst_rt.node(), 910);
        client.post_write(&mut world, &vec![5u8; 300_000]);
        let gr = got.clone();
        world.run_while(|| gr.borrow().len() < 5_000);
        rts[0].drop_trunks(&mut world);
        world.run();
        let len = got.borrow().len();
        (len, world.now().as_nanos())
    };
    assert_eq!(run(), run(), "kill timing and outcome reproduce exactly");
}

/// Incast through one gateway pair with a trunk-wide aggregate credit
/// budget (`gateway_trunk_budget`): the *sum* of unconsumed bytes across
/// every multiplexed stream of the trunk must stay under the budget (the
/// per-stream windows alone would admit senders × window), each stream's
/// own receive buffer must stay under its window — both observed through
/// `SegBuf::high_water` — and the transfer must still complete losslessly
/// with the budget recovering once consumers drain.
#[test]
fn trunk_budget_bounds_gateway_memory_under_incast() {
    const BUDGET: usize = 128 * 1024;
    const SENDERS: usize = 4;
    const PAYLOAD: usize = 200_000;

    let mut world = SimWorld::new(0xB0D6E7);
    let grid = GridTopology::two_sites(&mut world, SENDERS + 1);
    let prefs = SelectorPreferences {
        relay_backpressure: BackpressureMode::Credit,
        gateway_trunk_budget: BUDGET,
        ..Default::default()
    };
    let (rts, _proxies) = runtimes_for_grid(&mut world, &grid, prefs);
    let gw_b_rt = rts[grid.site(0).len()].clone();
    assert_eq!(gw_b_rt.node(), grid.site(1).gateway);
    let dst_rt = rts[grid.site(0).len() + 1].clone();
    let dst = dst_rt.node();

    // One listener per incast stream, draining continuously.
    let got: Rc<RefCell<Vec<Vec<u8>>>> = Rc::new(RefCell::new(Vec::new()));
    let g = got.clone();
    dst_rt.vlink_listen(&mut world, 930, move |_w, v| {
        let slot = {
            let mut all = g.borrow_mut();
            all.push(Vec::new());
            all.len() - 1
        };
        let v2 = v.clone();
        let g2 = g.clone();
        v.set_handler(move |world, ev| {
            if ev == VLinkEvent::Readable {
                g2.borrow_mut()[slot].extend(v2.read_now(world, usize::MAX));
            }
        });
    });

    // Every non-gateway node of site 0 blasts at once: 4 × 200 kB
    // through one trunk whose shared budget is 128 kB (per-stream windows
    // alone would admit 4 × 256 kB).
    let payloads: Vec<Vec<u8>> = (0..SENDERS)
        .map(|s| (0..PAYLOAD).map(|i| (i * 7 + s * 13) as u8).collect())
        .collect();
    for (s, payload) in payloads.iter().enumerate() {
        let client = rts[1 + s].vlink_connect(&mut world, dst, 930);
        client.post_write(&mut world, payload);
    }
    world.run();

    // Lossless delivery despite the tight shared budget.
    let mut delivered: Vec<Vec<u8>> = got.borrow().clone();
    delivered.sort();
    let mut expected = payloads.clone();
    expected.sort();
    assert_eq!(delivered, expected, "incast must deliver intact");

    // The budget bound, observed at the receiving gateway's accepted
    // trunk: aggregate occupancy (the sum over per-stream SegBufs) never
    // exceeded the budget, and each stream alone stayed under its window.
    let stats = gw_b_rt.trunk_memory_stats();
    let accepted: Vec<_> = stats.iter().filter(|m| m.recv_high_water > 0).collect();
    assert!(
        !accepted.is_empty(),
        "the incast trunk saw traffic: {stats:?}"
    );
    for m in &accepted {
        assert!(
            m.recv_high_water <= BUDGET,
            "aggregate trunk occupancy must respect gateway_trunk_budget: {m:?}"
        );
        assert!(
            m.max_stream_high_water <= 256 * 1024,
            "per-stream SegBuf::high_water must respect the stream window: {m:?}"
        );
        assert!(
            m.recv_high_water >= BUDGET / 2,
            "the budget must actually have been exercised: {m:?}"
        );
    }
    // The sending gateway's budget recovers as consumers drain (streams
    // are still open, so up to one sub-threshold grant batch per stream
    // may remain unreturned).
    let gw_a_stats = rts[0].trunk_memory_stats();
    let sending: Vec<_> = gw_a_stats.iter().filter(|m| m.budget > 0).collect();
    assert!(!sending.is_empty(), "{gw_a_stats:?}");
    for m in sending {
        assert_eq!(m.budget, BUDGET);
        assert_eq!(m.parked_streams, 0, "everything flushed: {m:?}");
        assert!(
            m.budget_available + SENDERS * 32 * 1024 >= BUDGET,
            "budget recovers up to unreturned grant batches: {m:?}"
        );
    }
}

// ---------------------------------------------------------------------- //
// Redundant-gateway failover: kill each gateway of a 2-gateway site in
// turn under a fixed seed; streams must resume automatically through the
// surviving gateway with zero acknowledged bytes lost and eventual
// delivery of the whole payload, exactly once, in order.
// ---------------------------------------------------------------------- //

/// Per-connection byte sink: the receiver keeps one buffer per accepted
/// connection (in accept order); a migrated stream resumes on a fresh
/// connection, so the concatenation across connections must equal the
/// payload byte for byte — any acknowledged-byte loss leaves a hole, any
/// duplicate resend shows up as overlap.
type ConnLog = Rc<RefCell<Vec<Vec<u8>>>>;

fn listen_per_connection(world: &mut SimWorld, rt: &PadicoRuntime, service: u16) -> ConnLog {
    let log: ConnLog = Rc::new(RefCell::new(Vec::new()));
    let l = log.clone();
    rt.vlink_listen(world, service, move |_w, v| {
        let slot = {
            let mut all = l.borrow_mut();
            all.push(Vec::new());
            all.len() - 1
        };
        let v2 = v.clone();
        let l2 = l.clone();
        v.set_handler(move |world, ev| {
            if ev == VLinkEvent::Readable {
                l2.borrow_mut()[slot].extend(v2.read_now(world, usize::MAX));
            }
        });
    });
    log
}

/// Builds the redundant star (both sites with 2 gateways), starts one
/// relayed transfer, kills the chosen gateway once ~60 kB crossed, and
/// checks exactly-once delivery of the full payload.
fn gateway_kill_failover(kill_site: usize, kill_rank: usize, expect_migration: bool) {
    const PAYLOAD: usize = 300_000;
    let mut world = SimWorld::new(0xFA110);
    let grid = GridTopology::star(
        &mut world,
        &[
            SiteSpec::san_cluster("a", 4).with_gateways(2),
            SiteSpec::san_cluster("b", 4).with_gateways(2),
        ],
        NetworkSpec::vthd_wan(),
    );
    let prefs = SelectorPreferences {
        relay_backpressure: BackpressureMode::Credit,
        gateway_failover: true,
        ..Default::default()
    };
    let (rts, _proxies) = runtimes_for_grid(&mut world, &grid, prefs);
    let src_rt = rts[2].clone(); // site 0, plain worker
    let dst_rt = rts[grid.site(0).len() + 3].clone(); // site 1, plain worker
    let dst = dst_rt.node();
    let kill_node = grid.site(kill_site).gateways[kill_rank];
    let kill_rt = rts
        .iter()
        .find(|rt| rt.node() == kill_node)
        .expect("gateway runtime")
        .clone();

    let log = listen_per_connection(&mut world, &dst_rt, 940);
    let payload: Vec<u8> = (0..PAYLOAD).map(|i| (i % 247) as u8).collect();
    let client = src_rt.vlink_connect(&mut world, dst, 940);
    client.post_write(&mut world, &payload);

    // Kill once a prefix has crossed (and been consumed downstream).
    let l = log.clone();
    world.run_while(|| l.borrow().iter().map(Vec::len).sum::<usize>() < 60_000);
    kill_rt.kill(&mut world);
    world.run();

    let log = log.borrow();
    let delivered: Vec<u8> = log.iter().flatten().copied().collect();
    assert_eq!(
        delivered.len(),
        PAYLOAD,
        "eventual delivery, no loss and no duplication \
         (site {kill_site} gateway rank {kill_rank}, {} connections)",
        log.len()
    );
    assert_eq!(
        delivered, payload,
        "byte-exact across the migration seam: acknowledged bytes are \
         never lost, unacknowledged ones are resent exactly once"
    );
    if expect_migration {
        assert!(
            log.len() >= 2,
            "killing an on-route gateway must migrate the stream to a \
             fresh connection through the survivor (got {} connection)",
            log.len()
        );
        assert_eq!(
            client.bytes_refused(),
            0,
            "the sender-side stream never refused a posted byte"
        );
    } else {
        assert_eq!(
            log.len(),
            1,
            "killing an off-route gateway must not disturb the stream"
        );
    }
}

#[test]
fn killing_the_source_side_primary_gateway_fails_over() {
    gateway_kill_failover(0, 0, true);
}

#[test]
fn killing_the_destination_side_primary_gateway_fails_over() {
    gateway_kill_failover(1, 0, true);
}

#[test]
fn killing_the_off_route_secondary_gateway_is_harmless() {
    // The secondaries carry nothing while the primaries are healthy:
    // killing one in turn must leave the transfer untouched.
    gateway_kill_failover(0, 1, false);
    gateway_kill_failover(1, 1, false);
}

#[test]
fn drop_trunks_under_failover_does_not_poison_healthy_gateways() {
    // `drop_trunks` is the *local-restart* fault model: the node severs
    // its own carriers. Under gateway_failover that must not mark the
    // (healthy) remote gateways down — in-flight streams re-dial the same
    // gateway and fresh connects keep resolving.
    let mut world = SimWorld::new(0xD201);
    let grid = GridTopology::two_sites(&mut world, 3);
    let prefs = SelectorPreferences {
        relay_backpressure: BackpressureMode::Credit,
        gateway_failover: true,
        ..Default::default()
    };
    let (rts, _proxies) = runtimes_for_grid(&mut world, &grid, prefs);
    let gw_a_rt = rts[0].clone();
    let dst_rt = rts[grid.site(0).len() + 2].clone();
    let dst = dst_rt.node();
    let log = listen_per_connection(&mut world, &dst_rt, 950);
    let payload = vec![8u8; 150_000];
    let client = rts[1].vlink_connect(&mut world, dst, 950);
    client.post_write(&mut world, &payload);
    let l = log.clone();
    world.run_while(|| l.borrow().iter().map(Vec::len).sum::<usize>() < 20_000);
    let severed = gw_a_rt.drop_trunks(&mut world);
    assert!(severed >= 1);
    world.run();
    // The locally severed carrier said nothing about gw_b's health.
    assert_eq!(
        gw_a_rt.down_gateways(),
        vec![],
        "a local sever must not mark the healthy peer down"
    );
    // gw_a's own onward stream re-dialed gw_b and the transfer resumed
    // through the re-established trunk: everything arrives exactly once.
    let delivered: Vec<u8> = log.borrow().iter().flatten().copied().collect();
    assert_eq!(delivered, payload, "byte-exact across the local restart");
    // And a fresh relayed connect still resolves and completes.
    let log2 = listen_per_connection(&mut world, &dst_rt, 951);
    let client2 = rts[1].vlink_connect(&mut world, dst, 951);
    client2.post_write(&mut world, &payload[..30_000]);
    world.run();
    let delivered2: Vec<u8> = log2.borrow().iter().flatten().copied().collect();
    assert_eq!(delivered2, payload[..30_000].to_vec());
}

#[test]
fn gateway_failover_is_deterministic() {
    let run = || {
        let mut world = SimWorld::new(0xFA111);
        let grid = GridTopology::star(
            &mut world,
            &[
                SiteSpec::san_cluster("a", 3).with_gateways(2),
                SiteSpec::san_cluster("b", 3).with_gateways(2),
            ],
            NetworkSpec::vthd_wan(),
        );
        let prefs = SelectorPreferences {
            relay_backpressure: BackpressureMode::Credit,
            gateway_failover: true,
            ..Default::default()
        };
        let (rts, _proxies) = runtimes_for_grid(&mut world, &grid, prefs);
        let dst_rt = rts[grid.site(0).len() + 2].clone();
        let log = listen_per_connection(&mut world, &dst_rt, 941);
        let client = rts[2].vlink_connect(&mut world, dst_rt.node(), 941);
        client.post_write(&mut world, &vec![3u8; 200_000]);
        let l = log.clone();
        world.run_while(|| l.borrow().iter().map(Vec::len).sum::<usize>() < 20_000);
        // Kill the destination-side primary mid-transfer.
        rts.iter()
            .find(|rt| rt.node() == grid.site(1).gateway)
            .unwrap()
            .kill(&mut world);
        world.run();
        let total: usize = log.borrow().iter().map(Vec::len).sum();
        let conns = log.borrow().len();
        (total, conns, world.now().as_nanos())
    };
    let a = run();
    assert_eq!(a.0, 200_000, "failover completes: {a:?}");
    assert_eq!(run(), a, "kill timing and recovery reproduce bit-exactly");
}

/// A seeded fraction of in-transit frames is discarded at the gateways:
/// accounting must balance exactly at every hop, in both modes, and in
/// credit mode every credit consumed by a faulted frame must return
/// (faults never leak credits into a deadlock).
#[test]
fn gateway_fault_drops_are_exactly_accounted_in_both_modes() {
    for mode in [BackpressureMode::Drop, BackpressureMode::Credit] {
        let run = || {
            let mut world = SimWorld::new(21);
            let grid = GridTopology::two_sites(&mut world, 3);
            let fabric = RelayFabric::new(
                grid.routes.clone(),
                RelayConfig {
                    backpressure: mode,
                    queue_capacity: 16,
                    ..Default::default()
                },
            );
            for node in grid.all_nodes() {
                fabric.attach(&mut world, node);
            }
            fabric.inject_gateway_faults(0.35, 0xFEED);
            let (gw_a, gw_b) = (grid.site(0).gateway, grid.site(1).gateway);
            let src = grid.site(0).node(1);
            let dst = grid.site(1).node(1);
            let delivered = Rc::new(Cell::new(0u64));
            let d = delivered.clone();
            fabric.bind(&mut world, dst, 3, move |_w, _m| d.set(d.get() + 1));
            let sent = 80u64;
            for _ in 0..sent {
                fabric
                    .send(&mut world, src, dst, 3, vec![9u8; 700])
                    .unwrap();
            }
            world.run();
            let (sa, sb) = (fabric.gateway_stats(gw_a), fabric.gateway_stats(gw_b));
            // Hop-by-hop conservation, exact (the backbone is lossless).
            assert_eq!(sa.frames_relayed + sa.frames_dropped(), sent, "{sa:?}");
            assert_eq!(
                sb.frames_relayed + sb.frames_dropped(),
                sa.frames_relayed,
                "{sb:?}"
            );
            assert_eq!(delivered.get(), sb.frames_relayed);
            assert!(sa.frames_dropped_fault > 0, "the injector must fire");
            if mode == BackpressureMode::Credit {
                assert_eq!(sa.frames_dropped_queue_full, 0);
                assert_eq!(sb.frames_dropped_queue_full, 0);
                for gw in [gw_a, gw_b] {
                    let s = fabric.gateway_stats(gw);
                    assert_eq!(
                        s.credits_consumed, s.credits_returned,
                        "faults must not leak credits at {gw}: {s:?}"
                    );
                    assert_eq!(fabric.outstanding_credits(gw), 0);
                }
                assert_eq!(fabric.parked_frames(), 0, "no frame left parked");
            }
            (
                delivered.get(),
                fabric.total_dropped(),
                world.now().as_nanos(),
            )
        };
        assert_eq!(run(), run(), "seeded faults reproduce exactly ({mode:?})");
    }
}

/// An incast burst against a tiny credit pool: the pool must visibly hit
/// zero mid-burst, nothing may be dropped, every frame must arrive (no
/// deadlock), and the stall accounting must be exact and reproducible.
#[test]
fn relay_queue_fills_to_zero_credits_and_recovers() {
    let run = || {
        let mut world = SimWorld::new(33);
        let grid = GridTopology::two_sites(&mut world, 4);
        let fabric = RelayFabric::new(
            grid.routes.clone(),
            RelayConfig {
                backpressure: BackpressureMode::Credit,
                queue_capacity: 4,
                per_hop_latency: SimDuration::from_millis(1),
                ..Default::default()
            },
        );
        for node in grid.all_nodes() {
            fabric.attach(&mut world, node);
        }
        let gw_a = grid.site(0).gateway;
        let dst = grid.site(1).node(1);
        let delivered = Rc::new(Cell::new(0u64));
        let d = delivered.clone();
        fabric.bind(&mut world, dst, 5, move |_w, _m| d.set(d.get() + 1));
        // Three senders blast at once; sizes drawn from a seeded rng so the
        // burst shape is irregular but reproducible.
        let mut rng = SimRng::seeded(0xC4ED17);
        let mut sent = 0u64;
        for sender_rank in 1..=3usize {
            let src = grid.site(0).node(sender_rank);
            for _ in 0..24 {
                let size = 100 + rng.gen_range(0, 400) as usize;
                fabric
                    .send(&mut world, src, dst, 5, vec![1u8; size])
                    .unwrap();
                sent += 1;
            }
        }
        // Mid-burst the pool must be exhausted with frames parked.
        let f2 = fabric.clone();
        let hit_zero = Rc::new(Cell::new(false));
        let h2 = hit_zero.clone();
        world.schedule_after(SimDuration::from_micros(500), move |_world| {
            if f2.available_credits(gw_a) == 0 && f2.parked_frames() > 0 {
                h2.set(true);
            }
        });
        world.run();
        assert!(hit_zero.get(), "the credit pool must hit zero mid-burst");
        assert_eq!(delivered.get(), sent, "lossless despite the tiny pool");
        assert_eq!(fabric.total_dropped(), 0);
        assert!(fabric.credit_stalls() > 0);
        assert!(fabric.credit_stall_ns() > 0);
        assert_eq!(fabric.parked_frames(), 0);
        let s = fabric.gateway_stats(gw_a);
        assert!(s.max_queue_depth <= 4, "{s:?}");
        assert_eq!(s.credits_consumed, s.credits_returned, "{s:?}");
        assert_eq!(fabric.available_credits(gw_a), 4, "pool fully recovered");
        (fabric.credit_stall_ns(), world.now().as_nanos())
    };
    assert_eq!(run(), run(), "stall accounting reproduces exactly");
}
