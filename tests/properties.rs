//! Property-based tests (proptest) on the core data structures and
//! protocol invariants of PadicoTM-RS.

use bytes::Bytes;
use bytes::BytesMut;
use proptest::prelude::*;

use padicotm::middleware::{cdr_decode, cdr_encode, IdlValue};
use padicotm::simnet::{LossModel, SimDuration, SimRng, SimTime};
use padicotm::transport::compress::{compress, decompress};

// ---------------------------------------------------------------------- //
// Virtual time arithmetic
// ---------------------------------------------------------------------- //

proptest! {
    #[test]
    fn time_addition_is_monotonic(base in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(base);
        let dur = SimDuration::from_nanos(d);
        prop_assert!(t + dur >= t);
        prop_assert_eq!((t + dur) - t, dur);
    }

    #[test]
    fn duration_sum_never_underflows(a in 0u64..1_000_000_000u64, b in 0u64..1_000_000_000u64) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        // Saturating semantics: subtraction never panics, ordering holds.
        let diff = da - db;
        if a >= b {
            prop_assert_eq!(diff.as_nanos(), a - b);
        } else {
            prop_assert_eq!(diff, SimDuration::ZERO);
        }
    }
}

// ---------------------------------------------------------------------- //
// LZSS codec: lossless round-trip for arbitrary data
// ---------------------------------------------------------------------- //

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn compression_roundtrips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        let compressed = compress(&data);
        prop_assert_eq!(decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn compression_roundtrips_repetitive_data(byte in any::<u8>(), len in 0usize..50_000, period in 1usize..64) {
        let data: Vec<u8> = (0..len).map(|i| byte.wrapping_add((i % period) as u8)).collect();
        let compressed = compress(&data);
        prop_assert_eq!(decompress(&compressed).unwrap(), data);
    }
}

// ---------------------------------------------------------------------- //
// CDR marshalling round-trip for arbitrary IDL values
// ---------------------------------------------------------------------- //

fn idl_value_strategy() -> impl Strategy<Value = IdlValue> {
    let leaf = prop_oneof![
        Just(IdlValue::Void),
        any::<bool>().prop_map(IdlValue::Bool),
        any::<i32>().prop_map(IdlValue::Long),
        any::<i64>().prop_map(IdlValue::LongLong),
        any::<f64>().prop_filter("NaN compares unequal", |f| !f.is_nan()).prop_map(IdlValue::Double),
        "[a-zA-Z0-9 ]{0,40}".prop_map(IdlValue::Str),
        proptest::collection::vec(any::<u8>(), 0..200).prop_map(|v| IdlValue::Octets(Bytes::from(v))),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        proptest::collection::vec(inner, 0..6).prop_map(IdlValue::Sequence)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn cdr_roundtrips_arbitrary_idl_values(value in idl_value_strategy()) {
        let mut buf = BytesMut::new();
        cdr_encode(&value, &mut buf);
        let mut bytes = buf.freeze();
        let mut consumed = 0;
        let decoded = cdr_decode(&mut bytes, &mut consumed).expect("decode");
        prop_assert_eq!(decoded, value);
    }
}

// ---------------------------------------------------------------------- //
// Loss models: observed rate matches the configured mean
// ---------------------------------------------------------------------- //

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn bernoulli_loss_rate_is_close_to_p(p in 0.0f64..0.5, seed in any::<u64>()) {
        let mut model = LossModel::bernoulli(p);
        let mut rng = SimRng::seeded(seed);
        let n = 20_000;
        let drops = (0..n).filter(|_| model.should_drop(&mut rng)).count();
        let observed = drops as f64 / n as f64;
        prop_assert!((observed - p).abs() < 0.03, "p={p} observed={observed}");
    }
}

// ---------------------------------------------------------------------- //
// End-to-end invariant: TCP delivers arbitrary data intact over a lossy
// network (exactly-once, in order).
// ---------------------------------------------------------------------- //

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn tcp_delivers_data_intact_under_loss(
        payload in proptest::collection::vec(any::<u8>(), 1..30_000),
        loss in 0.0f64..0.08,
        seed in any::<u64>(),
    ) {
        use padicotm::transport::{ByteStream, ByteStreamExt, TcpStack, TcpConn};
        use std::cell::RefCell;
        use std::rc::Rc;

        let mut spec = padicotm::simnet::NetworkSpec::ethernet_100();
        spec.loss = LossModel::bernoulli(loss);
        let mut p = padicotm::simnet::topology::pair_over(seed, spec);
        let sa = TcpStack::new(&mut p.world, p.a);
        let sb = TcpStack::new(&mut p.world, p.b);
        let server: Rc<RefCell<Option<TcpConn>>> = Rc::new(RefCell::new(None));
        let s2 = server.clone();
        sb.listen(1, move |_w, c| *s2.borrow_mut() = Some(c));
        let client = sa.connect(&mut p.world, p.network, p.b, 1);
        client.send_all(&mut p.world, &payload);
        client.close(&mut p.world);
        p.world.run();
        let server = server.borrow().clone().expect("accepted");
        let received = server.recv_all(&mut p.world);
        prop_assert_eq!(received, payload);
    }
}
