//! Randomized property tests on the core data structures and protocol
//! invariants of PadicoTM-RS.
//!
//! The build environment has no crates.io access, so instead of `proptest`
//! these use a small self-contained harness: each property draws many
//! random cases from the simulator's own deterministic [`SimRng`], so
//! failures are reproducible from the printed seed.

use bytes::Bytes;
use bytes::BytesMut;

use padicotm::middleware::{cdr_decode, cdr_encode, IdlValue};
use padicotm::simnet::{LossModel, SimDuration, SimRng, SimTime};
use padicotm::transport::compress::{compress, decompress};

/// Runs `check` on `cases` random cases drawn from a seeded generator.
fn for_random_cases(seed: u64, cases: usize, mut check: impl FnMut(&mut SimRng)) {
    let mut rng = SimRng::seeded(seed);
    for case in 0..cases {
        let mut case_rng = rng.fork();
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&mut case_rng)));
        if let Err(e) = result {
            // Recover the assertion text from the panic payload so the
            // summary names the actual failure, not `Any { .. }`.
            let msg = e
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| e.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic payload");
            panic!("property failed at seed {seed} case {case}: {msg}");
        }
    }
}

fn random_bytes(rng: &mut SimRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0, max_len as u64 + 1) as usize;
    (0..len).map(|_| rng.gen_range(0, 256) as u8).collect()
}

// ---------------------------------------------------------------------- //
// Virtual time arithmetic
// ---------------------------------------------------------------------- //

#[test]
fn time_addition_is_monotonic() {
    for_random_cases(101, 500, |rng| {
        let base = rng.gen_range(0, u64::MAX / 4);
        let d = rng.gen_range(0, u64::MAX / 4);
        let t = SimTime::from_nanos(base);
        let dur = SimDuration::from_nanos(d);
        assert!(t + dur >= t);
        assert_eq!((t + dur) - t, dur);
    });
}

#[test]
fn duration_sum_never_underflows() {
    for_random_cases(102, 500, |rng| {
        let a = rng.gen_range(0, 1_000_000_000);
        let b = rng.gen_range(0, 1_000_000_000);
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        // Saturating semantics: subtraction never panics, ordering holds.
        let diff = da - db;
        if a >= b {
            assert_eq!(diff.as_nanos(), a - b);
        } else {
            assert_eq!(diff, SimDuration::ZERO);
        }
    });
}

// ---------------------------------------------------------------------- //
// LZSS codec: lossless round-trip for arbitrary data
// ---------------------------------------------------------------------- //

#[test]
fn compression_roundtrips_arbitrary_bytes() {
    for_random_cases(103, 64, |rng| {
        let data = random_bytes(rng, 20_000);
        let compressed = compress(&data);
        assert_eq!(decompress(&compressed).unwrap(), data);
    });
}

#[test]
fn compression_roundtrips_repetitive_data() {
    for_random_cases(104, 64, |rng| {
        let byte = rng.gen_range(0, 256) as u8;
        let len = rng.gen_range(0, 50_000) as usize;
        let period = rng.gen_range(1, 64) as usize;
        let data: Vec<u8> = (0..len)
            .map(|i| byte.wrapping_add((i % period) as u8))
            .collect();
        let compressed = compress(&data);
        assert_eq!(decompress(&compressed).unwrap(), data);
    });
}

// ---------------------------------------------------------------------- //
// CDR marshalling round-trip for arbitrary IDL values
// ---------------------------------------------------------------------- //

fn random_idl_value(rng: &mut SimRng, depth: usize) -> IdlValue {
    let pick = if depth == 0 {
        rng.gen_range(0, 7)
    } else {
        rng.gen_range(0, 8)
    };
    match pick {
        0 => IdlValue::Void,
        1 => IdlValue::Bool(rng.gen_bool(0.5)),
        2 => IdlValue::Long(rng.gen_range(0, u32::MAX as u64 + 1) as u32 as i32),
        3 => IdlValue::LongLong(rng.next_u64() as i64),
        4 => {
            // Any finite double (NaN compares unequal, so avoid it).
            let mut f = f64::from_bits(rng.next_u64());
            if !f.is_finite() {
                f = rng.gen_unit() * 1e12 - 5e11;
            }
            IdlValue::Double(f)
        }
        5 => {
            const ALPHABET: &[u8] =
                b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ";
            let len = rng.gen_range(0, 41) as usize;
            let s: String = (0..len)
                .map(|_| ALPHABET[rng.gen_range(0, ALPHABET.len() as u64) as usize] as char)
                .collect();
            IdlValue::Str(s)
        }
        6 => IdlValue::Octets(Bytes::from(random_bytes(rng, 200))),
        _ => {
            let n = rng.gen_range(0, 6) as usize;
            IdlValue::Sequence((0..n).map(|_| random_idl_value(rng, depth - 1)).collect())
        }
    }
}

#[test]
fn cdr_roundtrips_arbitrary_idl_values() {
    for_random_cases(105, 128, |rng| {
        let value = random_idl_value(rng, 3);
        let mut buf = BytesMut::new();
        cdr_encode(&value, &mut buf);
        let mut bytes = buf.freeze();
        let mut consumed = 0;
        let decoded = cdr_decode(&mut bytes, &mut consumed).expect("decode");
        assert_eq!(decoded, value);
    });
}

// ---------------------------------------------------------------------- //
// Loss models: observed rate matches the configured mean
// ---------------------------------------------------------------------- //

#[test]
fn bernoulli_loss_rate_is_close_to_p() {
    for_random_cases(106, 16, |rng| {
        let p = rng.gen_unit() * 0.5;
        let mut model = LossModel::bernoulli(p);
        let mut draw_rng = rng.fork();
        let n = 20_000;
        let drops = (0..n).filter(|_| model.should_drop(&mut draw_rng)).count();
        let observed = drops as f64 / n as f64;
        assert!((observed - p).abs() < 0.03, "p={p} observed={observed}");
    });
}

// ---------------------------------------------------------------------- //
// Relay-fabric credit accounting: for random incast traffic in credit
// mode, credits are conserved (consumed == returned, never negative,
// pool restored), the queue bound holds, and delivery is lossless.
// ---------------------------------------------------------------------- //

#[test]
fn relay_credits_are_conserved_under_random_incast() {
    use padicotm::gridtopo::{BackpressureMode, GridTopology, RelayConfig, RelayFabric};
    use padicotm::simnet::{SimDuration, SimWorld};
    use std::cell::Cell;
    use std::rc::Rc;

    for_random_cases(108, 24, |rng| {
        let seed = rng.next_u64();
        let nodes_per_site = 2 + rng.gen_range(0, 3) as usize;
        let capacity = 2 + rng.gen_range(0, 12) as usize;
        let per_hop_us = 50 + rng.gen_range(0, 1000);
        let mut world = SimWorld::new(seed);
        let grid = GridTopology::two_sites(&mut world, nodes_per_site);
        let fabric = RelayFabric::new(
            grid.routes.clone(),
            RelayConfig {
                backpressure: BackpressureMode::Credit,
                queue_capacity: capacity,
                per_hop_latency: SimDuration::from_micros(per_hop_us),
                ..Default::default()
            },
        );
        for node in grid.all_nodes() {
            fabric.attach(&mut world, node);
        }
        let dst = grid.site(1).node(nodes_per_site - 1);
        let delivered = Rc::new(Cell::new(0u64));
        let d = delivered.clone();
        fabric.bind(&mut world, dst, 11, move |_w, _m| d.set(d.get() + 1));
        let mut sent = 0u64;
        for rank in 1..nodes_per_site {
            let src = grid.site(0).node(rank);
            for _ in 0..rng.gen_range(1, 40) {
                let size = 1 + rng.gen_range(0, 800) as usize;
                fabric
                    .send(&mut world, src, dst, 11, vec![3u8; size])
                    .unwrap();
                sent += 1;
            }
        }
        world.run();
        // Lossless: every frame delivered, none dropped, none parked.
        assert_eq!(delivered.get(), sent);
        assert_eq!(fabric.total_dropped(), 0);
        assert_eq!(fabric.parked_frames(), 0);
        for gw in [grid.site(0).gateway, grid.site(1).gateway] {
            let s = fabric.gateway_stats(gw);
            // Conservation: every consumed credit came back; the pool is
            // whole again; the queue never exceeded the advertised bound.
            assert_eq!(s.credits_consumed, s.credits_returned, "{s:?}");
            assert_eq!(fabric.outstanding_credits(gw), 0);
            assert_eq!(fabric.available_credits(gw), capacity);
            assert!(s.max_queue_depth <= capacity, "{s:?}");
            // Each frame through this gateway consumed exactly one credit.
            assert_eq!(s.credits_consumed, s.frames_relayed, "{s:?}");
        }
    });
}

// ---------------------------------------------------------------------- //
// Trunk stream credit windows: random writes/reads/half-closes keep the
// credit ledger conserved (granted + unreturned == consumed), the data
// intact and in order, and the receive buffer bounded by the window.
// ---------------------------------------------------------------------- //

#[test]
fn trunk_credits_match_consumption_across_half_close() {
    use padicotm::core::{TrunkFlowConfig, TrunkMux, TrunkStream};
    use padicotm::simnet::SimWorld;
    use padicotm::transport::{loopback_pair, ByteStream};
    use std::cell::RefCell;
    use std::rc::Rc;

    for_random_cases(109, 24, |rng| {
        let flow = TrunkFlowConfig {
            initial_window: (1 + rng.gen_range(0, 8) as usize) * 1024,
            credit_grant_threshold: 256,
            trunk_budget: 0,
        };
        let mut world = SimWorld::new(rng.next_u64());
        let node = world.add_node("n");
        let _ = node;
        let n = world.node_ids()[0];
        let (a, b) = loopback_pair(&world, n);
        let connector = TrunkMux::connector(Rc::new(a), Some(flow));
        let accepted: Rc<RefCell<Vec<TrunkStream>>> = Rc::new(RefCell::new(Vec::new()));
        let acc = accepted.clone();
        let _acceptor = TrunkMux::acceptor(Rc::new(b), Some(flow), move |_w, s| {
            acc.borrow_mut().push(s);
        });
        let tx = connector.open();
        // Random interleaving of sends, reads and one optional receiver
        // half-close; a counter byte-pattern detects any reorder or loss.
        let mut next_byte = 0u8;
        let mut model: Vec<u8> = Vec::new();
        let mut got: Vec<u8> = Vec::new();
        let mut receiver_closed = false;
        for _ in 0..rng.gen_range(5, 60) {
            match rng.gen_range(0, 4) {
                0 | 1 => {
                    let len = rng.gen_range(1, 4000) as usize;
                    let chunk: Vec<u8> = (0..len)
                        .map(|_| {
                            next_byte = next_byte.wrapping_add(1);
                            next_byte
                        })
                        .collect();
                    model.extend_from_slice(&chunk);
                    assert_eq!(tx.send(&mut world, &chunk), len, "send accepts all");
                }
                2 => {
                    world.run();
                    if let Some(rx) = accepted.borrow().first() {
                        got.extend(rx.recv(&mut world, rng.gen_range(1, 6000) as usize));
                    }
                }
                _ => {
                    // Half-close the receiver's write side: credits must
                    // keep flowing for what it consumes afterwards.
                    world.run();
                    if !receiver_closed {
                        if let Some(rx) = accepted.borrow().first() {
                            rx.close(&mut world);
                            receiver_closed = true;
                        }
                    }
                }
            }
        }
        // Drain everything.
        world.run();
        let rx = accepted.borrow().first().cloned();
        if let Some(rx) = rx {
            loop {
                let before = got.len();
                got.extend(rx.recv(&mut world, usize::MAX));
                world.run();
                if got.len() == before {
                    break;
                }
            }
            assert_eq!(got, model, "no loss, no reorder, no duplication");
            let r = rx.credit_stats();
            // Ledger conservation, even across the receiver's half-close:
            // everything consumed is either granted back or still batched.
            assert_eq!(
                r.credits_granted + r.unreturned_bytes as u64,
                r.bytes_consumed,
                "{r:?}"
            );
            assert_eq!(r.bytes_consumed, model.len() as u64);
            // The window bound held: the receive buffer never exceeded it.
            assert!(
                r.recv_high_water <= flow.initial_window,
                "window must bound occupancy: {r:?} vs {flow:?}"
            );
            let t = tx.credit_stats();
            // Sender-side conservation: window + wire-resident == initial
            // + credits received (never negative by construction).
            assert_eq!(t.parked_bytes, 0, "everything flushed: {t:?}");
            assert_eq!(
                t.send_window as u64 + model.len() as u64,
                flow.initial_window as u64 + t.credits_received,
                "{t:?}"
            );
        } else {
            assert!(model.is_empty(), "data sent but no stream accepted");
        }
    });
}

// ---------------------------------------------------------------------- //
// Hierarchical routing vs the flat oracle: for random star / ring /
// cluster-of-clusters grids — with randomly redundant (multi-gateway)
// sites — the two-level tables must agree with flat all-pairs Dijkstra on
// the reachability set and on every pair's additive cost (paths may
// differ where ties allow — costs never do), and every composed route
// must be a valid walk summing to its claimed cost.
// ---------------------------------------------------------------------- //

#[test]
fn hierarchical_routes_are_cost_equal_to_flat_dijkstra() {
    use padicotm::gridtopo::{link_cost, GridRoutes, GridTopology, RouteTable, SiteSpec};
    use padicotm::simnet::{NetworkSpec, SimWorld};

    for_random_cases(110, 40, |rng| {
        let mut world = SimWorld::new(rng.next_u64());
        let site = |rng: &mut SimRng, i: usize| {
            let gateways = 1 + rng.gen_range(0, 3) as usize;
            let nodes = gateways + rng.gen_range(0, 4) as usize;
            let spec = if rng.gen_bool(0.5) {
                SiteSpec::san_cluster(format!("s{i}"), nodes)
            } else {
                SiteSpec::lan_cluster(format!("s{i}"), nodes)
            };
            spec.with_gateways(gateways)
        };
        let n_sites = 3 + rng.gen_range(0, 4) as usize;
        let specs: Vec<SiteSpec> = (0..n_sites).map(|i| site(rng, i)).collect();
        let grid = match rng.gen_range(0, 3) {
            0 => GridTopology::star(&mut world, &specs, NetworkSpec::vthd_wan()),
            1 => GridTopology::ring(&mut world, &specs, NetworkSpec::vthd_wan()),
            _ => {
                let cut = 1 + rng.gen_range(0, specs.len() as u64 - 1) as usize;
                let regions = vec![specs[..cut].to_vec(), specs[cut..].to_vec()];
                GridTopology::cluster_of_clusters(
                    &mut world,
                    &regions,
                    NetworkSpec::vthd_wan(),
                    NetworkSpec::lossy_internet(),
                )
            }
        };
        let hier = match &grid.routes {
            GridRoutes::Hier(h) => h,
            other => panic!("builders must default to hierarchical routes, got {other:?}"),
        };
        let flat = RouteTable::compute(&world);
        let nodes = grid.all_nodes();
        for &a in &nodes {
            for &b in &nodes {
                assert_eq!(
                    flat.reachable(a, b),
                    hier.reachable(a, b),
                    "reachability of {a} -> {b}"
                );
                assert_eq!(flat.cost(a, b), hier.cost(a, b), "cost of {a} -> {b}");
                if let Some(route) = hier.route(a, b) {
                    let mut at = a;
                    let mut sum = 0;
                    for hop in &route.hops {
                        sum += link_cost(&world, hop.network);
                        at = hop.node;
                    }
                    assert_eq!(at, b, "composed route must end at the destination");
                    assert_eq!(Some(sum), hier.cost(a, b), "hop costs sum to the total");
                }
            }
        }
    });
}

// ---------------------------------------------------------------------- //
// Churn commutes: replaying a seeded flap schedule under shuffled
// orderings (per-element causality preserved, interleaving randomized)
// must pass the transient checker at every intermediate step of every
// ordering and land on the identical fixpoint table. Flaps only — site
// joins and leaves renumber sites, so their orderings are not comparable.
// ---------------------------------------------------------------------- //

#[test]
fn churn_replays_commute_and_stay_transient_safe_under_shuffling() {
    use padicotm::gridtopo::{inject_link_churn, replay_churn, GridTopology, SiteSpec};
    use padicotm::simnet::{NetworkSpec, SimWorld};

    for_random_cases(111, 12, |rng| {
        let world_seed = rng.next_u64();
        let n_sites = 3 + rng.gen_range(0, 3) as usize;
        let ring = rng.gen_bool(0.5);
        let build = |world: &mut SimWorld| {
            let specs: Vec<SiteSpec> = (0..n_sites)
                .map(|i| SiteSpec::san_cluster(format!("s{i}"), 3).with_gateways(2))
                .collect();
            if ring {
                GridTopology::ring(world, &specs, NetworkSpec::vthd_wan())
            } else {
                GridTopology::star(world, &specs, NetworkSpec::vthd_wan())
            }
        };
        let flaps = 2 + rng.gen_range(0, 6) as usize;
        let churn_seed = rng.next_u64();

        // Baseline ordering: transient-safe throughout, no intra-table
        // recomputes, and (all downs paired with ups) back to pristine.
        let mut world = SimWorld::new(world_seed);
        let mut grid = build(&mut world);
        let pristine = grid.routes.clone();
        let schedule = inject_link_churn(&grid, churn_seed, flaps);
        let replay = replay_churn(&world, &mut grid, &schedule).unwrap();
        assert_eq!(
            replay.violations,
            vec![],
            "baseline ordering must be transient-safe"
        );
        assert!(
            replay.stats.iter().all(|s| s.sites_recomputed == 0),
            "flap deltas never recompute an intra table"
        );
        let fixpoint = grid.routes.clone();
        assert_eq!(fixpoint, pristine, "paired flaps return to pristine");

        // Shuffled interleavings: flaps on distinct elements commute, so
        // every ordering must pass through only safe intermediate states
        // (which differ across orderings!) and reach the same fixpoint.
        for k in 0..3u64 {
            let mut world = SimWorld::new(world_seed);
            let mut grid = build(&mut world);
            let shuffled = schedule.shuffled(churn_seed.wrapping_add(k + 1));
            assert_eq!(
                shuffled.deltas.len(),
                schedule.deltas.len(),
                "shuffling permutes, never drops"
            );
            let replay = replay_churn(&world, &mut grid, &shuffled).unwrap();
            assert_eq!(
                replay.violations,
                vec![],
                "ordering {k} must be transient-safe"
            );
            assert_eq!(
                grid.routes, fixpoint,
                "ordering {k} must reach the identical fixpoint"
            );
        }
    });
}

// ---------------------------------------------------------------------- //
// End-to-end invariant: TCP delivers arbitrary data intact over a lossy
// network (exactly-once, in order).
// ---------------------------------------------------------------------- //

#[test]
fn tcp_delivers_data_intact_under_loss() {
    for_random_cases(107, 12, |rng| {
        use padicotm::transport::{ByteStream, ByteStreamExt, TcpConn, TcpStack};
        use std::cell::RefCell;
        use std::rc::Rc;

        let payload = {
            let mut p = random_bytes(rng, 30_000);
            if p.is_empty() {
                p.push(rng.gen_range(0, 256) as u8);
            }
            p
        };
        let loss = rng.gen_unit() * 0.08;
        let seed = rng.next_u64();

        let mut spec = padicotm::simnet::NetworkSpec::ethernet_100();
        spec.loss = LossModel::bernoulli(loss);
        let mut p = padicotm::simnet::topology::pair_over(seed, spec);
        let sa = TcpStack::new(&mut p.world, p.a);
        let sb = TcpStack::new(&mut p.world, p.b);
        let server: Rc<RefCell<Option<TcpConn>>> = Rc::new(RefCell::new(None));
        let s2 = server.clone();
        sb.listen(1, move |_w, c| *s2.borrow_mut() = Some(c));
        let client = sa.connect(&mut p.world, p.network, p.b, 1);
        client.send_all(&mut p.world, &payload);
        client.close(&mut p.world);
        p.world.run();
        let server = server.borrow().clone().expect("accepted");
        let received = server.recv_all(&mut p.world);
        assert_eq!(received, payload);
    });
}
