//! Randomized property tests on the core data structures and protocol
//! invariants of PadicoTM-RS.
//!
//! The build environment has no crates.io access, so instead of `proptest`
//! these use a small self-contained harness: each property draws many
//! random cases from the simulator's own deterministic [`SimRng`], so
//! failures are reproducible from the printed seed.

use bytes::Bytes;
use bytes::BytesMut;

use padicotm::middleware::{cdr_decode, cdr_encode, IdlValue};
use padicotm::simnet::{LossModel, SimDuration, SimRng, SimTime};
use padicotm::transport::compress::{compress, decompress};

/// Runs `check` on `cases` random cases drawn from a seeded generator.
fn for_random_cases(seed: u64, cases: usize, mut check: impl FnMut(&mut SimRng)) {
    let mut rng = SimRng::seeded(seed);
    for case in 0..cases {
        let mut case_rng = rng.fork();
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&mut case_rng)));
        if let Err(e) = result {
            // Recover the assertion text from the panic payload so the
            // summary names the actual failure, not `Any { .. }`.
            let msg = e
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| e.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic payload");
            panic!("property failed at seed {seed} case {case}: {msg}");
        }
    }
}

fn random_bytes(rng: &mut SimRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0, max_len as u64 + 1) as usize;
    (0..len).map(|_| rng.gen_range(0, 256) as u8).collect()
}

// ---------------------------------------------------------------------- //
// Virtual time arithmetic
// ---------------------------------------------------------------------- //

#[test]
fn time_addition_is_monotonic() {
    for_random_cases(101, 500, |rng| {
        let base = rng.gen_range(0, u64::MAX / 4);
        let d = rng.gen_range(0, u64::MAX / 4);
        let t = SimTime::from_nanos(base);
        let dur = SimDuration::from_nanos(d);
        assert!(t + dur >= t);
        assert_eq!((t + dur) - t, dur);
    });
}

#[test]
fn duration_sum_never_underflows() {
    for_random_cases(102, 500, |rng| {
        let a = rng.gen_range(0, 1_000_000_000);
        let b = rng.gen_range(0, 1_000_000_000);
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        // Saturating semantics: subtraction never panics, ordering holds.
        let diff = da - db;
        if a >= b {
            assert_eq!(diff.as_nanos(), a - b);
        } else {
            assert_eq!(diff, SimDuration::ZERO);
        }
    });
}

// ---------------------------------------------------------------------- //
// LZSS codec: lossless round-trip for arbitrary data
// ---------------------------------------------------------------------- //

#[test]
fn compression_roundtrips_arbitrary_bytes() {
    for_random_cases(103, 64, |rng| {
        let data = random_bytes(rng, 20_000);
        let compressed = compress(&data);
        assert_eq!(decompress(&compressed).unwrap(), data);
    });
}

#[test]
fn compression_roundtrips_repetitive_data() {
    for_random_cases(104, 64, |rng| {
        let byte = rng.gen_range(0, 256) as u8;
        let len = rng.gen_range(0, 50_000) as usize;
        let period = rng.gen_range(1, 64) as usize;
        let data: Vec<u8> = (0..len)
            .map(|i| byte.wrapping_add((i % period) as u8))
            .collect();
        let compressed = compress(&data);
        assert_eq!(decompress(&compressed).unwrap(), data);
    });
}

// ---------------------------------------------------------------------- //
// CDR marshalling round-trip for arbitrary IDL values
// ---------------------------------------------------------------------- //

fn random_idl_value(rng: &mut SimRng, depth: usize) -> IdlValue {
    let pick = if depth == 0 {
        rng.gen_range(0, 7)
    } else {
        rng.gen_range(0, 8)
    };
    match pick {
        0 => IdlValue::Void,
        1 => IdlValue::Bool(rng.gen_bool(0.5)),
        2 => IdlValue::Long(rng.gen_range(0, u32::MAX as u64 + 1) as u32 as i32),
        3 => IdlValue::LongLong(rng.next_u64() as i64),
        4 => {
            // Any finite double (NaN compares unequal, so avoid it).
            let mut f = f64::from_bits(rng.next_u64());
            if !f.is_finite() {
                f = rng.gen_unit() * 1e12 - 5e11;
            }
            IdlValue::Double(f)
        }
        5 => {
            const ALPHABET: &[u8] =
                b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ";
            let len = rng.gen_range(0, 41) as usize;
            let s: String = (0..len)
                .map(|_| ALPHABET[rng.gen_range(0, ALPHABET.len() as u64) as usize] as char)
                .collect();
            IdlValue::Str(s)
        }
        6 => IdlValue::Octets(Bytes::from(random_bytes(rng, 200))),
        _ => {
            let n = rng.gen_range(0, 6) as usize;
            IdlValue::Sequence((0..n).map(|_| random_idl_value(rng, depth - 1)).collect())
        }
    }
}

#[test]
fn cdr_roundtrips_arbitrary_idl_values() {
    for_random_cases(105, 128, |rng| {
        let value = random_idl_value(rng, 3);
        let mut buf = BytesMut::new();
        cdr_encode(&value, &mut buf);
        let mut bytes = buf.freeze();
        let mut consumed = 0;
        let decoded = cdr_decode(&mut bytes, &mut consumed).expect("decode");
        assert_eq!(decoded, value);
    });
}

// ---------------------------------------------------------------------- //
// Loss models: observed rate matches the configured mean
// ---------------------------------------------------------------------- //

#[test]
fn bernoulli_loss_rate_is_close_to_p() {
    for_random_cases(106, 16, |rng| {
        let p = rng.gen_unit() * 0.5;
        let mut model = LossModel::bernoulli(p);
        let mut draw_rng = rng.fork();
        let n = 20_000;
        let drops = (0..n).filter(|_| model.should_drop(&mut draw_rng)).count();
        let observed = drops as f64 / n as f64;
        assert!((observed - p).abs() < 0.03, "p={p} observed={observed}");
    });
}

// ---------------------------------------------------------------------- //
// End-to-end invariant: TCP delivers arbitrary data intact over a lossy
// network (exactly-once, in order).
// ---------------------------------------------------------------------- //

#[test]
fn tcp_delivers_data_intact_under_loss() {
    for_random_cases(107, 12, |rng| {
        use padicotm::transport::{ByteStream, ByteStreamExt, TcpConn, TcpStack};
        use std::cell::RefCell;
        use std::rc::Rc;

        let payload = {
            let mut p = random_bytes(rng, 30_000);
            if p.is_empty() {
                p.push(rng.gen_range(0, 256) as u8);
            }
            p
        };
        let loss = rng.gen_unit() * 0.08;
        let seed = rng.next_u64();

        let mut spec = padicotm::simnet::NetworkSpec::ethernet_100();
        spec.loss = LossModel::bernoulli(loss);
        let mut p = padicotm::simnet::topology::pair_over(seed, spec);
        let sa = TcpStack::new(&mut p.world, p.a);
        let sb = TcpStack::new(&mut p.world, p.b);
        let server: Rc<RefCell<Option<TcpConn>>> = Rc::new(RefCell::new(None));
        let s2 = server.clone();
        sb.listen(1, move |_w, c| *s2.borrow_mut() = Some(c));
        let client = sa.connect(&mut p.world, p.network, p.b, 1);
        client.send_all(&mut p.world, &payload);
        client.close(&mut p.world);
        p.world.run();
        let server = server.borrow().clone().expect("accepted");
        let received = server.recv_all(&mut p.world);
        assert_eq!(received, payload);
    });
}
