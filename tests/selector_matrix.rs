//! Table-driven coverage of the adapter selector: every `NetworkClass` ×
//! every `SelectorPreferences` combination, for both paradigms (VLink and
//! Circuit), against an explicitly-written expectation table.

use padicotm::core::{BackpressureMode, LinkDecision, SelectorPreferences, TopologyKb};
use padicotm::simnet::{topology, NetworkClass, NetworkSpec};

/// The network spec used to exercise each class.
fn spec_for(class: NetworkClass) -> NetworkSpec {
    match class {
        NetworkClass::Loopback => NetworkSpec::loopback(),
        NetworkClass::San => NetworkSpec::myrinet_2000(),
        NetworkClass::Lan => NetworkSpec::ethernet_100(),
        NetworkClass::Wan => NetworkSpec::vthd_wan(),
        NetworkClass::Internet => NetworkSpec::lossy_internet(),
    }
}

/// Every combination of the boolean preference knobs and both relay
/// backpressure modes. (`refuse_plaintext_relay` stays off: the strict
/// refusal is covered by its own `#[should_panic]` test in the selector;
/// here every combination must still *resolve*.)
fn all_preferences() -> Vec<SelectorPreferences> {
    let mut out = Vec::new();
    for parallel in [false, true] {
        for compression in [false, true] {
            for secure in [false, true] {
                for forbid_san in [false, true] {
                    for backpressure in [BackpressureMode::Drop, BackpressureMode::Credit] {
                        out.push(SelectorPreferences {
                            parallel_streams_on_wan: parallel,
                            parallel_stream_width: 4,
                            gateway_trunk_width: 8,
                            compression_on_slow_links: compression,
                            secure_inter_site: secure,
                            refuse_plaintext_relay: false,
                            relay_backpressure: backpressure,
                            gateway_trunk_budget: 0,
                            route_cache_capacity: 4096,
                            gateway_failover: false,
                            forbid_san,
                        });
                    }
                }
            }
        }
    }
    out
}

/// What `select_vlink` must produce for two distinct nodes whose only
/// shared network has the given class.
fn expected_vlink(
    class: NetworkClass,
    prefs: &SelectorPreferences,
    net: padicotm::simnet::NetworkId,
) -> LinkDecision {
    match class {
        // A SAN is preferred unless forbidden; with only the SAN shared and
        // the SAN forbidden, the selector falls back to TCP over it.
        NetworkClass::San => {
            if prefs.forbid_san {
                LinkDecision::Tcp(net)
            } else {
                LinkDecision::San(net)
            }
        }
        // Intra-site distributed networks always take plain TCP — never
        // secured ("if the network is secure, it is useless to cipher").
        NetworkClass::Lan | NetworkClass::Loopback => LinkDecision::Tcp(net),
        NetworkClass::Wan => {
            if prefs.secure_inter_site {
                LinkDecision::Secure(net)
            } else if prefs.parallel_streams_on_wan {
                LinkDecision::ParallelStreams(net, prefs.parallel_stream_width)
            } else {
                LinkDecision::Tcp(net)
            }
        }
        NetworkClass::Internet => {
            if prefs.secure_inter_site {
                LinkDecision::Secure(net)
            } else if prefs.compression_on_slow_links {
                LinkDecision::Adoc(net)
            } else {
                LinkDecision::Tcp(net)
            }
        }
    }
}

/// What `select_circuit` must produce: a straight SAN adapter where
/// allowed, otherwise the distributed-side method with San demoted to TCP.
fn expected_circuit(
    class: NetworkClass,
    prefs: &SelectorPreferences,
    net: padicotm::simnet::NetworkId,
) -> LinkDecision {
    match expected_vlink(class, prefs, net) {
        LinkDecision::San(n) if prefs.forbid_san => LinkDecision::Tcp(n),
        d => d,
    }
}

#[test]
fn every_class_and_preference_combination() {
    let classes = [
        NetworkClass::Loopback,
        NetworkClass::San,
        NetworkClass::Lan,
        NetworkClass::Wan,
        NetworkClass::Internet,
    ];
    for class in classes {
        for prefs in all_preferences() {
            let p = topology::pair_over(1, spec_for(class));
            let kb = TopologyKb::new(prefs.clone());
            let vd = kb.select_vlink(&p.world, p.a, p.b);
            let cd = kb.select_circuit(&p.world, p.a, p.b);
            assert_eq!(
                vd,
                expected_vlink(class, &prefs, p.network),
                "vlink decision for {class:?} with {prefs:?}"
            );
            assert_eq!(
                cd,
                expected_circuit(class, &prefs, p.network),
                "circuit decision for {class:?} with {prefs:?}"
            );
            // Same-node links are always loopback, regardless of class and
            // preferences.
            assert_eq!(kb.select_vlink(&p.world, p.a, p.a), LinkDecision::Loopback);
            assert_eq!(
                kb.select_circuit(&p.world, p.b, p.b),
                LinkDecision::Loopback
            );
        }
    }
}

#[test]
fn san_with_lan_fallback_honours_forbid_san_for_both_paradigms() {
    for prefs in all_preferences() {
        let p = topology::san_pair(1);
        let kb = TopologyKb::new(prefs.clone());
        let vd = kb.select_vlink(&p.world, p.a, p.b);
        let cd = kb.select_circuit(&p.world, p.a, p.b);
        if prefs.forbid_san {
            // With a real LAN available the fallback is TCP on the LAN.
            assert_eq!(vd, LinkDecision::Tcp(p.lan), "{prefs:?}");
            assert_eq!(cd, LinkDecision::Tcp(p.lan), "{prefs:?}");
        } else {
            assert_eq!(vd, LinkDecision::San(p.san), "{prefs:?}");
            assert_eq!(cd, LinkDecision::San(p.san), "{prefs:?}");
            assert!(cd.is_straight_for_parallel());
        }
    }
}

#[test]
fn relayed_resolution_covers_every_preference_combination() {
    use std::rc::Rc;
    for prefs in all_preferences() {
        let mut world = padicotm::simnet::SimWorld::new(9);
        let grid = padicotm::gridtopo::GridTopology::two_sites(&mut world, 2);
        let kb = TopologyKb::with_routes(prefs.clone(), Rc::new(grid.routes.clone()));
        let a1 = grid.site(0).node(1);
        let b1 = grid.site(1).node(1);
        let d = kb.select_vlink(&world, a1, b1);
        // A relayed decision under secure_inter_site is plaintext on the
        // WAN legs: it must be counted, never silent.
        assert_eq!(
            kb.plaintext_relay_events(),
            u64::from(prefs.secure_inter_site)
        );
        let LinkDecision::Relayed { via, network, hops } = d else {
            panic!("expected a relay for {prefs:?}, got {d:?}");
        };
        assert_eq!(hops, 3, "{prefs:?}");
        assert_eq!(via, grid.site(0).gateway, "{prefs:?}");
        // forbid_san is honoured on the first hop: the leg to the gateway
        // uses the site LAN instead of the forbidden SAN.
        let class = world.network(network).spec.class;
        if prefs.forbid_san {
            assert_eq!(class, NetworkClass::Lan, "{prefs:?}");
        } else {
            assert_eq!(class, NetworkClass::San, "{prefs:?}");
        }
        assert_eq!(kb.select_circuit(&world, a1, b1), d, "{prefs:?}");
    }
}
