//! Integration tests spanning every crate: full PadicoTM-RS stacks running
//! realistic multi-middleware scenarios end to end.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use padicotm::middleware::{Federate, JavaServerSocket, JavaSocket, RtiGateway};
use padicotm::prelude::*;

fn testbed(seed: u64) -> (SimWorld, Vec<PadicoRuntime>, Vec<NodeId>) {
    let p = simnet::topology::san_pair(seed);
    let mut world = p.world;
    let nodes = vec![p.a, p.b];
    let rts = runtimes_for_cluster(&mut world, p.san, &nodes, SelectorPreferences::default());
    (world, rts, nodes)
}

#[test]
fn four_middleware_systems_coexist_on_one_pair_of_nodes() {
    let (mut world, rts, nodes) = testbed(1);

    // 1. MPI over Circuit.
    let c0 = rts[0].circuit_create(&mut world, nodes.clone(), 100);
    let c1 = rts[1].circuit_create(&mut world, nodes.clone(), 100);
    let m0 = MpiComm::new(&mut world, c0);
    let m1 = MpiComm::new(&mut world, c1);
    let mpi_ok = Rc::new(Cell::new(false));
    let ok = mpi_ok.clone();
    m1.recv(&mut world, Some(0), Some(9), move |_w, msg| {
        assert_eq!(msg.data, b"mpi data");
        ok.set(true);
    });
    m0.send(&mut world, 1, 9, b"mpi data");

    // 2. CORBA over VLink.
    let orb_server = Orb::new(rts[1].clone(), OrbImpl::OmniOrb4);
    orb_server.register_servant("echo", |_w, _op, arg| arg);
    orb_server.activate(&mut world, 200);
    let orb_client = Orb::new(rts[0].clone(), OrbImpl::OmniOrb4);
    let objref = orb_client.object_ref(nodes[1], 200, "echo");
    let corba_ok = Rc::new(Cell::new(false));
    let ok = corba_ok.clone();
    orb_client.invoke(
        &mut world,
        &objref,
        "id",
        IdlValue::Long(7),
        move |_w, r| {
            assert_eq!(r, IdlValue::Long(7));
            ok.set(true);
        },
    );

    // 3. SOAP monitoring.
    let soap_server = SoapEndpoint::new(rts[1].clone());
    soap_server.serve(&mut world, 300, "status", |_w, _c| {
        SoapCall::new("statusResponse").param("state", "running")
    });
    let soap_client = SoapEndpoint::new(rts[0].clone());
    let soap_ok = Rc::new(Cell::new(false));
    let ok = soap_ok.clone();
    soap_client.call(
        &mut world,
        nodes[1],
        300,
        SoapCall::new("status"),
        move |_w, r| {
            assert_eq!(r.get("state"), Some("running"));
            ok.set(true);
        },
    );

    // 4. Java sockets.
    JavaServerSocket::bind(&mut world, &rts[1], 400, |_w, sock| {
        let s = sock.clone();
        sock.on_data(move |world, data| {
            s.write(world, &data); // echo
        });
    });
    let jsock = JavaSocket::connect(&mut world, &rts[0], nodes[1], 400);
    let java_ok = Rc::new(Cell::new(false));
    let ok = java_ok.clone();
    jsock.on_data(move |_w, data| {
        assert_eq!(data, b"from the JVM");
        ok.set(true);
    });
    jsock.write(&mut world, b"from the JVM");

    world.run();
    assert!(mpi_ok.get(), "MPI exchange completed");
    assert!(corba_ok.get(), "CORBA invocation completed");
    assert!(soap_ok.get(), "SOAP call completed");
    assert!(java_ok.get(), "Java socket echo completed");

    // The arbitration layer on the server node served both subsystems.
    let stats = rts[1].netaccess().stats();
    assert!(stats.madio_events > 0, "SAN traffic flowed through MadIO");
}

#[test]
fn mpi_collectives_across_a_two_cluster_grid() {
    // 3 + 3 nodes over a WAN: the same Circuit (and MPI communicator) spans
    // both clusters with mixed adapters.
    let grid = simnet::topology::two_clusters_over_wan(3, 3);
    let mut world = grid.world;
    let all: Vec<NodeId> = grid
        .cluster_a
        .nodes
        .iter()
        .chain(grid.cluster_b.nodes.iter())
        .copied()
        .collect();
    let mut rts = Vec::new();
    for &n in &grid.cluster_a.nodes {
        rts.push(PadicoRuntime::new(
            &mut world,
            n,
            Some((grid.cluster_a.san.unwrap(), grid.cluster_a.nodes.clone())),
            SelectorPreferences::default(),
        ));
    }
    for &n in &grid.cluster_b.nodes {
        rts.push(PadicoRuntime::new(
            &mut world,
            n,
            Some((grid.cluster_b.san.unwrap(), grid.cluster_b.nodes.clone())),
            SelectorPreferences::default(),
        ));
    }
    let comms: Vec<MpiComm> = rts
        .iter()
        .map(|rt| {
            let c = rt.circuit_create(&mut world, all.clone(), 500);
            MpiComm::new(&mut world, c)
        })
        .collect();

    let results = Rc::new(RefCell::new(vec![0.0; comms.len()]));
    for (i, comm) in comms.iter().enumerate() {
        let r = results.clone();
        comm.allreduce_sum(&mut world, 1.0, move |_w, total| r.borrow_mut()[i] = total);
    }
    world.run();
    for (i, v) in results.borrow().iter().enumerate() {
        assert_eq!(*v, 6.0, "rank {i} must see the grid-wide sum");
    }
}

#[test]
fn corba_between_clusters_uses_wan_methods_transparently() {
    let grid = simnet::topology::two_clusters_over_wan(5, 2);
    let mut world = grid.world;
    let a0 = grid.cluster_a.node(0);
    let b0 = grid.cluster_b.node(0);
    let rt_a = PadicoRuntime::new(
        &mut world,
        a0,
        Some((grid.cluster_a.san.unwrap(), grid.cluster_a.nodes.clone())),
        SelectorPreferences::default(),
    );
    let rt_b = PadicoRuntime::new(
        &mut world,
        b0,
        Some((grid.cluster_b.san.unwrap(), grid.cluster_b.nodes.clone())),
        SelectorPreferences::default(),
    );
    // The selector must pick a WAN method for the inter-cluster link.
    assert!(matches!(
        rt_a.vlink_decision(&world, b0),
        LinkDecision::ParallelStreams(_, _)
    ));
    let server = Orb::new(rt_b, OrbImpl::OmniOrb3);
    server.register_servant("store", |_w, _op, arg| match arg {
        IdlValue::Octets(b) => IdlValue::Long(b.len() as i32),
        _ => IdlValue::Void,
    });
    server.activate(&mut world, 800);
    let client = Orb::new(rt_a, OrbImpl::OmniOrb3);
    let objref = client.object_ref(b0, 800, "store");
    let got = Rc::new(Cell::new(0i32));
    let g = got.clone();
    client.invoke(
        &mut world,
        &objref,
        "put",
        IdlValue::Octets(vec![3u8; 500_000].into()),
        move |_w, r| {
            if let IdlValue::Long(n) = r {
                g.set(n);
            }
        },
    );
    world.run();
    assert_eq!(got.get(), 500_000);
}

#[test]
fn hla_federation_with_mpi_compute_nodes() {
    let (mut world, rts, nodes) = testbed(3);
    let gw = RtiGateway::new(&mut world, &rts[0], 900);
    let fed = Federate::join(&mut world, &rts[1], nodes[0], 900, "simulator");
    world.run();
    assert_eq!(gw.federate_count(), 1);
    fed.enable_time_regulation(&mut world);
    let granted = Rc::new(Cell::new(0.0));
    let g = granted.clone();
    fed.on_grant(move |_w, t| g.set(t));
    fed.request_time_advance(&mut world, 42.0);
    world.run();
    assert_eq!(granted.get(), 42.0);
}

#[test]
fn fairness_policy_affects_dispatch_mix() {
    let (mut world, rts, nodes) = testbed(4);
    rts[1].netaccess().set_policy(PollPolicy::favour_sysio(4));
    assert_eq!(rts[1].netaccess().policy().sysio_weight, 4);
    // Traffic on both subsystems still flows correctly after the change.
    let c0 = rts[0].circuit_create(&mut world, nodes.clone(), 110);
    let c1 = rts[1].circuit_create(&mut world, nodes.clone(), 110);
    let got = Rc::new(Cell::new(false));
    let g = got.clone();
    c1.set_message_callback(move |_w, _m| g.set(true));
    c0.send_bytes(&mut world, 1, &b"after policy change"[..]);
    world.run();
    assert!(got.get());
}
