//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build container cannot reach crates.io, so this crate implements the
//! tiny slice of the criterion API the `padico-bench` benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Each benchmark runs
//! `sample_size` timed samples and prints mean/min/max wall-clock times.

#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iterations: 0,
            };
            f(&mut b);
            if b.iterations > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iterations as f64);
            }
        }
        if samples.is_empty() {
            println!("  {id}: no samples");
            return self;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "  {id}: mean {:.3} ms  min {:.3} ms  max {:.3} ms  ({} samples)",
            mean * 1e3,
            min * 1e3,
            max * 1e3,
            samples.len()
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timer handle passed to the closure of [`BenchmarkGroup::bench_function`].
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times repeated runs of `f`.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

/// Opaque value barrier (best-effort without compiler support).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, criterion style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; ignore them.
            let _args: Vec<String> = std::env::args().collect();
            $( $group(); )+
        }
    };
}
