//! The datapath throughput microbench: how fast the *simulator host* moves
//! stream payload through each datapath, in wall-clock MB/s.
//!
//! The paper's stream emulation must itself be cheap for grid middleware to
//! reach hardware speed; in this reproduction the analogous property is
//! that the simulated datapaths move payload bytes through the host with as
//! few copies as possible. This bench pushes a fixed payload through every
//! stream datapath (loopback, framed transform, parallel streams, a 3-hop
//! relayed grid path, a stream over MadIO) and reports:
//!
//! * `wall_mb_s` — payload bytes per *host* second (the zero-copy metric);
//! * `virtual_mb_s` — payload bytes per *simulated* second (the protocol
//!   metric, unchanged by host-side copy elimination except on the relayed
//!   path, where gateway trunks also change the protocol behaviour).
//!
//! `BENCH_datapath.json` records both next to the baseline wall-clock
//! numbers measured on the pre-SegBuf tree (commit `8378637`), so the win
//! is machine-readable.

use std::cell::Cell;
use std::rc::Rc;
use std::time::Instant;

use gridtopo::{GridTopology, SiteSpec};
use padico_core::{runtimes_for_grid, SelectorPreferences, VLink, VLinkEvent};
use simnet::{topology, NetworkSpec, SimWorld};
use transport::{
    adoc_over, loopback_pair, AdocConfig, ByteStream, ByteStreamExt, ParallelStream,
    ParallelStreamConfig, TcpStack,
};

/// One datapath measurement.
#[derive(Debug, Clone)]
pub struct DatapathResult {
    /// Scenario label.
    pub path: &'static str,
    /// Payload bytes pushed end to end.
    pub bytes: usize,
    /// Host milliseconds for the whole simulated transfer (best of runs).
    pub wall_ms: f64,
    /// Payload bytes per host second, in MB/s.
    pub wall_mb_s: f64,
    /// Payload bytes per simulated second, in MB/s.
    pub virtual_mb_s: f64,
    /// Simulator events executed per *host* second in the best run.
    pub events_per_sec: f64,
}

/// Baseline wall-clock MB/s of each scenario measured on the pre-SegBuf
/// tree (per-byte `VecDeque<u8>` buffering, per-stream gateway legs),
/// with the same payload sizes as [`datapath_sweep`]. `None` when the
/// scenario had no baseline equivalent.
pub fn baseline_wall_mb_s(path: &str) -> Option<f64> {
    match path {
        "loopback" => Some(574.7),
        "framed-adoc" => Some(252.7),
        "tcp-lan" => Some(207.8),
        "parallel-x4" => Some(113.0),
        "madio-stream" => Some(195.3),
        "relayed-3hop" => Some(57.3),
        _ => None,
    }
}

fn run_best_of<F: FnMut() -> (f64, f64, f64)>(mut f: F, runs: usize) -> (f64, f64, f64) {
    let mut best = (f64::INFINITY, 0.0, 0.0);
    for _ in 0..runs {
        let (wall_ms, virt, eps) = f();
        if wall_ms < best.0 {
            best = (wall_ms, virt, eps);
        }
    }
    best
}

fn payload(bytes: usize) -> Vec<u8> {
    // Mildly structured but incompressible-ish payload so AdOC's raw path
    // is representative.
    (0..bytes).map(|i| (i * 131 + i / 7) as u8).collect()
}

/// Drives `tx` -> `rx` until `bytes` have been read on `rx`, returning
/// (host ms, virtual MB/s).
fn drive(
    world: &mut SimWorld,
    tx: &dyn ByteStream,
    rx: Rc<dyn ByteStream>,
    data: &[u8],
) -> (f64, f64, f64) {
    let received = Rc::new(Cell::new(0usize));
    let r = received.clone();
    let rx2 = rx.clone();
    rx.set_readable_callback(Box::new(move |world| loop {
        let chunk = rx2.recv_bytes(world, usize::MAX);
        if chunk.is_empty() {
            break;
        }
        r.set(r.get() + chunk.len());
    }));
    let bytes = data.len();
    let vstart = world.now();
    let events0 = world.stats.events_executed;
    let hstart = Instant::now();
    tx.send_all(world, data);
    let rr = received.clone();
    world.run_while(|| rr.get() < bytes);
    let wall_ms = hstart.elapsed().as_secs_f64() * 1e3;
    assert_eq!(received.get(), bytes, "transfer stalled short");
    let vsecs = world.now().since(vstart).as_secs_f64();
    let eps = (world.stats.events_executed - events0) as f64 / (wall_ms / 1e3).max(1e-9);
    (wall_ms, bytes as f64 / vsecs / 1e6, eps)
}

/// 1 MiB through an intra-node loopback pair.
pub fn bench_loopback(bytes: usize, runs: usize) -> DatapathResult {
    let data = payload(bytes);
    let (wall_ms, virt, eps) = run_best_of(
        || {
            let mut world = SimWorld::new(7);
            let n = world.add_node("n");
            let (a, b) = loopback_pair(&world, n);
            drive(&mut world, &a, Rc::new(b), &data)
        },
        runs,
    );
    result("loopback", bytes, wall_ms, virt, eps)
}

/// 1 MiB through the block-transform (framed) engine over loopback.
pub fn bench_framed(bytes: usize, runs: usize) -> DatapathResult {
    let data = payload(bytes);
    let (wall_ms, virt, eps) = run_best_of(
        || {
            let mut world = SimWorld::new(7);
            let n = world.add_node("n");
            let (a, b) = loopback_pair(&world, n);
            let ta = adoc_over(&mut world, Box::new(a), AdocConfig::default());
            let tb = adoc_over(&mut world, Box::new(b), AdocConfig::default());
            drive(&mut world, &ta, Rc::new(tb), &data)
        },
        runs,
    );
    result("framed-adoc", bytes, wall_ms, virt, eps)
}

/// 1 MiB through plain TCP on a 100 Mb/s LAN.
pub fn bench_tcp(bytes: usize, runs: usize) -> DatapathResult {
    let data = payload(bytes);
    let (wall_ms, virt, eps) = run_best_of(
        || {
            let mut p = topology::pair_over(7, NetworkSpec::ethernet_100());
            let sa = TcpStack::new(&mut p.world, p.a);
            let sb = TcpStack::new(&mut p.world, p.b);
            let server: Rc<std::cell::RefCell<Option<transport::TcpConn>>> =
                Rc::new(std::cell::RefCell::new(None));
            let s2 = server.clone();
            sb.listen(80, move |_w, c| *s2.borrow_mut() = Some(c));
            let client = sa.connect(&mut p.world, p.network, p.b, 80);
            p.world.run();
            let server = server.borrow().clone().unwrap();
            drive(&mut p.world, &client, Rc::new(server), &data)
        },
        runs,
    );
    result("tcp-lan", bytes, wall_ms, virt, eps)
}

/// 1 MiB through a 4-wide Parallel Streams bundle on a 100 Mb/s LAN.
pub fn bench_parallel(bytes: usize, runs: usize) -> DatapathResult {
    let data = payload(bytes);
    let (wall_ms, virt, eps) = run_best_of(
        || {
            let cfg = ParallelStreamConfig {
                n_streams: 4,
                chunk_size: 16 * 1024,
            };
            let mut p = topology::pair_over(7, NetworkSpec::ethernet_100());
            let sa = TcpStack::new(&mut p.world, p.a);
            let sb = TcpStack::new(&mut p.world, p.b);
            let server: Rc<std::cell::RefCell<Option<ParallelStream>>> =
                Rc::new(std::cell::RefCell::new(None));
            let s2 = server.clone();
            ParallelStream::listen(&mut p.world, &sb, 2811, cfg.clone(), move |_w, ps| {
                *s2.borrow_mut() = Some(ps);
            });
            let client = ParallelStream::connect(&mut p.world, &sa, p.network, p.b, 2811, cfg);
            p.world.run();
            let server = server.borrow().clone().unwrap();
            drive(&mut p.world, &client, Rc::new(server), &data)
        },
        runs,
    );
    result("parallel-x4", bytes, wall_ms, virt, eps)
}

/// 1 MiB through a stream over MadIO messages on a Myrinet SAN.
pub fn bench_madio_stream(bytes: usize, runs: usize) -> DatapathResult {
    let data = payload(bytes);
    let (wall_ms, virt, eps) = run_best_of(
        || {
            let p = topology::san_pair(7);
            let mut world = p.world;
            let nodes = vec![p.a, p.b];
            let rts = padico_core::runtimes_for_cluster(
                &mut world,
                p.san,
                &nodes,
                SelectorPreferences::default(),
            );
            let server: Rc<std::cell::RefCell<Option<VLink>>> =
                Rc::new(std::cell::RefCell::new(None));
            let s2 = server.clone();
            rts[1].vlink_listen(&mut world, 100, move |_w, v| *s2.borrow_mut() = Some(v));
            let client = rts[0].vlink_connect(&mut world, nodes[1], 100);
            world.run();
            let server = server.borrow().clone().unwrap();
            drive_vlinks(&mut world, &client, &server, &data)
        },
        runs,
    );
    result("madio-stream", bytes, wall_ms, virt, eps)
}

/// 1 MiB through a relayed VLink across a 3-hop gateway path (two
/// gateway-isolated SAN sites over a VTHD-class backbone).
pub fn bench_relayed(bytes: usize, runs: usize) -> DatapathResult {
    let data = payload(bytes);
    let (wall_ms, virt, eps) = run_best_of(
        || {
            let mut world = SimWorld::new(2024);
            let specs = [
                SiteSpec::san_cluster("s0", 3),
                SiteSpec::san_cluster("s1", 3),
            ];
            let grid = GridTopology::star(&mut world, &specs, NetworkSpec::vthd_wan());
            let (rts, _proxies) =
                runtimes_for_grid(&mut world, &grid, SelectorPreferences::default());
            let dst = grid.site(1).node(1);
            let src_rt = rts[1].clone();
            let dst_rt = rts[grid.site(0).len() + 1].clone();
            // Let the grid (gateway trunks, listeners) come up first.
            world.run();
            let server: Rc<std::cell::RefCell<Option<VLink>>> =
                Rc::new(std::cell::RefCell::new(None));
            let s2 = server.clone();
            dst_rt.vlink_listen(&mut world, 700, move |_w, v| *s2.borrow_mut() = Some(v));
            let client = src_rt.vlink_connect(&mut world, dst, 700);
            let received = Rc::new(Cell::new(0usize));
            let r = received.clone();
            let srv = server.clone();
            let installed = Rc::new(Cell::new(false));
            let inst = installed.clone();
            let vstart = world.now();
            let events0 = world.stats.events_executed;
            let hstart = Instant::now();
            client.post_write(&mut world, &data);
            let bytes = data.len();
            let rr = received.clone();
            world.run_while(|| {
                if !inst.get() {
                    if let Some(v) = srv.borrow().clone() {
                        inst.set(true);
                        let v2 = v.clone();
                        let r2 = r.clone();
                        v.set_handler(move |world, ev| {
                            if ev == VLinkEvent::Readable {
                                r2.set(r2.get() + v2.read_now(world, usize::MAX).len());
                            }
                        });
                    }
                }
                rr.get() < bytes
            });
            let wall_ms = hstart.elapsed().as_secs_f64() * 1e3;
            assert_eq!(received.get(), bytes, "relayed transfer stalled short");
            let vsecs = world.now().since(vstart).as_secs_f64();
            let eps = (world.stats.events_executed - events0) as f64 / (wall_ms / 1e3).max(1e-9);
            (wall_ms, bytes as f64 / vsecs / 1e6, eps)
        },
        runs,
    );
    result("relayed-3hop", bytes, wall_ms, virt, eps)
}

fn drive_vlinks(world: &mut SimWorld, tx: &VLink, rx: &VLink, data: &[u8]) -> (f64, f64, f64) {
    let received = Rc::new(Cell::new(0usize));
    let r = received.clone();
    let rx2 = rx.clone();
    rx.set_handler(move |world, ev| {
        if ev == VLinkEvent::Readable {
            r.set(r.get() + rx2.read_now(world, usize::MAX).len());
        }
    });
    let bytes = data.len();
    let vstart = world.now();
    let events0 = world.stats.events_executed;
    let hstart = Instant::now();
    tx.post_write(world, data);
    let rr = received.clone();
    world.run_while(|| rr.get() < bytes);
    let wall_ms = hstart.elapsed().as_secs_f64() * 1e3;
    assert_eq!(received.get(), bytes, "transfer stalled short");
    let vsecs = world.now().since(vstart).as_secs_f64();
    let eps = (world.stats.events_executed - events0) as f64 / (wall_ms / 1e3).max(1e-9);
    (wall_ms, bytes as f64 / vsecs / 1e6, eps)
}

fn result(
    path: &'static str,
    bytes: usize,
    wall_ms: f64,
    virtual_mb_s: f64,
    events_per_sec: f64,
) -> DatapathResult {
    DatapathResult {
        path,
        bytes,
        wall_ms,
        wall_mb_s: bytes as f64 / (wall_ms / 1e3) / 1e6,
        virtual_mb_s,
        events_per_sec,
    }
}

/// The default sweep: every datapath at `bytes` payload, best of `runs`.
pub fn datapath_sweep(bytes: usize, runs: usize) -> Vec<DatapathResult> {
    vec![
        bench_loopback(bytes, runs),
        bench_framed(bytes, runs),
        bench_tcp(bytes, runs),
        bench_parallel(bytes, runs),
        bench_madio_stream(bytes, runs),
        bench_relayed(bytes, runs),
    ]
}

/// Renders the results as a machine-readable JSON document.
pub fn datapath_json(results: &[DatapathResult]) -> String {
    let mut s = String::from("{\n  \"experiment\": \"datapath\",\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let baseline = baseline_wall_mb_s(r.path);
        s.push_str(&format!(
            concat!(
                "    {{\"path\": \"{}\", \"bytes\": {}, \"wall_ms\": {:.3}, ",
                "\"wall_mb_s\": {:.2}, \"baseline_wall_mb_s\": {}, \"speedup\": {}, ",
                "\"virtual_mb_s\": {:.4}, \"events_per_sec\": {:.0}}}{}\n"
            ),
            r.path,
            r.bytes,
            r.wall_ms,
            r.wall_mb_s,
            baseline
                .map(|b| format!("{b:.2}"))
                .unwrap_or_else(|| "null".to_string()),
            baseline
                .map(|b| format!("{:.2}", r.wall_mb_s / b))
                .unwrap_or_else(|| "null".to_string()),
            r.virtual_mb_s,
            r.events_per_sec,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Writes `BENCH_datapath.json` into the current directory.
pub fn write_datapath_json(results: &[DatapathResult]) -> std::io::Result<String> {
    let path = "BENCH_datapath.json".to_string();
    std::fs::write(&path, datapath_json(results))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_covers_every_path() {
        let results = datapath_sweep(64 * 1024, 1);
        assert_eq!(results.len(), 6);
        for r in &results {
            assert_eq!(r.bytes, 64 * 1024, "{r:?}");
            assert!(r.wall_mb_s > 0.0, "{r:?}");
            assert!(r.virtual_mb_s > 0.0, "{r:?}");
        }
        let json = datapath_json(&results);
        assert!(json.contains("\"experiment\": \"datapath\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
