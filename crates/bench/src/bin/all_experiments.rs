//! Runs every experiment and prints the full report (used to fill
//! EXPERIMENTS.md).

use padico_bench::*;

fn main() {
    println!("==================== Table 1 ====================");
    for p in table1() {
        println!(
            "{:<28} latency {:>8.2} us   max bandwidth {:>8.1} MB/s",
            p.stack.name(),
            p.latency_us,
            p.max_bandwidth_mb_s()
        );
    }
    println!();
    println!("==================== Figure 3 ====================");
    let sizes = figure3_sizes();
    print!("{:<28}", "stack \\ size");
    for s in &sizes {
        print!("{:>10}", human_size(*s));
    }
    println!();
    for p in figure3(&sizes) {
        print!("{:<28}", p.stack.name());
        for m in &p.points {
            print!("{:>10.1}", m.bandwidth_mb_s());
        }
        println!();
    }
    println!();
    println!("==================== VTHD WAN ====================");
    let w = wan_vthd(16_000_000, 4);
    println!(
        "single {:.1} MB/s | parallel({}) {:.1} MB/s | latency {:.1} ms",
        w.single_stream_mb_s, w.streams, w.parallel_streams_mb_s, w.latency_ms
    );
    println!();
    println!("==================== VRP lossy link ====================");
    let v = vrp_lossy_link(2_000_000, 0.10);
    println!(
        "TCP {:.0} KB/s | VRP {:.0} KB/s | speedup {:.2}x | delivered {:.3}",
        v.tcp_kb_s,
        v.vrp_kb_s,
        v.speedup(),
        v.delivered_fraction
    );
    println!();
    println!("==================== MadIO overhead ====================");
    let m = madio_overhead();
    println!(
        "madeleine {:.3} us | madio {:.3} us | overhead {:.3} us",
        m.baseline_us,
        m.layered_us,
        m.overhead_us()
    );
    println!();
    println!("==================== MPICH overhead ====================");
    let m = mpich_overhead();
    println!(
        "standalone {:.2} us | inside PadicoTM {:.2} us | overhead {:.2} us",
        m.baseline_us,
        m.layered_us,
        m.overhead_us()
    );
    println!();
    println!("==================== Coexistence ====================");
    let c = coexistence(200, 100);
    println!(
        "mpi {} | corba {} | madio events {} | sysio events {}",
        c.mpi_messages, c.corba_requests, c.madio_events, c.sysio_events
    );
    println!();
    println!("==================== Adapter selection ====================");
    for obs in adapter_selection() {
        println!(
            "{:<32} VLink: {:<44} Circuit: {}",
            obs.pair, obs.vlink_decision, obs.circuit_decision
        );
    }
    println!();
    println!("==================== Multi-site grid ====================");
    let results = multi_site_sweep();
    for r in &results {
        println!(
            "{} sites ({}) over {:<16} hops {} | frames {}/{} (relayed {}, dropped {}) | first {} ms | stream {:.2} MB/s",
            r.sites,
            r.layout.label(),
            r.backbone,
            r.hops,
            r.frames_delivered,
            r.frames_sent,
            r.frames_relayed,
            r.frames_dropped,
            r.first_frame_ms
                .map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "n/a".to_string()),
            r.stream_goodput_mb_s,
        );
    }
    println!();
    println!("==================== Incast backpressure ====================");
    let incast = incast_sweep();
    for r in &incast {
        println!(
            "{:>2} senders [{:<6}] {}/{} frames | dropped {} retx {} rounds {} | {:.2} MB/s | stall {:.2} ms/sender",
            r.senders,
            r.mode.label(),
            r.frames_delivered,
            r.frames_total,
            r.frames_dropped,
            r.retransmissions,
            r.rounds,
            r.goodput_mb_s,
            r.sender_stall_ms,
        );
    }
    let failover = failover_sweep();
    for r in &failover {
        println!(
            "{:>2} senders failover | killed at {} B | recovery {} | migrated {} | \
             {:.2} MB/s vs {:.2} baseline | completed: {}",
            r.senders,
            r.killed_at_bytes,
            r.recovery_ms
                .map(|v| format!("{v:.2} ms"))
                .unwrap_or_else(|| "n/a".to_string()),
            r.migrated_connections,
            r.goodput_mb_s,
            r.baseline_goodput_mb_s,
            r.completed,
        );
    }
    let churn = padico_bench::churn_sweep();
    for r in &churn {
        println!(
            "{:>2} sites churn | {} deltas ({} incremental, {} full) | \
             reconverge {:.3}/{:.3} ms avg/max | {} disrupted | {} violations | \
             admit {:.2} ms drain {:.2} ms | exchanges ok: {}",
            r.sites,
            r.steps,
            r.delta_reconvergences,
            r.full_recomputes_during_churn,
            r.reconverge_ms_avg,
            r.reconverge_ms_max,
            r.pairs_disrupted_max,
            r.transient_violations,
            r.admit_ms,
            r.drain_ms,
            r.exchanges_ok,
        );
    }
    let scale = padico_bench::scale_run(&padico_bench::ScaleConfig::hundred_k());
    println!(
        "scale | {} nodes / {} shards | {:.0} events/s | digest {}",
        scale.nodes, scale.shards, scale.events_per_sec, scale.digest,
    );
    use padico_bench::fullstack::{
        compare_windows, mirror_equivalence, threads_table, FullStackReport, MirrorConfig,
        RingConfig,
    };
    let equivalence = mirror_equivalence(&MirrorConfig::smoke());
    println!(
        "fullstack equivalence | identical: {} | {} rounds | {} crossed",
        equivalence.identical, equivalence.rounds, equivalence.frames_crossed,
    );
    let hundred_k = RingConfig::hundred_k();
    let (ring_global, ring_per_trunk) = compare_windows(&hundred_k);
    println!(
        "fullstack ring | {} nodes | global {} rounds {:.0} ev/s | per-trunk {} rounds {:.0} ev/s",
        ring_global.nodes,
        ring_global.rounds,
        ring_global.events_per_sec,
        ring_per_trunk.rounds,
        ring_per_trunk.events_per_sec,
    );
    // The 10⁶-node row is deliberately omitted here (it alone takes
    // ~minutes); the canonical artifact with that row comes from the
    // `multi_site` main sweep.
    let table = threads_table(&hundred_k, &[1, 2, 4, hundred_k.threads.max(4)]);
    let fullstack = FullStackReport {
        equivalence,
        rows: vec![ring_global, ring_per_trunk],
        threads_table: table,
    };
    match write_multi_site_json(
        &results,
        &incast,
        &failover,
        &churn,
        Some(&scale),
        Some(&fullstack),
    ) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write BENCH_multi_site.json: {e}"),
    }
}
