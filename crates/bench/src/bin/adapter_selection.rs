//! Adapter selection across deployment configurations (§3.2).

use padico_bench::adapter_selection;

fn main() {
    println!("# Selector decisions per deployment configuration");
    for obs in adapter_selection() {
        println!(
            "{:<32} VLink: {:<40} Circuit: {}",
            obs.pair, obs.vlink_decision, obs.circuit_decision
        );
    }
}
