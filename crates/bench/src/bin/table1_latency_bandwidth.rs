//! Table 1: one-way latency and maximum bandwidth of the abstract
//! interfaces and middleware systems with PadicoTM over Myrinet-2000.

use padico_bench::table1;

fn main() {
    let profiles = table1();
    println!(
        "# Table 1 — Performance of various middleware systems with PadicoTM over Myrinet-2000"
    );
    println!(
        "{:<28}{:>22}{:>26}",
        "API or middleware", "One-way latency (us)", "Max bandwidth (MB/s)"
    );
    for p in &profiles {
        println!(
            "{:<28}{:>22.2}{:>26.1}",
            p.stack.name(),
            p.latency_us,
            p.max_bandwidth_mb_s()
        );
    }
}
