//! Figure 3: bandwidth of the middleware systems in PadicoTM over
//! Myrinet-2000, plus the TCP/Ethernet-100 reference curve.

use padico_bench::{figure3, figure3_sizes, human_size};

fn main() {
    let sizes = figure3_sizes();
    let profiles = figure3(&sizes);
    println!("# Figure 3 — Bandwidth (MB/s) of middleware systems in PadicoTM over Myrinet-2000");
    print!("{:<28}", "message size");
    for s in &sizes {
        print!("{:>10}", human_size(*s));
    }
    println!();
    for p in &profiles {
        print!("{:<28}", p.stack.name());
        for m in &p.points {
            print!("{:>10.1}", m.bandwidth_mb_s());
        }
        println!();
    }
}
