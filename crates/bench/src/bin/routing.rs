//! Routing-scalability bench: flat all-pairs Dijkstra vs hierarchical
//! two-level routing, written to `BENCH_routing.json`.
//!
//! Usage: `routing [--smoke|--scale-smoke]` — `--smoke` runs small sizes
//! once (the CI guard) and does not overwrite the tracked JSON artifact;
//! `--scale-smoke` runs the single measured 10⁵-node cluster case (hier
//! build, oracle spot-check against sampled flat sources, and a real
//! relayed-traffic phase) without touching the artifact. The full run
//! appends the same 10⁵-node case to the swept sizes. In all modes the
//! process exits non-zero if any hierarchical/flat cost-equivalence
//! check reports a mismatch, or (full/small smoke) if the hierarchical
//! allreduce fails to send strictly fewer inter-site messages than the
//! linear one.

use padico_bench::routing::{
    allreduce_comparison, routing_case, routing_json, routing_sweep, write_routing_json,
};

/// The measured headline size: 10⁵ nodes as 1000 sites of 100.
const SCALE_NODES: usize = 100_000;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale_smoke = std::env::args().any(|a| a == "--scale-smoke");
    let sizes: &[usize] = if smoke {
        &[100, 320]
    } else {
        &[100, 1000, 10_000]
    };
    let mut cases = if scale_smoke {
        Vec::new()
    } else {
        routing_sweep(sizes)
    };
    if !smoke {
        eprintln!("routing: cluster @ {SCALE_NODES} nodes (measured)…");
        cases.push(routing_case("cluster", SCALE_NODES));
    }
    println!(
        "{:<8} {:>6} {:>6} {:>12} {:>12} {:>9} {:>12} {:>12} {:>9} {:>9} {:>9}",
        "shape",
        "nodes",
        "sites",
        "flat ms",
        "hier ms",
        "build x",
        "flat bytes",
        "hier bytes",
        "bytes x",
        "hier ns",
        "cache ns"
    );
    for c in &cases {
        println!(
            "{:<8} {:>6} {:>6} {:>11.1}{} {:>12.1} {:>9.1} {:>11}{} {:>12} {:>9.1} {:>9.0} {:>9.0}",
            c.shape,
            c.nodes,
            c.sites,
            c.flat_build_ms,
            if c.flat_measured { " " } else { "*" },
            c.hier_build_ms,
            c.build_speedup(),
            c.flat_table_bytes,
            if c.flat_measured { " " } else { "*" },
            c.hier_table_bytes,
            c.bytes_ratio(),
            c.hier_lookup_ns,
            c.hier_cached_lookup_ns,
        );
    }
    println!("(* = flat numbers extrapolated from sampled Dijkstra sources)");
    for c in &cases {
        println!(
            "traffic @ {} nodes ({}): {:.0} events/s measured",
            c.nodes, c.shape, c.events_per_sec
        );
    }

    let allreduce = allreduce_comparison(3, 6);
    println!(
        "allreduce over {} sites x {}: inter-site msgs linear={} hier={}, \
         completion linear={:.1}us hier={:.1}us",
        allreduce.sites,
        allreduce.nodes_per_site,
        allreduce.linear_inter_site_msgs,
        allreduce.hier_inter_site_msgs,
        allreduce.linear_us,
        allreduce.hier_us,
    );
    println!(
        "bcast inter-site msgs linear={} hier={}; barrier linear={} hier={}",
        allreduce.bcast_linear_inter_site_msgs,
        allreduce.bcast_hier_inter_site_msgs,
        allreduce.barrier_linear_inter_site_msgs,
        allreduce.barrier_hier_inter_site_msgs,
    );

    let mut failed = false;
    for c in &cases {
        if c.cost_mismatches > 0 || c.reachability_mismatches > 0 {
            eprintln!(
                "FAIL: {} @ {} nodes disagrees with the flat oracle \
                 ({} cost, {} reachability mismatches over {} pairs)",
                c.shape, c.nodes, c.cost_mismatches, c.reachability_mismatches, c.pairs_checked
            );
            failed = true;
        }
        if c.events_per_sec <= 0.0 {
            eprintln!(
                "FAIL: {} @ {} nodes recorded no measured traffic",
                c.shape, c.nodes
            );
            failed = true;
        }
    }
    if allreduce.hier_inter_site_msgs >= allreduce.linear_inter_site_msgs {
        eprintln!(
            "FAIL: hierarchical allreduce sent {} inter-site messages, \
             linear sent {}",
            allreduce.hier_inter_site_msgs, allreduce.linear_inter_site_msgs
        );
        failed = true;
    }
    if allreduce.bcast_hier_inter_site_msgs >= allreduce.bcast_linear_inter_site_msgs {
        eprintln!(
            "FAIL: hierarchical bcast sent {} inter-site messages, linear sent {}",
            allreduce.bcast_hier_inter_site_msgs, allreduce.bcast_linear_inter_site_msgs
        );
        failed = true;
    }
    if allreduce.barrier_hier_inter_site_msgs >= allreduce.barrier_linear_inter_site_msgs {
        eprintln!(
            "FAIL: hierarchical barrier sent {} inter-site messages, linear sent {}",
            allreduce.barrier_hier_inter_site_msgs, allreduce.barrier_linear_inter_site_msgs
        );
        failed = true;
    }

    if smoke || scale_smoke {
        let json = routing_json(&cases, &allreduce);
        assert!(json.contains("\"experiment\": \"routing\""));
        eprintln!("smoke run: artifact not written");
    } else {
        let path = write_routing_json(&cases, &allreduce).expect("write BENCH_routing.json");
        eprintln!("wrote {path}");
    }
    if failed {
        std::process::exit(1);
    }
}
