//! Datapath throughput microbench: wall-clock MB/s of every stream
//! datapath, written to `BENCH_datapath.json`.
//!
//! Usage: `datapath [--smoke]` — `--smoke` runs tiny payloads once (CI
//! bitrot guard) and does not overwrite the tracked JSON artifact.

use padico_bench::datapath::{datapath_json, datapath_sweep, write_datapath_json};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (bytes, runs) = if smoke {
        (64 * 1024, 1)
    } else {
        (1024 * 1024, 3)
    };
    eprintln!(
        "datapath sweep: {} KiB per path, best of {runs} run(s)…",
        bytes / 1024
    );
    let results = datapath_sweep(bytes, runs);
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>12}",
        "path", "wall_ms", "wall MB/s", "virt MB/s", "base MB/s"
    );
    for r in &results {
        println!(
            "{:<14} {:>10.3} {:>10.2} {:>12.4} {:>12}",
            r.path,
            r.wall_ms,
            r.wall_mb_s,
            r.virtual_mb_s,
            padico_bench::datapath::baseline_wall_mb_s(r.path)
                .map(|b| format!("{b:.2}"))
                .unwrap_or_else(|| "-".into()),
        );
    }
    if smoke {
        // Exercise the JSON path without clobbering the tracked artifact.
        let json = datapath_json(&results);
        assert!(json.contains("\"experiment\": \"datapath\""));
        eprintln!("smoke run: artifact not written");
    } else {
        let path = write_datapath_json(&results).expect("write BENCH_datapath.json");
        eprintln!("wrote {path}");
    }
}
