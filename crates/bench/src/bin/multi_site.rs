//! Runs the multi-site grid experiment (site count × backbone class) and
//! the incast backpressure sweep, writing the machine-readable
//! `BENCH_multi_site.json` artifact.
//!
//! `--incast-smoke drop|credit` runs a single quick incast in the given
//! mode and exits non-zero if reliable delivery failed — or, in credit
//! mode, if any gateway frame was dropped (credit mode must be lossless).
//! `--failover-smoke` runs one gateway-kill failover case and exits
//! non-zero if recovery did not complete or any acknowledged byte was
//! lost or duplicated. `--metrics-smoke` runs one *instrumented* failover
//! case (frame relay, CORBA and MPI preludes in the same world), scrapes
//! the unified telemetry snapshot at quiescence, writes it to
//! `BENCH_multi_site_metrics.json`, and exits non-zero on any
//! conservation violation (credit leak, frame leak, parked leftovers) or
//! delivery failure. `--churn-smoke` replays a seeded flap schedule plus
//! one live site admit/drain with the transient checker at every
//! reconvergence step, writes `BENCH_churn_smoke.json`, and exits
//! non-zero on any transient violation, full-table recompute, failed
//! exchange, or conservation leak. `--scale-smoke` runs the measured
//! 10⁵-node partitioned world plus a quick executor-equivalence check,
//! writes `BENCH_scale_smoke.json`, and exits non-zero if the event
//! rate falls under the floor, any cross-shard frame leaks, or the two
//! executors' snapshots diverge by a single byte. All are used by CI as
//! bitrot guards.

use gridtopo::BackpressureMode;
use padico_bench::fullstack::{
    compare_windows, fullstack_json_section, mirror_equivalence, threads_table, FullStackReport,
    MirrorConfig, RingConfig, WindowMode,
};
use padico_bench::{
    churn_json_row, churn_run, churn_snapshot, churn_sweep, conservation_violations,
    failover_metrics, failover_run, failover_sweep, incast_run, incast_sweep, multi_site_sweep,
    scale_json_section, scale_run, write_multi_site_json, Executor, ScaleConfig,
};

/// Minimum events per wall-clock second the 10⁵-node scale smoke must
/// sustain (conservative: CI runners may be single-core).
const SCALE_EVENTS_PER_SEC_FLOOR: f64 = 50_000.0;

/// Minimum events per wall-clock second for the full-stack smoke ring.
/// Lower than the synthetic floor: every event here runs real selector,
/// relay and credit machinery, and CI builds the smoke lane in debug.
const FULLSTACK_EVENTS_PER_SEC_FLOOR: f64 = 10_000.0;

/// Executor-internal bookkeeping keys excluded from byte-identity
/// comparisons — lane layout legitimately differs between queue
/// organizations while all observable telemetry must not.
const EXEC_KEYS: &[&str] = &["sim.executor."];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--scale-smoke") {
        let r = scale_run(&ScaleConfig::hundred_k());
        println!(
            "scale smoke: {} nodes across {} shards on {} threads, \
             {} events in {:.2}s ({:.0} events/s), {} cross-shard frames, \
             digest {}",
            r.nodes,
            r.shards,
            r.threads,
            r.events_total,
            r.wall_seconds,
            r.events_per_sec,
            r.frames_crossed,
            r.digest,
        );
        let mut failed = false;
        if r.events_per_sec < SCALE_EVENTS_PER_SEC_FLOOR {
            eprintln!(
                "FAIL: {:.0} events/s under the {SCALE_EVENTS_PER_SEC_FLOOR:.0} floor",
                r.events_per_sec
            );
            failed = true;
        }
        if r.cross_unclaimed > 0 {
            eprintln!(
                "FAIL: {} cross-shard frames leaked unclaimed",
                r.cross_unclaimed
            );
            failed = true;
        }
        if r.delivered_local != r.frames_local || r.delivered_cross != r.frames_crossed {
            eprintln!(
                "FAIL: frame conservation broke (local {}/{}, cross {}/{})",
                r.delivered_local, r.frames_local, r.delivered_cross, r.frames_crossed
            );
            failed = true;
        }
        // Quick executor-equivalence gate on a seeded CI scenario: the
        // sharded-merge executor must be byte-identical to the single
        // queue (the full seed sweep runs in tests/executor_equivalence.rs).
        let single = churn_snapshot(3, 2, 0xC09E, Executor::Single).to_json_excluding(EXEC_KEYS);
        let sharded =
            churn_snapshot(3, 2, 0xC09E, Executor::ShardedMerge).to_json_excluding(EXEC_KEYS);
        if single != sharded {
            eprintln!("FAIL: sharded-merge executor diverged from the single queue");
            failed = true;
        }

        // Full-stack partitioned scenario: the real relay/credit/selector
        // machinery sharded per site must be byte-identical to the single
        // queue, conserve every cross-boundary frame, and hold the same
        // digest under both window modes and every thread count.
        let eq = mirror_equivalence(&MirrorConfig::smoke());
        println!(
            "fullstack equivalence: identical {}, {} frames delivered, \
             {} crossed ({} out / {} in), {} rounds",
            eq.identical, eq.delivered, eq.frames_crossed, eq.cross_out, eq.cross_in, eq.rounds,
        );
        if !eq.identical {
            eprintln!("FAIL: full-stack partitioned snapshot diverged from the single queue");
            failed = true;
        }
        if eq.delivered != eq.frames_total {
            eprintln!(
                "FAIL: full-stack delivery incomplete ({}/{})",
                eq.delivered, eq.frames_total
            );
            failed = true;
        }
        if eq.lookahead_violations > 0 {
            eprintln!(
                "FAIL: {} lookahead violations in the full-stack run",
                eq.lookahead_violations
            );
            failed = true;
        }
        for violation in &eq.conservation {
            eprintln!("FAIL: {violation}");
            failed = true;
        }

        let ring = RingConfig::smoke();
        let (ring_global, ring_per_trunk) = compare_windows(&ring);
        let table = threads_table(&ring, &[1, 2, ring.threads.max(2)]);
        println!(
            "fullstack ring: {} nodes / {} shards, global {} rounds \
             ({:.0} events/s), per-trunk {} rounds ({:.0} events/s), digest {}",
            ring_global.nodes,
            ring_global.shards,
            ring_global.rounds,
            ring_global.events_per_sec,
            ring_per_trunk.rounds,
            ring_per_trunk.events_per_sec,
            ring_per_trunk.digest,
        );
        if ring_global.digest != ring_per_trunk.digest {
            eprintln!(
                "FAIL: window mode changed the simulation (global {} vs per-trunk {})",
                ring_global.digest, ring_per_trunk.digest
            );
            failed = true;
        }
        if ring_per_trunk.rounds >= ring_global.rounds {
            eprintln!(
                "FAIL: per-trunk windows saved no rounds ({} vs {})",
                ring_per_trunk.rounds, ring_global.rounds
            );
            failed = true;
        }
        for row in table.iter().chain([&ring_global, &ring_per_trunk]) {
            if row.digest != ring_per_trunk.digest {
                eprintln!(
                    "FAIL: digest drifted at {} threads ({} vs {})",
                    row.threads, row.digest, ring_per_trunk.digest
                );
                failed = true;
            }
            if row.lookahead_violations > 0 {
                eprintln!(
                    "FAIL: {} lookahead violations at {} threads",
                    row.lookahead_violations, row.threads
                );
                failed = true;
            }
            if row.cross_out != row.cross_in || row.cross_unclaimed > 0 {
                eprintln!(
                    "FAIL: cross-shard leak at {} threads (out {}, in {}, unclaimed {})",
                    row.threads, row.cross_out, row.cross_in, row.cross_unclaimed
                );
                failed = true;
            }
            if row.events_per_sec < FULLSTACK_EVENTS_PER_SEC_FLOOR {
                eprintln!(
                    "FAIL: {:.0} events/s under the {FULLSTACK_EVENTS_PER_SEC_FLOOR:.0} \
                     full-stack floor at {} threads",
                    row.events_per_sec, row.threads
                );
                failed = true;
            }
        }

        let report = FullStackReport {
            equivalence: eq,
            rows: vec![ring_global, ring_per_trunk],
            threads_table: table,
        };
        let path = "BENCH_scale_smoke.json";
        std::fs::write(
            path,
            format!(
                "{{\"scale\": {}, \"fullstack\": {}}}\n",
                scale_json_section(&r),
                fullstack_json_section(&report)
            ),
        )
        .expect("write scale artifact");
        println!("wrote {path}");
        std::process::exit(if failed { 1 } else { 0 });
    }
    if args.iter().any(|a| a == "--churn-smoke") {
        let r = churn_run(4, 6);
        let path = "BENCH_churn_smoke.json";
        std::fs::write(path, format!("{}\n", churn_json_row(&r).trim_start()))
            .expect("write churn artifact");
        println!(
            "churn smoke: {} sites, {} deltas ({} incremental, {} full rebuilds), \
             reconverge {:.3} ms avg / {:.3} ms max, {} pairs disrupted at worst, \
             admit {:.3} ms, drain {:.3} ms ({} trunks retired) -> {path}",
            r.sites,
            r.steps,
            r.delta_reconvergences,
            r.full_recomputes_during_churn,
            r.reconverge_ms_avg,
            r.reconverge_ms_max,
            r.pairs_disrupted_max,
            r.admit_ms,
            r.drain_ms,
            r.trunks_retired,
        );
        let mut failed = false;
        if r.transient_violations > 0 {
            eprintln!(
                "FAIL: {} transient violations (loop/blackhole/phantom/cost)",
                r.transient_violations
            );
            failed = true;
        }
        if r.full_recomputes_during_churn > 0 {
            eprintln!(
                "FAIL: {} full table rebuilds — churn must reconverge incrementally",
                r.full_recomputes_during_churn
            );
            failed = true;
        }
        if r.sites_recomputed > 0 {
            eprintln!(
                "FAIL: flap deltas recomputed {} intra tables",
                r.sites_recomputed
            );
            failed = true;
        }
        if !r.exchanges_ok {
            eprintln!("FAIL: an application exchange blackholed during churn");
            failed = true;
        }
        if r.conservation_violations > 0 {
            eprintln!(
                "FAIL: {} conservation violations at quiescence",
                r.conservation_violations
            );
            failed = true;
        }
        std::process::exit(if failed { 1 } else { 0 });
    }
    if args.iter().any(|a| a == "--metrics-smoke") {
        let (snapshot, completed, recovery_ms, migrated) = failover_metrics(4);
        let path = "BENCH_multi_site_metrics.json";
        std::fs::write(path, snapshot.to_json()).expect("write metrics artifact");
        println!(
            "metrics smoke: {} metrics scraped -> {path}; recovery {}, \
             {migrated} migrated conns, completed: {completed}",
            snapshot.len(),
            recovery_ms
                .map(|v| format!("{v:.2} ms"))
                .unwrap_or_else(|| "n/a".to_string()),
        );
        let mut failed = false;
        for violation in conservation_violations(&snapshot) {
            eprintln!("FAIL: {violation}");
            failed = true;
        }
        if !completed {
            eprintln!("FAIL: an acknowledged byte was lost or duplicated across the failover");
            failed = true;
        }
        if recovery_ms.is_none() {
            eprintln!("FAIL: streams did not resume through the surviving gateway");
            failed = true;
        }
        // The snapshot must actually cover every telemetry surface — an
        // accidentally unregistered collector would pass conservation
        // checks vacuously.
        for prefix in [
            "relay.fabric.",
            "relay.gateway.",
            "relay.proxy.",
            "route.cache.",
            "trunk.memory.",
            "trunk.credit.",
            "mw.corba.",
            "mw.mpi.",
            "madeleine.channel.",
            "netaccess.madio.",
            "sim.world.",
        ] {
            if snapshot.with_prefix(prefix).next().is_none() {
                eprintln!("FAIL: no metrics under {prefix}* in the snapshot");
                failed = true;
            }
        }
        // Cross-shard conservation on a partitioned full-stack run: every
        // frame one shard world emits across the boundary must be injected
        // into exactly one other world (Σout == Σin), and the *merged*
        // snapshot must conserve credits and frames across the cut.
        let eq = mirror_equivalence(&MirrorConfig::smoke());
        println!(
            "cross-shard conservation: {} out / {} in across the boundary",
            eq.cross_out, eq.cross_in,
        );
        if eq.cross_out != eq.cross_in {
            eprintln!(
                "FAIL: cross-shard frame leak ({} out vs {} in)",
                eq.cross_out, eq.cross_in
            );
            failed = true;
        }
        if eq.cross_out == 0 {
            eprintln!("FAIL: the partitioned run crossed no frames — the check is vacuous");
            failed = true;
        }
        for violation in &eq.conservation {
            eprintln!("FAIL: merged-snapshot conservation: {violation}");
            failed = true;
        }
        std::process::exit(if failed { 1 } else { 0 });
    }
    if args.iter().any(|a| a == "--failover-smoke") {
        let r = failover_run(4);
        println!(
            "failover smoke: {} senders, killed at {} bytes, recovery {}, \
             {} migrated conns, {:.2} MB/s (baseline {:.2}, dip {:.1}%), completed: {}",
            r.senders,
            r.killed_at_bytes,
            r.recovery_ms
                .map(|v| format!("{v:.2} ms"))
                .unwrap_or_else(|| "n/a".to_string()),
            r.migrated_connections,
            r.goodput_mb_s,
            r.baseline_goodput_mb_s,
            r.goodput_dip_pct,
            r.completed,
        );
        let mut failed = false;
        if !r.completed {
            eprintln!("FAIL: an acknowledged byte was lost or duplicated across the failover");
            failed = true;
        }
        if r.recovery_ms.is_none() {
            eprintln!("FAIL: streams did not resume through the surviving gateway");
            failed = true;
        }
        std::process::exit(if failed { 1 } else { 0 });
    }
    if let Some(i) = args.iter().position(|a| a == "--incast-smoke") {
        let mode = match args.get(i + 1).map(String::as_str) {
            Some("drop") => BackpressureMode::Drop,
            Some("credit") => BackpressureMode::Credit,
            other => {
                eprintln!("--incast-smoke needs 'drop' or 'credit', got {other:?}");
                std::process::exit(2);
            }
        };
        let r = incast_run(8, 32, mode);
        println!(
            "incast smoke [{}]: {}/{} frames, {} dropped, {} retransmitted, \
             {} rounds, {:.2} MB/s, stall {:.2} ms/sender",
            r.mode.label(),
            r.frames_delivered,
            r.frames_total,
            r.frames_dropped,
            r.retransmissions,
            r.rounds,
            r.goodput_mb_s,
            r.sender_stall_ms,
        );
        let mut failed = false;
        if r.frames_delivered != r.frames_total {
            eprintln!("FAIL: reliable delivery incomplete");
            failed = true;
        }
        if mode == BackpressureMode::Credit && r.frames_dropped > 0 {
            eprintln!("FAIL: credit mode dropped {} frames", r.frames_dropped);
            failed = true;
        }
        std::process::exit(if failed { 1 } else { 0 });
    }

    let results = multi_site_sweep();
    println!(
        "{:>5} {:>6} {:>16} {:>5} {:>9} {:>10} {:>8} {:>8} {:>12} {:>14}",
        "sites",
        "layout",
        "backbone",
        "hops",
        "frames",
        "delivered",
        "relayed",
        "dropped",
        "1st-frame",
        "goodput"
    );
    for r in &results {
        println!(
            "{:>5} {:>6} {:>16} {:>5} {:>9} {:>10} {:>8} {:>8} {:>9} ms {:>9.2} MB/s",
            r.sites,
            r.layout.label(),
            r.backbone,
            r.hops,
            r.frames_sent,
            r.frames_delivered,
            r.frames_relayed,
            r.frames_dropped,
            r.first_frame_ms
                .map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "n/a".to_string()),
            r.stream_goodput_mb_s,
        );
    }

    let incast = incast_sweep();
    println!(
        "\n{:>7} {:>6} {:>7} {:>9} {:>8} {:>7} {:>7} {:>11} {:>13} {:>12}",
        "senders",
        "mode",
        "frames",
        "delivered",
        "dropped",
        "retx",
        "rounds",
        "elapsed",
        "goodput",
        "stall/sender"
    );
    for r in &incast {
        println!(
            "{:>7} {:>6} {:>7} {:>9} {:>8} {:>7} {:>7} {:>8.2} ms {:>8.2} MB/s {:>9.2} ms",
            r.senders,
            r.mode.label(),
            r.frames_total,
            r.frames_delivered,
            r.frames_dropped,
            r.retransmissions,
            r.rounds,
            r.elapsed_ms,
            r.goodput_mb_s,
            r.sender_stall_ms,
        );
    }

    let failover = failover_sweep();
    println!(
        "\n{:>7} {:>9} {:>11} {:>10} {:>9} {:>12} {:>12} {:>6} {:>9}",
        "senders",
        "payload",
        "killed-at",
        "recovery",
        "migrated",
        "goodput",
        "baseline",
        "dip",
        "complete"
    );
    for r in &failover {
        println!(
            "{:>7} {:>9} {:>11} {:>7} ms {:>9} {:>7.2} MB/s {:>7.2} MB/s {:>5.1}% {:>9}",
            r.senders,
            r.payload_bytes,
            r.killed_at_bytes,
            r.recovery_ms
                .map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "n/a".to_string()),
            r.migrated_connections,
            r.goodput_mb_s,
            r.baseline_goodput_mb_s,
            r.goodput_dip_pct,
            r.completed,
        );
    }

    let churn = churn_sweep();
    println!(
        "\n{:>5} {:>5} {:>5} {:>7} {:>6} {:>12} {:>12} {:>10} {:>9} {:>8} {:>8} {:>9}",
        "sites",
        "flaps",
        "steps",
        "incr",
        "full",
        "reconv-avg",
        "reconv-max",
        "disrupted",
        "violations",
        "admit",
        "drain",
        "exchanges"
    );
    for r in &churn {
        println!(
            "{:>5} {:>5} {:>5} {:>7} {:>6} {:>9} ms {:>9} ms {:>10} {:>9} {:>5.2} ms {:>5.2} ms {:>9}",
            r.sites,
            r.flaps,
            r.steps,
            r.delta_reconvergences,
            r.full_recomputes_during_churn,
            format!("{:.3}", r.reconverge_ms_avg),
            format!("{:.3}", r.reconverge_ms_max),
            r.pairs_disrupted_max,
            r.transient_violations,
            r.admit_ms,
            r.drain_ms,
            if r.exchanges_ok { "ok" } else { "FAILED" },
        );
    }

    let scale = scale_run(&ScaleConfig::hundred_k());
    println!(
        "\nscale: {} nodes / {} shards / {} threads, {:.0} events/s \
         ({} events, {} cross-shard frames, digest {})",
        scale.nodes,
        scale.shards,
        scale.threads,
        scale.events_per_sec,
        scale.events_total,
        scale.frames_crossed,
        scale.digest,
    );

    // Full-stack partitioned execution: the mirror-equivalence verdict,
    // the measured 10⁵ rows under both window modes, the 10⁶ per-trunk
    // row, and the threads-vs-events/s scaling table.
    let equivalence = mirror_equivalence(&MirrorConfig::smoke());
    println!(
        "\nfullstack equivalence: identical {}, {} delivered, {} crossed, {} rounds",
        equivalence.identical,
        equivalence.delivered,
        equivalence.frames_crossed,
        equivalence.rounds,
    );
    let hundred_k = RingConfig::hundred_k();
    let (ring_global, ring_per_trunk) = compare_windows(&hundred_k);
    let million = padico_bench::fullstack::ring_run(&RingConfig::million(), WindowMode::PerTrunk);
    let table = threads_table(&hundred_k, &[1, 2, 4, hundred_k.threads.max(4)]);
    println!(
        "{:>9} {:>7} {:>8} {:>10} {:>8} {:>12} {:>14} {:>9} {:>18}",
        "nodes", "shards", "threads", "mode", "rounds", "events", "events/s", "wall", "digest"
    );
    for row in [&ring_global, &ring_per_trunk, &million]
        .into_iter()
        .chain(table.iter())
    {
        println!(
            "{:>9} {:>7} {:>8} {:>10} {:>8} {:>12} {:>14.0} {:>7.2}s {:>18}",
            row.nodes,
            row.shards,
            row.threads,
            row.mode.label(),
            row.rounds,
            row.events_total,
            row.events_per_sec,
            row.wall_seconds,
            row.digest,
        );
    }
    let fullstack = FullStackReport {
        equivalence,
        rows: vec![ring_global, ring_per_trunk, million],
        threads_table: table,
    };

    match write_multi_site_json(
        &results,
        &incast,
        &failover,
        &churn,
        Some(&scale),
        Some(&fullstack),
    ) {
        Ok(path) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write BENCH_multi_site.json: {e}"),
    }
}
