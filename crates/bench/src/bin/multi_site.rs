//! Runs the multi-site grid experiment (site count × backbone class) and
//! writes the machine-readable `BENCH_multi_site.json` artifact.

use padico_bench::{multi_site_sweep, write_multi_site_json};

fn main() {
    let results = multi_site_sweep();
    println!(
        "{:>5} {:>6} {:>16} {:>5} {:>9} {:>10} {:>8} {:>8} {:>12} {:>14}",
        "sites",
        "layout",
        "backbone",
        "hops",
        "frames",
        "delivered",
        "relayed",
        "dropped",
        "1st-frame",
        "goodput"
    );
    for r in &results {
        println!(
            "{:>5} {:>6} {:>16} {:>5} {:>9} {:>10} {:>8} {:>8} {:>9} ms {:>9.2} MB/s",
            r.sites,
            r.layout.label(),
            r.backbone,
            r.hops,
            r.frames_sent,
            r.frames_delivered,
            r.frames_relayed,
            r.frames_dropped,
            r.first_frame_ms
                .map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "n/a".to_string()),
            r.stream_goodput_mb_s,
        );
    }
    match write_multi_site_json(&results) {
        Ok(path) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write BENCH_multi_site.json: {e}"),
    }
}
