//! The VRP experiment (§5): TCP vs VRP on a lossy trans-continental link.

use padico_bench::vrp_lossy_link;

fn main() {
    let r = vrp_lossy_link(2_000_000, 0.10);
    println!("# Lossy trans-continental link (5-10% loss)");
    println!("TCP / plain sockets      : {:.0} KB/s", r.tcp_kb_s);
    println!(
        "VRP ({:.0}% tolerated loss) : {:.0} KB/s (delivered fraction {:.3})",
        r.tolerance * 100.0,
        r.vrp_kb_s,
        r.delivered_fraction
    );
    println!("speed-up                 : {:.2}x", r.speedup());
}
