//! MadIO multiplexing overhead over plain Madeleine (§4.1).

use padico_bench::madio_overhead;

fn main() {
    let r = madio_overhead();
    println!("# MadIO overhead over plain Madeleine (16-byte message, Myrinet-2000)");
    println!("plain Madeleine latency  : {:.3} us", r.baseline_us);
    println!("MadIO latency            : {:.3} us", r.layered_us);
    println!(
        "overhead                 : {:.3} us (paper: < 0.1 us)",
        r.overhead_us()
    );
}
