//! The VTHD WAN experiment (§5): single TCP stream vs Parallel Streams.

use padico_bench::wan_vthd;

fn main() {
    let r = wan_vthd(16_000_000, 4);
    println!("# VTHD WAN experiment (high-bandwidth WAN, Ethernet-100 access links)");
    println!("one-way latency          : {:.1} ms", r.latency_ms);
    println!(
        "single TCP stream        : {:.1} MB/s",
        r.single_stream_mb_s
    );
    println!(
        "parallel streams (n={})   : {:.1} MB/s",
        r.streams, r.parallel_streams_mb_s
    );
    println!(
        "gain                     : {:.2}x",
        r.parallel_streams_mb_s / r.single_stream_mb_s
    );
}
