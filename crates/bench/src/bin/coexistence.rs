//! Coexistence experiment: MPI and CORBA sharing one node and one SAN.

use padico_bench::coexistence;

fn main() {
    let r = coexistence(200, 100);
    println!("# Coexistence: MPI + CORBA on the same nodes, same SAN");
    println!("MPI round-trips completed   : {}", r.mpi_messages);
    println!("CORBA requests completed    : {}", r.corba_requests);
    println!("NetAccess MadIO dispatches  : {}", r.madio_events);
    println!("NetAccess SysIO dispatches  : {}", r.sysio_events);
}
