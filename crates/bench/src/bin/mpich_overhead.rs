//! Framework overhead for MPI (§5): MPICH alone vs inside PadicoTM with a
//! CORBA ORB also active.

use padico_bench::mpich_overhead;

fn main() {
    let r = mpich_overhead();
    println!("# MPI latency: standalone vs inside PadicoTM (sharing the node with CORBA)");
    println!("standalone MPI          : {:.2} us one-way", r.baseline_us);
    println!("MPI inside PadicoTM     : {:.2} us one-way", r.layered_us);
    println!(
        "overhead                : {:.2} us (paper: negligible)",
        r.overhead_us()
    );
}
