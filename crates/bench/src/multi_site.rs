//! The multi-site grid experiment: hierarchical topologies with gateway
//! relaying, swept over site count × backbone class.
//!
//! This goes beyond the paper's two-cluster deployment: sites are isolated
//! behind gateways (only the gateway touches the backbone), so every
//! cross-site exchange is store-and-forwarded. The experiment measures
//! both levels of the new `gridtopo` subsystem:
//!
//! * frame relaying through the bounded-queue [`RelayFabric`] (delivery,
//!   drops, one-way latency across the gateway chain);
//! * stream relaying through the gateway proxies (goodput of a relayed
//!   VLink transfer).

use std::cell::Cell;
use std::rc::Rc;

use gridtopo::{GridTopology, RelayConfig, RelayFabric, SiteSpec};
use padico_core::{runtimes_for_grid, SelectorPreferences, VLink, VLinkEvent};
use simnet::{NetworkSpec, SimWorld};

/// Backbone layout of a multi-site run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// One shared backbone network joining every gateway.
    Star,
    /// Point-to-point backbone segments forming a ring of gateways
    /// (cross-site routes grow with site count).
    Ring,
}

impl Layout {
    /// Lowercase label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Layout::Star => "star",
            Layout::Ring => "ring",
        }
    }
}

/// Result of one multi-site run.
#[derive(Debug, Clone)]
pub struct MultiSiteResult {
    /// Number of sites.
    pub sites: usize,
    /// Backbone layout.
    pub layout: Layout,
    /// Backbone label ("vthd-wan", "lossy-internet").
    pub backbone: String,
    /// Networks crossed by the measured cross-site route.
    pub hops: u32,
    /// Frames submitted in the frame-relay phase.
    pub frames_sent: u64,
    /// Frames delivered end to end.
    pub frames_delivered: u64,
    /// Total frames forwarded by gateways.
    pub frames_relayed: u64,
    /// Frames dropped at gateways (queue, TTL, routing).
    pub frames_dropped: u64,
    /// Frames lost in flight on the networks themselves (link loss), i.e.
    /// sent but neither delivered nor accounted as a gateway drop. The
    /// lossy-internet rows lose frames here while `frames_dropped` stays 0.
    pub frames_lost: u64,
    /// One-way latency of the first relayed frame, in milliseconds.
    /// `None` when no frame survived to the destination.
    pub first_frame_ms: Option<f64>,
    /// Goodput of the relayed stream transfer, MB/s.
    pub stream_goodput_mb_s: f64,
    /// Bytes moved in the stream phase.
    pub stream_bytes: usize,
}

/// Frames sent in the frame-relay phase.
const RELAY_FRAMES: usize = 100;
/// Payload of each relayed frame (fits the backbone MTU with headers).
const RELAY_FRAME_BYTES: usize = 1024;
/// Bytes pushed through the relayed VLink in the stream phase.
const STREAM_BYTES: usize = 128 * 1024;

/// Runs one multi-site measurement: `sites` SAN clusters joined by the
/// given backbone in the given layout, traffic between site 0 and the most
/// distant site.
pub fn multi_site_run(
    sites: usize,
    layout: Layout,
    backbone_label: &str,
    backbone: NetworkSpec,
) -> MultiSiteResult {
    assert!(sites >= 2);
    assert!(
        layout == Layout::Star || sites >= 3,
        "a ring needs 3+ sites"
    );
    let mut world = SimWorld::new(2024);
    let specs: Vec<SiteSpec> = (0..sites)
        .map(|i| SiteSpec::san_cluster(format!("s{i}"), 3))
        .collect();
    let grid = match layout {
        Layout::Star => GridTopology::star(&mut world, &specs, backbone),
        Layout::Ring => GridTopology::ring(&mut world, &specs, backbone),
    };
    let (rts, _proxies) = runtimes_for_grid(&mut world, &grid, SelectorPreferences::default());

    // In a ring the most distant site is halfway round; in a star every
    // non-local site is equally far.
    let far_site = match layout {
        Layout::Star => sites - 1,
        Layout::Ring => sites / 2,
    };
    let src = grid.site(0).node(1);
    let dst = grid.site(far_site).node(1);
    let hops = grid.routes.path_info(&world, src, dst).unwrap().hop_count as u32;

    // ---- Frame-relay phase -------------------------------------------- //
    let fabric = RelayFabric::new(grid.routes.clone(), RelayConfig::default());
    for node in grid.all_nodes() {
        fabric.attach(&mut world, node);
    }
    let first_at = Rc::new(Cell::new(None::<simnet::SimTime>));
    let delivered = Rc::new(Cell::new(0u64));
    let (f2, d2) = (first_at.clone(), delivered.clone());
    fabric.bind(&mut world, dst, 7, move |world, _msg| {
        if f2.get().is_none() {
            f2.set(Some(world.now()));
        }
        d2.set(d2.get() + 1);
    });
    let start = world.now();
    for _ in 0..RELAY_FRAMES {
        fabric
            .send(&mut world, src, dst, 7, vec![0u8; RELAY_FRAME_BYTES])
            .expect("relay send");
    }
    world.run();
    let first_frame_ms = first_at.get().map(|t| t.since(start).as_millis_f64());

    // ---- Stream phase (relayed VLink through gateway proxies) --------- //
    // Runtimes are in all_nodes() order: rank 1 of site 0, and rank 1 of
    // the last site.
    let src_rt = rts[1].clone();
    let dst_index: usize = grid.sites[..far_site]
        .iter()
        .map(|s| s.len())
        .sum::<usize>()
        + 1;
    let dst_rt = rts[dst_index].clone();
    assert_eq!(src_rt.node(), src);
    assert_eq!(dst_rt.node(), dst);

    let received = Rc::new(Cell::new(0usize));
    let r2 = received.clone();
    dst_rt.vlink_listen(&mut world, 700, move |_w, v: VLink| {
        let v2 = v.clone();
        let r = r2.clone();
        v.set_handler(move |world, ev| {
            if ev == VLinkEvent::Readable {
                r.set(r.get() + v2.read_now(world, usize::MAX).len());
            }
        });
    });
    let client = src_rt.vlink_connect(&mut world, dst, 700);
    let start = world.now();
    client.post_write(&mut world, &vec![0xABu8; STREAM_BYTES]);
    let rr = received.clone();
    world.run_while(|| rr.get() < STREAM_BYTES);
    // run_while also exits when the event queue drains; a partial transfer
    // must fail loudly rather than inflate the tracked goodput number.
    assert_eq!(
        received.get(),
        STREAM_BYTES,
        "relayed stream transfer stalled short"
    );
    let secs = world.now().since(start).as_secs_f64();
    let stream_goodput_mb_s = STREAM_BYTES as f64 / secs / 1e6;

    let frames_dropped = fabric.total_dropped();
    MultiSiteResult {
        sites,
        layout,
        backbone: backbone_label.to_string(),
        hops,
        frames_sent: RELAY_FRAMES as u64,
        frames_delivered: delivered.get(),
        frames_relayed: fabric.total_relayed(),
        frames_dropped,
        frames_lost: (RELAY_FRAMES as u64)
            .saturating_sub(delivered.get())
            .saturating_sub(frames_dropped),
        first_frame_ms,
        stream_goodput_mb_s,
        stream_bytes: STREAM_BYTES,
    }
}

/// The default sweep: site count × layout × backbone class.
pub fn multi_site_sweep() -> Vec<MultiSiteResult> {
    let mut out = Vec::new();
    for sites in [2usize, 3, 4, 6] {
        for layout in [Layout::Star, Layout::Ring] {
            if layout == Layout::Ring && sites < 3 {
                continue;
            }
            out.push(multi_site_run(
                sites,
                layout,
                "vthd-wan",
                NetworkSpec::vthd_wan(),
            ));
            out.push(multi_site_run(
                sites,
                layout,
                "lossy-internet",
                NetworkSpec::lossy_internet(),
            ));
        }
    }
    out
}

/// Renders the results as a machine-readable JSON document.
pub fn multi_site_json(results: &[MultiSiteResult]) -> String {
    let mut s = String::from("{\n  \"experiment\": \"multi_site\",\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\"sites\": {}, \"layout\": \"{}\", \"backbone\": \"{}\", \"hops\": {}, ",
                "\"frames_sent\": {}, \"frames_delivered\": {}, ",
                "\"frames_relayed\": {}, \"frames_dropped\": {}, \"frames_lost\": {}, ",
                "\"first_frame_ms\": {}, \"stream_goodput_mb_s\": {:.4}, ",
                "\"stream_bytes\": {}}}{}\n"
            ),
            r.sites,
            r.layout.label(),
            r.backbone,
            r.hops,
            r.frames_sent,
            r.frames_delivered,
            r.frames_relayed,
            r.frames_dropped,
            r.frames_lost,
            r.first_frame_ms
                .map(|v| format!("{v:.4}"))
                .unwrap_or_else(|| "null".to_string()),
            r.stream_goodput_mb_s,
            r.stream_bytes,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Writes `BENCH_multi_site.json` (the perf-trajectory artifact tracked
/// across PRs) into the current directory and returns its path.
pub fn write_multi_site_json(results: &[MultiSiteResult]) -> std::io::Result<String> {
    let path = "BENCH_multi_site.json".to_string();
    std::fs::write(&path, multi_site_json(results))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_site_wan_run_relays_and_streams() {
        let r = multi_site_run(2, Layout::Star, "vthd-wan", NetworkSpec::vthd_wan());
        assert_eq!(r.hops, 3);
        // Every frame is accounted exactly once: delivered, dropped at a
        // gateway, or lost on a lossy link.
        assert_eq!(
            r.frames_delivered + r.frames_dropped + r.frames_lost,
            r.frames_sent,
            "{r:?}"
        );
        assert!(r.frames_relayed > 0, "{r:?}");
        // The WAN adds ≥ 8 ms one way.
        assert!(r.first_frame_ms.unwrap() >= 8.0, "{r:?}");
        assert!(r.stream_goodput_mb_s > 0.0, "{r:?}");
    }

    #[test]
    fn ring_routes_grow_with_site_count() {
        let r4 = multi_site_run(4, Layout::Ring, "vthd-wan", NetworkSpec::vthd_wan());
        let r6 = multi_site_run(6, Layout::Ring, "vthd-wan", NetworkSpec::vthd_wan());
        assert!(r4.hops >= 4, "{r4:?}");
        assert!(r6.hops > r4.hops, "{r6:?} vs {r4:?}");
        // Each extra backbone segment adds ≥ 8 ms of one-way latency.
        assert!(
            r6.first_frame_ms.unwrap() > r4.first_frame_ms.unwrap(),
            "{r6:?} vs {r4:?}"
        );
        assert!(r6.frames_relayed > r4.frames_relayed);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = multi_site_run(2, Layout::Star, "vthd-wan", NetworkSpec::vthd_wan());
        let json = multi_site_json(&[r]);
        assert!(json.contains("\"experiment\": \"multi_site\""));
        assert!(json.contains("\"sites\": 2"));
        assert!(json.contains("\"layout\": \"star\""));
        assert!(json.contains("\"frames_lost\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn lossy_backbone_loss_is_accounted_as_lost_not_dropped() {
        let r = multi_site_run(
            2,
            Layout::Star,
            "lossy-internet",
            NetworkSpec::lossy_internet(),
        );
        assert_eq!(
            r.frames_delivered + r.frames_dropped + r.frames_lost,
            r.frames_sent,
            "{r:?}"
        );
        assert!(
            r.frames_lost > 0,
            "a 2% lossy backbone must lose frames: {r:?}"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = multi_site_run(3, Layout::Star, "vthd-wan", NetworkSpec::vthd_wan());
        let b = multi_site_run(3, Layout::Star, "vthd-wan", NetworkSpec::vthd_wan());
        assert_eq!(a.frames_delivered, b.frames_delivered);
        assert_eq!(a.first_frame_ms, b.first_frame_ms);
        assert_eq!(a.stream_goodput_mb_s, b.stream_goodput_mb_s);
    }
}
