//! The multi-site grid experiment: hierarchical topologies with gateway
//! relaying, swept over site count × backbone class.
//!
//! This goes beyond the paper's two-cluster deployment: sites are isolated
//! behind gateways (only the gateway touches the backbone), so every
//! cross-site exchange is store-and-forwarded. The experiment measures
//! both levels of the new `gridtopo` subsystem:
//!
//! * frame relaying through the bounded-queue [`RelayFabric`] (delivery,
//!   drops, one-way latency across the gateway chain);
//! * stream relaying through the gateway proxies (goodput of a relayed
//!   VLink transfer).

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Instant;

use gridtopo::{
    check_transients, delta_reconvergences, full_recomputes, inject_link_churn, BackpressureMode,
    GridTopology, RelayConfig, RelayFabric, SiteSpec,
};
use padico_core::{
    admit_site_live, apply_backbone_delta, drain_site_live, runtimes_for_grid, PadicoRuntime,
    SelectorPreferences, VLink, VLinkEvent,
};
use simnet::{MetricsSnapshot, NetworkSpec, NodeId, ShardStats, SimDuration, SimWorld};

/// Which event-queue executor a scenario runs under.
///
/// `Single` is the classic one-heap queue; `ShardedMerge` splits the
/// queue into per-site timer-wheel lanes (lane 0 = control) merged at
/// pop time. The merge pops the global `(time, seq)` minimum, so a
/// sharded run is required to be **bit-for-bit identical** to the
/// single-queue run — `tests/executor_equivalence.rs` holds every
/// seeded scenario to byte-identical [`MetricsSnapshot`] JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Executor {
    /// The single global event queue.
    Single,
    /// Per-site sharded lanes behind the merging executor.
    ShardedMerge,
}

impl Executor {
    /// Lowercase label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Executor::Single => "single",
            Executor::ShardedMerge => "sharded",
        }
    }

    /// Applies this executor to a freshly built grid world.
    fn apply(self, world: &mut SimWorld, grid: &GridTopology) {
        if self == Executor::ShardedMerge {
            padico_core::enable_site_sharding(world, grid);
        }
    }
}

/// Backbone layout of a multi-site run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// One shared backbone network joining every gateway.
    Star,
    /// Point-to-point backbone segments forming a ring of gateways
    /// (cross-site routes grow with site count).
    Ring,
}

impl Layout {
    /// Lowercase label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Layout::Star => "star",
            Layout::Ring => "ring",
        }
    }
}

/// Result of one multi-site run.
#[derive(Debug, Clone)]
pub struct MultiSiteResult {
    /// Number of sites.
    pub sites: usize,
    /// Backbone layout.
    pub layout: Layout,
    /// Backbone label ("vthd-wan", "lossy-internet").
    pub backbone: String,
    /// Networks crossed by the measured cross-site route.
    pub hops: u32,
    /// Frames submitted in the frame-relay phase.
    pub frames_sent: u64,
    /// Frames delivered end to end.
    pub frames_delivered: u64,
    /// Total frames forwarded by gateways.
    pub frames_relayed: u64,
    /// Frames dropped at gateways (queue, TTL, routing).
    pub frames_dropped: u64,
    /// Frames lost in flight on the networks themselves (link loss), i.e.
    /// sent but neither delivered nor accounted as a gateway drop. The
    /// lossy-internet rows lose frames here while `frames_dropped` stays 0.
    pub frames_lost: u64,
    /// One-way latency of the first relayed frame, in milliseconds.
    /// `None` when no frame survived to the destination.
    pub first_frame_ms: Option<f64>,
    /// Goodput of the relayed stream transfer, MB/s.
    pub stream_goodput_mb_s: f64,
    /// Bytes moved in the stream phase.
    pub stream_bytes: usize,
    /// Simulator events executed per *host* second across the whole run
    /// (the wall-clock cost of the scenario, tracked across PRs).
    pub events_per_sec: f64,
}

/// Frames sent in the frame-relay phase.
const RELAY_FRAMES: usize = 100;
/// Payload of each relayed frame (fits the backbone MTU with headers).
const RELAY_FRAME_BYTES: usize = 1024;
/// Bytes pushed through the relayed VLink in the stream phase.
const STREAM_BYTES: usize = 128 * 1024;

/// Runs one multi-site measurement: `sites` SAN clusters joined by the
/// given backbone in the given layout, traffic between site 0 and the most
/// distant site.
pub fn multi_site_run(
    sites: usize,
    layout: Layout,
    backbone_label: &str,
    backbone: NetworkSpec,
) -> MultiSiteResult {
    assert!(sites >= 2);
    assert!(
        layout == Layout::Star || sites >= 3,
        "a ring needs 3+ sites"
    );
    let wall = Instant::now();
    let mut world = SimWorld::new(2024);
    let specs: Vec<SiteSpec> = (0..sites)
        .map(|i| SiteSpec::san_cluster(format!("s{i}"), 3))
        .collect();
    let grid = match layout {
        Layout::Star => GridTopology::star(&mut world, &specs, backbone),
        Layout::Ring => GridTopology::ring(&mut world, &specs, backbone),
    };
    let (rts, _proxies) = runtimes_for_grid(&mut world, &grid, SelectorPreferences::default());

    // In a ring the most distant site is halfway round; in a star every
    // non-local site is equally far.
    let far_site = match layout {
        Layout::Star => sites - 1,
        Layout::Ring => sites / 2,
    };
    let src = grid.site(0).node(1);
    let dst = grid.site(far_site).node(1);
    let hops = grid.routes.path_info(&world, src, dst).unwrap().hop_count as u32;

    // ---- Frame-relay phase -------------------------------------------- //
    let fabric = RelayFabric::new(grid.routes.clone(), RelayConfig::default());
    for node in grid.all_nodes() {
        fabric.attach(&mut world, node);
    }
    let first_at = Rc::new(Cell::new(None::<simnet::SimTime>));
    let delivered = Rc::new(Cell::new(0u64));
    let (f2, d2) = (first_at.clone(), delivered.clone());
    fabric.bind(&mut world, dst, 7, move |world, _msg| {
        if f2.get().is_none() {
            f2.set(Some(world.now()));
        }
        d2.set(d2.get() + 1);
    });
    let start = world.now();
    for _ in 0..RELAY_FRAMES {
        fabric
            .send(&mut world, src, dst, 7, vec![0u8; RELAY_FRAME_BYTES])
            .expect("relay send");
    }
    world.run();
    let first_frame_ms = first_at.get().map(|t| t.since(start).as_millis_f64());

    // ---- Stream phase (relayed VLink through gateway proxies) --------- //
    // Runtimes are in all_nodes() order: rank 1 of site 0, and rank 1 of
    // the last site.
    let src_rt = rts[1].clone();
    let dst_index: usize = grid.sites[..far_site]
        .iter()
        .map(|s| s.len())
        .sum::<usize>()
        + 1;
    let dst_rt = rts[dst_index].clone();
    assert_eq!(src_rt.node(), src);
    assert_eq!(dst_rt.node(), dst);

    let received = Rc::new(Cell::new(0usize));
    let r2 = received.clone();
    dst_rt.vlink_listen(&mut world, 700, move |_w, v: VLink| {
        let v2 = v.clone();
        let r = r2.clone();
        v.set_handler(move |world, ev| {
            if ev == VLinkEvent::Readable {
                r.set(r.get() + v2.read_now(world, usize::MAX).len());
            }
        });
    });
    let client = src_rt.vlink_connect(&mut world, dst, 700);
    let start = world.now();
    client.post_write(&mut world, &vec![0xABu8; STREAM_BYTES]);
    let rr = received.clone();
    world.run_while(|| rr.get() < STREAM_BYTES);
    // run_while also exits when the event queue drains; a partial transfer
    // must fail loudly rather than inflate the tracked goodput number.
    assert_eq!(
        received.get(),
        STREAM_BYTES,
        "relayed stream transfer stalled short"
    );
    let secs = world.now().since(start).as_secs_f64();
    let stream_goodput_mb_s = STREAM_BYTES as f64 / secs / 1e6;

    let frames_dropped = fabric.total_dropped();
    MultiSiteResult {
        sites,
        layout,
        backbone: backbone_label.to_string(),
        hops,
        frames_sent: RELAY_FRAMES as u64,
        frames_delivered: delivered.get(),
        frames_relayed: fabric.total_relayed(),
        frames_dropped,
        frames_lost: (RELAY_FRAMES as u64)
            .saturating_sub(delivered.get())
            .saturating_sub(frames_dropped),
        first_frame_ms,
        stream_goodput_mb_s,
        stream_bytes: STREAM_BYTES,
        events_per_sec: world.stats.events_executed as f64 / wall.elapsed().as_secs_f64().max(1e-9),
    }
}

// --------------------------------------------------------------------- //
// Incast: N senders fan into one gateway towards one receiver
// --------------------------------------------------------------------- //

/// Result of one incast run (N senders in one site, one receiver behind
/// the far gateway, reliable delivery with end-to-end retransmission).
#[derive(Debug, Clone)]
pub struct IncastResult {
    /// Number of senders fanning into the gateway.
    pub senders: usize,
    /// Relay backpressure mode swept ("drop" / "credit").
    pub mode: BackpressureMode,
    /// Unique application frames per sender.
    pub frames_per_sender: u64,
    /// Unique application frames overall (`senders × frames_per_sender`).
    pub frames_total: u64,
    /// Unique frames delivered to the receiver.
    pub frames_delivered: u64,
    /// Transmissions dropped at gateway queues, across all rounds.
    pub frames_dropped: u64,
    /// Transmissions lost on the wire (link loss), across all rounds.
    pub frames_lost: u64,
    /// Retransmissions the senders had to issue to complete delivery.
    pub retransmissions: u64,
    /// Send rounds until every frame arrived (1 == lossless first pass).
    pub rounds: u64,
    /// Virtual time from the first send to the last delivery.
    pub elapsed_ms: f64,
    /// Goodput of *completed reliable delivery*: unique payload bytes over
    /// the full elapsed time (retransmission rounds count against it).
    pub goodput_mb_s: f64,
    /// Cumulative credit-stall *frame-time* per sender, in milliseconds:
    /// the parked durations of all of a sender's frames summed (frames
    /// park concurrently, so — like CPU-seconds — this can exceed the
    /// run's elapsed wall-clock). Zero in drop mode.
    pub sender_stall_ms: f64,
    /// Simulator events executed per *host* second across the whole run.
    pub events_per_sec: f64,
}

/// Payload bytes of each incast frame (sender id + sequence + padding).
const INCAST_FRAME_BYTES: usize = 1024;
/// Ceiling on retransmission rounds (never reached in practice: every
/// round delivers at least the gateway's service capacity).
const INCAST_MAX_ROUNDS: u64 = 64;

/// Runs one incast measurement: `senders` nodes of one site all send
/// `frames_per_sender` frames to a single receiver behind the far
/// gateway, with application-level reliable delivery (missing frames are
/// retransmitted in rounds). In `drop` mode the shared gateway queue
/// discards the overload and the senders pay retransmission rounds; in
/// `credit` mode the senders park on gateway credits and everything
/// arrives in one pass.
pub fn incast_run(senders: usize, frames_per_sender: u64, mode: BackpressureMode) -> IncastResult {
    incast_case(senders, frames_per_sender, mode, 4242, Executor::Single).0
}

/// The telemetry snapshot of one quiesced incast run under the given
/// seed and executor — the executor-equivalence surface for this
/// scenario (two executors, same seed ⇒ byte-identical JSON).
pub fn incast_snapshot(
    senders: usize,
    frames_per_sender: u64,
    mode: BackpressureMode,
    seed: u64,
    exec: Executor,
) -> MetricsSnapshot {
    incast_case(senders, frames_per_sender, mode, seed, exec).1
}

/// [`incast_run`] parameterized by world seed and executor; also scrapes
/// the metrics snapshot at quiescence.
fn incast_case(
    senders: usize,
    frames_per_sender: u64,
    mode: BackpressureMode,
    seed: u64,
    exec: Executor,
) -> (IncastResult, MetricsSnapshot) {
    assert!(senders >= 1 && frames_per_sender >= 1);
    let wall = Instant::now();
    let mut world = SimWorld::new(seed);
    let grid = GridTopology::star(
        &mut world,
        &[
            SiteSpec::san_cluster("send", senders + 1),
            SiteSpec::san_cluster("recv", 2),
        ],
        NetworkSpec::vthd_wan(),
    );
    exec.apply(&mut world, &grid);
    // Each frame occupies the gateway's bounded memory for its 1 ms
    // store-and-forward hold while SAN arrivals land every few µs: the
    // entry gateway queue is the incast bottleneck (drops in `drop` mode,
    // credit stalls in `credit` mode). The capacity covers the WAN
    // bandwidth-delay product (~110 frames), so a credit window of the
    // same size can keep the backbone full.
    let config = RelayConfig {
        per_hop_latency: SimDuration::from_millis(1),
        queue_capacity: 128,
        backpressure: mode,
        ..Default::default()
    };
    let fabric = RelayFabric::new(grid.routes.clone(), config);
    for node in grid.all_nodes() {
        fabric.attach(&mut world, node);
    }
    let sender_nodes: Vec<_> = (1..=senders).map(|i| grid.site(0).node(i)).collect();
    let receiver = grid.site(1).node(1);

    // Receiver: dedup by (sender, seq), remember the last arrival time.
    let received: Rc<RefCell<Vec<Vec<bool>>>> =
        Rc::new(RefCell::new(vec![
            vec![false; frames_per_sender as usize];
            senders
        ]));
    let unique = Rc::new(Cell::new(0u64));
    let last_at = Rc::new(Cell::new(simnet::SimTime::ZERO));
    let (r2, u2, l2) = (received.clone(), unique.clone(), last_at.clone());
    fabric.bind(&mut world, receiver, 9, move |world, msg| {
        if msg.payload.len() < 6 {
            return;
        }
        let sender = u16::from_be_bytes([msg.payload[0], msg.payload[1]]) as usize;
        let seq = u32::from_be_bytes([
            msg.payload[2],
            msg.payload[3],
            msg.payload[4],
            msg.payload[5],
        ]) as usize;
        let mut seen = r2.borrow_mut();
        if !seen[sender][seq] {
            seen[sender][seq] = true;
            u2.set(u2.get() + 1);
            l2.set(world.now());
        }
    });

    let frames_total = senders as u64 * frames_per_sender;
    let start = world.now();
    let mut rounds = 0u64;
    let mut transmissions = 0u64;
    while unique.get() < frames_total && rounds < INCAST_MAX_ROUNDS {
        rounds += 1;
        for (si, &node) in sender_nodes.iter().enumerate() {
            for seq in 0..frames_per_sender as usize {
                if received.borrow()[si][seq] {
                    continue;
                }
                let mut payload = vec![0u8; INCAST_FRAME_BYTES];
                payload[0..2].copy_from_slice(&(si as u16).to_be_bytes());
                payload[2..6].copy_from_slice(&(seq as u32).to_be_bytes());
                fabric
                    .send(&mut world, node, receiver, 9, payload)
                    .expect("incast send");
                transmissions += 1;
            }
        }
        // One round = the burst plus everything it triggers (deliveries,
        // credit returns, parked resumes) draining.
        world.run();
    }
    let elapsed = last_at.get().since(start);
    let elapsed_ms = elapsed.as_millis_f64();
    let frames_delivered = unique.get();
    let frames_dropped = fabric.total_dropped();
    let goodput_mb_s = if elapsed_ms > 0.0 {
        (frames_delivered * INCAST_FRAME_BYTES as u64) as f64 / elapsed.as_secs_f64() / 1e6
    } else {
        0.0
    };
    let result = IncastResult {
        senders,
        mode,
        frames_per_sender,
        frames_total,
        frames_delivered,
        frames_dropped,
        frames_lost: transmissions
            .saturating_sub(fabric.delivered_frames())
            .saturating_sub(frames_dropped),
        retransmissions: transmissions - frames_total,
        rounds,
        elapsed_ms,
        goodput_mb_s,
        sender_stall_ms: fabric.credit_stall_ns() as f64 / 1e6 / senders as f64,
        events_per_sec: world.stats.events_executed as f64 / wall.elapsed().as_secs_f64().max(1e-9),
    };
    (result, world.metrics_snapshot())
}

/// The incast sweep: sender fan-in × backpressure mode.
pub fn incast_sweep() -> Vec<IncastResult> {
    let mut out = Vec::new();
    for senders in [2usize, 4, 8, 16] {
        for mode in [BackpressureMode::Drop, BackpressureMode::Credit] {
            out.push(incast_run(senders, 64, mode));
        }
    }
    out
}

// --------------------------------------------------------------------- //
// Failover: kill the primary gateway mid-transfer, measure the recovery
// --------------------------------------------------------------------- //

/// Result of one failover run: N relayed streams fan into a 2-gateway
/// destination site of a cluster-of-clusters world; the destination-side
/// primary gateway is fail-stopped mid-transfer and the streams must
/// resume through the secondary automatically.
#[derive(Debug, Clone)]
pub struct FailoverResult {
    /// Concurrent relayed streams (one per sender node).
    pub senders: usize,
    /// Payload bytes per stream.
    pub payload_bytes: usize,
    /// Bytes (across all streams) delivered when the primary was killed.
    pub killed_at_bytes: usize,
    /// Virtual ms from the kill to the first byte delivered over a
    /// migrated (post-kill) connection. `None` when no migration was
    /// needed (everything already acknowledged) or recovery failed.
    pub recovery_ms: Option<f64>,
    /// Every stream delivered its full payload byte-exactly (zero
    /// acknowledged bytes lost, zero duplicated).
    pub completed: bool,
    /// Connections the receiver accepted beyond the initial N — the
    /// streams that actually re-dialed through the secondary.
    pub migrated_connections: usize,
    /// End-to-end goodput of the faulted run, MB/s (aggregate unique
    /// payload over the full elapsed time, recovery included).
    pub goodput_mb_s: f64,
    /// Goodput of the identical run without the kill, MB/s.
    pub baseline_goodput_mb_s: f64,
    /// Relative goodput dip paid for the recovery, percent.
    pub goodput_dip_pct: f64,
    /// Simulator events executed per *host* second in the faulted run.
    pub events_per_sec: f64,
    /// Telemetry snapshot scraped at quiescence of the faulted run —
    /// embedded in `BENCH_multi_site.json` so the artifact carries the
    /// full per-gateway/per-node counter state of the failover phase.
    pub metrics: MetricsSnapshot,
}

/// Payload pushed through each relayed stream in the failover runs.
const FAILOVER_STREAM_BYTES: usize = 192 * 1024;

/// Everything one [`failover_case`] run measures.
struct FailoverCaseOut {
    recovery_ms: Option<f64>,
    completed: bool,
    migrated: usize,
    goodput: f64,
    killed_at: usize,
    events_per_sec: f64,
    metrics: MetricsSnapshot,
}

/// One failover measurement at the given fan-in. Builds a 2-region
/// cluster-of-clusters whose receiving site has two ranked gateways,
/// starts `senders` relayed streams (credit backpressure + the
/// `gateway_failover` preference), and — unless `baseline` — fail-stops
/// the destination-side primary gateway once a third of the bytes have
/// arrived. Returns exact-delivery verdicts and the recovery latency.
///
/// With `instrument`, a short prelude exercises the other telemetry
/// surfaces in the same world before the streams start — a credit-mode
/// frame burst through a [`RelayFabric`], one CORBA invocation and one
/// MPI exchange — so the scraped snapshot covers the relay fabric,
/// gateway credits and both personalities on top of the trunk/route/proxy
/// metrics the failover itself produces. The prelude fully drains before
/// the streams start, so it never overlaps the measured recovery.
fn failover_case(senders: usize, baseline: bool, instrument: bool) -> FailoverCaseOut {
    failover_case_seeded(senders, baseline, instrument, 0xFA17, Executor::Single)
}

/// The telemetry snapshot of one quiesced *faulted* failover run
/// (gateway killed mid-transfer, no instrumentation prelude) under the
/// given seed and executor, plus its exact-delivery verdict — the
/// executor-equivalence surface for this scenario.
pub fn failover_snapshot(senders: usize, seed: u64, exec: Executor) -> (MetricsSnapshot, bool) {
    let out = failover_case_seeded(senders, false, false, seed, exec);
    (out.metrics, out.completed)
}

/// [`failover_case`] parameterized by world seed and executor.
fn failover_case_seeded(
    senders: usize,
    baseline: bool,
    instrument: bool,
    seed: u64,
    exec: Executor,
) -> FailoverCaseOut {
    use padico_core::PadicoRuntime;

    let wall = Instant::now();
    let mut world = SimWorld::new(seed);
    let regions = vec![
        vec![SiteSpec::san_cluster("send", senders + 2).with_gateways(2)],
        vec![SiteSpec::san_cluster("recv", 3).with_gateways(2)],
    ];
    let grid = GridTopology::cluster_of_clusters(
        &mut world,
        &regions,
        NetworkSpec::vthd_wan(),
        NetworkSpec::vthd_wan(),
    );
    exec.apply(&mut world, &grid);
    let prefs = SelectorPreferences {
        relay_backpressure: BackpressureMode::Credit,
        gateway_failover: true,
        ..Default::default()
    };
    let (rts, _proxies) = runtimes_for_grid(&mut world, &grid, prefs);
    let recv_site = grid.site(1).clone();
    let dst_rt = rts
        .iter()
        .find(|rt| rt.node() == recv_site.node(2))
        .unwrap()
        .clone();
    let dst = dst_rt.node();
    let primary_rt: PadicoRuntime = rts
        .iter()
        .find(|rt| rt.node() == recv_site.gateways[0])
        .unwrap()
        .clone();

    if instrument {
        use middleware::{IdlValue, MpiComm, Orb, OrbImpl};

        let probe_rt = rts
            .iter()
            .find(|rt| rt.node() == grid.site(0).node(2))
            .unwrap()
            .clone();

        // Credit-mode frame burst through a relay fabric on the same grid.
        let fabric = RelayFabric::new(
            grid.routes.clone(),
            RelayConfig {
                backpressure: BackpressureMode::Credit,
                ..Default::default()
            },
        );
        for node in grid.all_nodes() {
            fabric.attach(&mut world, node);
        }
        let frames = Rc::new(Cell::new(0u64));
        let f2 = frames.clone();
        fabric.bind(&mut world, dst, 7, move |_w, _msg| f2.set(f2.get() + 1));
        for _ in 0..32 {
            fabric
                .send(&mut world, probe_rt.node(), dst, 7, vec![0u8; 1024])
                .expect("prelude relay send");
        }
        world.run();
        assert_eq!(frames.get(), 32, "prelude frame burst must drain");

        // One CORBA invocation across the backbone…
        let server = Orb::new(dst_rt.clone(), OrbImpl::OmniOrb4);
        server.register_servant("echo", |_w, _op, arg| arg);
        server.activate(&mut world, 910);
        let client = Orb::new(probe_rt.clone(), OrbImpl::OmniOrb4);
        let objref = client.object_ref(dst, 910, "echo");
        let replied = Rc::new(Cell::new(false));
        let r2 = replied.clone();
        client.invoke(
            &mut world,
            &objref,
            "ping",
            IdlValue::Void,
            move |_w, _r| r2.set(true),
        );
        world.run();
        assert!(replied.get(), "prelude CORBA invoke must complete");

        // …and one MPI exchange over a 2-rank circuit spanning the sites.
        let members = vec![probe_rt.node(), dst];
        let c0 = probe_rt.circuit_create(&mut world, members.clone(), 77);
        let c1 = dst_rt.circuit_create(&mut world, members, 77);
        let m0 = MpiComm::new(&mut world, c0);
        let m1 = MpiComm::new(&mut world, c1);
        let got = Rc::new(Cell::new(false));
        let g2 = got.clone();
        m1.recv(&mut world, Some(0), Some(5), move |_w, _msg| g2.set(true));
        m0.send(&mut world, 1, 5, &[0xA5; 64]);
        world.run();
        assert!(got.get(), "prelude MPI exchange must complete");
    }

    // One service per sender; the receiver logs bytes per connection in
    // accept order, so exactly-once reassembly is checkable per stream.
    let logs: Vec<Rc<RefCell<Vec<Vec<u8>>>>> = (0..senders)
        .map(|s| {
            let log: Rc<RefCell<Vec<Vec<u8>>>> = Rc::new(RefCell::new(Vec::new()));
            let l = log.clone();
            dst_rt.vlink_listen(&mut world, 800 + s as u16, move |_w, v: VLink| {
                let slot = {
                    let mut all = l.borrow_mut();
                    all.push(Vec::new());
                    all.len() - 1
                };
                let v2 = v.clone();
                let l2 = l.clone();
                v.set_handler(move |world, ev| {
                    if ev == VLinkEvent::Readable {
                        l2.borrow_mut()[slot].extend(v2.read_now(world, usize::MAX));
                    }
                });
            });
            log
        })
        .collect();
    let payloads: Vec<Vec<u8>> = (0..senders)
        .map(|s| {
            (0..FAILOVER_STREAM_BYTES)
                .map(|i| ((i * 7 + s * 13) % 251) as u8)
                .collect()
        })
        .collect();
    let sender_rts: Vec<_> = (0..senders)
        .map(|s| {
            rts.iter()
                .find(|rt| rt.node() == grid.site(0).node(2 + s))
                .unwrap()
                .clone()
        })
        .collect();
    let start = world.now();
    for (s, rt) in sender_rts.iter().enumerate() {
        let client = rt.vlink_connect(&mut world, dst, 800 + s as u16);
        client.post_write(&mut world, &payloads[s]);
    }

    let total_bytes = senders * FAILOVER_STREAM_BYTES;
    let delivered = |logs: &[Rc<RefCell<Vec<Vec<u8>>>>]| -> usize {
        logs.iter()
            .map(|l| l.borrow().iter().map(Vec::len).sum::<usize>())
            .sum()
    };
    let mut killed_at = 0;
    let mut recovery_ms = None;
    if !baseline {
        let logs2 = logs.clone();
        world.run_while(move || delivered(&logs2) < total_bytes / 3);
        killed_at = delivered(&logs);
        let pre_kill_conns: Vec<usize> = logs.iter().map(|l| l.borrow().len()).collect();
        let t_kill = world.now();
        primary_rt.kill(&mut world);
        // Watch for the first byte on a migrated (post-kill) connection.
        let logs2 = logs.clone();
        let pk = pre_kill_conns.clone();
        let resumed = move || -> bool {
            logs2
                .iter()
                .zip(&pk)
                .any(|(l, &n)| l.borrow().iter().skip(n).any(|conn| !conn.is_empty()))
        };
        let r2 = resumed.clone();
        world.run_while(move || !r2());
        if resumed() {
            recovery_ms = Some(world.now().since(t_kill).as_millis_f64());
        }
    }
    world.run();
    let elapsed = world.now().since(start).as_secs_f64();
    let goodput = delivered(&logs) as f64 / elapsed / 1e6;

    // Exactly-once verdict: per stream, the concatenation across its
    // connections (accept order) must equal the payload.
    let mut completed = true;
    let mut migrated = 0usize;
    for (s, log) in logs.iter().enumerate() {
        let log = log.borrow();
        migrated += log.len().saturating_sub(1);
        let got: Vec<u8> = log.iter().flatten().copied().collect();
        if got != payloads[s] {
            completed = false;
            if std::env::var_os("FAILOVER_DEBUG").is_some() {
                let mismatch = got
                    .iter()
                    .zip(&payloads[s])
                    .position(|(a, b)| a != b)
                    .unwrap_or(got.len().min(payloads[s].len()));
                eprintln!(
                    "stream {s}: got {} bytes over {} conns (expected {}), first mismatch at {mismatch}",
                    got.len(),
                    log.len(),
                    payloads[s].len(),
                );
            }
        }
    }
    if std::env::var_os("FAILOVER_DEBUG").is_some() && !completed {
        for rt in &rts {
            for dump in rt.flight_dumps() {
                eprintln!("{dump}");
            }
        }
    }
    FailoverCaseOut {
        recovery_ms,
        completed,
        migrated,
        goodput,
        killed_at,
        events_per_sec: world.stats.events_executed as f64 / wall.elapsed().as_secs_f64().max(1e-9),
        metrics: world.metrics_snapshot(),
    }
}

/// Runs the failover measurement at `senders` fan-in (plus the matching
/// no-kill baseline for the goodput-dip comparison).
pub fn failover_run(senders: usize) -> FailoverResult {
    let baseline_goodput = failover_case(senders, true, false).goodput;
    let out = failover_case(senders, false, false);
    FailoverResult {
        senders,
        payload_bytes: FAILOVER_STREAM_BYTES,
        killed_at_bytes: out.killed_at,
        recovery_ms: out.recovery_ms,
        completed: out.completed,
        migrated_connections: out.migrated,
        goodput_mb_s: out.goodput,
        baseline_goodput_mb_s: baseline_goodput,
        goodput_dip_pct: if baseline_goodput > 0.0 {
            (1.0 - out.goodput / baseline_goodput) * 100.0
        } else {
            0.0
        },
        events_per_sec: out.events_per_sec,
        metrics: out.metrics,
    }
}

/// The telemetry smoke: one *instrumented* faulted failover run (frame
/// burst, CORBA invocation and MPI exchange preceding the gateway-kill
/// stream scenario), scraped into a single [`MetricsSnapshot`] at
/// quiescence. Returns the snapshot plus the exact-delivery/recovery
/// verdicts the caller gates on.
pub fn failover_metrics(senders: usize) -> (MetricsSnapshot, bool, Option<f64>, usize) {
    let out = failover_case(senders, false, true);
    (out.metrics, out.completed, out.recovery_ms, out.migrated)
}

/// Cross-checks the conservation invariants every quiesced run must obey,
/// returning one human-readable line per violation (empty == healthy):
///
/// * per gateway, relay credits consumed == credits returned;
/// * relay-fabric frames sent == delivered + unclaimed + Σ dropped
///   (lossless backbones — nothing vanishes without a drop counter);
/// * per simulated network, frames dropped + unclaimed ≤ frames sent
///   (a fabric can only lose what actually entered it);
/// * across the sharded executor's lanes, Σ cross-lane departures ==
///   Σ cross-lane arrivals (every relayed event lands exactly once);
/// * no frame left parked on gateway credits;
/// * no stream left parked on trunk memory, and no received byte left
///   unconsumed in trunk receive buffers.
pub fn conservation_violations(snap: &MetricsSnapshot) -> Vec<String> {
    let mut violations = Vec::new();

    // Per-gateway credit conservation at quiescence.
    let consumed_keys: Vec<String> = snap
        .with_prefix("relay.gateway.credits_consumed{")
        .map(|(k, _)| k.to_string())
        .collect();
    for key in consumed_keys {
        let labels = &key["relay.gateway.credits_consumed".len()..];
        let consumed = snap.counter(&key).unwrap_or(0);
        let returned = snap
            .counter(&format!("relay.gateway.credits_returned{labels}"))
            .unwrap_or(0);
        if consumed != returned {
            violations.push(format!(
                "credit leak at gateway {labels}: consumed {consumed} != returned {returned}"
            ));
        }
    }

    // Frame conservation across the relay fabric.
    if let Some(sent) = snap.counter("relay.fabric.frames_sent") {
        let delivered = snap.counter("relay.fabric.frames_delivered").unwrap_or(0);
        let unclaimed = snap.counter("relay.fabric.frames_unclaimed").unwrap_or(0);
        let dropped: u64 = ["queue_full", "ttl", "no_route", "fault", "gateway_down"]
            .iter()
            .map(|cause| snap.counter_total(&format!("relay.gateway.frames_dropped_{cause}")))
            .sum();
        if sent != delivered + unclaimed + dropped {
            violations.push(format!(
                "frame leak in the relay fabric: sent {sent} != delivered {delivered} \
                 + unclaimed {unclaimed} + dropped {dropped}"
            ));
        }
    }
    if let Some(parked) = snap.gauge("relay.fabric.parked_frames") {
        if parked != 0 {
            violations.push(format!("{parked} frames left parked on gateway credits"));
        }
    }

    // Per-network frame accounting: a fabric cannot drop or strand more
    // frames than were ever pushed onto it.
    let sent_keys: Vec<String> = snap
        .with_prefix("sim.net.frames_sent{")
        .map(|(k, _)| k.to_string())
        .collect();
    for key in sent_keys {
        let labels = &key["sim.net.frames_sent".len()..];
        let sent = snap.counter(&key).unwrap_or(0);
        let dropped = snap
            .counter(&format!("sim.net.frames_dropped{labels}"))
            .unwrap_or(0);
        let unclaimed = snap
            .counter(&format!("sim.net.frames_unclaimed{labels}"))
            .unwrap_or(0);
        if dropped + unclaimed > sent {
            violations.push(format!(
                "frame over-accounting on net {labels}: dropped {dropped} \
                 + unclaimed {unclaimed} > sent {sent}"
            ));
        }
    }

    // Cross-lane event conservation in the sharded executor: departures
    // and arrivals are incremented pairwise, so over all lanes they must
    // balance exactly. (Only the lane-labelled counters participate: the
    // partitioned executor's unlabelled cross_in/cross_out settle against
    // *other shards'* snapshots, not this one.)
    let lane_cross_in: u64 = snap
        .with_prefix("sim.executor.cross_in{")
        .filter_map(|(k, _)| snap.counter(k))
        .sum();
    let lane_cross_out: u64 = snap
        .with_prefix("sim.executor.cross_out{")
        .filter_map(|(k, _)| snap.counter(k))
        .sum();
    if lane_cross_in != lane_cross_out {
        violations.push(format!(
            "cross-lane event leak in the sharded executor: \
             {lane_cross_out} departures != {lane_cross_in} arrivals"
        ));
    }

    // Trunk memory fully drained: nothing parked, nothing buffered.
    for (key, _) in snap.with_prefix("trunk.memory.parked_streams{") {
        if let Some(parked) = snap.gauge(key) {
            if parked != 0 {
                violations.push(format!("{parked} streams left parked at {key}"));
            }
        }
    }
    for (key, _) in snap.with_prefix("trunk.memory.recv_occupancy{") {
        if let Some(held) = snap.gauge(key) {
            if held != 0 {
                violations.push(format!(
                    "{held} bytes left in trunk receive buffers at {key}"
                ));
            }
        }
    }

    violations
}

/// The failover sweep: kill the destination-side primary gateway
/// mid-transfer at fan-in 1 / 4 / 8.
pub fn failover_sweep() -> Vec<FailoverResult> {
    [1usize, 4, 8].into_iter().map(failover_run).collect()
}

// --------------------------------------------------------------------- //
// Churn: seeded flap schedule + live site admit/drain, transient-checked
// --------------------------------------------------------------------- //

/// Result of one churn run: a seeded flap schedule replayed through the
/// runtime layer (every delta reconverges the backbone incrementally and
/// republishes routes to every live runtime), followed by one live site
/// admit and one live drain — with the transient-safety checker run
/// after every reconvergence step and application traffic probed along
/// the way.
#[derive(Debug, Clone)]
pub struct ChurnResult {
    /// Number of sites in the initial ring.
    pub sites: usize,
    /// Down flaps in the schedule (each paired with a later up).
    pub flaps: usize,
    /// Deltas applied (downs + ups).
    pub steps: usize,
    /// Incremental backbone reconvergences this run performed
    /// (process-counter diff: flap deltas + the admit/drain deltas).
    pub delta_reconvergences: u64,
    /// Full table rebuilds during the churn itself — the headline number:
    /// **must be 0** (the one construction-time build is excluded).
    pub full_recomputes_during_churn: u64,
    /// Intra-site tables recomputed across all flap steps (0: flaps only
    /// touch the backbone mask).
    pub sites_recomputed: u64,
    /// Host-time cost of one delta step (table patch + route republish to
    /// every runtime), averaged / worst-case, in milliseconds.
    pub reconverge_ms_avg: f64,
    /// Worst single-step reconvergence cost, host milliseconds.
    pub reconverge_ms_max: f64,
    /// Transient-invariant violations (loops, blackholes, phantom routes,
    /// cost mismatches) summed over every intermediate state. Must be 0.
    pub transient_violations: usize,
    /// Worst-step count of node pairs whose route cost differed from the
    /// pristine table — the disruption footprint of the churn (bounded by
    /// the redundancy the flaps removed, not the grid size).
    pub pairs_disrupted_max: usize,
    /// Host ms to admit a new site live (build + proxies + trunks +
    /// republish).
    pub admit_ms: f64,
    /// Host ms to drain the admitted site gracefully.
    pub drain_ms: f64,
    /// Trunks retired by the drain (both directions).
    pub trunks_retired: u32,
    /// Application exchanges probed at baseline / mid-churn / post-churn /
    /// into the admitted site / between survivors — all must complete.
    pub exchanges_ok: bool,
    /// Conservation violations (credit leaks, frame leaks, parked
    /// leftovers) in the telemetry snapshot at quiescence. Must be 0.
    pub conservation_violations: usize,
    /// Simulator events executed per *host* second across the whole run.
    pub events_per_sec: f64,
}

/// Bytes pushed through each churn-probe exchange.
const CHURN_PROBE_BYTES: usize = 8 * 1024;

/// One application-level probe: a relayed VLink exchange from `from` to
/// `to` that must deliver `CHURN_PROBE_BYTES` byte-exactly. Returns
/// whether it completed (run_while also exits on a drained event queue,
/// so a blackholed probe reports `false` instead of hanging).
fn churn_probe(
    world: &mut SimWorld,
    rts: &[PadicoRuntime],
    from: NodeId,
    to: NodeId,
    service: u16,
) -> bool {
    let src_rt = rts.iter().find(|rt| rt.node() == from).unwrap().clone();
    let dst_rt = rts.iter().find(|rt| rt.node() == to).unwrap().clone();
    let received = Rc::new(Cell::new(0usize));
    let r2 = received.clone();
    dst_rt.vlink_listen(world, service, move |_w, v: VLink| {
        let v2 = v.clone();
        let r = r2.clone();
        v.set_handler(move |world, ev| {
            if ev == VLinkEvent::Readable {
                r.set(r.get() + v2.read_now(world, usize::MAX).len());
            }
        });
    });
    let client = src_rt.vlink_connect(world, to, service);
    client.post_write(world, &vec![0x5Au8; CHURN_PROBE_BYTES]);
    let rr = received.clone();
    world.run_while(|| rr.get() < CHURN_PROBE_BYTES);
    received.get() == CHURN_PROBE_BYTES
}

/// Node pairs whose route cost differs between `now` and `pristine`.
fn pairs_disrupted(grid: &GridTopology, pristine: &gridtopo::GridRoutes) -> usize {
    let nodes = grid.all_nodes();
    let mut n = 0;
    for &a in &nodes {
        for &b in &nodes {
            if a != b && grid.routes.cost(a, b) != pristine.cost(a, b) {
                n += 1;
            }
        }
    }
    n
}

/// Runs one churn measurement on a `sites`-site ring of redundant
/// (2-gateway) SAN clusters: replays a seeded schedule of `flaps` flap
/// pairs through [`apply_backbone_delta`] with the transient checker at
/// every step, then admits a fresh site live, exchanges with it, and
/// drains it again. Deterministic in its arguments.
pub fn churn_run(sites: usize, flaps: usize) -> ChurnResult {
    churn_case(sites, flaps, 0xC09E, Executor::Single).0
}

/// The telemetry snapshot of one quiesced churn run under the given
/// seed and executor — the executor-equivalence surface for this
/// scenario. The seed drives both the world RNG and the flap schedule.
pub fn churn_snapshot(sites: usize, flaps: usize, seed: u64, exec: Executor) -> MetricsSnapshot {
    churn_case(sites, flaps, seed, exec).1
}

/// Cross-shard accounting of one *sharded* churn run — the surface the
/// cross-shard conservation test drives: frames crossing gateway
/// boundaries during churn must conserve exactly, per shard.
#[derive(Debug, Clone)]
pub struct ShardChurnReport {
    /// The churn verdicts themselves.
    pub result: ChurnResult,
    /// Human-readable conservation violations from the quiesced
    /// snapshot (per-gateway credits, fabric frames, parked leftovers).
    pub violations: Vec<String>,
    /// Per-lane executor counters (lane 0 = control, lane i+1 = site i).
    pub shard: ShardStats,
    /// The quiesced telemetry snapshot, for frame-conservation checks.
    pub snapshot: MetricsSnapshot,
}

/// Runs one churn measurement under the sharded-merge executor and
/// returns the per-shard accounting alongside the verdicts.
pub fn churn_shard_report(sites: usize, flaps: usize, seed: u64) -> ShardChurnReport {
    let (result, snapshot, shard) = churn_case(sites, flaps, seed, Executor::ShardedMerge);
    ShardChurnReport {
        result,
        violations: conservation_violations(&snapshot),
        shard: shard.expect("sharded churn run must expose shard stats"),
        snapshot,
    }
}

/// [`churn_run`] parameterized by seed and executor; also scrapes the
/// metrics snapshot and (when sharded) the per-lane counters.
fn churn_case(
    sites: usize,
    flaps: usize,
    seed: u64,
    exec: Executor,
) -> (ChurnResult, MetricsSnapshot, Option<ShardStats>) {
    assert!(sites >= 3, "a ring needs 3+ sites");
    let wall = Instant::now();
    let mut world = SimWorld::new(seed);
    let specs: Vec<SiteSpec> = (0..sites)
        .map(|i| SiteSpec::san_cluster(format!("s{i}"), 3).with_gateways(2))
        .collect();
    let mut grid = GridTopology::ring(&mut world, &specs, NetworkSpec::vthd_wan());
    exec.apply(&mut world, &grid);
    let prefs = SelectorPreferences {
        relay_backpressure: BackpressureMode::Credit,
        gateway_failover: true,
        ..Default::default()
    };
    let (mut rts, mut proxies) = runtimes_for_grid(&mut world, &grid, prefs.clone());
    let pristine = grid.routes.clone();
    let full_before = full_recomputes();
    let delta_before = delta_reconvergences();

    let src = grid.site(0).node(2);
    let far = grid.site(sites / 2).node(2);
    let mut service = 8200u16;
    let mut probe = |world: &mut SimWorld, rts: &[PadicoRuntime], from: NodeId, to: NodeId| {
        service += 1;
        churn_probe(world, rts, from, to, service)
    };
    let mut exchanges_ok = probe(&mut world, &rts, src, far);

    // ---- Flap schedule, transient-checked at every step --------------- //
    let schedule = inject_link_churn(&grid, seed, flaps);
    let mut violations = 0usize;
    let mut sites_recomputed = 0u64;
    let mut step_ms: Vec<f64> = Vec::with_capacity(schedule.deltas.len());
    let mut disrupted_max = 0usize;
    for (i, delta) in schedule.deltas.iter().enumerate() {
        let t0 = Instant::now();
        let stats = apply_backbone_delta(&mut world, &mut grid, &rts, delta)
            .expect("flap deltas never violate gateway isolation");
        step_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        sites_recomputed += stats.sites_recomputed as u64;
        violations += check_transients(&world, &grid).len();
        disrupted_max = disrupted_max.max(pairs_disrupted(&grid, &pristine));
        if i == 0 {
            // Mid-churn liveness: traffic must flow through the degraded
            // grid, not just at the endpoints of the schedule.
            exchanges_ok &= probe(&mut world, &rts, src, far);
        }
    }
    exchanges_ok &= probe(&mut world, &rts, src, far);

    // ---- Live admit + drain ------------------------------------------- //
    let late = SiteSpec::san_cluster("late", 3).with_gateways(2);
    let t0 = Instant::now();
    let admitted =
        admit_site_live(&mut world, &mut grid, &mut rts, &late, prefs).expect("admit late site");
    let admit_ms = t0.elapsed().as_secs_f64() * 1e3;
    violations += check_transients(&world, &grid).len();
    let late_node = grid.site(admitted.index).node(2);
    exchanges_ok &= probe(&mut world, &rts, src, late_node);
    proxies.extend(admitted.proxies);

    let t0 = Instant::now();
    let report = drain_site_live(&mut world, &mut grid, &rts, admitted.index).expect("drain site");
    let drain_ms = t0.elapsed().as_secs_f64() * 1e3;
    violations += check_transients(&world, &grid).len();
    exchanges_ok &= probe(&mut world, &rts, src, far);

    world.run();
    let snap = world.metrics_snapshot();
    let conservation = conservation_violations(&snap).len();
    let steps = step_ms.len();
    let result = ChurnResult {
        sites,
        flaps,
        steps,
        delta_reconvergences: delta_reconvergences() - delta_before,
        full_recomputes_during_churn: full_recomputes() - full_before,
        sites_recomputed,
        reconverge_ms_avg: step_ms.iter().sum::<f64>() / steps.max(1) as f64,
        reconverge_ms_max: step_ms.iter().cloned().fold(0.0, f64::max),
        transient_violations: violations,
        pairs_disrupted_max: disrupted_max,
        admit_ms,
        drain_ms,
        trunks_retired: report.trunks_retired,
        exchanges_ok,
        conservation_violations: conservation,
        events_per_sec: world.stats.events_executed as f64 / wall.elapsed().as_secs_f64().max(1e-9),
    };
    (result, snap, world.shard_stats().cloned())
}

/// The churn sweep: ring size × fixed flap count.
pub fn churn_sweep() -> Vec<ChurnResult> {
    [3usize, 4, 6]
        .into_iter()
        .map(|s| churn_run(s, 6))
        .collect()
}

/// The default sweep: site count × layout × backbone class.
pub fn multi_site_sweep() -> Vec<MultiSiteResult> {
    let mut out = Vec::new();
    for sites in [2usize, 3, 4, 6] {
        for layout in [Layout::Star, Layout::Ring] {
            if layout == Layout::Ring && sites < 3 {
                continue;
            }
            out.push(multi_site_run(
                sites,
                layout,
                "vthd-wan",
                NetworkSpec::vthd_wan(),
            ));
            out.push(multi_site_run(
                sites,
                layout,
                "lossy-internet",
                NetworkSpec::lossy_internet(),
            ));
        }
    }
    out
}

/// Renders the multi-site, incast, failover and churn results as one
/// machine-readable JSON document.
pub fn multi_site_json(
    results: &[MultiSiteResult],
    incast: &[IncastResult],
    failover: &[FailoverResult],
    churn: &[ChurnResult],
    scale: Option<&crate::scale::ScaleResult>,
    fullstack: Option<&crate::fullstack::FullStackReport>,
) -> String {
    let mut s = String::from("{\n  \"experiment\": \"multi_site\",\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\"sites\": {}, \"layout\": \"{}\", \"backbone\": \"{}\", \"hops\": {}, ",
                "\"frames_sent\": {}, \"frames_delivered\": {}, ",
                "\"frames_relayed\": {}, \"frames_dropped\": {}, \"frames_lost\": {}, ",
                "\"first_frame_ms\": {}, \"stream_goodput_mb_s\": {:.4}, ",
                "\"stream_bytes\": {}, \"events_per_sec\": {:.0}}}{}\n"
            ),
            r.sites,
            r.layout.label(),
            r.backbone,
            r.hops,
            r.frames_sent,
            r.frames_delivered,
            r.frames_relayed,
            r.frames_dropped,
            r.frames_lost,
            r.first_frame_ms
                .map(|v| format!("{v:.4}"))
                .unwrap_or_else(|| "null".to_string()),
            r.stream_goodput_mb_s,
            r.stream_bytes,
            r.events_per_sec,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    s.push_str("  ],\n  \"incast\": [\n");
    for (i, r) in incast.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\"senders\": {}, \"mode\": \"{}\", \"frames_per_sender\": {}, ",
                "\"frames_total\": {}, \"frames_delivered\": {}, \"frames_dropped\": {}, ",
                "\"frames_lost\": {}, \"retransmissions\": {}, \"rounds\": {}, ",
                "\"elapsed_ms\": {:.4}, \"goodput_mb_s\": {:.4}, ",
                "\"sender_stall_ms\": {:.4}, \"events_per_sec\": {:.0}}}{}\n"
            ),
            r.senders,
            r.mode.label(),
            r.frames_per_sender,
            r.frames_total,
            r.frames_delivered,
            r.frames_dropped,
            r.frames_lost,
            r.retransmissions,
            r.rounds,
            r.elapsed_ms,
            r.goodput_mb_s,
            r.sender_stall_ms,
            r.events_per_sec,
            if i + 1 == incast.len() { "" } else { "," },
        ));
    }
    s.push_str("  ],\n  \"failover\": [\n");
    for (i, r) in failover.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\"senders\": {}, \"payload_bytes\": {}, \"killed_at_bytes\": {}, ",
                "\"recovery_ms\": {}, \"completed\": {}, \"migrated_connections\": {}, ",
                "\"goodput_mb_s\": {:.4}, \"baseline_goodput_mb_s\": {:.4}, ",
                "\"goodput_dip_pct\": {:.2}, \"events_per_sec\": {:.0}}}{}\n"
            ),
            r.senders,
            r.payload_bytes,
            r.killed_at_bytes,
            r.recovery_ms
                .map(|v| format!("{v:.4}"))
                .unwrap_or_else(|| "null".to_string()),
            r.completed,
            r.migrated_connections,
            r.goodput_mb_s,
            r.baseline_goodput_mb_s,
            r.goodput_dip_pct,
            r.events_per_sec,
            if i + 1 == failover.len() { "" } else { "," },
        ));
    }
    s.push_str("  ],\n  \"churn\": [\n");
    for (i, r) in churn.iter().enumerate() {
        s.push_str(&churn_json_row(r));
        s.push_str(if i + 1 == churn.len() { "\n" } else { ",\n" });
    }
    // The measured 10⁵-node partitioned-executor row (null when the
    // caller skipped the scale phase).
    s.push_str("  ],\n  \"scale\": ");
    match scale {
        Some(r) => s.push_str(&crate::scale::scale_json_section(r)),
        None => s.push_str("null"),
    }
    // Full-stack partitioned execution: the mirror-world equivalence
    // verdict, the 10⁵/10⁶-node ring rows (global vs per-trunk windows),
    // and the threads-vs-events/s scaling table.
    s.push_str(",\n  \"fullstack\": ");
    match fullstack {
        Some(r) => s.push_str(&crate::fullstack::fullstack_json_section(r)),
        None => s.push_str("null"),
    }
    // The failover-phase telemetry snapshot (widest fan-in), so the
    // artifact carries the full counter state of the faulted run.
    s.push_str(",\n  \"metrics\": ");
    match failover.last() {
        Some(r) => s.push_str(&snapshot_json_object(&r.metrics)),
        None => s.push_str("{}"),
    }
    s.push_str("\n}\n");
    s
}

/// Renders one [`ChurnResult`] as a single JSON object row (no trailing
/// comma or newline; also used standalone by the `--churn-smoke` artifact).
pub fn churn_json_row(r: &ChurnResult) -> String {
    format!(
        concat!(
            "    {{\"sites\": {}, \"flaps\": {}, \"steps\": {}, ",
            "\"delta_reconvergences\": {}, \"full_recomputes_during_churn\": {}, ",
            "\"sites_recomputed\": {}, \"reconverge_ms_avg\": {:.4}, ",
            "\"reconverge_ms_max\": {:.4}, \"transient_violations\": {}, ",
            "\"pairs_disrupted_max\": {}, \"admit_ms\": {:.4}, \"drain_ms\": {:.4}, ",
            "\"trunks_retired\": {}, \"exchanges_ok\": {}, ",
            "\"conservation_violations\": {}, \"events_per_sec\": {:.0}}}"
        ),
        r.sites,
        r.flaps,
        r.steps,
        r.delta_reconvergences,
        r.full_recomputes_during_churn,
        r.sites_recomputed,
        r.reconverge_ms_avg,
        r.reconverge_ms_max,
        r.transient_violations,
        r.pairs_disrupted_max,
        r.admit_ms,
        r.drain_ms,
        r.trunks_retired,
        r.exchanges_ok,
        r.conservation_violations,
        r.events_per_sec,
    )
}

/// Renders a [`MetricsSnapshot`] as a single-line JSON object suitable
/// for embedding inside a larger handwritten document.
pub(crate) fn snapshot_json_object(snap: &MetricsSnapshot) -> String {
    use simnet::MetricValue;
    let mut s = String::from("{");
    for (i, (key, value)) in snap.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        match value {
            MetricValue::Counter(v) => s.push_str(&format!("\"{key}\": {v}")),
            MetricValue::Gauge(v) => s.push_str(&format!("\"{key}\": {v}")),
            MetricValue::Histogram(h) => s.push_str(&format!(
                "\"{key}\": {{\"count\": {}, \"sum\": {}}}",
                h.count(),
                h.sum()
            )),
        }
    }
    s.push('}');
    s
}

/// Writes `BENCH_multi_site.json` (the perf-trajectory artifact tracked
/// across PRs) into the current directory and returns its path.
pub fn write_multi_site_json(
    results: &[MultiSiteResult],
    incast: &[IncastResult],
    failover: &[FailoverResult],
    churn: &[ChurnResult],
    scale: Option<&crate::scale::ScaleResult>,
    fullstack: Option<&crate::fullstack::FullStackReport>,
) -> std::io::Result<String> {
    let path = "BENCH_multi_site.json".to_string();
    std::fs::write(
        &path,
        multi_site_json(results, incast, failover, churn, scale, fullstack),
    )?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_site_wan_run_relays_and_streams() {
        let r = multi_site_run(2, Layout::Star, "vthd-wan", NetworkSpec::vthd_wan());
        assert_eq!(r.hops, 3);
        // Every frame is accounted exactly once: delivered, dropped at a
        // gateway, or lost on a lossy link.
        assert_eq!(
            r.frames_delivered + r.frames_dropped + r.frames_lost,
            r.frames_sent,
            "{r:?}"
        );
        assert!(r.frames_relayed > 0, "{r:?}");
        // The WAN adds ≥ 8 ms one way.
        assert!(r.first_frame_ms.unwrap() >= 8.0, "{r:?}");
        assert!(r.stream_goodput_mb_s > 0.0, "{r:?}");
    }

    #[test]
    fn ring_routes_grow_with_site_count() {
        let r4 = multi_site_run(4, Layout::Ring, "vthd-wan", NetworkSpec::vthd_wan());
        let r6 = multi_site_run(6, Layout::Ring, "vthd-wan", NetworkSpec::vthd_wan());
        assert!(r4.hops >= 4, "{r4:?}");
        assert!(r6.hops > r4.hops, "{r6:?} vs {r4:?}");
        // Each extra backbone segment adds ≥ 8 ms of one-way latency.
        assert!(
            r6.first_frame_ms.unwrap() > r4.first_frame_ms.unwrap(),
            "{r6:?} vs {r4:?}"
        );
        assert!(r6.frames_relayed > r4.frames_relayed);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = multi_site_run(2, Layout::Star, "vthd-wan", NetworkSpec::vthd_wan());
        let inc = incast_run(2, 8, BackpressureMode::Credit);
        let fo = failover_run(1);
        let ch = churn_run(3, 2);
        let scale = crate::scale::scale_run(&crate::scale::ScaleConfig::tiny());
        let fullstack = crate::fullstack::FullStackReport {
            equivalence: crate::fullstack::mirror_equivalence(
                &crate::fullstack::MirrorConfig::smoke(),
            ),
            rows: vec![crate::fullstack::ring_run(
                &crate::fullstack::RingConfig::tiny(),
                crate::fullstack::WindowMode::PerTrunk,
            )],
            threads_table: vec![],
        };
        let json = multi_site_json(&[r], &[inc], &[fo], &[ch], Some(&scale), Some(&fullstack));
        assert!(json.contains("\"experiment\": \"multi_site\""));
        assert!(json.contains("\"scale\""));
        assert!(json.contains("\"fullstack\""));
        assert!(json.contains("\"identical\": true"));
        assert!(json.contains("\"mode\": \"per-trunk\""));
        assert!(json.contains("\"digest\""));
        assert!(json.contains("\"sites\": 2"));
        assert!(json.contains("\"layout\": \"star\""));
        assert!(json.contains("\"frames_lost\""));
        assert!(json.contains("\"incast\""));
        assert!(json.contains("\"mode\": \"credit\""));
        assert!(json.contains("\"sender_stall_ms\""));
        assert!(json.contains("\"failover\""));
        assert!(json.contains("\"recovery_ms\""));
        assert!(json.contains("\"churn\""));
        assert!(json.contains("\"reconverge_ms_avg\""));
        assert!(json.contains("\"transient_violations\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn churn_run_is_transient_safe_and_conserves() {
        let r = churn_run(4, 4);
        assert_eq!(r.steps, 8, "4 flap pairs = 8 deltas: {r:?}");
        assert_eq!(r.transient_violations, 0, "{r:?}");
        assert_eq!(
            r.sites_recomputed, 0,
            "flaps must never recompute an intra table: {r:?}"
        );
        assert!(r.exchanges_ok, "traffic must flow at every probe: {r:?}");
        assert!(r.trunks_retired > 0, "the drain retires trunks: {r:?}");
        assert_eq!(r.conservation_violations, 0, "{r:?}");
        assert!(
            r.pairs_disrupted_max > 0,
            "churn must actually disrupt some routes: {r:?}"
        );
        // Counter diffs are process-wide and other tests run concurrently,
        // so only the lower bound is assertable here: every delta of this
        // run reconverged incrementally (the smoke binary asserts the
        // zero-full-recompute side in isolation).
        assert!(r.delta_reconvergences >= r.steps as u64 + 2, "{r:?}");
    }

    #[test]
    fn churn_runs_are_deterministic() {
        let a = churn_run(3, 3);
        let b = churn_run(3, 3);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.pairs_disrupted_max, b.pairs_disrupted_max);
        assert_eq!(a.trunks_retired, b.trunks_retired);
        assert_eq!(a.transient_violations, b.transient_violations);
    }

    #[test]
    fn failover_run_recovers_exactly_once() {
        let r = failover_run(4);
        assert!(r.completed, "byte-exact delivery after the kill: {r:?}");
        assert!(
            r.migrated_connections >= 1,
            "the kill must force at least one re-dial: {r:?}"
        );
        let recovery = r.recovery_ms.expect("streams must resume post-kill");
        assert!(
            recovery > 0.0 && recovery < 1_000.0,
            "recovery latency is measured and sane: {r:?}"
        );
        assert!(r.killed_at_bytes > 0, "{r:?}");
        assert!(
            r.goodput_mb_s <= r.baseline_goodput_mb_s,
            "the faulted run cannot beat its baseline: {r:?}"
        );
    }

    #[test]
    fn failover_runs_are_deterministic() {
        let a = failover_run(1);
        let b = failover_run(1);
        assert_eq!(a.recovery_ms, b.recovery_ms);
        assert_eq!(a.killed_at_bytes, b.killed_at_bytes);
        assert_eq!(a.goodput_mb_s, b.goodput_mb_s);
    }

    #[test]
    fn incast_credit_mode_is_lossless_and_beats_drop_mode() {
        for senders in [4usize, 8] {
            let drop = incast_run(senders, 64, BackpressureMode::Drop);
            let credit = incast_run(senders, 64, BackpressureMode::Credit);
            // Both complete reliable delivery.
            assert_eq!(drop.frames_delivered, drop.frames_total, "{drop:?}");
            assert_eq!(credit.frames_delivered, credit.frames_total, "{credit:?}");
            // Drop mode pays for the overload with drops and retransmission
            // rounds; credit mode is lossless in one pass, stalling instead.
            assert!(drop.frames_dropped > 0, "{drop:?}");
            assert!(drop.rounds > 1, "{drop:?}");
            assert_eq!(credit.frames_dropped, 0, "{credit:?}");
            assert_eq!(credit.retransmissions, 0, "{credit:?}");
            assert_eq!(credit.rounds, 1, "{credit:?}");
            assert!(credit.sender_stall_ms > 0.0, "{credit:?}");
            assert!(
                credit.goodput_mb_s >= drop.goodput_mb_s,
                "credit goodput must not trail drop at {senders} senders: \
                 {credit:?} vs {drop:?}"
            );
        }
    }

    #[test]
    fn incast_runs_are_deterministic() {
        let a = incast_run(4, 32, BackpressureMode::Credit);
        let b = incast_run(4, 32, BackpressureMode::Credit);
        assert_eq!(a.elapsed_ms, b.elapsed_ms);
        assert_eq!(a.sender_stall_ms, b.sender_stall_ms);
        let a = incast_run(4, 32, BackpressureMode::Drop);
        let b = incast_run(4, 32, BackpressureMode::Drop);
        assert_eq!(a.frames_dropped, b.frames_dropped);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn lossy_backbone_loss_is_accounted_as_lost_not_dropped() {
        let r = multi_site_run(
            2,
            Layout::Star,
            "lossy-internet",
            NetworkSpec::lossy_internet(),
        );
        assert_eq!(
            r.frames_delivered + r.frames_dropped + r.frames_lost,
            r.frames_sent,
            "{r:?}"
        );
        assert!(
            r.frames_lost > 0,
            "a 2% lossy backbone must lose frames: {r:?}"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = multi_site_run(3, Layout::Star, "vthd-wan", NetworkSpec::vthd_wan());
        let b = multi_site_run(3, Layout::Star, "vthd-wan", NetworkSpec::vthd_wan());
        assert_eq!(a.frames_delivered, b.frames_delivered);
        assert_eq!(a.first_frame_ms, b.first_frame_ms);
        assert_eq!(a.stream_goodput_mb_s, b.stream_goodput_mb_s);
    }
}
