//! Full-stack partitioned execution: the real relay/trunk/credit
//! machinery running *across* shard worlds.
//!
//! The synthetic [`crate::scale`] workload proved the partitioned
//! executor's window mechanics at 10⁵ nodes; this module promotes it to
//! the full stack, in two steps:
//!
//! 1. **Mirror equivalence** ([`mirror_equivalence`]): every shard
//!    builds the *entire* two-site incast grid with identical node and
//!    network ids, and [`SimWorld::set_mirror_owners`] names the shard
//!    that executes each node. `send_frame` computes complete wire
//!    timing (TX/RX port occupancy, serialization, propagation) against
//!    the local mirror, then ships foreign-owned deliveries across the
//!    shard boundary at their true delivery time. With the relay
//!    fabric's wire credit plane on
//!    ([`RelayFabric::enable_wire_credit_returns`]), *every* inter-site
//!    interaction — data frames and credit returns alike — is a real
//!    trunk frame, so the partitioned run's merged
//!    [`MetricsSnapshot`] is required to be **byte-identical** to the
//!    single-queue run on the full credit-mode incast scenario.
//!    Per-trunk lookahead comes from the gateway trunk latencies via
//!    `GridTopology::trunk_lookaheads`.
//!
//! 2. **Ring scale** ([`ring_run`]): the measured 10⁵- and 10⁶-node
//!    rows. Each shard hosts one full site — two Ethernet segments
//!    bridged by a gateway running a real credit-mode [`RelayFabric`]
//!    (hand-inserted [`RouteTable`] routes — the site's paths are known
//!    by construction, and all-pairs Dijkstra dominated the 10⁶-node
//!    build — store-and-forward holds, credit stalls, the lot) — and
//!    site gateways exchange cross-shard
//!    frames over ring trunk segments with *heterogeneous* latencies:
//!    even-indexed segments are slow, odd ones fast. The per-trunk
//!    window mode therefore beats the global-minimum window (whose
//!    width is pinned to the fastest segment) while producing the
//!    byte-identical run digest, which [`compare_windows`] asserts.

use std::cell::Cell;
use std::rc::Rc;

use gridtopo::{
    link_cost, BackpressureMode, GridTopology, Hop, RelayConfig, RelayFabric, RouteTable, SiteSpec,
};
use simnet::{
    run_partitioned, Frame, LossModel, MetricsSnapshot, NetworkSpec, NodeId, Partition, ProtoId,
    SimDuration, SimTime, SimWorld, TrunkLookahead,
};

use crate::multi_site::conservation_violations;
use crate::scale::fnv1a;

/// Relay port carrying the mirror-incast payload.
const MIRROR_PORT: u16 = 17;
/// Payload bytes of each mirror-incast frame.
const MIRROR_FRAME_BYTES: usize = 1024;
/// Relay port carrying the ring-scale intra-site payload.
const RING_PORT: u16 = 23;
/// Cross-shard gateway traffic tag of the ring workload.
const RING_CROSS: ProtoId = ProtoId(ProtoId::USER_BASE.0 + 47);
/// Payload bytes of every ring-scale frame.
const RING_FRAME_BYTES: usize = 512;

// --------------------------------------------------------------------- //
// Mirror equivalence: single-queue vs partitioned, byte-identical
// --------------------------------------------------------------------- //

/// Shape of one mirror-equivalence run.
#[derive(Debug, Clone)]
pub struct MirrorConfig {
    /// Sender nodes fanning into the entry gateway.
    pub senders: usize,
    /// Frames each sender pushes to the far receiver.
    pub frames_per_sender: u64,
    /// Gateway queue capacity (small enough that senders park on
    /// credits, so backpressure genuinely cascades across the shard
    /// boundary).
    pub queue_capacity: usize,
    /// Worker threads of the partitioned run.
    pub threads: usize,
    /// World seed.
    pub seed: u64,
}

impl MirrorConfig {
    /// The CI configuration: enough overload that credits park, small
    /// enough to run in well under a second.
    pub fn smoke() -> Self {
        MirrorConfig {
            senders: 8,
            frames_per_sender: 12,
            queue_capacity: 8,
            threads: 2,
            seed: 0xF00D,
        }
    }
}

/// The two-site backbone of the mirror scenario: VTHD-WAN bandwidth and
/// latency, but lossless. Equivalence needs every network on the path
/// to draw zero RNG — the single world and the shard worlds hold
/// independent RNG streams, so any draw would legitimately diverge.
fn mirror_wan() -> NetworkSpec {
    NetworkSpec {
        name: "mirror-wan".to_string(),
        loss: LossModel::None,
        ..NetworkSpec::vthd_wan()
    }
}

/// Builds the mirror-incast grid into `world`.
///
/// Called identically for the single run (`shard == None`: one world
/// owns and drives everything) and for each shard of the partitioned
/// run (`shard == Some(s)`: the world still *builds* the whole grid —
/// same ids, same construction order — but attaches handlers and
/// schedules traffic only for the site it owns). Site 0 holds the
/// senders and the entry gateway; site 1 the exit gateway and the
/// receiver.
fn build_mirror(cfg: &MirrorConfig, world: &mut SimWorld, shard: Option<u16>) -> GridTopology {
    let grid = GridTopology::star(
        world,
        &[
            SiteSpec::san_cluster("send", cfg.senders + 1),
            SiteSpec::san_cluster("recv", 2),
        ],
        mirror_wan(),
    );
    let site_of = grid.site_of_nodes();
    if shard.is_some() {
        world.set_mirror_owners(site_of.clone());
    }
    let config = RelayConfig {
        per_hop_latency: SimDuration::from_millis(1),
        queue_capacity: cfg.queue_capacity,
        backpressure: BackpressureMode::Credit,
        ..Default::default()
    };
    let fabric = RelayFabric::new(grid.routes.clone(), config);
    // Inter-site credit returns ride real RELAY_CREDIT trunk frames in
    // *both* executors — that is what makes every cross-shard
    // interaction a wire frame the mirror boundary can intercept.
    fabric.enable_wire_credit_returns(site_of);

    let owns = |site: u16| shard.is_none_or(|s| s == site);
    if owns(0) {
        for rank in 0..grid.site(0).len() {
            fabric.attach(world, grid.site(0).node(rank));
        }
    }
    if owns(1) {
        fabric.attach(world, grid.site(1).node(0));
        let delivered = Rc::new(Cell::new(0u64));
        let d2 = delivered.clone();
        world.metrics.register_collector(move |b| {
            b.counter("fullstack.delivered", &[], d2.get());
        });
        fabric.bind(world, grid.site(1).node(1), MIRROR_PORT, move |_w, _msg| {
            delivered.set(delivered.get() + 1);
        });
    }
    if owns(0) {
        let receiver = grid.site(1).node(1);
        for i in 1..=cfg.senders {
            let sender = grid.site(0).node(i);
            for k in 0..cfg.frames_per_sender {
                let at = SimTime::from_nanos(1_000 + k * 150_000 + i as u64 * 2_700);
                let fabric = fabric.clone();
                world.schedule_at(at, move |w| {
                    fabric
                        .send(
                            w,
                            sender,
                            receiver,
                            MIRROR_PORT,
                            vec![0u8; MIRROR_FRAME_BYTES],
                        )
                        .expect("mirror incast send");
                });
            }
        }
    }
    grid
}

/// Outcome of one mirror-equivalence check.
#[derive(Debug, Clone)]
pub struct MirrorEquivalence {
    /// Unique frames the workload submits.
    pub frames_total: u64,
    /// Frames delivered to the receiver (from the merged snapshot).
    pub delivered: u64,
    /// Whether the partitioned run's merged snapshot JSON is
    /// byte-identical to the single-queue run (executor-internal
    /// `sim.executor.*` keys excluded).
    pub identical: bool,
    /// Conservation violations found in the *merged* snapshot — credits
    /// consumed in one shard world must be returned through another.
    pub conservation: Vec<String>,
    /// Barrier rounds of the partitioned run.
    pub rounds: u64,
    /// Frames that crossed the shard boundary (data + wire credits).
    pub frames_crossed: u64,
    /// Frames the shard worlds emitted across the boundary (Σ cross_out).
    pub cross_out: u64,
    /// Frames injected into shard worlds from the boundary (Σ cross_in).
    /// Conservation demands `cross_out == cross_in`.
    pub cross_in: u64,
    /// Cross-shard lookahead violations — must be 0.
    pub lookahead_violations: u64,
    /// Directed trunk edges derived from the grid.
    pub trunk_edges: usize,
}

/// Runs the full-stack incast scenario twice — once on the single-queue
/// executor, once partitioned with a mirror world per site — and
/// compares the telemetry snapshots byte for byte.
pub fn mirror_equivalence(cfg: &MirrorConfig) -> MirrorEquivalence {
    // Single-queue reference run.
    let mut world = SimWorld::new(cfg.seed);
    let grid = build_mirror(cfg, &mut world, None);
    world.run();
    let single = world.metrics_snapshot();

    // Per-trunk lookahead from the real gateway trunk latencies.
    let trunks = grid.trunk_lookaheads(&world);
    let trunk_edges = trunks.len();
    let floor = trunks
        .iter()
        .map(|(_, _, d)| d)
        .min()
        .expect("the star backbone declares trunks");

    let part = Partition {
        shards: 2,
        threads: cfg.threads,
        lookahead: floor,
        trunks: Some(trunks),
        seed: cfg.seed,
    };
    let report = run_partitioned(&part, |s, w| {
        build_mirror(cfg, w, Some(s));
    });
    let merged = MetricsSnapshot::merge(report.outcomes.iter().map(|o| &o.snapshot));

    let identical = single.to_json_excluding(&["sim.executor."])
        == merged.to_json_excluding(&["sim.executor."]);
    MirrorEquivalence {
        frames_total: cfg.senders as u64 * cfg.frames_per_sender,
        delivered: merged.counter("fullstack.delivered").unwrap_or(0),
        identical,
        conservation: conservation_violations(&merged),
        rounds: report.rounds,
        frames_crossed: report.frames_crossed,
        cross_out: report.outcomes.iter().map(|o| o.stats.cross_out).sum(),
        cross_in: report.outcomes.iter().map(|o| o.stats.cross_in).sum(),
        lookahead_violations: report.lookahead_violations(),
        trunk_edges,
    }
}

// --------------------------------------------------------------------- //
// Ring scale: full relay stack per shard, heterogeneous trunk segments
// --------------------------------------------------------------------- //

/// Shape of one full-stack ring scale run.
#[derive(Debug, Clone)]
pub struct RingConfig {
    /// Shard worlds (ring sites).
    pub shards: u16,
    /// Nodes per Ethernet segment; each site holds `2 × segment_nodes`
    /// endpoints plus the bridging gateway.
    pub segment_nodes: usize,
    /// Relayed frames each near-segment node sends through the gateway
    /// to its far-segment peer.
    pub frames_per_node: u64,
    /// Frames each site's gateway sends to the next site round the ring.
    pub cross_frames_per_shard: u64,
    /// Worker threads (shard `s` runs on worker `s % threads`).
    pub threads: usize,
    /// Base RNG seed (shard `s` runs on `seed + s`).
    pub seed: u64,
}

impl RingConfig {
    /// The measured 10⁵-node row: 1000 sites × 101 nodes.
    pub fn hundred_k() -> Self {
        RingConfig {
            shards: 1000,
            segment_nodes: 50,
            frames_per_node: 4,
            cross_frames_per_shard: 6,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            seed: 0xF011,
        }
    }

    /// The measured 10⁶-node row: 2000 sites × 501 nodes. Wider sites
    /// rather than 10× more shards — per-round shard activation is the
    /// fixed cost at this scale, and a 10⁶-node grid is realistically
    /// hundreds of big sites, not tens of thousands of tiny ones.
    pub fn million() -> Self {
        RingConfig {
            shards: 2000,
            segment_nodes: 250,
            frames_per_node: 1,
            cross_frames_per_shard: 2,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            seed: 0xF011,
        }
    }

    /// The CI smoke shape: big enough that shard scheduling, credit
    /// parking and cross-ring traffic all engage, small enough for a
    /// debug-build CI lane.
    pub fn smoke() -> Self {
        RingConfig {
            shards: 64,
            segment_nodes: 10,
            frames_per_node: 2,
            cross_frames_per_shard: 3,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            seed: 0xF011,
        }
    }

    /// A seconds-scale shrink of the same shape, for tests.
    pub fn tiny() -> Self {
        RingConfig {
            shards: 6,
            segment_nodes: 4,
            frames_per_node: 3,
            cross_frames_per_shard: 4,
            threads: 2,
            seed: 0xF011,
        }
    }

    /// Total nodes across all shards.
    pub fn nodes(&self) -> usize {
        self.shards as usize * (2 * self.segment_nodes + 1)
    }

    /// Latency of the ring trunk segment *out of* site `s`:
    /// even-indexed segments are slow, odd ones fast. The spread is what
    /// per-trunk windows exploit — the global window is pinned to the
    /// fastest segment.
    pub fn segment_latency(&self, shard: u16) -> SimDuration {
        if shard.is_multiple_of(2) {
            SimDuration::from_micros(800)
        } else {
            SimDuration::from_micros(100)
        }
    }

    /// The per-trunk lookahead map of the ring.
    pub fn trunks(&self) -> TrunkLookahead {
        let mut t = TrunkLookahead::new();
        for s in 0..self.shards {
            t.set(s, (s + 1) % self.shards, self.segment_latency(s));
        }
        t
    }

    /// The global window width: the minimum segment latency.
    pub fn global_lookahead(&self) -> SimDuration {
        (0..self.shards)
            .map(|s| self.segment_latency(s))
            .min()
            .expect("at least one segment")
    }
}

/// Builds one full-stack ring site: two Ethernet segments bridged by a
/// gateway running a real credit-mode relay fabric, near-segment nodes
/// relaying through it to far-segment peers, and the gateway emitting
/// cross-shard frames round the ring.
fn build_ring_shard(cfg: &RingConfig, shard: u16, world: &mut SimWorld) {
    let n = cfg.segment_nodes;
    // The gateway is node 0 of every shard world — cross-shard frames
    // address it as `NodeId(0)` in the destination world.
    let gw = world.add_node(&format!("r{shard}g"));
    let near = world.add_network(NetworkSpec::ethernet_100());
    let far = world.add_network(NetworkSpec::ethernet_100());
    world.attach(gw, near);
    world.attach(gw, far);
    let near_nodes: Vec<NodeId> = (0..n)
        .map(|i| {
            let node = world.add_node(&format!("r{shard}a{i}"));
            world.attach(node, near);
            node
        })
        .collect();
    let far_nodes: Vec<NodeId> = (0..n)
        .map(|i| {
            let node = world.add_node(&format!("r{shard}b{i}"));
            world.attach(node, far);
            node
        })
        .collect();

    // The site's routes are known by construction — near_i reaches far_i
    // through the gateway, the gateway reaches far_i directly — so the
    // table is hand-inserted instead of computed. All-pairs Dijkstra is
    // quadratic in segment width per source; at the 10⁶-node row it was
    // the route build, not the event loop, that dominated wall time (and
    // the full N² table, not the worlds, that dominated memory).
    let mut routes = RouteTable::default();
    let (near_cost, far_cost) = (link_cost(world, near), link_cost(world, far));
    for i in 0..n {
        routes.insert(
            near_nodes[i],
            far_nodes[i],
            Hop {
                network: near,
                node: gw,
            },
            near_cost + far_cost,
        );
        routes.insert(
            gw,
            far_nodes[i],
            Hop {
                network: far,
                node: far_nodes[i],
            },
            far_cost,
        );
    }

    // A long store-and-forward dwell against a small credit pool: the
    // fan-in outruns the gateway and senders park on credits — the
    // workload exercises the credit machinery, not just the happy path.
    let fabric = RelayFabric::new(
        routes,
        RelayConfig {
            per_hop_latency: SimDuration::from_micros(500),
            queue_capacity: 4,
            backpressure: BackpressureMode::Credit,
            ..Default::default()
        },
    );
    for &node in near_nodes.iter().chain(far_nodes.iter()) {
        fabric.attach(world, node);
    }
    fabric.attach(world, gw);

    let delivered = Rc::new(Cell::new(0u64));
    let delivered_cross = Rc::new(Cell::new(0u64));
    let (d2, c2) = (delivered.clone(), delivered_cross.clone());
    world.metrics.register_collector(move |b| {
        b.counter("fullstack.delivered", &[], d2.get());
        b.counter("fullstack.delivered_cross", &[], c2.get());
    });

    for &node in &far_nodes {
        let d2 = delivered.clone();
        fabric.bind(world, node, RING_PORT, move |_w, _msg| {
            d2.set(d2.get() + 1);
        });
    }
    let c2 = delivered_cross.clone();
    world.register_handler(gw, RING_CROSS, move |_w, _net, _f| {
        c2.set(c2.get() + 1);
    });

    // Intra-site relayed traffic: every near node pushes its frames
    // through the gateway's store-and-forward queue (credit mode, so
    // the fan-in parks on gateway credits) to its far-segment peer.
    for i in 0..n {
        let (src, dst) = (near_nodes[i], far_nodes[i]);
        for k in 0..cfg.frames_per_node {
            let at = SimTime::from_nanos(1_000 + k * 100_000 + i as u64 * 3_100);
            let fabric = fabric.clone();
            world.schedule_at(at, move |w| {
                fabric
                    .send(w, src, dst, RING_PORT, vec![0u8; RING_FRAME_BYTES])
                    .expect("ring relay send");
            });
        }
    }

    // Cross-shard traffic: the gateway sends round the ring on its
    // trunk segment; the extra delay *is* the segment latency, so the
    // declared per-trunk lookahead is exact.
    let next = (shard + 1) % cfg.shards;
    let latency = cfg.segment_latency(shard);
    for k in 0..cfg.cross_frames_per_shard {
        let at = SimTime::from_nanos(40_000 + k * 500_000);
        world.schedule_at(at, move |w| {
            let frame = Frame::new(gw, NodeId(0), RING_CROSS, vec![0u8; RING_FRAME_BYTES]);
            w.send_remote(next, frame, latency);
        });
    }
}

/// Window-synchronization mode of a ring run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowMode {
    /// One global window pinned to the minimum trunk latency.
    Global,
    /// Per-trunk windows from the ring's declared in-edges.
    PerTrunk,
}

impl WindowMode {
    /// Lowercase label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            WindowMode::Global => "global",
            WindowMode::PerTrunk => "per-trunk",
        }
    }
}

/// Everything one full-stack ring run measures.
#[derive(Debug, Clone)]
pub struct RingResult {
    /// Total nodes simulated.
    pub nodes: usize,
    /// Shard worlds.
    pub shards: u16,
    /// Worker threads used.
    pub threads: usize,
    /// Window mode the run synchronized under.
    pub mode: WindowMode,
    /// Window-barrier rounds executed.
    pub rounds: u64,
    /// Events executed across all shards.
    pub events_total: u64,
    /// Relayed frames submitted (summed over shards).
    pub frames_relayed: u64,
    /// Relayed frames delivered to their far-segment peer.
    pub delivered: u64,
    /// Frames that crossed a shard boundary.
    pub frames_crossed: u64,
    /// Frames the shard worlds emitted across the boundary (Σ cross_out).
    pub cross_out: u64,
    /// Frames injected into shard worlds (Σ cross_in); must equal
    /// `cross_out` — no frame may vanish or duplicate in transit.
    pub cross_in: u64,
    /// Cross-shard frames delivered to a gateway handler.
    pub delivered_cross: u64,
    /// Cross-shard frames that found no handler — must be 0.
    pub cross_unclaimed: u64,
    /// Cross-shard lookahead violations — must be 0.
    pub lookahead_violations: u64,
    /// Relay frames parked on gateway credits (credit-mode fan-in).
    pub credit_stalls: u64,
    /// Wall-clock seconds of the window loop.
    pub wall_seconds: f64,
    /// Events per wall-clock second — the headline scaling number.
    pub events_per_sec: f64,
    /// FNV-1a fingerprint of the merged per-shard telemetry digest;
    /// identical across thread counts *and* window modes.
    pub digest: String,
}

/// Runs one full-stack ring measurement under the given window mode.
pub fn ring_run(cfg: &RingConfig, mode: WindowMode) -> RingResult {
    assert!(cfg.shards >= 2, "a ring needs 2+ sites");
    assert!(cfg.segment_nodes >= 1, "a segment needs a node");
    let part = Partition {
        shards: cfg.shards,
        threads: cfg.threads,
        lookahead: cfg.global_lookahead(),
        trunks: match mode {
            WindowMode::Global => None,
            WindowMode::PerTrunk => Some(cfg.trunks()),
        },
        seed: cfg.seed,
    };
    let report = run_partitioned(&part, |shard, world| build_ring_shard(cfg, shard, world));

    let mut delivered = 0u64;
    let mut delivered_cross = 0u64;
    let mut frames_relayed = 0u64;
    let mut credit_stalls = 0u64;
    let mut cross_unclaimed = 0u64;
    let mut cross_out = 0u64;
    let mut cross_in = 0u64;
    for o in &report.outcomes {
        cross_out += o.stats.cross_out;
        cross_in += o.stats.cross_in;
        delivered += o.snapshot.counter("fullstack.delivered").unwrap_or(0);
        delivered_cross += o.snapshot.counter("fullstack.delivered_cross").unwrap_or(0);
        frames_relayed += o.snapshot.counter_total("relay.fabric.frames_sent");
        credit_stalls += o.snapshot.counter_total("relay.fabric.credit_stalls");
        cross_unclaimed += o.stats.remote_unclaimed;
    }
    RingResult {
        nodes: cfg.nodes(),
        shards: cfg.shards,
        threads: report.threads,
        mode,
        rounds: report.rounds,
        events_total: report.events_total,
        frames_relayed,
        delivered,
        frames_crossed: report.frames_crossed,
        cross_out,
        cross_in,
        delivered_cross,
        cross_unclaimed,
        lookahead_violations: report.lookahead_violations(),
        credit_stalls,
        wall_seconds: report.wall_seconds,
        events_per_sec: report.events_per_sec(),
        digest: format!("{:016x}", fnv1a(&report.digest())),
    }
}

/// Runs the same ring config under both window modes and returns
/// `(global, per_trunk)`. The two runs must agree byte-for-byte on the
/// digest; per-trunk must not add rounds (on the heterogeneous ring it
/// removes a large fraction of them).
pub fn compare_windows(cfg: &RingConfig) -> (RingResult, RingResult) {
    let global = ring_run(cfg, WindowMode::Global);
    let per_trunk = ring_run(cfg, WindowMode::PerTrunk);
    (global, per_trunk)
}

/// Runs the per-trunk ring at each thread count — the scaling table.
/// Every row must report the same digest (thread-count independence);
/// on a single-core container the events/s column is flat, on real
/// parallel hardware it scales.
pub fn threads_table(cfg: &RingConfig, thread_counts: &[usize]) -> Vec<RingResult> {
    thread_counts
        .iter()
        .map(|&threads| {
            let mut c = cfg.clone();
            c.threads = threads;
            ring_run(&c, WindowMode::PerTrunk)
        })
        .collect()
}

// --------------------------------------------------------------------- //
// JSON rendering
// --------------------------------------------------------------------- //

/// The full-stack section of `BENCH_multi_site.json`.
#[derive(Debug, Clone)]
pub struct FullStackReport {
    /// The mirror-equivalence outcome.
    pub equivalence: MirrorEquivalence,
    /// Measured ring rows (10⁵ global, 10⁵ per-trunk, 10⁶ per-trunk…).
    pub rows: Vec<RingResult>,
    /// The threads-vs-events/s table (per-trunk mode).
    pub threads_table: Vec<RingResult>,
}

fn ring_row_json(r: &RingResult) -> String {
    format!(
        concat!(
            "{{\"nodes\": {}, \"shards\": {}, \"threads\": {}, \"mode\": \"{}\", ",
            "\"rounds\": {}, \"events_total\": {}, \"frames_relayed\": {}, ",
            "\"delivered\": {}, \"frames_crossed\": {}, \"cross_out\": {}, ",
            "\"cross_in\": {}, \"delivered_cross\": {}, ",
            "\"cross_unclaimed\": {}, \"lookahead_violations\": {}, ",
            "\"credit_stalls\": {}, \"wall_seconds\": {:.3}, ",
            "\"events_per_sec\": {:.0}, \"digest\": \"{}\"}}"
        ),
        r.nodes,
        r.shards,
        r.threads,
        r.mode.label(),
        r.rounds,
        r.events_total,
        r.frames_relayed,
        r.delivered,
        r.frames_crossed,
        r.cross_out,
        r.cross_in,
        r.delivered_cross,
        r.cross_unclaimed,
        r.lookahead_violations,
        r.credit_stalls,
        r.wall_seconds,
        r.events_per_sec,
        r.digest,
    )
}

/// Renders the `"fullstack"` JSON object embedded in
/// `BENCH_multi_site.json` (no trailing comma or newline).
pub fn fullstack_json_section(report: &FullStackReport) -> String {
    let eq = &report.equivalence;
    let rows: Vec<String> = report.rows.iter().map(ring_row_json).collect();
    let table: Vec<String> = report.threads_table.iter().map(ring_row_json).collect();
    format!(
        concat!(
            "{{\"equivalence\": {{\"frames_total\": {}, \"delivered\": {}, ",
            "\"identical\": {}, \"conservation_violations\": {}, \"rounds\": {}, ",
            "\"frames_crossed\": {}, \"cross_out\": {}, \"cross_in\": {}, ",
            "\"lookahead_violations\": {}, \"trunk_edges\": {}}}, ",
            "\"rows\": [{}], \"threads_table\": [{}]}}"
        ),
        eq.frames_total,
        eq.delivered,
        eq.identical,
        eq.conservation.len(),
        eq.rounds,
        eq.frames_crossed,
        eq.cross_out,
        eq.cross_in,
        eq.lookahead_violations,
        eq.trunk_edges,
        rows.join(", "),
        table.join(", "),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_run_is_byte_identical_to_single_queue() {
        let eq = mirror_equivalence(&MirrorConfig::smoke());
        assert!(
            eq.identical,
            "partitioned full-stack snapshot diverged from the single queue: {eq:?}"
        );
        assert_eq!(eq.delivered, eq.frames_total, "{eq:?}");
        assert_eq!(eq.lookahead_violations, 0, "{eq:?}");
        assert!(eq.conservation.is_empty(), "{:?}", eq.conservation);
        // 4 directed trunk edges is the 2-site star (both directions of
        // the one gateway pair); data + wire credits both crossed.
        assert_eq!(eq.trunk_edges, 2, "{eq:?}");
        assert!(
            eq.frames_crossed >= 2 * eq.frames_total,
            "every frame crosses as data and returns a wire credit: {eq:?}"
        );
    }

    #[test]
    fn mirror_equivalence_holds_at_any_thread_count() {
        let mut cfg = MirrorConfig::smoke();
        cfg.threads = 1;
        assert!(mirror_equivalence(&cfg).identical);
    }

    #[test]
    fn ring_windows_agree_and_per_trunk_saves_rounds() {
        let cfg = RingConfig::tiny();
        let (global, per_trunk) = compare_windows(&cfg);
        assert_eq!(
            global.digest, per_trunk.digest,
            "window mode changed the run"
        );
        assert_eq!(global.events_total, per_trunk.events_total);
        assert_eq!(per_trunk.lookahead_violations, 0);
        assert_eq!(global.lookahead_violations, 0);
        assert!(
            per_trunk.rounds < global.rounds,
            "heterogeneous segments must save rounds: {} vs {}",
            per_trunk.rounds,
            global.rounds
        );
    }

    #[test]
    fn ring_run_conserves_the_full_stack() {
        let cfg = RingConfig::tiny();
        let r = ring_run(&cfg, WindowMode::PerTrunk);
        let relayed = cfg.shards as u64 * cfg.segment_nodes as u64 * cfg.frames_per_node;
        let crossed = cfg.shards as u64 * cfg.cross_frames_per_shard;
        assert_eq!(r.nodes, cfg.nodes());
        assert_eq!(r.frames_relayed, relayed, "{r:?}");
        assert_eq!(r.delivered, relayed, "{r:?}");
        assert_eq!(r.frames_crossed, crossed, "{r:?}");
        assert_eq!(r.delivered_cross, crossed, "{r:?}");
        assert_eq!(r.cross_out, r.cross_in, "cross-shard conservation: {r:?}");
        assert_eq!(r.cross_unclaimed, 0, "{r:?}");
        assert!(r.credit_stalls > 0, "fan-in must park on credits: {r:?}");
    }

    #[test]
    fn ring_digest_is_thread_count_independent() {
        let cfg = RingConfig::tiny();
        let rows = threads_table(&cfg, &[1, 3]);
        assert_eq!(rows[0].digest, rows[1].digest);
        assert_eq!(rows[0].rounds, rows[1].rounds);
    }

    #[test]
    fn fullstack_json_section_is_balanced() {
        let cfg = RingConfig::tiny();
        let report = FullStackReport {
            equivalence: mirror_equivalence(&MirrorConfig::smoke()),
            rows: vec![ring_run(&cfg, WindowMode::Global)],
            threads_table: threads_table(&cfg, &[1]),
        };
        let json = fullstack_json_section(&report);
        assert!(json.contains("\"equivalence\""));
        assert!(json.contains("\"threads_table\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
