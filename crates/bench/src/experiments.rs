//! The experiment harness: every table and figure of the paper's
//! evaluation section, re-implemented over the simulated testbed.
//!
//! Each function builds the relevant topology, runs the workload in virtual
//! time, and returns structured results; the `src/bin/*` binaries print
//! them as the paper's tables/series and `benches/*` wrap them in Criterion.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use bytes::Bytes;
use middleware::{IdlValue, JavaServerSocket, JavaSocket, MpiComm, Orb, OrbImpl};
use padico_core::{runtimes_for_cluster, PadicoRuntime, SelectorPreferences, VLink};
use simnet::{topology, NetworkSpec, NodeId, SimWorld};
use transport::{
    ByteStream, ByteStreamExt, ParallelStream, ParallelStreamConfig, TcpConn, TcpStack,
};
use transport::{UdpHost, VrpConfig, VrpReceiver, VrpSender};

/// The middleware/interface stacks measured by Figure 3 and Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stack {
    /// The Circuit abstract interface (parallel side), straight on Myrinet.
    Circuit,
    /// The VLink abstract interface (distributed side) on Myrinet.
    VLink,
    /// The MPI middleware (MPICH role).
    Mpi,
    /// A CORBA ORB of the given implementation.
    Corba(OrbImpl),
    /// Java sockets.
    JavaSocket,
    /// Plain TCP over Ethernet-100 (the reference curve of Figure 3).
    TcpEthernet,
}

impl Stack {
    /// Display name matching the paper's labels.
    pub fn name(&self) -> String {
        match self {
            Stack::Circuit => "Circuit".to_string(),
            Stack::VLink => "VLink".to_string(),
            Stack::Mpi => "MPICH/Myrinet-2000".to_string(),
            Stack::Corba(orb) => format!("{}/Myrinet-2000", orb.name()),
            Stack::JavaSocket => "Java socket/Myrinet-2000".to_string(),
            Stack::TcpEthernet => "TCP/Ethernet-100 (reference)".to_string(),
        }
    }

    /// The stacks plotted in Figure 3, in the paper's legend order.
    pub fn figure3() -> Vec<Stack> {
        vec![
            Stack::Corba(OrbImpl::OmniOrb3),
            Stack::Corba(OrbImpl::OmniOrb4),
            Stack::Corba(OrbImpl::Mico),
            Stack::Corba(OrbImpl::Orbacus),
            Stack::Mpi,
            Stack::JavaSocket,
            Stack::TcpEthernet,
        ]
    }

    /// The columns of Table 1.
    pub fn table1() -> Vec<Stack> {
        vec![
            Stack::Circuit,
            Stack::VLink,
            Stack::Mpi,
            Stack::Corba(OrbImpl::OmniOrb3),
            Stack::Corba(OrbImpl::OmniOrb4),
            Stack::JavaSocket,
        ]
    }
}

/// One measured point: one-way time for a given payload size.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Payload size in bytes.
    pub size: usize,
    /// One-way transfer time in microseconds.
    pub one_way_us: f64,
}

impl Measurement {
    /// Bandwidth in MB/s implied by this measurement.
    pub fn bandwidth_mb_s(&self) -> f64 {
        if self.one_way_us <= 0.0 {
            0.0
        } else {
            self.size as f64 / self.one_way_us
        }
    }
}

/// Result of a latency/bandwidth characterization of one stack.
#[derive(Debug, Clone)]
pub struct StackProfile {
    /// The stack measured.
    pub stack: Stack,
    /// One-way latency of a 4-byte message, in µs.
    pub latency_us: f64,
    /// Measurements across the size sweep.
    pub points: Vec<Measurement>,
}

impl StackProfile {
    /// Peak bandwidth over the sweep, in MB/s.
    pub fn max_bandwidth_mb_s(&self) -> f64 {
        self.points
            .iter()
            .map(Measurement::bandwidth_mb_s)
            .fold(0.0, f64::max)
    }
}

// --------------------------------------------------------------------- //
// Generic ping/ack engine
// --------------------------------------------------------------------- //

/// An abstract "echo" fixture: a way to send `size` bytes to the peer and
/// be told (in virtual time) when the peer's acknowledgement came back.
trait PingFixture {
    fn round_trip_us(&mut self, size: usize) -> f64;
}

fn profile_with(fixture: &mut dyn PingFixture, stack: Stack, sizes: &[usize]) -> StackProfile {
    // One-way latency from a tiny message: half the round trip.
    let small_rtt = fixture.round_trip_us(4);
    let latency_us = small_rtt / 2.0;
    let mut points = Vec::with_capacity(sizes.len());
    for &size in sizes {
        let rtt = fixture.round_trip_us(size);
        // The ack path carries ~no payload, so one way ≈ rtt − small one-way.
        let one_way = (rtt - latency_us).max(0.001);
        points.push(Measurement {
            size,
            one_way_us: one_way,
        });
    }
    StackProfile {
        stack,
        latency_us,
        points,
    }
}

/// The default size sweep of Figure 3 (32 B … 1 MB).
pub fn figure3_sizes() -> Vec<usize> {
    vec![32, 128, 1024, 8 * 1024, 32 * 1024, 256 * 1024, 1024 * 1024]
}

// ---- Stream-style fixtures (Circuit, VLink, Java, TCP) ----------------- //

struct StreamFixture {
    world: SimWorld,
    #[allow(clippy::type_complexity)]
    send: Box<dyn Fn(&mut SimWorld, &[u8])>,
    /// Bytes echoed back so far (the responder sends a 1-byte ack per
    /// completed message).
    acks: Rc<Cell<u64>>,
    expected_acks: u64,
}

impl PingFixture for StreamFixture {
    fn round_trip_us(&mut self, size: usize) -> f64 {
        let start = self.world.now();
        let payload = vec![0xA5u8; size];
        (self.send)(&mut self.world, &payload);
        self.expected_acks += 1;
        let want = self.expected_acks;
        let acks = self.acks.clone();
        self.world.run_while(|| acks.get() < want);
        self.world.now().since(start).as_micros_f64()
    }
}

/// Message framing used by the stream fixtures: 4-byte length prefix, and
/// the responder answers each complete message with a single byte.
fn spawn_echo_on_vlink(server: VLink, acker: bool) {
    let buf = Rc::new(RefCell::new(Vec::<u8>::new()));
    let server2 = server.clone();
    server.set_handler(move |world, event| {
        if event != padico_core::VLinkEvent::Readable {
            return;
        }
        let data = server2.read_now(world, usize::MAX);
        let mut buf = buf.borrow_mut();
        buf.extend_from_slice(&data);
        loop {
            if buf.len() < 4 {
                return;
            }
            let len = u32::from_be_bytes(buf[0..4].try_into().unwrap()) as usize;
            if buf.len() < 4 + len {
                return;
            }
            buf.drain(..4 + len);
            if acker {
                server2.post_write(world, &[1u8]);
            }
        }
    });
}

fn vlink_fixture(client: VLink, server: VLink, mut world: SimWorld) -> StreamFixture {
    spawn_echo_on_vlink(server, true);
    let acks = Rc::new(Cell::new(0u64));
    let a = acks.clone();
    let client2 = client.clone();
    client.set_handler(move |world, event| {
        if event == padico_core::VLinkEvent::Readable {
            let n = client2.read_now(world, usize::MAX).len() as u64;
            a.set(a.get() + n);
        }
    });
    world.run();
    let client_for_send = client.clone();
    StreamFixture {
        world,
        send: Box::new(move |world, payload| {
            let mut framed = Vec::with_capacity(4 + payload.len());
            framed.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            framed.extend_from_slice(payload);
            client_for_send.post_write(world, &framed);
        }),
        acks,
        expected_acks: 0,
    }
}

/// Builds the paper's two-node Myrinet+Ethernet testbed with runtimes.
pub fn testbed(seed: u64) -> (SimWorld, Vec<PadicoRuntime>, Vec<NodeId>) {
    let p = topology::san_pair(seed);
    let mut world = p.world;
    let nodes = vec![p.a, p.b];
    let rts = runtimes_for_cluster(&mut world, p.san, &nodes, SelectorPreferences::default());
    (world, rts, nodes)
}

fn vlink_over_san_fixture() -> StreamFixture {
    let (mut world, rts, nodes) = testbed(7);
    let server_slot: Rc<RefCell<Option<VLink>>> = Rc::new(RefCell::new(None));
    let s = server_slot.clone();
    rts[1].vlink_listen(&mut world, 400, move |_w, v| *s.borrow_mut() = Some(v));
    let client = rts[0].vlink_connect(&mut world, nodes[1], 400);
    world.run();
    let server = server_slot.borrow().clone().expect("accepted");
    vlink_fixture(client, server, world)
}

fn circuit_fixture() -> StreamFixture {
    let (mut world, rts, nodes) = testbed(9);
    let c0 = rts[0].circuit_create(&mut world, nodes.clone(), 70);
    let c1 = rts[1].circuit_create(&mut world, nodes.clone(), 70);
    // Echo 1 byte per received message.
    let c1b = c1.clone();
    c1.set_message_callback(move |world, _msg| {
        c1b.send_bytes(world, 0, Bytes::from_static(&[1u8]));
    });
    let acks = Rc::new(Cell::new(0u64));
    let a = acks.clone();
    c0.set_message_callback(move |_w, _msg| a.set(a.get() + 1));
    let c0_send = c0.clone();
    StreamFixture {
        world,
        send: Box::new(move |world, payload| {
            c0_send.send_bytes(world, 1, Bytes::copy_from_slice(payload));
        }),
        acks,
        expected_acks: 0,
    }
}

fn mpi_fixture() -> StreamFixture {
    let (mut world, rts, nodes) = testbed(11);
    let c0 = rts[0].circuit_create(&mut world, nodes.clone(), 71);
    let c1 = rts[1].circuit_create(&mut world, nodes.clone(), 71);
    let m0 = MpiComm::new(&mut world, c0);
    let m1 = MpiComm::new(&mut world, c1);
    // Rank 1 echoes a 1-byte ack for every message; re-post the receive in
    // the callback to keep the echo server alive.
    fn repost(world: &mut SimWorld, comm: MpiComm) {
        let c = comm.clone();
        comm.recv(world, Some(0), Some(5), move |world, _msg| {
            c.send(world, 0, 6, &[1u8]);
            repost(world, c.clone());
        });
    }
    repost(&mut world, m1);
    let acks = Rc::new(Cell::new(0u64));
    fn repost_ack(world: &mut SimWorld, comm: MpiComm, acks: Rc<Cell<u64>>) {
        let c = comm.clone();
        let a = acks.clone();
        comm.recv(world, Some(1), Some(6), move |world, _msg| {
            a.set(a.get() + 1);
            repost_ack(world, c.clone(), a.clone());
        });
    }
    repost_ack(&mut world, m0.clone(), acks.clone());
    StreamFixture {
        world,
        send: Box::new(move |world, payload| m0.send(world, 1, 5, payload)),
        acks,
        expected_acks: 0,
    }
}

fn corba_fixture(implementation: OrbImpl) -> StreamFixture {
    let (mut world, rts, nodes) = testbed(13);
    let server = Orb::new(rts[1].clone(), implementation);
    server.register_servant("sink", |_w, _op, _arg| IdlValue::Void);
    server.activate(&mut world, 410);
    let client = Orb::new(rts[0].clone(), implementation);
    let objref = client.object_ref(nodes[1], 410, "sink");
    let acks = Rc::new(Cell::new(0u64));
    let a = acks.clone();
    StreamFixture {
        world,
        send: Box::new(move |world, payload| {
            let a = a.clone();
            client.invoke(
                world,
                &objref,
                "put",
                IdlValue::Octets(Bytes::copy_from_slice(payload)),
                move |_w, _reply| a.set(a.get() + 1),
            );
        }),
        acks,
        expected_acks: 0,
    }
}

fn java_fixture() -> StreamFixture {
    let (mut world, rts, nodes) = testbed(15);
    JavaServerSocket::bind(&mut world, &rts[1], 420, |_world, sock| {
        // Echo a byte per complete length-prefixed message.
        let buf = Rc::new(RefCell::new(Vec::<u8>::new()));
        let s2 = sock.clone();
        sock.on_data(move |world, data| {
            let mut buf = buf.borrow_mut();
            buf.extend_from_slice(&data);
            loop {
                if buf.len() < 4 {
                    return;
                }
                let len = u32::from_be_bytes(buf[0..4].try_into().unwrap()) as usize;
                if buf.len() < 4 + len {
                    return;
                }
                buf.drain(..4 + len);
                s2.write(world, &[1u8]);
            }
        });
    });
    let client = JavaSocket::connect(&mut world, &rts[0], nodes[1], 420);
    let acks = Rc::new(Cell::new(0u64));
    let a = acks.clone();
    client.on_data(move |_w, data| a.set(a.get() + data.len() as u64));
    world.run();
    StreamFixture {
        world,
        send: Box::new(move |world, payload| {
            let mut framed = Vec::with_capacity(4 + payload.len());
            framed.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            framed.extend_from_slice(payload);
            client.write(world, &framed);
        }),
        acks,
        expected_acks: 0,
    }
}

fn tcp_ethernet_fixture() -> StreamFixture {
    let mut p = topology::pair_over(17, NetworkSpec::ethernet_100());
    let sa = TcpStack::new(&mut p.world, p.a);
    let sb = TcpStack::new(&mut p.world, p.b);
    let server_conn: Rc<RefCell<Option<TcpConn>>> = Rc::new(RefCell::new(None));
    let sc = server_conn.clone();
    sb.listen(80, move |world, conn| {
        let buf = Rc::new(RefCell::new(Vec::<u8>::new()));
        let c2 = conn.clone();
        conn.set_readable_callback(Box::new(move |world| {
            let data = c2.recv(world, usize::MAX);
            let mut buf = buf.borrow_mut();
            buf.extend_from_slice(&data);
            loop {
                if buf.len() < 4 {
                    return;
                }
                let len = u32::from_be_bytes(buf[0..4].try_into().unwrap()) as usize;
                if buf.len() < 4 + len {
                    return;
                }
                buf.drain(..4 + len);
                c2.send(world, &[1u8]);
            }
        }));
        let _ = world;
        *sc.borrow_mut() = Some(conn);
    });
    let client = sa.connect(&mut p.world, p.network, p.b, 80);
    let acks = Rc::new(Cell::new(0u64));
    let a = acks.clone();
    let c2 = client.clone();
    client.set_readable_callback(Box::new(move |world| {
        a.set(a.get() + c2.recv(world, usize::MAX).len() as u64);
    }));
    p.world.run();
    StreamFixture {
        world: p.world,
        send: Box::new(move |world, payload| {
            let mut framed = Vec::with_capacity(4 + payload.len());
            framed.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            framed.extend_from_slice(payload);
            client.send_all(world, &framed);
        }),
        acks,
        expected_acks: 0,
    }
}

/// Profiles one stack over a size sweep (the engine behind Figure 3 and
/// Table 1).
pub fn profile_stack(stack: Stack, sizes: &[usize]) -> StackProfile {
    let mut fixture: Box<dyn PingFixture> = match stack {
        Stack::Circuit => Box::new(circuit_fixture()),
        Stack::VLink => Box::new(vlink_over_san_fixture()),
        Stack::Mpi => Box::new(mpi_fixture()),
        Stack::Corba(orb) => Box::new(corba_fixture(orb)),
        Stack::JavaSocket => Box::new(java_fixture()),
        Stack::TcpEthernet => Box::new(tcp_ethernet_fixture()),
    };
    profile_with(fixture.as_mut(), stack, sizes)
}

// --------------------------------------------------------------------- //
// Figure 3 / Table 1
// --------------------------------------------------------------------- //

/// Figure 3: bandwidth vs message size for every middleware over
/// Myrinet-2000, plus the TCP/Ethernet-100 reference.
pub fn figure3(sizes: &[usize]) -> Vec<StackProfile> {
    Stack::figure3()
        .into_iter()
        .map(|s| profile_stack(s, sizes))
        .collect()
}

/// Table 1: one-way latency and peak bandwidth of the abstract interfaces
/// and middleware systems over Myrinet-2000.
pub fn table1() -> Vec<StackProfile> {
    let sizes = vec![1024 * 1024, 4 * 1024 * 1024];
    Stack::table1()
        .into_iter()
        .map(|s| profile_stack(s, &sizes))
        .collect()
}

// --------------------------------------------------------------------- //
// WAN experiment (VTHD): single stream vs Parallel Streams
// --------------------------------------------------------------------- //

/// Result of the VTHD WAN experiment.
#[derive(Debug, Clone, Copy)]
pub struct WanResult {
    /// Goodput of a single TCP stream, MB/s.
    pub single_stream_mb_s: f64,
    /// Goodput with Parallel Streams, MB/s.
    pub parallel_streams_mb_s: f64,
    /// Number of member streams used.
    pub streams: usize,
    /// One-way latency observed on the WAN, in milliseconds.
    pub latency_ms: f64,
}

fn wan_transfer(n_streams: usize, bytes: usize) -> f64 {
    let mut p = topology::wan_pair(21);
    let sa = TcpStack::new(&mut p.world, p.a);
    let sb = TcpStack::new(&mut p.world, p.b);
    let received = Rc::new(Cell::new(0usize));
    let cfg = ParallelStreamConfig {
        n_streams,
        chunk_size: 64 * 1024,
    };
    let r = received.clone();
    let server: Rc<RefCell<Option<ParallelStream>>> = Rc::new(RefCell::new(None));
    let s2 = server.clone();
    ParallelStream::listen(&mut p.world, &sb, 2811, cfg.clone(), move |_w, ps| {
        *s2.borrow_mut() = Some(ps);
    });
    let client = ParallelStream::connect(&mut p.world, &sa, p.network, p.b, 2811, cfg);
    p.world.run();
    let server = server.borrow().clone().expect("bundle accepted");
    let s3 = server.clone();
    server.set_readable_callback(Box::new(move |world| {
        r.set(r.get() + s3.recv(world, usize::MAX).len());
    }));
    let start = p.world.now();
    client.send_all(&mut p.world, &vec![0u8; bytes]);
    let rr = received.clone();
    p.world.run_while(|| rr.get() < bytes);
    let secs = p.world.now().since(start).as_secs_f64();
    bytes as f64 / secs / 1e6
}

/// Runs the VTHD experiment (§5): every middleware sees ≈9 MB/s with one
/// stream; Parallel Streams recover the 12 MB/s access-link limit.
pub fn wan_vthd(bytes: usize, streams: usize) -> WanResult {
    let single = wan_transfer(1, bytes);
    let parallel = wan_transfer(streams, bytes);
    let latency_ms = NetworkSpec::vthd_wan().latency.as_millis_f64();
    WanResult {
        single_stream_mb_s: single,
        parallel_streams_mb_s: parallel,
        streams,
        latency_ms,
    }
}

// --------------------------------------------------------------------- //
// VRP experiment: lossy trans-continental link
// --------------------------------------------------------------------- //

/// Result of the VRP-vs-TCP experiment.
#[derive(Debug, Clone, Copy)]
pub struct VrpResult {
    /// TCP goodput on the lossy link, KB/s.
    pub tcp_kb_s: f64,
    /// VRP goodput with the given tolerance, KB/s.
    pub vrp_kb_s: f64,
    /// Tolerated loss fraction.
    pub tolerance: f64,
    /// Fraction of the message actually delivered by VRP.
    pub delivered_fraction: f64,
}

impl VrpResult {
    /// Speed-up of VRP over TCP.
    pub fn speedup(&self) -> f64 {
        if self.tcp_kb_s <= 0.0 {
            0.0
        } else {
            self.vrp_kb_s / self.tcp_kb_s
        }
    }
}

fn lossy_tcp_goodput(bytes: usize) -> f64 {
    let mut p = topology::lossy_internet_pair(23);
    let sa = TcpStack::new(&mut p.world, p.a);
    let sb = TcpStack::new(&mut p.world, p.b);
    let received = Rc::new(Cell::new(0usize));
    let server: Rc<RefCell<Option<TcpConn>>> = Rc::new(RefCell::new(None));
    let sc = server.clone();
    let r = received.clone();
    sb.listen(99, move |_w, conn| {
        let c2 = conn.clone();
        let r = r.clone();
        conn.set_readable_callback(Box::new(move |world| {
            r.set(r.get() + c2.recv(world, usize::MAX).len());
        }));
        *sc.borrow_mut() = Some(conn);
    });
    let client = sa.connect(&mut p.world, p.network, p.b, 99);
    let start = p.world.now();
    client.send_all(&mut p.world, &vec![0u8; bytes]);
    let rr = received.clone();
    p.world.run_while(|| rr.get() < bytes);
    let secs = p.world.now().since(start).as_secs_f64();
    bytes as f64 / secs / 1e3
}

fn lossy_vrp_goodput(bytes: usize, tolerance: f64) -> (f64, f64) {
    let mut p = topology::lossy_internet_pair(25);
    let udp_a = UdpHost::new(&mut p.world, p.a);
    let udp_b = UdpHost::new(&mut p.world, p.b);
    let config = VrpConfig {
        tolerance,
        pacing_bytes_per_sec: NetworkSpec::lossy_internet().bytes_per_sec,
        ..Default::default()
    };
    let done: Rc<RefCell<Option<transport::VrpTransferStats>>> = Rc::new(RefCell::new(None));
    VrpReceiver::bind(
        &mut p.world,
        &udp_b,
        p.network,
        7000,
        config.clone(),
        |_w, _msg| {},
    );
    let d = done.clone();
    VrpSender::send(
        &mut p.world,
        &udp_a,
        p.network,
        p.b,
        7000,
        vec![0u8; bytes],
        config,
        move |_w, stats| *d.borrow_mut() = Some(stats),
    );
    let dd = done.clone();
    p.world.run_while(|| dd.borrow().is_none());
    let stats = done.borrow().expect("sender finished");
    (
        stats.goodput_bytes_per_sec() / 1e3,
        stats.delivered_fraction(),
    )
}

/// Runs the lossy-link experiment (§5): TCP ≈150 KB/s, VRP with 10 %
/// tolerated loss ≈3× faster.
pub fn vrp_lossy_link(bytes: usize, tolerance: f64) -> VrpResult {
    let tcp = lossy_tcp_goodput(bytes);
    let (vrp, delivered) = lossy_vrp_goodput(bytes, tolerance);
    VrpResult {
        tcp_kb_s: tcp,
        vrp_kb_s: vrp,
        tolerance,
        delivered_fraction: delivered,
    }
}

// --------------------------------------------------------------------- //
// MadIO overhead (§4.1) and framework overhead (§5)
// --------------------------------------------------------------------- //

/// Result of the MadIO / framework overhead measurements.
#[derive(Debug, Clone, Copy)]
pub struct OverheadResult {
    /// Small-message one-way latency of the lower layer alone, µs.
    pub baseline_us: f64,
    /// Latency through the layer under test, µs.
    pub layered_us: f64,
}

impl OverheadResult {
    /// The overhead added by the layer, µs.
    pub fn overhead_us(&self) -> f64 {
        self.layered_us - self.baseline_us
    }
}

/// Measures raw Madeleine latency vs MadIO latency (with header combining):
/// the paper reports an overhead under 0.1 µs.
pub fn madio_overhead() -> OverheadResult {
    use madeleine::{Madeleine, SendMode};
    use netaccess::{MadIOTag, NetAccess};

    // Raw Madeleine.
    let baseline_us = {
        let p = topology::san_pair(31);
        let mut world = p.world;
        let nodes = vec![p.a, p.b];
        let m0 = Madeleine::new(&mut world, nodes[0], p.san);
        let m1 = Madeleine::new(&mut world, nodes[1], p.san);
        let c0 = m0.open_channel(nodes.clone()).unwrap();
        let c1 = m1.open_channel(nodes.clone()).unwrap();
        let at = Rc::new(Cell::new(0.0));
        let a = at.clone();
        c1.set_message_callback(move |w, _| a.set(w.now().as_micros_f64()));
        let mut pk = c0.begin_packing(1).unwrap();
        pk.pack(vec![0u8; 16], SendMode::Cheaper);
        pk.end_packing(&mut world);
        world.run();
        at.get()
    };

    // MadIO on top.
    let layered_us = {
        let p = topology::san_pair(31);
        let mut world = p.world;
        let nodes = vec![p.a, p.b];
        let ios: Vec<_> = nodes
            .iter()
            .map(|&n| NetAccess::new(&mut world, n, Some((p.san, nodes.clone()))).madio())
            .collect();
        let at = Rc::new(Cell::new(0.0));
        let a = at.clone();
        ios[1].register(&mut world, MadIOTag::user(0), move |w, _m| {
            a.set(w.now().as_micros_f64())
        });
        ios[0].send_bytes(&mut world, 1, MadIOTag::user(0), vec![0u8; 16]);
        world.run();
        at.get()
    };

    OverheadResult {
        baseline_us,
        layered_us,
    }
}

/// Measures MPI latency directly over a raw Circuit wired to Madeleine vs
/// through the full PadicoTM runtime: the paper reports that MPICH in
/// PadicoTM performs like standalone MPICH.
pub fn mpich_overhead() -> OverheadResult {
    // "Standalone": MPI over a Circuit whose link goes straight to MadIO
    // with a dedicated NetAccess (nothing else sharing the node).
    let baseline_us = {
        let mut fixture = mpi_fixture();
        fixture.round_trip_us(4) / 2.0
    };
    // Through the full runtime with a CORBA ORB also active on both nodes
    // (sharing NetAccess and the SAN).
    let layered_us = {
        let (mut world, rts, nodes) = testbed(33);
        // A second middleware is active on the same nodes.
        let orb = Orb::new(rts[1].clone(), OrbImpl::OmniOrb4);
        orb.register_servant("noise", |_w, _op, _a| IdlValue::Void);
        orb.activate(&mut world, 950);
        let c0 = rts[0].circuit_create(&mut world, nodes.clone(), 72);
        let c1 = rts[1].circuit_create(&mut world, nodes.clone(), 72);
        let m0 = MpiComm::new(&mut world, c0);
        let m1 = MpiComm::new(&mut world, c1);
        let m1b = m1.clone();
        m1.recv(&mut world, Some(0), Some(5), move |world, _msg| {
            m1b.send(world, 0, 6, &[1u8]);
        });
        let at = Rc::new(Cell::new(0.0));
        let a = at.clone();
        m0.recv(&mut world, Some(1), Some(6), move |world, _msg| {
            a.set(world.now().as_micros_f64());
        });
        let start = world.now().as_micros_f64();
        m0.send(&mut world, 1, 5, &[0u8; 4]);
        world.run();
        (at.get() - start) / 2.0
    };
    OverheadResult {
        baseline_us,
        layered_us,
    }
}

// --------------------------------------------------------------------- //
// Coexistence / arbitration fairness
// --------------------------------------------------------------------- //

/// Result of the coexistence experiment: MPI and CORBA sharing one node
/// and one SAN.
#[derive(Debug, Clone, Copy)]
pub struct CoexistenceResult {
    /// MPI messages completed.
    pub mpi_messages: u64,
    /// CORBA requests completed.
    pub corba_requests: u64,
    /// MadIO events dispatched by the arbitration core on the server node.
    pub madio_events: u64,
    /// SysIO events dispatched by the arbitration core on the server node.
    pub sysio_events: u64,
}

/// Runs MPI traffic and CORBA requests concurrently between the same two
/// nodes and reports how the arbitration layer served both.
pub fn coexistence(mpi_messages: u64, corba_requests: u64) -> CoexistenceResult {
    let (mut world, rts, nodes) = testbed(35);
    // MPI between the two nodes.
    let c0 = rts[0].circuit_create(&mut world, nodes.clone(), 73);
    let c1 = rts[1].circuit_create(&mut world, nodes.clone(), 73);
    let m0 = MpiComm::new(&mut world, c0);
    let m1 = MpiComm::new(&mut world, c1);
    let mpi_done = Rc::new(Cell::new(0u64));
    fn echo_loop(world: &mut SimWorld, comm: MpiComm) {
        let c = comm.clone();
        comm.recv(world, Some(0), Some(5), move |world, msg| {
            c.send(world, 0, 6, &msg.data);
            echo_loop(world, c.clone());
        });
    }
    echo_loop(&mut world, m1);
    fn pump_mpi(world: &mut SimWorld, comm: MpiComm, left: u64, done: Rc<Cell<u64>>) {
        if left == 0 {
            return;
        }
        comm.send(world, 1, 5, &vec![0u8; 4096]);
        let c = comm.clone();
        comm.recv(world, Some(1), Some(6), move |world, _msg| {
            done.set(done.get() + 1);
            pump_mpi(world, c.clone(), left - 1, done.clone());
        });
    }
    pump_mpi(&mut world, m0, mpi_messages, mpi_done.clone());

    // CORBA between the same two nodes, forced onto the Ethernet (the
    // client's preferences forbid the SAN) so both NetAccess subsystems are
    // exercised concurrently.
    rts[0].set_preferences(SelectorPreferences {
        forbid_san: true,
        ..Default::default()
    });
    let server = Orb::new(rts[1].clone(), OrbImpl::OmniOrb4);
    server.register_servant("echo", |_w, _op, arg| arg);
    server.activate(&mut world, 960);
    let client = Orb::new(rts[0].clone(), OrbImpl::OmniOrb4);
    let objref = client.object_ref(nodes[1], 960, "echo");
    let corba_done = Rc::new(Cell::new(0u64));
    fn pump_corba(
        world: &mut SimWorld,
        client: Orb,
        objref: middleware::ObjRef,
        left: u64,
        done: Rc<Cell<u64>>,
    ) {
        if left == 0 {
            return;
        }
        let c = client.clone();
        let o = objref.clone();
        client.invoke(
            world,
            &objref,
            "ping",
            IdlValue::Long(7),
            move |world, _r| {
                done.set(done.get() + 1);
                pump_corba(world, c.clone(), o.clone(), left - 1, done.clone());
            },
        );
    }
    pump_corba(
        &mut world,
        client,
        objref,
        corba_requests,
        corba_done.clone(),
    );

    world.run();
    let stats = rts[1].netaccess().stats();
    CoexistenceResult {
        mpi_messages: mpi_done.get(),
        corba_requests: corba_done.get(),
        madio_events: stats.madio_events,
        sysio_events: stats.sysio_events,
    }
}

// --------------------------------------------------------------------- //
// Adapter selection (§3.2 qualitative claims)
// --------------------------------------------------------------------- //

/// One adapter-selection observation.
#[derive(Debug, Clone)]
pub struct SelectionObservation {
    /// Description of the node pair.
    pub pair: String,
    /// Decision for distributed middleware (VLink).
    pub vlink_decision: String,
    /// Decision for parallel middleware (Circuit).
    pub circuit_decision: String,
}

/// Enumerates the selector's decisions across the paper's deployment
/// configurations (same cluster, across a WAN, lossy Internet).
pub fn adapter_selection() -> Vec<SelectionObservation> {
    let mut out = Vec::new();

    let g = topology::two_clusters_over_wan(41, 2);
    let kb = padico_core::TopologyKb::default();
    let a0 = g.cluster_a.node(0);
    let a1 = g.cluster_a.node(1);
    let b0 = g.cluster_b.node(0);
    for (label, x, y) in [
        ("same SAN cluster", a0, a1),
        ("across the VTHD WAN", a0, b0),
        ("same node", a0, a0),
    ] {
        out.push(SelectionObservation {
            pair: label.to_string(),
            vlink_decision: format!("{:?}", kb.select_vlink(&g.world, x, y)),
            circuit_decision: format!("{:?}", kb.select_circuit(&g.world, x, y)),
        });
    }

    let inet = topology::lossy_internet_pair(43);
    out.push(SelectionObservation {
        pair: "lossy trans-continental link".to_string(),
        vlink_decision: format!("{:?}", kb.select_vlink(&inet.world, inet.a, inet.b)),
        circuit_decision: format!("{:?}", kb.select_circuit(&inet.world, inet.a, inet.b)),
    });
    out
}
