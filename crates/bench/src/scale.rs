//! The 10⁵-node scale benchmark: a partitioned world of SAN-cluster
//! shards exchanging local and cross-shard traffic.
//!
//! The single-queue simulator tops out long before grid scale: one
//! `SimWorld` with 10⁵ nodes serializes every event through one queue.
//! This benchmark instead builds the world as `shards` independent
//! [`SimWorld`]s (one per site, ~`nodes_per_shard` nodes each) driven by
//! [`run_partitioned`]: shards execute in conservative windows whose
//! width is the cross-site lookahead, and gateway frames cross between
//! shards at the window barriers — exactly the gateway-isolation
//! invariant the grid topology guarantees (only gateways touch the
//! backbone, and the backbone latency bounds every cross-site delivery
//! from below).
//!
//! Each shard runs a fixed, seed-independent workload: every node sends
//! `frames_per_node` frames to its ring successor on the site SAN
//! (payloads drawn from a per-shard [`FramePool`] freelist), and the
//! shard's gateway (node 0) emits `cross_frames_per_shard` frames to the
//! next shard. The run is deterministic and thread-count-independent:
//! the report digest is identical at any worker count, which the
//! `--scale-smoke` CI job and the unit tests below both assert.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use simnet::{
    run_partitioned, Frame, FramePool, NetworkSpec, NodeId, Partition, ProtoId, SimDuration,
    SimTime, SimWorld,
};

/// Local intra-shard traffic tag (`ProtoId::user(41)`).
const LOCAL: ProtoId = ProtoId(ProtoId::USER_BASE.0 + 41);
/// Cross-shard gateway traffic tag (`ProtoId::user(42)`).
const CROSS: ProtoId = ProtoId(ProtoId::USER_BASE.0 + 42);
/// Payload bytes of every scale frame.
const SCALE_FRAME_BYTES: usize = 512;
/// Buffers each shard's freelist retains.
const POOL_BUFFERS: usize = 64;

/// Shape of one scale run.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Shard worlds (sites).
    pub shards: u16,
    /// Nodes per shard; total nodes = `shards × nodes_per_shard`.
    pub nodes_per_shard: usize,
    /// Frames each node sends to its ring successor on the site SAN.
    pub frames_per_node: u64,
    /// Frames each shard's gateway sends to the next shard.
    pub cross_frames_per_shard: u64,
    /// Worker threads (shard `s` runs on worker `s % threads`).
    pub threads: usize,
    /// Conservative window width — the modelled backbone latency, a
    /// lower bound on every cross-shard delivery.
    pub lookahead: SimDuration,
    /// Base RNG seed (shard `s` runs on `seed + s`).
    pub seed: u64,
}

impl ScaleConfig {
    /// The headline configuration: 10⁵ nodes as 1000 sites × 100 nodes.
    pub fn hundred_k() -> Self {
        ScaleConfig {
            shards: 1000,
            nodes_per_shard: 100,
            frames_per_node: 6,
            cross_frames_per_shard: 8,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            lookahead: SimDuration::from_micros(200),
            seed: 0x5CA1E,
        }
    }

    /// A seconds-scale shrink of the same shape, for tests.
    pub fn tiny() -> Self {
        ScaleConfig {
            shards: 8,
            nodes_per_shard: 10,
            frames_per_node: 3,
            cross_frames_per_shard: 4,
            threads: 1,
            lookahead: SimDuration::from_micros(200),
            seed: 0x5CA1E,
        }
    }

    /// Total nodes across all shards.
    pub fn nodes(&self) -> usize {
        self.shards as usize * self.nodes_per_shard
    }
}

/// Everything one scale run measures.
#[derive(Debug, Clone)]
pub struct ScaleResult {
    /// Total nodes simulated.
    pub nodes: usize,
    /// Shard worlds.
    pub shards: u16,
    /// Worker threads used.
    pub threads: usize,
    /// Window-barrier rounds executed.
    pub rounds: u64,
    /// Events executed across all shards.
    pub events_total: u64,
    /// Local frames put on site SANs (summed over shards).
    pub frames_local: u64,
    /// Local frames delivered to their ring successor.
    pub delivered_local: u64,
    /// Frames that crossed a shard boundary.
    pub frames_crossed: u64,
    /// Cross-shard frames delivered to a gateway handler.
    pub delivered_cross: u64,
    /// Cross-shard frames that found no handler — must be 0.
    pub cross_unclaimed: u64,
    /// Payload buffers served from the freelists (vs fresh allocations).
    pub pool_reused: u64,
    /// Payload buffers freshly allocated.
    pub pool_allocated: u64,
    /// Wall-clock seconds of the window loop.
    pub wall_seconds: f64,
    /// Events per wall-clock second — the headline scaling number.
    pub events_per_sec: f64,
    /// FNV-1a fingerprint of the merged per-shard telemetry digest.
    /// Identical across thread counts and across runs of the same
    /// config — the determinism handle of the partitioned executor.
    pub digest: String,
}

/// FNV-1a, 64-bit — a dependency-free fingerprint for the digest text.
pub(crate) fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Builds one shard world of the scale workload.
fn build_shard(cfg: &ScaleConfig, shard: u16, world: &mut SimWorld) {
    let n = cfg.nodes_per_shard;
    let net = world.add_network(NetworkSpec::myrinet_2000());
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| world.add_node(&format!("s{shard}n{i}")))
        .collect();
    for &node in &nodes {
        world.attach(node, net);
    }

    let pool = Rc::new(RefCell::new(FramePool::new(POOL_BUFFERS)));
    let delivered_local = Rc::new(Cell::new(0u64));
    let delivered_cross = Rc::new(Cell::new(0u64));

    // Scrape the workload counters into the shard snapshot so the
    // merged digest covers them and the report can aggregate them. The
    // freelist publishes itself under `sim.executor.pool.*`.
    FramePool::register_metrics(&pool, &world.metrics);
    let (dl2, dc2) = (delivered_local.clone(), delivered_cross.clone());
    world.metrics.register_collector(move |b| {
        b.counter("scale.delivered_local", &[], dl2.get());
        b.counter("scale.delivered_cross", &[], dc2.get());
    });

    // Every node receives from its ring predecessor; payload buffers go
    // back to the freelist on delivery.
    for &node in &nodes {
        let (p2, d2) = (pool.clone(), delivered_local.clone());
        world.register_handler(node, LOCAL, move |_w, _net, f| {
            d2.set(d2.get() + 1);
            p2.borrow_mut().reclaim(f.payload);
        });
    }
    // The gateway (node 0) also absorbs cross-shard arrivals.
    let (p2, d2) = (pool.clone(), delivered_cross.clone());
    world.register_handler(nodes[0], CROSS, move |_w, _net, f| {
        d2.set(d2.get() + 1);
        p2.borrow_mut().reclaim(f.payload);
    });

    // Local traffic: node i sends `frames_per_node` frames to node i+1,
    // staggered so the SAN is busy across the whole run.
    for i in 0..n {
        let (src, dst) = (nodes[i], nodes[(i + 1) % n]);
        for k in 0..cfg.frames_per_node {
            let at = SimTime::from_nanos(1_000 + k * 200_000 + i as u64 * 1_900);
            let p2 = pool.clone();
            world.schedule_at(at, move |w| {
                let payload = p2.borrow_mut().take(SCALE_FRAME_BYTES);
                w.send_frame(net, Frame::new(src, dst, LOCAL, payload))
                    .expect("scale local send");
            });
        }
    }

    // Cross traffic: the gateway sends to the next shard's gateway.
    let next = (shard + 1) % cfg.shards;
    let gw = nodes[0];
    for k in 0..cfg.cross_frames_per_shard {
        let at = SimTime::from_nanos(50_000 + k * 450_000);
        let p2 = pool.clone();
        world.schedule_at(at, move |w| {
            let payload = p2.borrow_mut().take(SCALE_FRAME_BYTES);
            w.send_remote(
                next,
                Frame::new(gw, NodeId(0), CROSS, payload),
                SimDuration::ZERO,
            );
        });
    }
}

/// Runs one scale measurement.
pub fn scale_run(cfg: &ScaleConfig) -> ScaleResult {
    assert!(cfg.shards >= 2, "cross traffic needs 2+ shards");
    assert!(cfg.nodes_per_shard >= 2, "a ring needs 2+ nodes");
    let part = Partition {
        shards: cfg.shards,
        threads: cfg.threads,
        lookahead: cfg.lookahead,
        trunks: None,
        seed: cfg.seed,
    };
    let report = run_partitioned(&part, |shard, world| build_shard(cfg, shard, world));

    let mut frames_local = 0u64;
    let mut delivered_local = 0u64;
    let mut delivered_cross = 0u64;
    let mut pool_reused = 0u64;
    let mut pool_allocated = 0u64;
    let mut cross_unclaimed = 0u64;
    for o in &report.outcomes {
        frames_local += o.snapshot.counter_total("sim.net.frames_sent");
        delivered_local += o.snapshot.counter("scale.delivered_local").unwrap_or(0);
        delivered_cross += o.snapshot.counter("scale.delivered_cross").unwrap_or(0);
        pool_reused += o.snapshot.counter("sim.executor.pool.reused").unwrap_or(0);
        pool_allocated += o
            .snapshot
            .counter("sim.executor.pool.allocated")
            .unwrap_or(0);
        cross_unclaimed += o.stats.remote_unclaimed;
    }
    ScaleResult {
        nodes: cfg.nodes(),
        shards: cfg.shards,
        threads: report.threads,
        rounds: report.rounds,
        events_total: report.events_total,
        frames_local,
        delivered_local,
        frames_crossed: report.frames_crossed,
        delivered_cross,
        cross_unclaimed,
        pool_reused,
        pool_allocated,
        wall_seconds: report.wall_seconds,
        events_per_sec: report.events_per_sec(),
        digest: format!("{:016x}", fnv1a(&report.digest())),
    }
}

/// Renders one [`ScaleResult`] as the `"scale"` JSON object embedded in
/// `BENCH_multi_site.json` (no trailing comma or newline).
pub fn scale_json_section(r: &ScaleResult) -> String {
    format!(
        concat!(
            "{{\"nodes\": {}, \"shards\": {}, \"threads\": {}, \"rounds\": {}, ",
            "\"events_total\": {}, \"frames_local\": {}, \"delivered_local\": {}, ",
            "\"frames_crossed\": {}, \"delivered_cross\": {}, \"cross_unclaimed\": {}, ",
            "\"pool_reused\": {}, \"pool_allocated\": {}, \"wall_seconds\": {:.3}, ",
            "\"events_per_sec\": {:.0}, \"digest\": \"{}\"}}"
        ),
        r.nodes,
        r.shards,
        r.threads,
        r.rounds,
        r.events_total,
        r.frames_local,
        r.delivered_local,
        r.frames_crossed,
        r.delivered_cross,
        r.cross_unclaimed,
        r.pool_reused,
        r.pool_allocated,
        r.wall_seconds,
        r.events_per_sec,
        r.digest,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scale_run_conserves_and_pools() {
        let cfg = ScaleConfig::tiny();
        let r = scale_run(&cfg);
        assert_eq!(r.nodes, 80);
        // Every local frame sent is delivered on the lossless SAN.
        let sent = cfg.shards as u64 * cfg.nodes_per_shard as u64 * cfg.frames_per_node;
        assert_eq!(r.frames_local, sent, "{r:?}");
        assert_eq!(r.delivered_local, sent, "{r:?}");
        // Every cross frame arrives at a registered gateway handler.
        let crossed = cfg.shards as u64 * cfg.cross_frames_per_shard;
        assert_eq!(r.frames_crossed, crossed, "{r:?}");
        assert_eq!(r.delivered_cross, crossed, "{r:?}");
        assert_eq!(r.cross_unclaimed, 0, "{r:?}");
        // The freelist absorbs the steady state: most payloads reuse a
        // retired buffer instead of allocating.
        assert!(r.pool_reused > r.pool_allocated, "{r:?}");
    }

    #[test]
    fn scale_digest_is_thread_count_independent() {
        let mut cfg = ScaleConfig::tiny();
        let a = scale_run(&cfg);
        cfg.threads = 3;
        let b = scale_run(&cfg);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.events_total, b.events_total);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn scale_json_section_is_balanced() {
        let r = scale_run(&ScaleConfig::tiny());
        let json = scale_json_section(&r);
        assert!(json.contains("\"events_per_sec\""));
        assert!(json.contains("\"digest\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
