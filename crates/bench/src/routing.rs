//! The routing-scalability bench: flat all-pairs Dijkstra vs the
//! two-level hierarchical router, swept over 10²–10⁴-node grids in three
//! shapes (star-of-sites, backbone ring, cluster-of-clusters).
//!
//! For each (shape, size) case it records, into `BENCH_routing.json`:
//!
//! * **build time** — wall-clock table construction. Above
//!   [`FLAT_FULL_LIMIT`] nodes the flat table no longer fits in memory
//!   (that is the point); its build time is then measured on
//!   [`FLAT_SAMPLE_SOURCES`] real Dijkstra sources via
//!   [`RouteTable::compute_from_sources`] and extrapolated linearly,
//!   flagged `flat_measured: false`.
//! * **resident table bytes** — the payload estimator shared by both
//!   implementations ([`RouteTable::table_bytes`] /
//!   [`HierRouteTable::table_bytes`]); extrapolated per-pair above the
//!   same limit.
//! * **per-lookup latency** — full `route` + `PathInfo` materialization,
//!   for the flat table, the hierarchical table cold, and the
//!   hierarchical table through the selector's route cache (the hot
//!   path).
//! * **cost equivalence** — for a seeded sample of sources, every
//!   destination's reachability and additive cost is compared against
//!   the flat oracle. Any mismatch fails the bench (and CI).
//!
//! A second experiment runs the topology-aware hierarchical allreduce
//! against the linear baseline on a live multi-site grid and records the
//! inter-site message counts and virtual completion times.

use std::rc::Rc;
use std::time::Instant;

use gridtopo::{
    GridRoutes, GridTopology, HierRouteTable, RelayConfig, RelayFabric, RouteTable, SiteSpec,
};
use middleware::MpiComm;
use padico_core::{runtimes_for_grid, SelectorPreferences, TopologyKb};
use simnet::{NetworkSpec, NodeId, SimRng, SimWorld};

/// Largest node count at which the flat all-pairs table is built in full
/// (1500² ≈ 2.3 M ordered pairs). Beyond it, flat numbers come from a
/// measured per-source sample, extrapolated linearly.
pub const FLAT_FULL_LIMIT: usize = 1500;

/// Dijkstra sources actually run for the extrapolated flat measurement.
pub const FLAT_SAMPLE_SOURCES: usize = 8;

/// Sources whose full destination row is checked against the flat oracle.
const ORACLE_SOURCES: usize = 12;

/// (src, dst) pairs timed per lookup measurement.
const LOOKUP_PAIRS: usize = 1000;

/// Frames relayed in the measured traffic phase of each case.
const TRAFFIC_FRAMES: usize = 1000;
/// Destination nodes bound in the traffic phase.
const TRAFFIC_DESTS: usize = 64;

/// One swept case.
#[derive(Debug, Clone)]
pub struct RoutingCase {
    /// Topology shape: `star`, `ring` or `cluster`.
    pub shape: &'static str,
    /// Total grid nodes.
    pub nodes: usize,
    /// Number of sites.
    pub sites: usize,
    /// Flat table build milliseconds (extrapolated when
    /// `flat_measured == false`).
    pub flat_build_ms: f64,
    /// Flat table resident bytes (same caveat).
    pub flat_table_bytes: u64,
    /// Whether the flat numbers are fully measured or extrapolated from
    /// the sampled sources.
    pub flat_measured: bool,
    /// Flat per-lookup nanoseconds (route + PathInfo); `None` when the
    /// full flat table was not built.
    pub flat_lookup_ns: Option<f64>,
    /// Hierarchical build milliseconds (always fully measured).
    pub hier_build_ms: f64,
    /// Hierarchical tables resident bytes.
    pub hier_table_bytes: u64,
    /// Hierarchical per-lookup nanoseconds, cold (no cache).
    pub hier_lookup_ns: f64,
    /// Hierarchical per-lookup nanoseconds through the selector's route
    /// cache (hit path).
    pub hier_cached_lookup_ns: f64,
    /// Ordered (source, destination-row) pairs compared to the oracle.
    pub pairs_checked: usize,
    /// Oracle disagreements: differing cost on a reachable pair.
    pub cost_mismatches: usize,
    /// Oracle disagreements: differing reachability.
    pub reachability_mismatches: usize,
    /// Simulator events per wall-clock second in the measured traffic
    /// phase — real relayed frames through the full-size world, so the
    /// row records an *executed* event rate at this node count, not an
    /// extrapolation.
    pub events_per_sec: f64,
}

impl RoutingCase {
    /// Build-time ratio (flat / hier) — ≥ 10 is the acceptance target at
    /// the largest size.
    pub fn build_speedup(&self) -> f64 {
        self.flat_build_ms / self.hier_build_ms.max(1e-9)
    }

    /// Memory ratio (flat / hier).
    pub fn bytes_ratio(&self) -> f64 {
        self.flat_table_bytes as f64 / (self.hier_table_bytes as f64).max(1.0)
    }
}

/// Result of the allreduce comparison on one live grid.
#[derive(Debug, Clone)]
pub struct AllreduceResult {
    /// Sites in the grid.
    pub sites: usize,
    /// Nodes (= MPI ranks) per site.
    pub nodes_per_site: usize,
    /// Inter-site messages of the linear reduce+broadcast.
    pub linear_inter_site_msgs: u64,
    /// Inter-site messages of the hierarchical algorithm.
    pub hier_inter_site_msgs: u64,
    /// Inter-site messages of the flat root-to-everyone broadcast.
    pub bcast_linear_inter_site_msgs: u64,
    /// Inter-site messages of the hierarchical (leader-tree) broadcast.
    pub bcast_hier_inter_site_msgs: u64,
    /// Inter-site messages of the flat gather/release barrier.
    pub barrier_linear_inter_site_msgs: u64,
    /// Inter-site messages of the hierarchical barrier.
    pub barrier_hier_inter_site_msgs: u64,
    /// Virtual completion time of the linear algorithm, microseconds.
    pub linear_us: f64,
    /// Virtual completion time of the hierarchical algorithm.
    pub hier_us: f64,
    /// Simulator events executed per *host* second across both runs.
    pub events_per_sec: f64,
    /// Telemetry snapshot scraped at quiescence of the hierarchical run
    /// (route-cache, trunk and per-rank MPI counters), embedded in
    /// `BENCH_routing.json`.
    pub metrics: simnet::MetricsSnapshot,
}

fn build_grid(world: &mut SimWorld, shape: &str, nodes: usize) -> GridTopology {
    // Sites grow with the grid so both levels scale: ~10-node sites for
    // 10² grids, ~32 for 10³, ~100 for 10⁴. LAN-only sites keep the
    // clique expansion linear in site size per node.
    let per_site = if nodes >= 5000 {
        100
    } else if nodes >= 500 {
        32
    } else {
        10
    };
    let sites = (nodes / per_site).max(if shape == "ring" { 3 } else { 2 });
    let specs: Vec<SiteSpec> = (0..sites)
        .map(|i| SiteSpec::lan_cluster(format!("s{i}"), per_site))
        .collect();
    match shape {
        "star" => GridTopology::star(world, &specs, NetworkSpec::vthd_wan()),
        "ring" => GridTopology::ring(world, &specs, NetworkSpec::vthd_wan()),
        "cluster" => {
            // Regions of up to 8 sites under a lossy global backbone.
            let regions: Vec<Vec<SiteSpec>> = specs.chunks(8).map(|c| c.to_vec()).collect();
            GridTopology::cluster_of_clusters(
                world,
                &regions,
                NetworkSpec::vthd_wan(),
                NetworkSpec::lossy_internet(),
            )
        }
        other => panic!("unknown shape {other}"),
    }
}

/// Deterministic sample of `count` nodes (used as oracle / flat-sample
/// sources).
fn sample_nodes(rng: &mut SimRng, all: &[NodeId], count: usize) -> Vec<NodeId> {
    let mut picked = Vec::with_capacity(count.min(all.len()));
    let mut used = std::collections::HashSet::new();
    while picked.len() < count.min(all.len()) {
        let i = rng.gen_range(0, all.len() as u64) as usize;
        if used.insert(i) {
            picked.push(all[i]);
        }
    }
    picked
}

/// Runs one (shape, size) case.
pub fn routing_case(shape: &'static str, nodes: usize) -> RoutingCase {
    let mut world = SimWorld::new(0xB07 + nodes as u64);
    let grid = build_grid(&mut world, shape, nodes);
    let all = grid.all_nodes();
    let n = all.len();
    let mut rng = SimRng::seeded(0x9017 + n as u64);

    // Hierarchical build (always in full).
    let t0 = Instant::now();
    let hier = HierRouteTable::try_compute(&world, &grid.layout)
        .expect("bench grids are gateway-isolated");
    let hier_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let hier_table_bytes = hier.table_bytes() as u64;

    // Flat build: full below the limit, sampled + extrapolated above.
    // The sampled sources double as the oracle rows below — a sampled
    // flat table only holds routes *from* those sources.
    let flat_full = n <= FLAT_FULL_LIMIT;
    let sampled_sources = sample_nodes(&mut rng, &all, FLAT_SAMPLE_SOURCES);
    let (flat, flat_build_ms, flat_table_bytes) = if flat_full {
        let t0 = Instant::now();
        let flat = RouteTable::compute(&world);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let bytes = flat.table_bytes() as u64;
        (flat, ms, bytes)
    } else {
        // The clique-expanded adjacency is built once and shared by all
        // sources; time it separately (an empty source set runs only
        // that phase) so the extrapolation scales the per-source
        // Dijkstra cost alone instead of inflating the one-time setup.
        let t0 = Instant::now();
        let _ = RouteTable::compute_from_sources(&world, &[]);
        let adjacency_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let sampled = RouteTable::compute_from_sources(&world, &sampled_sources);
        let sampled_ms = t0.elapsed().as_secs_f64() * 1e3;
        let per_source_ms = (sampled_ms - adjacency_ms).max(0.0) / sampled_sources.len() as f64;
        let scale = n as f64 / sampled_sources.len() as f64;
        let pairs = sampled.reachable_pairs().max(1);
        let per_pair = sampled.table_bytes() as f64 / pairs as f64;
        let full_pairs = pairs as f64 * scale;
        (
            sampled,
            adjacency_ms + per_source_ms * n as f64,
            (per_pair * full_pairs) as u64,
        )
    };

    // Oracle check: for sampled sources, every destination must agree on
    // reachability and cost. When the flat table is sampled, only its
    // computed sources are valid oracle rows.
    let oracle_sources = if flat_full {
        sample_nodes(&mut rng, &all, ORACLE_SOURCES.min(n))
    } else {
        sampled_sources
    };
    let mut pairs_checked = 0;
    let mut cost_mismatches = 0;
    let mut reachability_mismatches = 0;
    for &src in &oracle_sources {
        for &dst in &all {
            if src == dst {
                continue;
            }
            pairs_checked += 1;
            let f = flat.cost(src, dst);
            let h = hier.cost(src, dst);
            match (f, h) {
                (Some(fc), Some(hc)) if fc != hc => cost_mismatches += 1,
                (Some(_), None) | (None, Some(_)) => reachability_mismatches += 1,
                _ => {}
            }
        }
    }

    // Lookup latency over a fixed pair sample: full route + PathInfo.
    let pairs: Vec<(NodeId, NodeId)> = (0..LOOKUP_PAIRS)
        .map(|_| {
            let a = all[rng.gen_range(0, n as u64) as usize];
            let b = all[rng.gen_range(0, n as u64) as usize];
            (a, b)
        })
        .collect();
    let time_lookups = |f: &mut dyn FnMut(NodeId, NodeId)| -> f64 {
        let t0 = Instant::now();
        for &(a, b) in &pairs {
            f(a, b);
        }
        t0.elapsed().as_secs_f64() * 1e9 / pairs.len() as f64
    };
    let flat_lookup_ns = flat_full.then(|| {
        time_lookups(&mut |a, b| {
            std::hint::black_box(flat.path_info(&world, a, b));
        })
    });
    let hier_lookup_ns = time_lookups(&mut |a, b| {
        std::hint::black_box(hier.path_info(&world, a, b));
    });
    // Cached path: the selector's knowledge base memoizes resolved
    // routes; size the cache to the sample so the second pass is all hits.
    let kb = TopologyKb::with_routes(
        SelectorPreferences {
            route_cache_capacity: LOOKUP_PAIRS * 2,
            ..Default::default()
        },
        Rc::new(GridRoutes::Hier(hier.clone())),
    );
    for &(a, b) in &pairs {
        let _ = kb.resolve_route(&world, a, b); // warm
    }
    let hier_cached_lookup_ns = time_lookups(&mut |a, b| {
        std::hint::black_box(kb.resolve_route(&world, a, b));
    });

    // Measured traffic phase: relay real frames through the full-size
    // world over the grid's (hierarchical) routes and record the event
    // rate. Long ring paths may exceed the relay TTL — those frames are
    // still executed work, which is what this phase measures.
    let fabric = RelayFabric::new(grid.routes.clone(), RelayConfig::default());
    for &node in &all {
        fabric.attach(&mut world, node);
    }
    let dests = sample_nodes(&mut rng, &all, TRAFFIC_DESTS.min(n));
    for &dst in &dests {
        fabric.bind(&mut world, dst, 3, |_w, _msg| {});
    }
    let events_before = world.stats.events_executed;
    let t0 = Instant::now();
    for k in 0..TRAFFIC_FRAMES {
        let src = all[rng.gen_range(0, n as u64) as usize];
        let dst = dests[k % dests.len()];
        if src != dst {
            let _ = fabric.send(&mut world, src, dst, 3, vec![0u8; 256]);
        }
    }
    world.run();
    let events_per_sec =
        (world.stats.events_executed - events_before) as f64 / t0.elapsed().as_secs_f64().max(1e-9);

    RoutingCase {
        shape,
        nodes: n,
        sites: grid.sites.len(),
        flat_build_ms,
        flat_table_bytes,
        flat_measured: flat_full,
        flat_lookup_ns,
        hier_build_ms,
        hier_table_bytes,
        hier_lookup_ns,
        hier_cached_lookup_ns,
        pairs_checked,
        cost_mismatches,
        reachability_mismatches,
        events_per_sec,
    }
}

/// Runs both allreduce variants over a live grid and reports the
/// inter-site message counts and virtual completion times.
pub fn allreduce_comparison(sites: usize, nodes_per_site: usize) -> AllreduceResult {
    let wall = Instant::now();
    let events = std::cell::Cell::new(0u64);
    let snapshot = std::cell::RefCell::new(simnet::MetricsSnapshot::default());
    // Each run measures the allreduce, then the broadcast and barrier
    // as separate phases, reading the cumulative inter-site counter
    // between phases so every collective gets its own linear-vs-hier
    // comparison on the same grid.
    let run = |hier: bool| -> ([u64; 3], f64) {
        let mut world = SimWorld::new(0xA11);
        let specs: Vec<SiteSpec> = (0..sites)
            .map(|i| SiteSpec::san_cluster(format!("s{i}"), nodes_per_site))
            .collect();
        let grid = GridTopology::star(&mut world, &specs, NetworkSpec::vthd_wan());
        let (rts, _proxies) = runtimes_for_grid(&mut world, &grid, SelectorPreferences::default());
        let all = grid.all_nodes();
        let comms: Vec<MpiComm> = rts
            .iter()
            .map(|rt| {
                let circuit = rt.circuit_create(&mut world, all.clone(), 903);
                let comm = MpiComm::new(&mut world, circuit);
                comm.install_topology(&world, &grid.routes);
                comm
            })
            .collect();
        world.run(); // settle trunks and listeners before timing
        let inter_now =
            |comms: &[MpiComm]| -> u64 { comms.iter().map(|c| c.inter_site_messages()).sum() };
        let t0 = world.now();
        for (i, comm) in comms.iter().enumerate() {
            let value = (i + 1) as f64;
            let expected = (comms.len() * (comms.len() + 1) / 2) as f64;
            let cb = move |_w: &mut SimWorld, total: f64| {
                assert_eq!(total, expected, "allreduce total");
            };
            if hier {
                comm.allreduce_sum(&mut world, value, cb);
            } else {
                comm.allreduce_sum_linear(&mut world, value, cb);
            }
        }
        world.run();
        let us = world.now().since(t0).as_micros_f64();
        let allreduce_inter = inter_now(&comms);
        for (i, comm) in comms.iter().enumerate() {
            let data = (i == 0).then(|| vec![0xB0u8; 64]);
            let cb = move |_w: &mut SimWorld, buf: Vec<u8>| {
                assert_eq!(buf, vec![0xB0u8; 64], "bcast buffer");
            };
            if hier {
                comm.bcast(&mut world, 0, data, cb);
            } else {
                comm.bcast_linear(&mut world, 0, data, cb);
            }
        }
        world.run();
        let bcast_inter = inter_now(&comms) - allreduce_inter;
        let entered = std::rc::Rc::new(std::cell::Cell::new(0usize));
        for comm in &comms {
            let e = entered.clone();
            let cb = move |_w: &mut SimWorld| e.set(e.get() + 1);
            if hier {
                comm.barrier(&mut world, cb);
            } else {
                comm.barrier_linear(&mut world, cb);
            }
        }
        world.run();
        assert_eq!(entered.get(), comms.len(), "barrier released every rank");
        let barrier_inter = inter_now(&comms) - allreduce_inter - bcast_inter;
        events.set(events.get() + world.stats.events_executed);
        if hier {
            *snapshot.borrow_mut() = world.metrics_snapshot();
        }
        ([allreduce_inter, bcast_inter, barrier_inter], us)
    };
    let ([linear_inter_site_msgs, bcast_linear, barrier_linear], linear_us) = run(false);
    let ([hier_inter_site_msgs, bcast_hier, barrier_hier], hier_us) = run(true);
    AllreduceResult {
        sites,
        nodes_per_site,
        linear_inter_site_msgs,
        hier_inter_site_msgs,
        bcast_linear_inter_site_msgs: bcast_linear,
        bcast_hier_inter_site_msgs: bcast_hier,
        barrier_linear_inter_site_msgs: barrier_linear,
        barrier_hier_inter_site_msgs: barrier_hier,
        linear_us,
        hier_us,
        events_per_sec: events.get() as f64 / wall.elapsed().as_secs_f64().max(1e-9),
        metrics: snapshot.into_inner(),
    }
}

/// The default sweep: every shape at every size.
pub fn routing_sweep(sizes: &[usize]) -> Vec<RoutingCase> {
    let mut out = Vec::new();
    for &n in sizes {
        for shape in ["star", "ring", "cluster"] {
            eprintln!("routing: {shape} @ {n} nodes…");
            out.push(routing_case(shape, n));
        }
    }
    out
}

/// Renders cases + allreduce as the `BENCH_routing.json` document.
pub fn routing_json(cases: &[RoutingCase], allreduce: &AllreduceResult) -> String {
    let mut s = String::from("{\n  \"experiment\": \"routing\",\n  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\"shape\": \"{}\", \"nodes\": {}, \"sites\": {}, ",
                "\"flat_build_ms\": {:.2}, \"flat_table_bytes\": {}, \"flat_measured\": {}, ",
                "\"flat_lookup_ns\": {}, ",
                "\"hier_build_ms\": {:.2}, \"hier_table_bytes\": {}, ",
                "\"hier_lookup_ns\": {:.0}, \"hier_cached_lookup_ns\": {:.0}, ",
                "\"build_speedup\": {:.1}, \"bytes_ratio\": {:.1}, ",
                "\"pairs_checked\": {}, \"cost_mismatches\": {}, ",
                "\"reachability_mismatches\": {}, \"events_per_sec\": {:.0}}}{}\n"
            ),
            c.shape,
            c.nodes,
            c.sites,
            c.flat_build_ms,
            c.flat_table_bytes,
            c.flat_measured,
            c.flat_lookup_ns
                .map(|v| format!("{v:.0}"))
                .unwrap_or_else(|| "null".into()),
            c.hier_build_ms,
            c.hier_table_bytes,
            c.hier_lookup_ns,
            c.hier_cached_lookup_ns,
            c.build_speedup(),
            c.bytes_ratio(),
            c.pairs_checked,
            c.cost_mismatches,
            c.reachability_mismatches,
            c.events_per_sec,
            if i + 1 == cases.len() { "" } else { "," },
        ));
    }
    s.push_str(&format!(
        concat!(
            "  ],\n  \"allreduce\": {{\"sites\": {}, \"nodes_per_site\": {}, ",
            "\"linear_inter_site_msgs\": {}, \"hier_inter_site_msgs\": {}, ",
            "\"bcast_linear_inter_site_msgs\": {}, \"bcast_hier_inter_site_msgs\": {}, ",
            "\"barrier_linear_inter_site_msgs\": {}, \"barrier_hier_inter_site_msgs\": {}, ",
            "\"linear_us\": {:.1}, \"hier_us\": {:.1}, ",
            "\"events_per_sec\": {:.0}}},\n  \"metrics\": {}\n}}\n"
        ),
        allreduce.sites,
        allreduce.nodes_per_site,
        allreduce.linear_inter_site_msgs,
        allreduce.hier_inter_site_msgs,
        allreduce.bcast_linear_inter_site_msgs,
        allreduce.bcast_hier_inter_site_msgs,
        allreduce.barrier_linear_inter_site_msgs,
        allreduce.barrier_hier_inter_site_msgs,
        allreduce.linear_us,
        allreduce.hier_us,
        allreduce.events_per_sec,
        crate::multi_site::snapshot_json_object(&allreduce.metrics),
    ));
    s
}

/// Writes `BENCH_routing.json` into the current directory.
pub fn write_routing_json(
    cases: &[RoutingCase],
    allreduce: &AllreduceResult,
) -> std::io::Result<String> {
    let path = "BENCH_routing.json".to_string();
    std::fs::write(&path, routing_json(cases, allreduce))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_case_is_cost_equal_and_faster_to_build() {
        let c = routing_case("star", 100);
        assert_eq!(c.cost_mismatches, 0, "{c:?}");
        assert_eq!(c.reachability_mismatches, 0, "{c:?}");
        assert!(c.flat_measured);
        assert!(c.hier_table_bytes < c.flat_table_bytes, "{c:?}");
        assert!(c.pairs_checked > 0);
    }

    #[test]
    fn allreduce_comparison_crosses_fewer_boundaries() {
        let a = allreduce_comparison(2, 3);
        assert!(a.hier_inter_site_msgs < a.linear_inter_site_msgs, "{a:?}");
        assert!(a.hier_us > 0.0 && a.linear_us > 0.0);
        // The hierarchical broadcast and barrier must also cross the
        // WAN strictly less than their flat oracles.
        assert!(
            a.bcast_hier_inter_site_msgs < a.bcast_linear_inter_site_msgs,
            "{a:?}"
        );
        assert!(
            a.barrier_hier_inter_site_msgs < a.barrier_linear_inter_site_msgs,
            "{a:?}"
        );
    }

    #[test]
    fn json_is_well_formed() {
        let c = routing_case("ring", 100);
        let a = allreduce_comparison(2, 2);
        let json = routing_json(&[c], &a);
        assert!(json.contains("\"experiment\": \"routing\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
