//! # padico-bench — experiment harness for PadicoTM-RS
//!
//! Regenerates every table and figure of the paper's evaluation section
//! over the simulated testbed. See [`experiments`] for the individual
//! experiments and the `src/bin/*` binaries for printable output.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod datapath;
pub mod experiments;
pub mod fullstack;
pub mod multi_site;
pub mod routing;
pub mod scale;

pub use experiments::*;
pub use multi_site::{
    churn_json_row, churn_run, churn_shard_report, churn_snapshot, churn_sweep,
    conservation_violations, failover_metrics, failover_run, failover_snapshot, failover_sweep,
    incast_run, incast_snapshot, incast_sweep, multi_site_json, multi_site_run, multi_site_sweep,
    write_multi_site_json, ChurnResult, Executor, FailoverResult, IncastResult, MultiSiteResult,
    ShardChurnReport,
};
pub use scale::{scale_json_section, scale_run, ScaleConfig, ScaleResult};

/// Formats a byte size the way the paper's axes do.
pub fn human_size(bytes: usize) -> String {
    if bytes >= 1024 * 1024 {
        format!("{}MB", bytes / (1024 * 1024))
    } else if bytes >= 1024 {
        format!("{}KB", bytes / 1024)
    } else {
        format!("{bytes}B")
    }
}
