//! Criterion bench for the VRP-vs-TCP lossy-link experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use padico_bench::vrp_lossy_link;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("vrp_lossy_link");
    g.sample_size(10);
    g.bench_function("tcp_vs_vrp_500KB", |b| {
        b.iter(|| {
            let r = vrp_lossy_link(500_000, 0.10);
            assert!(r.vrp_kb_s > r.tcp_kb_s);
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
