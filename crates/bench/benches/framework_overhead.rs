//! Criterion bench for the MPI-in-PadicoTM framework overhead measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use padico_bench::mpich_overhead;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("framework_overhead");
    g.sample_size(10);
    g.bench_function("mpich_standalone_vs_padicotm", |b| {
        b.iter(|| {
            let r = mpich_overhead();
            assert!(r.overhead_us().abs() < 3.0);
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
