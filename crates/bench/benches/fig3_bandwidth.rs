//! Criterion bench regenerating the Figure 3 measurement (bandwidth sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use middleware::OrbImpl;
use padico_bench::{profile_stack, Stack};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_bandwidth");
    g.sample_size(10);
    let sizes = vec![32, 32 * 1024, 1024 * 1024];
    for stack in [
        Stack::Mpi,
        Stack::Corba(OrbImpl::OmniOrb4),
        Stack::Corba(OrbImpl::Mico),
        Stack::TcpEthernet,
    ] {
        g.bench_function(stack.name(), |b| {
            b.iter(|| {
                let p = profile_stack(stack, &sizes);
                assert!(p.max_bandwidth_mb_s() > 0.0);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
