//! Criterion bench for the MadIO-over-Madeleine overhead measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use padico_bench::madio_overhead;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("madio_overhead");
    g.sample_size(20);
    g.bench_function("madeleine_vs_madio", |b| {
        b.iter(|| {
            let r = madio_overhead();
            assert!(r.overhead_us() < 0.25);
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
