//! Criterion bench for the MPI + CORBA coexistence workload.

use criterion::{criterion_group, criterion_main, Criterion};
use padico_bench::coexistence;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("coexistence");
    g.sample_size(10);
    g.bench_function("mpi50_corba25", |b| {
        b.iter(|| {
            let r = coexistence(50, 25);
            assert_eq!(r.mpi_messages, 50);
            assert_eq!(r.corba_requests, 25);
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
