//! Criterion bench for the VTHD WAN experiment (single vs parallel streams).

use criterion::{criterion_group, criterion_main, Criterion};
use padico_bench::wan_vthd;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("wan_vthd");
    g.sample_size(10);
    g.bench_function("single_vs_parallel_4MB", |b| {
        b.iter(|| {
            let r = wan_vthd(4_000_000, 4);
            assert!(r.parallel_streams_mb_s > r.single_stream_mb_s);
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
