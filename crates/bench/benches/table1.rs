//! Criterion bench regenerating the Table 1 measurement (latency/bandwidth).

use criterion::{criterion_group, criterion_main, Criterion};
use padico_bench::{profile_stack, Stack};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    let sizes = vec![1024 * 1024];
    for stack in Stack::table1() {
        g.bench_function(stack.name(), |b| {
            b.iter(|| {
                let p = profile_stack(stack, &sizes);
                assert!(p.latency_us > 0.0);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
