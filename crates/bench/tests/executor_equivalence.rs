//! Executor equivalence: every seeded CI scenario must produce
//! **byte-identical** telemetry under the single-queue executor and the
//! per-site sharded-merge executor.
//!
//! This is the contract that makes the sharded executor droppable into
//! CI: sharding only changes how the event queue is organized — pops
//! still come out in global `(time, seq)` order, so the RNG stream, the
//! delivery order and every counter are bit-for-bit the same. The
//! comparison is on `MetricsSnapshot::to_json_excluding(&["sim.executor."])`
//! output, which covers the full metric namespace of a quiesced run;
//! only the executor's own bookkeeping (`sim.executor.*` — lanes,
//! cross-lane counters, shard ids) legitimately differs between queue
//! organizations and is excluded.

use gridtopo::BackpressureMode;
use padico_bench::fullstack::{mirror_equivalence, MirrorConfig};
use padico_bench::{
    churn_shard_report, churn_snapshot, failover_snapshot, incast_snapshot, Executor,
};

/// Seeds swept per scenario — the historical CI seed plus fresh ones,
/// so equivalence is a property of the executor, not of one lucky seed.
const INCAST_SEEDS: [u64; 3] = [4242, 7, 0xBEEF];
const FAILOVER_SEEDS: [u64; 2] = [0xFA17, 99];
const CHURN_SEEDS: [u64; 2] = [0xC09E, 0x1234];

/// Executor-internal bookkeeping, excluded from every comparison.
const EXEC: &[&str] = &["sim.executor."];

#[test]
fn incast_is_bit_identical_across_executors() {
    for seed in INCAST_SEEDS {
        for mode in [BackpressureMode::Drop, BackpressureMode::Credit] {
            let single =
                incast_snapshot(4, 32, mode, seed, Executor::Single).to_json_excluding(EXEC);
            let sharded =
                incast_snapshot(4, 32, mode, seed, Executor::ShardedMerge).to_json_excluding(EXEC);
            assert!(
                single.contains("relay.fabric.frames_sent"),
                "snapshot must cover the relay fabric (seed {seed:#x})"
            );
            assert_eq!(
                single, sharded,
                "incast snapshot diverged at seed {seed:#x}, mode {mode:?}"
            );
        }
    }
}

#[test]
fn failover_is_bit_identical_across_executors() {
    for seed in FAILOVER_SEEDS {
        let (single, completed_single) = failover_snapshot(2, seed, Executor::Single);
        let (sharded, completed_sharded) = failover_snapshot(2, seed, Executor::ShardedMerge);
        assert!(
            completed_single && completed_sharded,
            "failover must deliver byte-exactly under both executors (seed {seed:#x})"
        );
        assert_eq!(
            single.to_json_excluding(EXEC),
            sharded.to_json_excluding(EXEC),
            "failover snapshot diverged at seed {seed:#x}"
        );
    }
}

#[test]
fn churn_is_bit_identical_across_executors() {
    for seed in CHURN_SEEDS {
        let single = churn_snapshot(3, 3, seed, Executor::Single).to_json_excluding(EXEC);
        let sharded = churn_snapshot(3, 3, seed, Executor::ShardedMerge).to_json_excluding(EXEC);
        assert_eq!(single, sharded, "churn snapshot diverged at seed {seed:#x}");
    }
}

/// The cross-shard conservation satellite: frames crossing gateway
/// boundaries during churn conserve exactly, per shard.
#[test]
fn cross_shard_traffic_conserves_under_churn() {
    let report = churn_shard_report(4, 4, 0xC09E);

    // The run itself must be healthy: traffic flowed at every probe and
    // the per-gateway/per-fabric invariants held at quiescence —
    // credits consumed == returned per gateway, frames sent ==
    // delivered + unclaimed + dropped, nothing parked.
    assert!(report.result.exchanges_ok, "{:?}", report.result);
    assert_eq!(report.violations, Vec::<String>::new());

    // Per-lane executor accounting. Lane 0 is control; lanes 1..=sites
    // are the sites of the initial ring.
    let s = &report.shard;
    assert_eq!(s.lane_events.len(), 5, "4 sites + control lane");
    for (lane, &events) in s.lane_events.iter().enumerate().skip(1) {
        assert!(events > 0, "site lane {lane} must execute events: {s:?}");
    }

    // Every frame that left a lane entered another: cross-lane traffic
    // conserves exactly, and churn actually produced some.
    let out: u64 = s.cross_out.iter().sum();
    let inn: u64 = s.cross_in.iter().sum();
    assert_eq!(out, inn, "cross-lane frames must conserve: {s:?}");
    assert!(out > 0, "cross-site churn traffic must cross lanes: {s:?}");

    // No cross-lane delivery undercut the gateway lookahead — the
    // invariant that makes conservative parallel windows safe.
    assert_eq!(s.lookahead_violations, 0, "{s:?}");

    // The snapshot side of the same story: frames really moved on the
    // simulated networks (the conservation lines above weren't vacuous).
    let sent = report.snapshot.counter_total("sim.net.frames_sent");
    assert!(sent > 0, "churn must put frames on the wire");
}

/// The partitioned executor on the *full stack*: every shard world runs
/// the real relay/credit machinery over a mirrored two-site grid, and
/// the merged snapshot must be byte-identical to the single-queue run —
/// including credits consumed in one shard world and returned through a
/// wire credit frame from another.
#[test]
fn full_stack_partitioned_run_is_bit_identical_to_single_queue() {
    for threads in [1usize, 2] {
        let mut cfg = MirrorConfig::smoke();
        cfg.threads = threads;
        let eq = mirror_equivalence(&cfg);
        assert!(
            eq.identical,
            "partitioned full-stack snapshot diverged ({threads} threads): {eq:?}"
        );
        assert_eq!(eq.delivered, eq.frames_total, "{eq:?}");
        assert_eq!(eq.lookahead_violations, 0, "{eq:?}");
        assert_eq!(eq.conservation, Vec::<String>::new());
    }
}
