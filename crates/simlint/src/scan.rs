//! Per-file analysis: allow annotations, `#[cfg(test)]` regions, hash
//! collection tracking, and the token-pattern rules D1–D4, H1, U1.
//!
//! Rule C1 (conservation pairs) needs a workspace-wide view of every
//! registered counter, so this module only *collects* registrations;
//! [`crate::rules::resolve_conservation`] turns them into findings.

use crate::config;
use crate::lexer::{lex, Tok, TokKind};
use crate::report::Finding;

/// The iteration adaptors D1 forbids on hash collections.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// One parsed `// simlint: allow(...)` annotation.
#[derive(Debug)]
struct Allow {
    rule: String,
    reason: Option<String>,
    /// Line of the comment itself.
    line: u32,
    /// Lines a finding may sit on to match this allow.
    target_lo: u32,
    target_hi: u32,
    file_scope: bool,
    malformed: Option<String>,
    used: bool,
}

/// A `counter("name", ...)` registration site, for C1.
#[derive(Debug, Clone)]
pub struct CounterReg {
    pub name: String,
    pub path: String,
    pub line: u32,
}

/// Everything extracted from one file.
#[derive(Debug, Default)]
pub struct FileScan {
    pub findings: Vec<Finding>,
    pub counters: Vec<CounterReg>,
    /// Raw source, kept so C1 can substring-search gate files.
    pub raw: String,
}

/// Scan one file. `path` must be workspace-relative with `/` separators.
pub fn scan_file(path: &str, src: &str) -> FileScan {
    let toks = lex(src);
    // Indices of non-comment tokens, in order.
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let code_lines: Vec<u32> = {
        let mut v: Vec<u32> = code.iter().map(|&i| toks[i].line).collect();
        v.dedup();
        v
    };
    let whole_file_is_test = config::is_test_path(path);
    // Ranges of `#[cfg(test)]` items (unit-test modules/functions) in
    // code-token index space. Whole-file test trees (tests/) are handled
    // by path scoping instead, so their own code is still analyzed with
    // file-local context.
    let test_ranges = cfg_test_ranges(&toks, &code);
    let in_test = |ci: usize| test_ranges.iter().any(|&(lo, hi)| ci >= lo && ci < hi);

    let mut allows = parse_allows(&toks, &code_lines);
    let mut raw_findings: Vec<Finding> = Vec::new();
    let push = |f: &mut Vec<Finding>, rule: &'static str, line: u32, msg: String| {
        // At most one finding per (rule, line): a single `use` line full of
        // atomics is one decision, not five.
        if !f.iter().any(|x| x.rule == rule && x.line == line) {
            f.push(Finding::new(rule, path, line, msg));
        }
    };

    let hash_names = collect_hash_names(&toks, &code, &test_ranges);
    let d1 = config::d1_in_scope(path);
    let d2 = !config::d2_exempt(path);
    let d3 = config::d3_in_scope(path);
    let d4 = !config::d4_exempt(path);
    let h1_density = config::h1_density_in_scope(path);
    let h1_println = config::h1_println_in_scope(path);

    let mut unwraps: Vec<u32> = Vec::new();

    for (ci, &ti) in code.iter().enumerate() {
        let t = &toks[ti];
        let at = |off: usize| -> Option<&Tok> { code.get(ci + off).map(|&j| &toks[j]) };

        // ---- D1: hash-collection iteration ------------------------------
        // `#[cfg(test)]` items are skipped: unit tests routinely declare
        // locals that shadow hash-typed field names (the tracker is
        // file-scoped), and a unit test's own iteration order feeds no
        // snapshot. Integration test trees (tests/) stay in scope with
        // their own file-local tracking.
        let d1_here = d1 && !in_test(ci);
        if d1_here && t.kind == TokKind::Ident && hash_names.contains(&t.text) {
            // name.method( where method is an iteration adaptor, or
            // self.name.method( — the `self.` prefix lands on the same name.
            if let (Some(dot), Some(m), Some(paren)) = (at(1), at(2), at(3)) {
                if dot.is_punct('.')
                    && m.kind == TokKind::Ident
                    && HASH_ITER_METHODS.contains(&m.text.as_str())
                    && paren.is_punct('(')
                {
                    push(
                        &mut raw_findings,
                        "D1",
                        t.line,
                        format!(
                            "nondeterministic hash iteration: `{}.{}()` on a HashMap/HashSet \
                             in a snapshot/digest/trace/scheduling path; use BTreeMap or a \
                             sorted collection",
                            t.text, m.text
                        ),
                    );
                }
            }
        }
        if d1_here && t.is_ident("for") {
            if let Some((name, line)) = for_loop_hash_target(&toks, &code, ci, &hash_names) {
                push(
                    &mut raw_findings,
                    "D1",
                    line,
                    format!(
                        "nondeterministic hash iteration: `for … in {name}` iterates a \
                         HashMap/HashSet in a snapshot/digest/trace/scheduling path; use \
                         BTreeMap or a sorted collection"
                    ),
                );
            }
        }

        // ---- D2: wall clock / OS entropy --------------------------------
        if d2 && t.kind == TokKind::Ident {
            let banned = match t.text.as_str() {
                "SystemTime" | "Instant" => Some("wall clock"),
                "thread_rng" | "from_entropy" => Some("OS entropy"),
                _ => None,
            };
            if let Some(kind) = banned {
                push(
                    &mut raw_findings,
                    "D2",
                    t.line,
                    format!(
                        "{kind} (`{}`) outside the bench wall-clock modules: seeded \
                         simulations must be replayable from the seed alone",
                        t.text
                    ),
                );
            }
            // rand:: paths and env-dependent lookups.
            if t.text == "rand" && at(1).is_some_and(|x| x.is_punct(':')) {
                push(
                    &mut raw_findings,
                    "D2",
                    t.line,
                    "`rand::` outside the bench wall-clock modules: use the seeded \
                     `simnet::SimRng`"
                        .into(),
                );
            }
            if t.text == "env"
                && at(1).is_some_and(|x| x.is_punct(':'))
                && at(2).is_some_and(|x| x.is_punct(':'))
                && at(3).is_some_and(|x| x.kind == TokKind::Ident && x.text.starts_with("var"))
            {
                push(
                    &mut raw_findings,
                    "D2",
                    t.line,
                    "environment-dependent behavior (`env::var`) outside the bench \
                     modules: a run must be a pure function of its seed and inputs"
                        .into(),
                );
            }
        }

        // ---- D3: pointer-address formatting / hashing -------------------
        if d3 && t.kind == TokKind::Str && (t.text.contains(":p}") || t.text.contains("{:p")) {
            push(
                &mut raw_findings,
                "D3",
                t.line,
                "pointer-address formatting (`{:p}`) in a serializable path: addresses \
                 differ across runs and machines"
                    .into(),
            );
        }
        if d3 && t.is_ident("as") && at(1).is_some_and(|x| x.is_ident("usize")) {
            // `… as *const _ as usize` or `Rc::as_ptr(…) as usize`: look a
            // short window back for a pointer cast or as_ptr call.
            let lo = ci.saturating_sub(12);
            let window = &code[lo..ci];
            let mut ptrish = false;
            for (k, &wi) in window.iter().enumerate() {
                let w = &toks[wi];
                if w.kind == TokKind::Ident && (w.text == "as_ptr" || w.text == "as_mut_ptr") {
                    ptrish = true;
                }
                if w.is_punct('*')
                    && window
                        .get(k + 1)
                        .is_some_and(|&ni| toks[ni].is_ident("const") || toks[ni].is_ident("mut"))
                {
                    ptrish = true;
                }
            }
            if ptrish {
                push(
                    &mut raw_findings,
                    "D3",
                    t.line,
                    "pointer-to-usize cast in a serializable path: addresses are not \
                     stable across runs; derive identity from ids, not addresses"
                        .into(),
                );
            }
        }

        // ---- D4: threads / std::sync outside the partitioned executors --
        if d4 && t.kind == TokKind::Ident {
            let hit = matches!(t.text.as_str(), "Mutex" | "RwLock" | "Condvar" | "mpsc")
                || (t.text.starts_with("Atomic") && t.text.len() > "Atomic".len());
            if hit {
                push(
                    &mut raw_findings,
                    "D4",
                    t.line,
                    format!(
                        "`{}` outside the partitioned executor modules: the simulator is \
                         single-threaded by construction; concurrency belongs to \
                         simnet::shard / bench::{{fullstack,scale}}",
                        t.text
                    ),
                );
            }
            if t.text == "thread"
                && at(1).is_some_and(|x| x.is_punct(':'))
                && at(2).is_some_and(|x| x.is_punct(':'))
                && at(3).is_some_and(|x| x.is_ident("spawn") || x.is_ident("scope"))
            {
                push(
                    &mut raw_findings,
                    "D4",
                    t.line,
                    "`thread::spawn`/`thread::scope` outside the partitioned executor \
                     modules"
                        .into(),
                );
            }
            if t.text == "std"
                && at(1).is_some_and(|x| x.is_punct(':'))
                && at(2).is_some_and(|x| x.is_punct(':'))
                && at(3).is_some_and(|x| x.is_ident("sync"))
            {
                push(
                    &mut raw_findings,
                    "D4",
                    t.line,
                    "`std::sync` outside the partitioned executor modules".into(),
                );
            }
        }

        // ---- H1: unwrap/expect density, println! ------------------------
        if t.is_punct('.')
            && at(1).is_some_and(|x| x.is_ident("unwrap") || x.is_ident("expect"))
            && at(2).is_some_and(|x| x.is_punct('('))
            && !in_test(ci)
            && h1_density
        {
            unwraps.push(t.line);
        }
        if h1_println
            && t.is_ident("println")
            && at(1).is_some_and(|x| x.is_punct('!'))
            && !in_test(ci)
        {
            push(
                &mut raw_findings,
                "H1",
                t.line,
                "`println!` outside benches/examples: library code reports through \
                 telemetry, diagnostics go to stderr"
                    .into(),
            );
        }

        // ---- U1: unsafe requires a SAFETY: comment ----------------------
        if t.is_ident("unsafe") && !has_safety_comment(&toks, ti) {
            push(
                &mut raw_findings,
                "U1",
                t.line,
                "`unsafe` without a `// SAFETY:` comment on the preceding lines \
                 justifying why the invariants hold"
                    .into(),
            );
        }
    }

    // Counter registrations (separate pass: the closure above can't both
    // borrow `raw_findings` and collect).
    let mut counters = Vec::new();
    for (ci, &ti) in code.iter().enumerate() {
        let t = &toks[ti];
        if t.is_ident("counter") && !in_test(ci) && !whole_file_is_test {
            let paren = code.get(ci + 1).map(|&j| &toks[j]);
            let lit = code.get(ci + 2).map(|&j| &toks[j]);
            if let (Some(p), Some(s)) = (paren, lit) {
                if p.is_punct('(') && s.kind == TokKind::Str && s.text.contains('.') {
                    counters.push(CounterReg {
                        name: s.text.clone(),
                        path: path.to_string(),
                        line: s.line,
                    });
                }
            }
        }
    }

    // H1 density verdict.
    if h1_density {
        let cap = config::h1_unwrap_cap(code_lines.len());
        if unwraps.len() > cap {
            let line = unwraps[0];
            raw_findings.push(Finding::new(
                "H1",
                path,
                line,
                format!(
                    "unwrap/expect density: {} calls in non-test code (cap {} for {} \
                     code lines); hot-path modules must handle errors or justify the \
                     panic sites",
                    unwraps.len(),
                    cap,
                    code_lines.len()
                ),
            ));
        }
    }

    // Match findings against allows.
    let mut findings = Vec::new();
    for mut f in raw_findings {
        if let Some(a) = allows.iter_mut().find(|a| {
            a.malformed.is_none()
                && a.rule == f.rule
                && (a.file_scope || (f.line >= a.target_lo && f.line <= a.target_hi))
        }) {
            a.used = true;
            f.allow_reason = a.reason.clone();
        }
        findings.push(f);
    }
    // A1: malformed and unused allows.
    for a in &allows {
        if let Some(why) = &a.malformed {
            findings.push(Finding::new(
                "A1",
                path,
                a.line,
                format!("malformed simlint allow: {why}"),
            ));
        } else if !a.used {
            findings.push(Finding::new(
                "A1",
                path,
                a.line,
                format!(
                    "unused simlint allow for {}: the finding it suppressed is gone; \
                     remove the annotation",
                    a.rule
                ),
            ));
        }
    }

    FileScan {
        findings,
        counters,
        raw: src.to_string(),
    }
}

/// Find `#[cfg(test)]`-gated items (`mod`, `fn`, `impl`, `struct`) and
/// return their spans as ranges over the *code-token index* space. The
/// range starts at the attribute so the item's signature is covered too.
fn cfg_test_ranges(toks: &[Tok], code: &[usize]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut ci = 0usize;
    while ci + 5 < code.len() {
        let t = |k: usize| &toks[code[ci + k]];
        if t(0).is_punct('#')
            && t(1).is_punct('[')
            && t(2).is_ident("cfg")
            && t(3).is_punct('(')
            && t(4).is_ident("test")
        {
            let start = ci;
            // Skip to the closing `]`, then over any further attributes.
            let mut j = ci + 5;
            while j < code.len() && !toks[code[j]].is_punct(']') {
                j += 1;
            }
            j += 1;
            while j < code.len() && toks[code[j]].is_punct('#') {
                while j < code.len() && !toks[code[j]].is_punct(']') {
                    j += 1;
                }
                j += 1;
            }
            // Any braced item (mod/fn/impl/struct/…): find the opening
            // brace and match it. A brace-less item (`use`, `type`) ends
            // at its semicolon instead.
            let mut k = j;
            let mut found_brace = false;
            while k < code.len() && k - j < 96 {
                if toks[code[k]].is_punct('{') {
                    found_brace = true;
                    break;
                }
                if toks[code[k]].is_punct(';') {
                    break;
                }
                k += 1;
            }
            if found_brace {
                let mut depth = 0i64;
                while k < code.len() {
                    if toks[code[k]].is_punct('{') {
                        depth += 1;
                    } else if toks[code[k]].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
            }
            ranges.push((start, (k + 1).min(code.len())));
            ci = k;
        }
        ci += 1;
    }
    ranges
}

/// Parse every `simlint: allow(...)` / `allow-file(...)` annotation out of
/// the comment tokens.
fn parse_allows(toks: &[Tok], code_lines: &[u32]) -> Vec<Allow> {
    let mut out = Vec::new();
    for t in toks {
        if !t.is_comment() || !t.text.contains("simlint:") {
            continue;
        }
        let text = &t.text;
        let after = &text[text.find("simlint:").unwrap() + "simlint:".len()..];
        let after = after.trim_start();
        let file_scope = after.starts_with("allow-file(");
        let is_allow = file_scope || after.starts_with("allow(");
        if !is_allow {
            out.push(Allow {
                rule: String::new(),
                reason: None,
                line: t.line,
                target_lo: 0,
                target_hi: 0,
                file_scope: false,
                malformed: Some(format!(
                    "expected `allow(<rule>, reason = \"…\")`, got `{}`",
                    after.chars().take(40).collect::<String>()
                )),
                used: false,
            });
            continue;
        }
        let body_start = after.find('(').unwrap() + 1;
        let Some(body_end) = after[body_start..].rfind(')') else {
            out.push(Allow {
                rule: String::new(),
                reason: None,
                line: t.line,
                target_lo: 0,
                target_hi: 0,
                file_scope,
                malformed: Some("unclosed allow annotation".into()),
                used: false,
            });
            continue;
        };
        let body = &after[body_start..body_start + body_end];
        let rule = body.split(',').next().unwrap_or("").trim().to_string();
        let reason = body.find("reason").and_then(|r| {
            let rest = &body[r + "reason".len()..];
            let rest = rest.trim_start().strip_prefix('=')?.trim_start();
            let rest = rest.strip_prefix('"')?;
            let end = rest.rfind('"')?;
            let s = rest[..end].trim();
            (!s.is_empty()).then(|| s.to_string())
        });
        let malformed = if rule.is_empty() {
            Some("missing rule id".into())
        } else if reason.is_none() {
            Some(format!(
                "allow({rule}) without a reason: every allow must say why the \
                 invariant holds anyway"
            ))
        } else {
            None
        };
        // Target: the comment's own line (trailing form) and the next line
        // that carries code (standalone form).
        let next_code = code_lines
            .iter()
            .copied()
            .find(|&l| l > t.line)
            .unwrap_or(t.line);
        out.push(Allow {
            rule,
            reason,
            line: t.line,
            target_lo: t.line,
            target_hi: next_code,
            file_scope,
            malformed,
            used: false,
        });
    }
    out
}

/// Collect identifiers declared (or initialized) as HashMap/HashSet in
/// this file: `name: HashMap<..>` field/let/param declarations, struct
/// literal fields, and `let name = HashMap::new()`-style bindings.
/// Declarations inside `#[cfg(test)]` items are ignored so a unit test's
/// reference model cannot pollute the tracker for production code.
fn collect_hash_names(toks: &[Tok], code: &[usize], test_ranges: &[(usize, usize)]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    let is_hash = |t: &Tok| t.is_ident("HashMap") || t.is_ident("HashSet");
    for ci in 0..code.len() {
        if test_ranges.iter().any(|&(lo, hi)| ci >= lo && ci < hi) {
            continue;
        }
        let t = &toks[code[ci]];
        if t.kind != TokKind::Ident {
            continue;
        }
        // `name :` (but not `name ::`), previous token not `:`.
        let next = code.get(ci + 1).map(|&j| &toks[j]);
        let next2 = code.get(ci + 2).map(|&j| &toks[j]);
        let prev = ci
            .checked_sub(1)
            .and_then(|k| code.get(k))
            .map(|&j| &toks[j]);
        let decl_colon = next.is_some_and(|x| x.is_punct(':'))
            && !next2.is_some_and(|x| x.is_punct(':'))
            && !prev.is_some_and(|x| x.is_punct(':'));
        let let_eq = next.is_some_and(|x| x.is_punct('='))
            && prev.is_some_and(|x| x.is_ident("let") || x.is_ident("mut"));
        if !decl_colon && !let_eq {
            continue;
        }
        // Walk the type/initializer until the declaration plausibly ends,
        // tracking angle-bracket depth so `HashMap` nested in generics is
        // still seen.
        let mut depth = 0i64;
        let mut j = ci + 2;
        let mut found = false;
        while let Some(&tj) = code.get(j) {
            let w = &toks[tj];
            match w.kind {
                TokKind::Punct('<') => depth += 1,
                TokKind::Punct('>') => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                TokKind::Punct(',')
                | TokKind::Punct(';')
                | TokKind::Punct('{')
                | TokKind::Punct('}')
                | TokKind::Punct(')')
                    if depth == 0 =>
                {
                    break;
                }
                _ => {}
            }
            if is_hash(w) {
                found = true;
            }
            if j - ci > 64 {
                break; // declarations don't run this long; bail out
            }
            j += 1;
        }
        if found && !names.contains(&t.text) {
            names.push(t.text.clone());
        }
    }
    names
}

/// If the `for` at code index `ci` iterates a bare hash-typed binding
/// (`for x in &self.map` / `for x in map`), return (name, line).
fn for_loop_hash_target(
    toks: &[Tok],
    code: &[usize],
    ci: usize,
    hash_names: &[String],
) -> Option<(String, u32)> {
    // Find `in` after the pattern, then take tokens up to the body `{`.
    let mut j = ci + 1;
    let mut guard = 0;
    while let Some(&tj) = code.get(j) {
        if toks[tj].is_ident("in") {
            break;
        }
        j += 1;
        guard += 1;
        if guard > 24 {
            return None;
        }
    }
    let expr_start = j + 1;
    let mut k = expr_start;
    let mut expr: Vec<&Tok> = Vec::new();
    while let Some(&tk) = code.get(k) {
        let w = &toks[tk];
        if w.is_punct('{') {
            break;
        }
        expr.push(w);
        k += 1;
        if k - expr_start > 16 {
            return None;
        }
    }
    // Accept only a plain place expression: [&][mut][self.]…name — any call
    // parentheses mean an adaptor chain which the method-pattern rule covers.
    if expr.iter().any(|w| w.is_punct('(') || w.is_punct(')')) {
        return None;
    }
    let last = expr.last()?;
    if last.kind == TokKind::Ident && hash_names.contains(&last.text) {
        return Some((last.text.clone(), last.line));
    }
    None
}

/// Does a `SAFETY:` comment sit on the `unsafe` token's line or the three
/// lines above it?
fn has_safety_comment(toks: &[Tok], ti: usize) -> bool {
    let line = toks[ti].line;
    toks.iter().any(|t| {
        t.is_comment() && t.text.contains("SAFETY:") && t.line <= line && t.line + 3 >= line
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        scan_file(path, src).findings
    }

    #[test]
    fn d1_fires_on_iteration_not_lookup() {
        let src = "use std::collections::HashMap;\n\
                   struct S { m: HashMap<u32, u32> }\n\
                   impl S {\n\
                     fn get(&self) -> Option<&u32> { self.m.get(&1) }\n\
                     fn all(&self) { for v in self.m.values() { let _ = v; } }\n\
                   }\n";
        let f = findings("crates/simnet/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "D1");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn d1_for_loop_over_hash() {
        let src = "use std::collections::HashSet;\n\
                   fn f() { let s: HashSet<u32> = HashSet::new();\n\
                   for v in &s { let _ = v; } }\n";
        let f = findings("crates/simnet/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "D1");
    }

    #[test]
    fn allow_with_reason_suppresses_and_is_used() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u32>) -> u64 {\n\
                   // simlint: allow(D1, reason = \"order folded through a commutative sum\")\n\
                   m.values().map(|v| *v as u64).sum() }\n";
        let f = findings("crates/simnet/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].allow_reason.is_some());
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let src = "// simlint: allow(D1)\nfn f() {}\n";
        let f = findings("crates/simnet/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "A1");
    }

    #[test]
    fn unused_allow_is_flagged() {
        let src = "// simlint: allow(D2, reason = \"no longer needed\")\nfn f() {}\n";
        let f = findings("crates/simnet/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "A1");
        assert!(f[0].message.contains("unused"));
    }

    #[test]
    fn cfg_test_modules_are_exempt_from_h1() {
        let mut src = String::from("fn f(x: Option<u32>) -> u32 { x.unwrap() }\n");
        src.push_str("#[cfg(test)]\nmod tests {\n");
        for i in 0..40 {
            src.push_str(&format!("#[test] fn t{i}() {{ Some({i}).unwrap(); }}\n"));
        }
        src.push_str("}\n");
        let f = findings("crates/simnet/src/x.rs", &src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn u1_needs_safety_comment() {
        let bad = "fn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
        let good = "// SAFETY: the branch above proves the slot is initialized.\n\
                    fn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
        assert_eq!(findings("crates/simnet/src/x.rs", bad).len(), 1);
        assert!(findings("crates/simnet/src/x.rs", good).is_empty());
    }

    #[test]
    fn d2_and_d4_respect_scope() {
        let src = "use std::time::Instant;\nuse std::sync::Mutex;\n";
        // Instant on line 1; Mutex + std::sync dedup to one D4 on line 2.
        assert_eq!(findings("crates/simnet/src/x.rs", src).len(), 2);
        assert!(findings("crates/bench/src/fullstack.rs", src).is_empty());
    }
}
