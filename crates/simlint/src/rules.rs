//! Workspace-level rule resolution: C1, the conservation-pair check.
//!
//! Every counter whose name puts it in a conservation family must have
//! its partner registered in the same namespace, and the pair must be
//! cross-referenced in one of the dynamic gate files
//! ([`crate::config::C1_GATE_FILES`], i.e. `conservation_violations` and
//! the smoke binary) — a pair that is registered but never gated would
//! let a leak ship silently even though the accounting exists.

use crate::report::Finding;
use crate::scan::CounterReg;

/// A conservation family: how to derive the partner(s) a primary
/// counter requires. Only the *primary* side emits findings so a broken
/// pair reads as one decision, not two.
fn partners(name: &str) -> Option<Vec<String>> {
    if let Some(base) = name.strip_suffix("_consumed") {
        return Some(vec![format!("{base}_returned")]);
    }
    if let Some(base) = name.strip_suffix("cross_in") {
        return Some(vec![format!("{base}cross_out")]);
    }
    if let Some(ns) = name.strip_suffix("frames_sent") {
        // Sent must be decomposable: at least one of delivered/dropped
        // registered beside it (`sent == delivered + dropped` families).
        return Some(vec![
            format!("{ns}frames_delivered"),
            format!("{ns}frames_dropped"),
        ]);
    }
    None
}

/// `frames_sent` is satisfied by *any* partner; the suffix pairs need
/// their exact partner.
fn any_partner_suffices(name: &str) -> bool {
    name.ends_with("frames_sent")
}

/// Resolve C1 over the whole workspace's registrations.
///
/// `gate_texts` are the raw sources of the gate files; a pair is gated
/// iff the primary name appears verbatim in one of them. Registrations
/// *inside* gate files are ignored — a gate file's `snap.counter("x")`
/// lookups are reads, not registrations.
pub fn resolve_conservation(
    regs: &[CounterReg],
    gate_paths: &[&str],
    gate_texts: &[String],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let regs: Vec<&CounterReg> = regs
        .iter()
        .filter(|r| !gate_paths.contains(&r.path.as_str()))
        .collect();
    let mut seen_primary: Vec<&str> = Vec::new();
    for reg in &regs {
        let Some(partner_names) = partners(&reg.name) else {
            continue;
        };
        if seen_primary.contains(&reg.name.as_str()) {
            continue;
        }
        seen_primary.push(&reg.name);
        let have = |n: &str| regs.iter().any(|r| r.name == n);
        let partner_ok = if any_partner_suffices(&reg.name) {
            partner_names.iter().any(|p| have(p))
        } else {
            partner_names.iter().all(|p| have(p))
        };
        if !partner_ok {
            findings.push(Finding::new(
                "C1",
                &reg.path,
                reg.line,
                format!(
                    "conservation pair incomplete: `{}` is registered but its partner \
                     ({}) is not; a one-sided counter cannot be balance-checked",
                    reg.name,
                    partner_names.join(" / ")
                ),
            ));
            continue;
        }
        let gated = gate_texts.iter().any(|t| t.contains(reg.name.as_str()));
        if !gated {
            findings.push(Finding::new(
                "C1",
                &reg.path,
                reg.line,
                format!(
                    "conservation pair registered but ungated: `{}` never appears in \
                     a conservation gate ({}); add it to `conservation_violations` or \
                     the smoke checks",
                    reg.name,
                    gate_paths.join(", ")
                ),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(name: &str, line: u32) -> CounterReg {
        CounterReg {
            name: name.into(),
            path: "crates/x/src/lib.rs".into(),
            line,
        }
    }

    #[test]
    fn missing_partner_fires_once() {
        let regs = vec![reg("a.credits_consumed", 3)];
        let f = resolve_conservation(&regs, &[], &[]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("a.credits_returned"));
    }

    #[test]
    fn complete_and_gated_pair_is_clean() {
        let regs = vec![reg("a.credits_consumed", 3), reg("a.credits_returned", 4)];
        let gates = vec!["if snap.counter(\"a.credits_consumed\") … ".to_string()];
        assert!(resolve_conservation(&regs, &["g.rs"], &gates).is_empty());
    }

    #[test]
    fn complete_but_ungated_pair_fires() {
        let regs = vec![reg("a.cross_in", 1), reg("a.cross_out", 2)];
        let f = resolve_conservation(&regs, &["g.rs"], &[String::new()]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("ungated"));
    }

    #[test]
    fn frames_sent_accepts_either_partner() {
        let regs = vec![reg("n.frames_sent", 1), reg("n.frames_dropped", 2)];
        let gates = vec!["\"n.frames_sent\"".to_string()];
        assert!(resolve_conservation(&regs, &["g.rs"], &gates).is_empty());
    }
}
