//! simlint — workspace-native static analysis for determinism and
//! conservation invariants.
//!
//! The reproduction rests on one property: a seeded run is a pure
//! function of its seed — sharded, partitioned, and multi-threaded
//! executions must produce byte-identical `MetricsSnapshot` JSON and
//! digest-stable bench rows, and every credit/frame counter must obey
//! its conservation law. The replay and equivalence suites enforce this
//! *dynamically*, when a seed happens to expose a violation; simlint
//! enforces the underlying conventions *statically*, at review time:
//!
//! - **D1** — no HashMap/HashSet iteration in snapshot/digest/trace/
//!   scheduling paths (hash order is not part of the seed).
//! - **D2** — no wall clock or OS entropy outside bench modules.
//! - **D3** — no pointer-address formatting or hashing in anything
//!   serialized.
//! - **D4** — threads and `std::sync` only in the partitioned executors.
//! - **C1** — every conservation-family counter has its partner
//!   registered and the pair is gated in `conservation_violations`.
//! - **H1** — unwrap/expect density caps in hot-path modules, no
//!   `println!` outside benches/examples.
//! - **U1** — every `unsafe` carries a `// SAFETY:` justification.
//! - **A1** — allow annotations must be well-formed (with a reason) and
//!   must still suppress something.
//!
//! Violations are suppressed inline with
//! `// simlint: allow(<rule>, reason = "…")` (next line or trailing) or
//! `// simlint: allow-file(<rule>, reason = "…")` (whole file); the
//! reason is mandatory. See `crates/simlint/RULES.md` for the full
//! catalogue and rationale.
//!
//! Everything is hand-rolled on std — no dependencies, in the spirit of
//! the vendored `bytes`/`criterion` stand-ins.

#![deny(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;

use std::fs;
use std::path::{Path, PathBuf};

use report::Report;
use scan::CounterReg;

/// Scan an entire workspace rooted at `root`. Deterministic: files are
/// visited in sorted path order and findings are canonically sorted.
pub fn run_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = rust_files(root)?;
    files.sort();
    let mut report = Report::default();
    let mut counters: Vec<CounterReg> = Vec::new();
    let mut gate_texts: Vec<String> = vec![String::new(); config::C1_GATE_FILES.len()];
    for path in &files {
        let rel = rel_path(root, path);
        if config::skip_entirely(&rel) {
            continue;
        }
        let src = fs::read_to_string(path)?;
        if let Some(i) = config::C1_GATE_FILES.iter().position(|g| *g == rel) {
            gate_texts[i] = src.clone();
        }
        let scanned = scan::scan_file(&rel, &src);
        report.findings.extend(scanned.findings);
        counters.extend(scanned.counters);
        report.files_scanned += 1;
    }
    report.findings.extend(rules::resolve_conservation(
        &counters,
        config::C1_GATE_FILES,
        &gate_texts,
    ));
    report.sort();
    Ok(report)
}

/// Scan a single file (fixture tests use this). C1 is resolved against
/// the file's own registrations with no gate files.
pub fn run_single(rel: &str, src: &str) -> Report {
    let scanned = scan::scan_file(rel, src);
    let mut report = Report {
        findings: scanned.findings,
        files_scanned: 1,
    };
    report
        .findings
        .extend(rules::resolve_conservation(&scanned.counters, &[], &[]));
    report.sort();
    report
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Every `.rs` file under the workspace's source trees, skipping build
/// output and hidden directories.
fn rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    Ok(out)
}

/// Locate the workspace root: walk up from `start` until a `Cargo.toml`
/// declaring `[workspace]` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
