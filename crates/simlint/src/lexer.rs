//! A hand-rolled Rust lexer.
//!
//! simlint does not need a full parser: every rule it enforces is a
//! statement about *token patterns* (an identifier followed by `.iter()`,
//! a string literal containing `:p}`, an `unsafe` keyword without a
//! `SAFETY:` comment nearby). What it does need is a lexer that is
//! *correct* about the things grep gets wrong — comments, raw strings,
//! char literals vs lifetimes — so that a banned name inside a doc
//! comment or a format string never produces a false finding.
//!
//! The lexer keeps comments as first-class tokens because the allow
//! annotations (`// simlint: allow(...)`) and the `SAFETY:` requirement
//! of rule U1 live in them.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `unsafe`, `for`).
    Ident,
    /// A lifetime (`'a`, `'static`). The text excludes the leading `'`.
    Lifetime,
    /// A single punctuation character (`.`, `:`, `{`, ...). Multi-char
    /// operators are left as individual tokens; rule patterns match the
    /// sequence explicitly.
    Punct(char),
    /// String literal, including raw and byte strings. Text is the
    /// *contents* (quotes and hash guards stripped, escapes left as-is).
    Str,
    /// Char literal (`'x'`, `'\n'`).
    Char,
    /// Numeric literal.
    Num,
    /// `// ...` comment (doc comments included). Text excludes the
    /// leading slashes.
    LineComment,
    /// `/* ... */` comment (nesting handled). Text excludes delimiters.
    BlockComment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_cont(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Lex a source file into tokens. Never fails: unterminated constructs
/// are closed at end of input (a lint must degrade gracefully on files
/// that do not compile yet).
pub fn lex(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();

    let count_lines = |s: &[char]| s.iter().filter(|&&c| c == '\n').count() as u32;

    while i < n {
        let c = chars[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && chars[j] != '\n' {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::LineComment,
                text: chars[start..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start_line = line;
            let start = i + 2;
            let mut depth = 1usize;
            let mut j = start;
            while j < n && depth > 0 {
                if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    if chars[j] == '\n' {
                        line += 1;
                    }
                    j += 1;
                }
            }
            let end = if depth == 0 { j - 2 } else { j };
            toks.push(Tok {
                kind: TokKind::BlockComment,
                text: chars[start..end].iter().collect(),
                line: start_line,
            });
            i = j;
            continue;
        }
        // Raw strings: r"..." / r#"..."# / br#"..."# etc.
        if (c == 'r' || c == 'b') && i + 1 < n {
            let (prefix_len, is_raw) = match (c, chars.get(i + 1), chars.get(i + 2)) {
                ('r', Some('"'), _) | ('r', Some('#'), _) => (1, true),
                ('b', Some('r'), Some('"')) | ('b', Some('r'), Some('#')) => (2, true),
                _ => (0, false),
            };
            if is_raw {
                let mut j = i + prefix_len;
                let mut hashes = 0usize;
                while j < n && chars[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && chars[j] == '"' {
                    let start_line = line;
                    j += 1;
                    let body_start = j;
                    'scan: while j < n {
                        if chars[j] == '"' {
                            let mut k = 0usize;
                            while k < hashes && j + 1 + k < n && chars[j + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                break 'scan;
                            }
                        }
                        j += 1;
                    }
                    let body: Vec<char> = chars[body_start..j.min(n)].to_vec();
                    line += count_lines(&body);
                    toks.push(Tok {
                        kind: TokKind::Str,
                        text: body.iter().collect(),
                        line: start_line,
                    });
                    i = (j + 1 + hashes).min(n);
                    continue;
                }
            }
        }
        // Byte string b"..." — fall through to the ordinary string path.
        if c == 'b' && i + 1 < n && chars[i + 1] == '"' {
            i += 1; // consume the prefix, leave the quote for the string arm
            continue;
        }
        // Strings.
        if c == '"' {
            let start_line = line;
            let mut j = i + 1;
            let mut body = String::new();
            while j < n {
                if chars[j] == '\\' && j + 1 < n {
                    body.push(chars[j]);
                    body.push(chars[j + 1]);
                    if chars[j + 1] == '\n' {
                        line += 1;
                    }
                    j += 2;
                    continue;
                }
                if chars[j] == '"' {
                    break;
                }
                if chars[j] == '\n' {
                    line += 1;
                }
                body.push(chars[j]);
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Str,
                text: body,
                line: start_line,
            });
            i = j + 1;
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            // 'x' or '\n' → char literal; 'ident not followed by ' → lifetime.
            if i + 1 < n && chars[i + 1] == '\\' {
                // Escaped char literal.
                let mut j = i + 2;
                while j < n && chars[j] != '\'' {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: chars[i + 1..j.min(n)].iter().collect(),
                    line,
                });
                i = j + 1;
                continue;
            }
            if i + 2 < n && chars[i + 2] == '\'' && chars[i + 1] != '\'' {
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: chars[i + 1].to_string(),
                    line,
                });
                i += 3;
                continue;
            }
            if i + 1 < n && is_ident_start(chars[i + 1]) {
                let mut j = i + 1;
                while j < n && is_ident_cont(chars[j]) {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: chars[i + 1..j].iter().collect(),
                    line,
                });
                i = j;
                continue;
            }
            // Odd single quote (e.g. inside macro soup): treat as punct.
            toks.push(Tok {
                kind: TokKind::Punct('\''),
                text: "'".into(),
                line,
            });
            i += 1;
            continue;
        }
        // Identifiers / keywords.
        if is_ident_start(c) {
            let mut j = i;
            while j < n && is_ident_cont(chars[j]) {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Numbers (digits plus alphanumeric suffixes/exponents; good enough
        // for pattern matching, we never interpret the value).
        if c.is_ascii_digit() {
            let mut j = i;
            while j < n && (is_ident_cont(chars[j]) || chars[j] == '.') {
                // Don't swallow `1..=5` range punctuation or a method call
                // on a literal: stop a dot that is not followed by a digit.
                if chars[j] == '.' && !(j + 1 < n && chars[j + 1].is_ascii_digit()) {
                    break;
                }
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Everything else: single punctuation char.
        toks.push(Tok {
            kind: TokKind::Punct(c),
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_opaque() {
        let toks = lex("// HashMap in a comment\nlet s = \"Instant {:p}\"; /* SystemTime */");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "s"]);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec!["Instant {:p}"]);
    }

    #[test]
    fn raw_strings_and_nesting() {
        let toks = lex("r#\"a \" b\"# /* outer /* inner */ still */ x");
        assert_eq!(toks[0].kind, TokKind::Str);
        assert_eq!(toks[0].text, "a \" b");
        assert_eq!(toks[1].kind, TokKind::BlockComment);
        assert!(toks[2].is_ident("x"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = lex("&'a str; let c = 'x'; let nl = '\\n';");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "x"));
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let toks = lex("a\n\"two\nlines\"\nb");
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 4);
    }
}
