//! The `simlint` binary.
//!
//! ```text
//! cargo run --release -p simlint -- --workspace [--json PATH] [--root DIR]
//! ```
//!
//! Exits nonzero if any finding lacks an allow annotation. Output is
//! deterministic (sorted) in both the human table and the JSON artifact.

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<PathBuf> = None;
    let mut root_arg: Option<PathBuf> = None;
    let mut workspace = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => workspace = true,
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(p) => json_path = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("simlint: --json needs a path");
                        return ExitCode::from(2);
                    }
                }
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root_arg = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("simlint: --root needs a directory");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: simlint --workspace [--json PATH] [--root DIR]\n\
                     rules: D1 hash-iteration, D2 wall-clock/entropy, D3 pointer \
                     formatting,\n       D4 thread confinement, C1 conservation pairs, \
                     H1 hygiene, U1 SAFETY,\n       A1 allow hygiene \
                     (see crates/simlint/RULES.md)"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("simlint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    if !workspace {
        eprintln!("simlint: nothing to do; pass --workspace (try --help)");
        return ExitCode::from(2);
    }

    let root = match root_arg.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| simlint::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("simlint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };

    let report = match simlint::run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    print!("{}", report.table());
    if let Some(p) = json_path {
        if let Err(e) = std::fs::write(&p, report.to_json()) {
            eprintln!("simlint: writing {} failed: {e}", p.display());
            return ExitCode::from(2);
        }
    }
    if report.failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
