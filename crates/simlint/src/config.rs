//! Rule scoping: which parts of the workspace each rule applies to.
//!
//! Scopes are deliberately spelled out as path predicates in code rather
//! than read from a config file — the scope *is* part of the invariant
//! ("wall clock only in bench modules" is meaningless if a config edit
//! can silently widen it), and a scope change should show up in review
//! as a diff to this file. All paths are workspace-relative with `/`
//! separators.

/// Files simlint never scans: its own source (the rule patterns must
/// mention every banned token by name — scanning the scanner is pure
/// noise, the same reason clippy does not lint its own lint names),
/// the intentionally-bad fixture corpus, and build output.
pub fn skip_entirely(path: &str) -> bool {
    path.starts_with("crates/simlint/")
        || path.starts_with("target/")
        || path.contains("/fixtures/")
}

/// Test-only code paths (integration test trees). `#[cfg(test)]`
/// modules inside library files are detected token-wise in `scan`.
pub fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/")
}

/// D1 (hash-iteration) scope: every file whose behavior feeds
/// `MetricsSnapshot` JSON, bench digests, trace rings, or frame/event
/// scheduling. That is the whole tree except the demo examples and the
/// vendored `criterion` stand-in (bench reporting only — its output is
/// wall-clock timing, never digest-compared).
pub fn d1_in_scope(path: &str) -> bool {
    !path.starts_with("examples/") && !path.starts_with("crates/criterion/")
}

/// D2 (wall clock / OS entropy) exemptions: the bench crate measures
/// wall time by design (`events_per_sec`, CLI arg parsing), and the
/// `criterion` stand-in is a wall-clock harness. Everything else must
/// be seeded and clock-free, or carry an allow with a reason.
pub fn d2_exempt(path: &str) -> bool {
    path.starts_with("crates/bench/")
        || path.starts_with("crates/criterion/")
        || path.starts_with("examples/")
}

/// D3 (pointer formatting/hashing) scope: same as D1 — anything that
/// can end up serialized or digested.
pub fn d3_in_scope(path: &str) -> bool {
    d1_in_scope(path)
}

/// D4 (threads / std::sync) exemptions: the partitioned-executor
/// modules, which are the only places the simulator is allowed to be
/// multi-threaded, and the vendored `bytes` stand-in, whose `Arc`
/// refcount *is* the primitive it vendors.
pub fn d4_exempt(path: &str) -> bool {
    path == "crates/simnet/src/shard.rs"
        || path == "crates/bench/src/fullstack.rs"
        || path == "crates/bench/src/scale.rs"
        || path.starts_with("crates/bytes/")
        || path.starts_with("crates/criterion/")
        || path.starts_with("examples/")
}

/// C1 (conservation pairs) gate files: the dynamic checkers a
/// registered pair must be cross-referenced in. A counter family
/// registered anywhere but never named in one of these is
/// registered-but-ungated.
pub const C1_GATE_FILES: &[&str] = &[
    "crates/bench/src/multi_site.rs",
    "crates/bench/src/bin/multi_site.rs",
];

/// H1 (hygiene) scope for the unwrap/expect density cap: non-test
/// hot-path library code. Benches, examples, and the vendored stand-ins
/// are exempt; integration test trees and `#[cfg(test)]` modules are
/// excluded by the scanner itself.
pub fn h1_density_in_scope(path: &str) -> bool {
    !path.starts_with("crates/bench/")
        && !path.starts_with("crates/criterion/")
        && !path.starts_with("crates/bytes/")
        && !path.starts_with("examples/")
        && !is_test_path(path)
}

/// H1 `println!` scope: stdout belongs to benches and examples. Library
/// code reports through stats/telemetry, and diagnostics go to stderr.
pub fn h1_println_in_scope(path: &str) -> bool {
    h1_density_in_scope(path)
}

/// H1 density cap: a file may carry at most `max(10, code_lines / 40)`
/// `unwrap()`/`expect()` calls outside test modules. The floor keeps
/// small files honest without forbidding idiomatic borrow-panic
/// patterns; the slope scales with module size.
pub fn h1_unwrap_cap(code_lines: usize) -> usize {
    (code_lines / 40).max(10)
}
