//! Findings, deterministic ordering, and the two output forms: a human
//! table and machine-readable JSON. Everything is sorted so that two
//! runs over the same tree are byte-identical — the lint holds itself
//! to the invariant it enforces.

/// One finding. `allow_reason` is set when a `// simlint: allow(...)`
/// annotation matched: the finding is reported but does not fail the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub message: String,
    pub allow_reason: Option<String>,
}

impl Finding {
    pub fn new(rule: &'static str, path: &str, line: u32, message: String) -> Self {
        Finding {
            rule,
            path: path.to_string(),
            line,
            message,
            allow_reason: None,
        }
    }
}

/// The result of a full run.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

impl Report {
    /// Canonical order: path, then line, then rule, then message.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
                b.path.as_str(),
                b.line,
                b.rule,
                b.message.as_str(),
            ))
        });
    }

    pub fn unallowed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.allow_reason.is_none())
    }

    pub fn allowed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.allow_reason.is_some())
    }

    /// Nonzero exit iff any finding lacks an allow.
    pub fn failed(&self) -> bool {
        self.unallowed().next().is_some()
    }

    /// Human-readable table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let unallowed = self.unallowed().count();
        let allowed = self.allowed().count();
        if unallowed > 0 {
            out.push_str("FINDINGS\n");
            for f in self.unallowed() {
                out.push_str(&format!(
                    "  {:<4} {}:{}\n       {}\n",
                    f.rule, f.path, f.line, f.message
                ));
            }
        }
        if allowed > 0 {
            out.push_str("ALLOWED (annotated, with reasons)\n");
            for f in self.allowed() {
                out.push_str(&format!(
                    "  {:<4} {}:{} — {}\n",
                    f.rule,
                    f.path,
                    f.line,
                    f.allow_reason.as_deref().unwrap_or("")
                ));
            }
        }
        out.push_str(&format!(
            "simlint: {} files scanned, {} finding(s), {} allowed\n",
            self.files_scanned, unallowed, allowed
        ));
        out
    }

    /// Machine-readable JSON, stable field order, sorted findings.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"rule\": {}, ", json_str(f.rule)));
            out.push_str(&format!("\"path\": {}, ", json_str(&f.path)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!("\"message\": {}, ", json_str(&f.message)));
            match &f.allow_reason {
                Some(r) => out.push_str(&format!("\"allowed\": true, \"reason\": {}", json_str(r))),
                None => out.push_str("\"allowed\": false"),
            }
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str(&format!(
            "  \"summary\": {{\"files_scanned\": {}, \"findings\": {}, \"allowed\": {}}}\n}}\n",
            self.files_scanned,
            self.unallowed().count(),
            self.allowed().count()
        ));
        out
    }
}

/// Minimal JSON string escaping (the only non-trivial characters our
/// messages can contain are quotes, backslashes, and control chars).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_deterministic_and_escaped() {
        let mut r = Report::default();
        r.findings
            .push(Finding::new("D1", "b.rs", 2, "x \"y\"".into()));
        r.findings.push(Finding::new("D1", "a.rs", 9, "z".into()));
        r.sort();
        let j = r.to_json();
        assert!(j.find("a.rs").unwrap() < j.find("b.rs").unwrap());
        assert!(j.contains("x \\\"y\\\""));
        assert_eq!(j, {
            let mut r2 = Report::default();
            r2.findings.push(Finding::new("D1", "a.rs", 9, "z".into()));
            r2.findings
                .push(Finding::new("D1", "b.rs", 2, "x \"y\"".into()));
            r2.sort();
            r2.to_json()
        });
    }
}
