// Fixture: H1 fires exactly once — println! outside benches/examples.
pub fn report(x: u64) {
    println!("x = {x}");
}
