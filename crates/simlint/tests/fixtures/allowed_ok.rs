// Fixture: a real D2 violation suppressed by a well-formed allow — the
// report carries one *allowed* finding and zero unallowed ones.
pub fn stamp() -> u64 {
    // simlint: allow(D2, reason = "fixture: demonstrates a justified suppression")
    let _ = std::time::SystemTime::now();
    0
}
