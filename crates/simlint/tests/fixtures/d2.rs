// Fixture: D2 fires exactly once — wall clock outside a bench module.
pub fn stamp() -> bool {
    let now = std::time::SystemTime::now();
    let _ = now;
    true
}
