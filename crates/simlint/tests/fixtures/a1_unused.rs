// Fixture: A1 fires exactly once — an allow annotation that suppresses
// nothing.
pub fn nothing() -> u64 {
    // simlint: allow(D1, reason = "nothing on the next line iterates a hash map")
    1 + 1
}
