// Fixture: U1 fires exactly once — an unjustified `unsafe` block.
//
// (Deliberately no safety justification comment above the block.)

pub fn peek(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}
