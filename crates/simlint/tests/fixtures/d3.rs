// Fixture: D3 fires exactly once — pointer-address formatting in a
// serialized path.
pub fn trace_label(x: &u64) -> String {
    format!("{:p}", x)
}
