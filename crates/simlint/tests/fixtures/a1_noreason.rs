// Fixture: A1 fires exactly once — an allow annotation missing the
// mandatory reason.
pub fn clocked() -> u64 {
    // simlint: allow(D2)
    7
}
