// Fixture: C1 fires exactly once — a conservation-family counter whose
// partner (`relay.credits_returned`) is never registered.
pub struct Builder {
    out: Vec<(String, u64)>,
}

impl Builder {
    pub fn counter(&mut self, name: &str, v: u64) {
        self.out.push((name.to_string(), v));
    }
}

pub fn register(b: &mut Builder, consumed: u64) {
    b.counter("relay.credits_consumed", consumed);
}
