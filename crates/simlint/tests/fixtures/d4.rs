// Fixture: D4 fires exactly once — a thread spawned outside the
// partitioned executor modules.
pub fn off_thread() {
    let handle = std::thread::spawn(|| 7u64);
    let _ = handle;
}
