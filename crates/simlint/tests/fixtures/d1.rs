// Fixture: D1 fires exactly once — hash iteration in a snapshot path.
use std::collections::HashMap;

pub fn snapshot_keys(m: &HashMap<u32, u64>) -> Vec<u32> {
    let mut ids: Vec<u32> = m.keys().copied().collect();
    ids.sort_unstable();
    ids
}
