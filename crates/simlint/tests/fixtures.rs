//! Every rule fires exactly once on its fixture, a well-formed allow
//! suppresses, and the real workspace scans clean.
//!
//! Fixtures live in `tests/fixtures/` (excluded from the workspace scan
//! by `config::skip_entirely`) and are scanned under a *pretend*
//! in-scope path so the path-scoping rules treat them as simulator
//! sources.

use std::fs;
use std::path::Path;

use simlint::{find_workspace_root, run_single, run_workspace};

/// Scans `tests/fixtures/<name>.rs` as if it lived at an in-scope
/// simulator path and returns the report.
fn scan_fixture(name: &str) -> simlint::report::Report {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("{name}.rs"));
    let src = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    run_single("crates/core/src/fixture.rs", &src)
}

/// Asserts the fixture produces exactly one unallowed finding, of `rule`.
fn fires_once(name: &str, rule: &str) {
    let report = scan_fixture(name);
    let unallowed: Vec<_> = report.unallowed().collect();
    assert_eq!(
        unallowed.len(),
        1,
        "fixture {name}: expected exactly one {rule} finding, got:\n{}",
        report.table()
    );
    assert_eq!(
        unallowed[0].rule,
        rule,
        "fixture {name}:\n{}",
        report.table()
    );
}

#[test]
fn d1_hash_iteration_fires_once() {
    fires_once("d1", "D1");
}

#[test]
fn d2_wall_clock_fires_once() {
    fires_once("d2", "D2");
}

#[test]
fn d3_pointer_format_fires_once() {
    fires_once("d3", "D3");
}

#[test]
fn d4_thread_spawn_fires_once() {
    fires_once("d4", "D4");
}

#[test]
fn c1_missing_partner_fires_once() {
    fires_once("c1", "C1");
}

#[test]
fn h1_println_fires_once() {
    fires_once("h1", "H1");
}

#[test]
fn u1_unsafe_without_safety_fires_once() {
    fires_once("u1", "U1");
}

#[test]
fn a1_unused_allow_fires_once() {
    fires_once("a1_unused", "A1");
}

#[test]
fn a1_missing_reason_fires_once() {
    fires_once("a1_noreason", "A1");
}

#[test]
fn well_formed_allow_suppresses() {
    let report = scan_fixture("allowed_ok");
    assert!(
        !report.failed(),
        "allowed fixture must pass:\n{}",
        report.table()
    );
    let allowed: Vec<_> = report.allowed().collect();
    assert_eq!(allowed.len(), 1, "the D2 finding is recorded as allowed");
    assert_eq!(allowed[0].rule, "D2");
    assert!(allowed[0].allow_reason.is_some());
}

#[test]
fn workspace_scans_clean() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(manifest).expect("workspace root above crates/simlint");
    let report = run_workspace(&root).expect("workspace scan");
    assert!(report.files_scanned > 50, "the whole tree was visited");
    assert!(
        !report.failed(),
        "the workspace must lint clean:\n{}",
        report.table()
    );
}
