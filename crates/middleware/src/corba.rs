//! A CORBA-like object request broker over the VLink interface.
//!
//! The paper ports four real ORBs (omniORB 3, omniORB 4, Mico, ORBacus)
//! onto PadicoTM through the SysWrap personality and shows that the
//! zero-copy ORBs reach the Myrinet wire rate while the copying ORBs stall
//! at 55–63 MB/s. This module reproduces the communication path of such an
//! ORB: CDR marshalling (with alignment), GIOP-style request/reply
//! messages, object references and servants — with a per-implementation
//! cost profile that models the marshalling-engine difference.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use padico_core::{PadicoRuntime, VLink};
use simnet::{NodeId, SimWorld};

use crate::cost::MiddlewareCost;

// --------------------------------------------------------------------- //
// IDL values and CDR marshalling
// --------------------------------------------------------------------- //

/// A dynamically-typed IDL value (the subset needed by the experiments and
/// examples).
#[derive(Debug, Clone, PartialEq)]
pub enum IdlValue {
    /// `void`
    Void,
    /// `boolean`
    Bool(bool),
    /// `long`
    Long(i32),
    /// `long long`
    LongLong(i64),
    /// `double`
    Double(f64),
    /// `string`
    Str(String),
    /// `sequence<octet>` — the bulk-data type used by the bandwidth tests.
    Octets(Bytes),
    /// `sequence<any>`
    Sequence(Vec<IdlValue>),
}

impl IdlValue {
    /// Approximate marshalled payload size (used for cost accounting).
    pub fn payload_size(&self) -> usize {
        match self {
            IdlValue::Void => 0,
            IdlValue::Bool(_) => 1,
            IdlValue::Long(_) => 4,
            IdlValue::LongLong(_) | IdlValue::Double(_) => 8,
            IdlValue::Str(s) => 4 + s.len() + 1,
            IdlValue::Octets(b) => 4 + b.len(),
            IdlValue::Sequence(v) => 4 + v.iter().map(|x| 1 + x.payload_size()).sum::<usize>(),
        }
    }
}

fn align(buf: &mut BytesMut, to: usize) {
    while !buf.len().is_multiple_of(to) {
        buf.put_u8(0);
    }
}

fn skip_align(buf: &mut Bytes, consumed: &mut usize, to: usize) {
    while !(*consumed).is_multiple_of(to) && buf.has_remaining() {
        buf.advance(1);
        *consumed += 1;
    }
}

/// Encodes a value in CDR (big-endian flavour, natural alignment).
pub fn cdr_encode(value: &IdlValue, buf: &mut BytesMut) {
    match value {
        IdlValue::Void => buf.put_u8(0),
        IdlValue::Bool(b) => {
            buf.put_u8(1);
            buf.put_u8(*b as u8);
        }
        IdlValue::Long(v) => {
            buf.put_u8(2);
            align(buf, 4);
            buf.put_i32(*v);
        }
        IdlValue::LongLong(v) => {
            buf.put_u8(3);
            align(buf, 8);
            buf.put_i64(*v);
        }
        IdlValue::Double(v) => {
            buf.put_u8(4);
            align(buf, 8);
            buf.put_f64(*v);
        }
        IdlValue::Str(s) => {
            buf.put_u8(5);
            align(buf, 4);
            buf.put_u32(s.len() as u32 + 1);
            buf.extend_from_slice(s.as_bytes());
            buf.put_u8(0);
        }
        IdlValue::Octets(b) => {
            buf.put_u8(6);
            align(buf, 4);
            buf.put_u32(b.len() as u32);
            buf.extend_from_slice(b);
        }
        IdlValue::Sequence(items) => {
            buf.put_u8(7);
            align(buf, 4);
            buf.put_u32(items.len() as u32);
            for item in items {
                cdr_encode(item, buf);
            }
        }
    }
}

/// Decodes one CDR value. `consumed` tracks the absolute offset so that
/// alignment matches the encoder.
pub fn cdr_decode(buf: &mut Bytes, consumed: &mut usize) -> Option<IdlValue> {
    if !buf.has_remaining() {
        return None;
    }
    let kind = buf.get_u8();
    *consumed += 1;
    match kind {
        0 => Some(IdlValue::Void),
        1 => {
            let b = buf.get_u8();
            *consumed += 1;
            Some(IdlValue::Bool(b != 0))
        }
        2 => {
            skip_align(buf, consumed, 4);
            if buf.remaining() < 4 {
                return None;
            }
            *consumed += 4;
            Some(IdlValue::Long(buf.get_i32()))
        }
        3 => {
            skip_align(buf, consumed, 8);
            if buf.remaining() < 8 {
                return None;
            }
            *consumed += 8;
            Some(IdlValue::LongLong(buf.get_i64()))
        }
        4 => {
            skip_align(buf, consumed, 8);
            if buf.remaining() < 8 {
                return None;
            }
            *consumed += 8;
            Some(IdlValue::Double(buf.get_f64()))
        }
        5 => {
            skip_align(buf, consumed, 4);
            if buf.remaining() < 4 {
                return None;
            }
            let len = buf.get_u32() as usize;
            *consumed += 4;
            if buf.remaining() < len || len == 0 {
                return None;
            }
            let s = buf.split_to(len - 1);
            buf.advance(1); // trailing NUL
            *consumed += len;
            Some(IdlValue::Str(String::from_utf8_lossy(&s).into_owned()))
        }
        6 => {
            skip_align(buf, consumed, 4);
            if buf.remaining() < 4 {
                return None;
            }
            let len = buf.get_u32() as usize;
            *consumed += 4;
            if buf.remaining() < len {
                return None;
            }
            let b = buf.split_to(len);
            *consumed += len;
            Some(IdlValue::Octets(b))
        }
        7 => {
            skip_align(buf, consumed, 4);
            if buf.remaining() < 4 {
                return None;
            }
            let len = buf.get_u32() as usize;
            *consumed += 4;
            let mut items = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                items.push(cdr_decode(buf, consumed)?);
            }
            Some(IdlValue::Sequence(items))
        }
        _ => None,
    }
}

// --------------------------------------------------------------------- //
// ORB profiles
// --------------------------------------------------------------------- //

/// Which ORB implementation is being modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrbImpl {
    /// omniORB 3 (zero-copy marshalling).
    OmniOrb3,
    /// omniORB 4 (zero-copy marshalling, lower per-call cost).
    OmniOrb4,
    /// Mico 2.3 (copies on marshal and unmarshal).
    Mico,
    /// ORBacus 4.0 (copies on marshal and unmarshal).
    Orbacus,
}

impl OrbImpl {
    /// Cost profile of this implementation.
    pub fn cost(&self) -> MiddlewareCost {
        match self {
            OrbImpl::OmniOrb3 => MiddlewareCost::omniorb3(),
            OrbImpl::OmniOrb4 => MiddlewareCost::omniorb4(),
            OrbImpl::Mico => MiddlewareCost::mico(),
            OrbImpl::Orbacus => MiddlewareCost::orbacus(),
        }
    }

    /// All modelled implementations (used by the Figure 3 sweep).
    pub fn all() -> [OrbImpl; 4] {
        [
            OrbImpl::OmniOrb3,
            OrbImpl::OmniOrb4,
            OrbImpl::Mico,
            OrbImpl::Orbacus,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        self.cost().name
    }
}

// --------------------------------------------------------------------- //
// GIOP-like messages
// --------------------------------------------------------------------- //

const MSG_REQUEST: u8 = 0;
const MSG_REPLY: u8 = 1;

fn encode_message(
    msg_type: u8,
    request_id: u64,
    object_key: &str,
    operation: &str,
    body: &IdlValue,
) -> Vec<u8> {
    let mut payload = BytesMut::new();
    payload.put_u8(msg_type);
    payload.put_u64(request_id);
    payload.put_u16(object_key.len() as u16);
    payload.extend_from_slice(object_key.as_bytes());
    payload.put_u16(operation.len() as u16);
    payload.extend_from_slice(operation.as_bytes());
    cdr_encode(body, &mut payload);
    // Length-prefixed framing (GIOP header).
    let mut out = Vec::with_capacity(payload.len() + 4);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&payload);
    out
}

struct DecodedMessage {
    msg_type: u8,
    request_id: u64,
    object_key: String,
    operation: String,
    body: IdlValue,
}

fn decode_message(payload: &[u8]) -> Option<DecodedMessage> {
    let mut buf = Bytes::copy_from_slice(payload);
    let mut consumed = 0usize;
    if buf.remaining() < 13 {
        return None;
    }
    let msg_type = buf.get_u8();
    let request_id = buf.get_u64();
    let klen = buf.get_u16() as usize;
    consumed += 11;
    if buf.remaining() < klen {
        return None;
    }
    let object_key = String::from_utf8_lossy(&buf.split_to(klen)).into_owned();
    consumed += klen;
    if buf.remaining() < 2 {
        return None;
    }
    let olen = buf.get_u16() as usize;
    consumed += 2;
    if buf.remaining() < olen {
        return None;
    }
    let operation = String::from_utf8_lossy(&buf.split_to(olen)).into_owned();
    consumed += olen;
    let body = cdr_decode(&mut buf, &mut consumed)?;
    Some(DecodedMessage {
        msg_type,
        request_id,
        object_key,
        operation,
        body,
    })
}

// --------------------------------------------------------------------- //
// The ORB
// --------------------------------------------------------------------- //

/// A servant: invoked with (operation, argument), returns the result.
pub type Servant = Box<dyn FnMut(&mut SimWorld, &str, IdlValue) -> IdlValue>;

type ReplyCallback = Box<dyn FnOnce(&mut SimWorld, IdlValue)>;

struct OrbInner {
    runtime: PadicoRuntime,
    implementation: OrbImpl,
    cost: MiddlewareCost,
    servants: HashMap<String, Servant>,
    pending: HashMap<u64, ReplyCallback>,
    next_request: u64,
    /// Established client connections, keyed by (node, service).
    connections: HashMap<(NodeId, u16), Rc<OrbConnection>>,
    requests_sent: u64,
    requests_served: u64,
    /// Whether the metrics collector has been registered (done lazily on
    /// the first call that carries a `SimWorld`).
    metrics_registered: bool,
}

/// Request accounting of one ORB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OrbStats {
    /// Requests this ORB sent as a client.
    pub requests_sent: u64,
    /// Requests this ORB served as a servant side.
    pub requests_served: u64,
}

struct OrbConnection {
    vlink: VLink,
    rx: RefCell<Vec<u8>>,
}

/// An object reference: where the object lives and how to name it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjRef {
    /// Node hosting the object.
    pub node: NodeId,
    /// VLink service (the "port" of the object adapter).
    pub service: u16,
    /// Key of the object within its adapter.
    pub object_key: String,
}

/// A CORBA-like ORB on one node.
#[derive(Clone)]
pub struct Orb {
    inner: Rc<RefCell<OrbInner>>,
}

impl Orb {
    /// Creates an ORB of the given implementation flavour over a runtime.
    pub fn new(runtime: PadicoRuntime, implementation: OrbImpl) -> Orb {
        Orb {
            inner: Rc::new(RefCell::new(OrbInner {
                runtime,
                implementation,
                cost: implementation.cost(),
                servants: HashMap::new(),
                pending: HashMap::new(),
                next_request: 1,
                connections: HashMap::new(),
                requests_sent: 0,
                requests_served: 0,
                metrics_registered: false,
            })),
        }
    }

    /// Registers the `mw.corba.*{node=N}` collector once; called from the
    /// world-bearing entry points (`activate`, `invoke`) because
    /// [`Orb::new`] has no access to the world.
    fn ensure_metrics(&self, world: &mut SimWorld) {
        let first = {
            let mut st = self.inner.borrow_mut();
            !std::mem::replace(&mut st.metrics_registered, true)
        };
        if !first {
            return;
        }
        let node = self.inner.borrow().runtime.node();
        let node_label = node.0.to_string();
        let weak = Rc::downgrade(&self.inner);
        world.metrics.register_collector(move |b| {
            let Some(inner) = weak.upgrade() else { return };
            let st = inner.borrow();
            let labels: &[(&str, &str)] = &[("node", node_label.as_str())];
            b.counter("mw.corba.requests_sent", labels, st.requests_sent);
            b.counter("mw.corba.requests_served", labels, st.requests_served);
        });
    }

    /// Which implementation this ORB models.
    pub fn implementation(&self) -> OrbImpl {
        self.inner.borrow().implementation
    }

    /// Request accounting snapshot.
    pub fn stats(&self) -> OrbStats {
        let st = self.inner.borrow();
        OrbStats {
            requests_sent: st.requests_sent,
            requests_served: st.requests_served,
        }
    }

    /// Activates the object adapter: listens on `service` and serves
    /// registered objects.
    pub fn activate(&self, world: &mut SimWorld, service: u16) {
        self.ensure_metrics(world);
        let runtime = self.inner.borrow().runtime.clone();
        let orb = self.clone();
        runtime.vlink_listen(world, service, move |world, vlink| {
            orb.attach_connection(world, vlink, true);
        });
    }

    /// Registers a servant under `object_key`.
    pub fn register_servant(
        &self,
        object_key: &str,
        servant: impl FnMut(&mut SimWorld, &str, IdlValue) -> IdlValue + 'static,
    ) {
        self.inner
            .borrow_mut()
            .servants
            .insert(object_key.to_string(), Box::new(servant));
    }

    /// Builds an object reference.
    pub fn object_ref(&self, node: NodeId, service: u16, object_key: &str) -> ObjRef {
        ObjRef {
            node,
            service,
            object_key: object_key.to_string(),
        }
    }

    /// Invokes `operation(arg)` on the referenced object; `reply` runs with
    /// the result (asynchronous, like a deferred synchronous CORBA call).
    pub fn invoke(
        &self,
        world: &mut SimWorld,
        objref: &ObjRef,
        operation: &str,
        arg: IdlValue,
        reply: impl FnOnce(&mut SimWorld, IdlValue) + 'static,
    ) {
        self.ensure_metrics(world);
        let request_id = {
            let mut st = self.inner.borrow_mut();
            let id = st.next_request;
            st.next_request += 1;
            st.requests_sent += 1;
            st.pending.insert(id, Box::new(reply));
            id
        };
        let conn = self.connection_to(world, objref.node, objref.service);
        let wire = encode_message(MSG_REQUEST, request_id, &objref.object_key, operation, &arg);
        let cost = self.inner.borrow().cost.send_cost(arg.payload_size());
        let vlink = conn.vlink.clone();
        world.schedule_after(cost, move |world| {
            vlink.post_write(world, &wire);
        });
    }

    fn connection_to(&self, world: &mut SimWorld, node: NodeId, service: u16) -> Rc<OrbConnection> {
        let existing = self
            .inner
            .borrow()
            .connections
            .get(&(node, service))
            .cloned();
        if let Some(c) = existing {
            return c;
        }
        let runtime = self.inner.borrow().runtime.clone();
        let vlink = runtime.vlink_connect(world, node, service);
        let conn = self.attach_connection(world, vlink, false);
        self.inner
            .borrow_mut()
            .connections
            .insert((node, service), conn.clone());
        conn
    }

    fn attach_connection(
        &self,
        _world: &mut SimWorld,
        vlink: VLink,
        _server_side: bool,
    ) -> Rc<OrbConnection> {
        let conn = Rc::new(OrbConnection {
            vlink: vlink.clone(),
            rx: RefCell::new(Vec::new()),
        });
        let orb = self.clone();
        let conn2 = conn.clone();
        vlink.set_handler(move |world, event| {
            if event == padico_core::VLinkEvent::Readable {
                orb.on_readable(world, &conn2);
            }
        });
        conn
    }

    fn on_readable(&self, world: &mut SimWorld, conn: &Rc<OrbConnection>) {
        let data = conn.vlink.read_now(world, usize::MAX);
        let mut rx = conn.rx.borrow_mut();
        rx.extend_from_slice(&data);
        loop {
            if rx.len() < 4 {
                return;
            }
            let len = u32::from_be_bytes(rx[0..4].try_into().unwrap()) as usize;
            if rx.len() < 4 + len {
                return;
            }
            let frame: Vec<u8> = rx.drain(..4 + len).skip(4).collect();
            let Some(msg) = decode_message(&frame) else {
                continue;
            };
            match msg.msg_type {
                MSG_REQUEST => {
                    // Charge the server-side unmarshalling cost, then run
                    // the servant and send the reply.
                    let cost = self.inner.borrow().cost.recv_cost(msg.body.payload_size());
                    let orb = self.clone();
                    let conn = conn.clone();
                    world.schedule_after(cost, move |world| {
                        orb.serve(
                            world,
                            &conn,
                            msg.request_id,
                            &msg.object_key,
                            &msg.operation,
                            msg.body,
                        );
                    });
                }
                MSG_REPLY => {
                    let cost = self.inner.borrow().cost.recv_cost(msg.body.payload_size());
                    let orb = self.clone();
                    world.schedule_after(cost, move |world| {
                        let cb = orb.inner.borrow_mut().pending.remove(&msg.request_id);
                        if let Some(cb) = cb {
                            cb(world, msg.body);
                        }
                    });
                }
                _ => {}
            }
        }
    }

    fn serve(
        &self,
        world: &mut SimWorld,
        conn: &Rc<OrbConnection>,
        request_id: u64,
        object_key: &str,
        operation: &str,
        arg: IdlValue,
    ) {
        // Take the servant out while it runs so it may itself use the ORB.
        let servant = {
            let mut st = self.inner.borrow_mut();
            st.requests_served += 1;
            st.servants.remove(object_key)
        };
        let result = match servant {
            Some(mut servant) => {
                let result = servant(world, operation, arg);
                self.inner
                    .borrow_mut()
                    .servants
                    .entry(object_key.to_string())
                    .or_insert(servant);
                result
            }
            None => IdlValue::Str(format!("OBJECT_NOT_EXIST: {object_key}")),
        };
        let wire = encode_message(MSG_REPLY, request_id, object_key, operation, &result);
        let cost = self.inner.borrow().cost.send_cost(result.payload_size());
        let vlink = conn.vlink.clone();
        world.schedule_after(cost, move |world| {
            vlink.post_write(world, &wire);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use padico_core::{runtimes_for_cluster, SelectorPreferences};
    use simnet::topology;
    use std::cell::Cell;

    #[test]
    fn cdr_roundtrip_all_types() {
        let values = vec![
            IdlValue::Void,
            IdlValue::Bool(true),
            IdlValue::Long(-42),
            IdlValue::LongLong(1 << 40),
            IdlValue::Double(3.25),
            IdlValue::Str("grid computing".to_string()),
            IdlValue::Octets(Bytes::from_static(b"\x00\x01\x02raw")),
            IdlValue::Sequence(vec![
                IdlValue::Long(1),
                IdlValue::Str("nested".to_string()),
                IdlValue::Sequence(vec![IdlValue::Bool(false)]),
            ]),
        ];
        for v in values {
            let mut buf = BytesMut::new();
            cdr_encode(&v, &mut buf);
            let mut bytes = buf.freeze();
            let mut consumed = 0;
            let decoded = cdr_decode(&mut bytes, &mut consumed).unwrap();
            assert_eq!(decoded, v);
        }
    }

    #[test]
    fn giop_message_roundtrip() {
        let wire = encode_message(MSG_REQUEST, 7, "calculator", "add", &IdlValue::Long(3));
        let msg = decode_message(&wire[4..]).unwrap();
        assert_eq!(msg.msg_type, MSG_REQUEST);
        assert_eq!(msg.request_id, 7);
        assert_eq!(msg.object_key, "calculator");
        assert_eq!(msg.operation, "add");
        assert_eq!(msg.body, IdlValue::Long(3));
    }

    fn orb_pair(implementation: OrbImpl) -> (SimWorld, Orb, Orb, Vec<simnet::NodeId>) {
        let p = topology::san_pair(91);
        let mut world = p.world;
        let nodes = vec![p.a, p.b];
        let rts = runtimes_for_cluster(&mut world, p.san, &nodes, SelectorPreferences::default());
        let client = Orb::new(rts[0].clone(), implementation);
        let server = Orb::new(rts[1].clone(), implementation);
        (world, client, server, nodes)
    }

    #[test]
    fn remote_invocation_over_the_san() {
        let (mut world, client, server, nodes) = orb_pair(OrbImpl::OmniOrb4);
        server.register_servant("calculator", |_w, op, arg| match (op, arg) {
            ("add", IdlValue::Sequence(args)) => {
                if let (IdlValue::Long(a), IdlValue::Long(b)) = (&args[0], &args[1]) {
                    IdlValue::Long(a + b)
                } else {
                    IdlValue::Void
                }
            }
            _ => IdlValue::Void,
        });
        server.activate(&mut world, 1050);
        let objref = client.object_ref(nodes[1], 1050, "calculator");
        let result = Rc::new(RefCell::new(None));
        let r = result.clone();
        client.invoke(
            &mut world,
            &objref,
            "add",
            IdlValue::Sequence(vec![IdlValue::Long(40), IdlValue::Long(2)]),
            move |_w, reply| *r.borrow_mut() = Some(reply),
        );
        world.run();
        assert_eq!(*result.borrow(), Some(IdlValue::Long(42)));
        assert_eq!(client.stats().requests_sent, 1);
        assert_eq!(server.stats().requests_served, 1);
    }

    #[test]
    fn unknown_object_returns_error_reply() {
        let (mut world, client, server, nodes) = orb_pair(OrbImpl::OmniOrb3);
        server.activate(&mut world, 1060);
        let objref = client.object_ref(nodes[1], 1060, "ghost");
        let got = Rc::new(Cell::new(false));
        let g = got.clone();
        client.invoke(
            &mut world,
            &objref,
            "poke",
            IdlValue::Void,
            move |_w, reply| {
                match reply {
                    IdlValue::Str(s) => assert!(s.contains("OBJECT_NOT_EXIST")),
                    other => panic!("unexpected reply {other:?}"),
                }
                g.set(true);
            },
        );
        world.run();
        assert!(got.get());
    }

    #[test]
    fn copying_orb_is_slower_than_zero_copy_orb_for_bulk_data() {
        let measure = |implementation: OrbImpl| -> f64 {
            let (mut world, client, server, nodes) = orb_pair(implementation);
            server.register_servant("sink", |_w, _op, _arg| IdlValue::Void);
            server.activate(&mut world, 1070);
            let objref = client.object_ref(nodes[1], 1070, "sink");
            let done_at = Rc::new(Cell::new(0.0));
            let d = done_at.clone();
            let payload = IdlValue::Octets(Bytes::from(vec![0u8; 1_000_000]));
            client.invoke(&mut world, &objref, "put", payload, move |world, _| {
                d.set(world.now().as_secs_f64())
            });
            world.run();
            done_at.get()
        };
        let omni = measure(OrbImpl::OmniOrb4);
        let mico = measure(OrbImpl::Mico);
        assert!(
            mico > omni * 2.0,
            "Mico ({mico:.4}s) should be several times slower than omniORB ({omni:.4}s) for 1 MB"
        );
    }

    #[test]
    fn two_orbs_and_mpi_can_share_a_node() {
        // Regression-style test of the paper's coexistence claim at the ORB
        // level: two different services active on the same runtime.
        let (mut world, client, server, nodes) = orb_pair(OrbImpl::OmniOrb4);
        server.register_servant("echo", |_w, _op, arg| arg);
        server.activate(&mut world, 1080);
        let second = Orb::new(
            {
                let st = server.inner.borrow();
                st.runtime.clone()
            },
            OrbImpl::Mico,
        );
        second.register_servant("echo2", |_w, _op, arg| arg);
        second.activate(&mut world, 1081);

        let hits = Rc::new(Cell::new(0));
        for (service, key) in [(1080u16, "echo"), (1081u16, "echo2")] {
            let objref = client.object_ref(nodes[1], service, key);
            let h = hits.clone();
            client.invoke(
                &mut world,
                &objref,
                "ping",
                IdlValue::Long(1),
                move |_w, reply| {
                    assert_eq!(reply, IdlValue::Long(1));
                    h.set(h.get() + 1);
                },
            );
        }
        world.run();
        assert_eq!(hits.get(), 2);
    }
}
