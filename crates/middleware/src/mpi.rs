//! An MPI-like message-passing middleware over the Circuit interface.
//!
//! This plays the role of MPICH/Madeleine in the paper: the parallel
//! middleware used both standalone and inside parallel components. It
//! provides tagged point-to-point messages with posted receives and the
//! usual collectives, and charges the calibrated MPICH software costs so
//! that Table 1's 12 µs / 238 MB/s point is reproduced on the simulated
//! Myrinet.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use bytes::Bytes;
use gridtopo::GridRoutes;
use padico_core::Circuit;
use simnet::{NodeId, SimWorld};

use crate::cost::MiddlewareCost;

/// Wildcard source for [`MpiComm::recv`].
pub const ANY_SOURCE: Option<usize> = None;
/// Wildcard tag for [`MpiComm::recv`].
pub const ANY_TAG: Option<i32> = None;

/// Tag space reserved for collective operations.
const COLL_TAG_BASE: i32 = i32::MIN / 2;

/// A received message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MpiMessage {
    /// Rank of the sender.
    pub src: usize,
    /// Message tag.
    pub tag: i32,
    /// Payload.
    pub data: Vec<u8>,
}

type RecvCallback = Box<dyn FnOnce(&mut SimWorld, MpiMessage)>;

/// Site decomposition of a communicator, derived from the grid's routing
/// tables: two ranks share a site iff the [`PathInfo`] between their
/// nodes never leaves intra-site network classes (SAN/LAN — gateways of
/// *different* sites reach each other directly, but over a WAN), and each
/// site's *leader* is also chosen from [`PathInfo`] — the member rank
/// closest (by route cost) to the site's gateway, i.e. to the first relay
/// of any cross-site path. Topology-aware collectives reduce within sites
/// first and cross the WAN only between leaders.
///
/// [`PathInfo`]: gridtopo::PathInfo
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommTopology {
    /// Rank → site index.
    site_of: Vec<usize>,
    /// Site → leader rank.
    leaders: Vec<usize>,
    /// Site → member ranks, in rank order.
    sites: Vec<Vec<usize>>,
}

impl CommTopology {
    /// Derives the decomposition for the given group nodes over `routes`.
    ///
    /// Site membership is transitive on a grid (every pair within a site
    /// shares its SAN/LAN), so each rank is compared against **one
    /// representative per known site** — O(ranks × sites) `PathInfo`
    /// materializations, not O(ranks²) — and the gateway of a site is
    /// read off a single cross-site `PathInfo`.
    pub fn from_routes(world: &SimWorld, nodes: &[NodeId], routes: &GridRoutes) -> CommTopology {
        let n = nodes.len();
        let mut site_of = vec![usize::MAX; n];
        let mut sites: Vec<Vec<usize>> = Vec::new();
        for i in 0..n {
            let found = sites.iter().position(|members| {
                let rep = nodes[members[0]];
                nodes[i] == rep
                    || routes
                        .path_info(world, rep, nodes[i])
                        .is_some_and(|info| info.worst_class <= simnet::NetworkClass::Lan)
            });
            match found {
                Some(s) => {
                    site_of[i] = s;
                    sites[s].push(i);
                }
                None => {
                    site_of[i] = sites.len();
                    sites.push(vec![i]);
                }
            }
        }
        // Leader per site: the gateway is the first relay on any
        // cross-site PathInfo from this site (one representative pair
        // suffices); the leader is the member with the cheapest route
        // towards it (the gateway itself, if it is a member), ties
        // broken by rank.
        let mut leaders = Vec::with_capacity(sites.len());
        for (s, members) in sites.iter().enumerate() {
            let gateway = sites.iter().enumerate().find_map(|(other, peer)| {
                if other == s {
                    return None;
                }
                routes
                    .path_info(world, nodes[members[0]], nodes[peer[0]])
                    .and_then(|info| info.relays.first().copied())
            });
            let leader = match gateway {
                Some(gw) => members
                    .iter()
                    .copied()
                    .min_by_key(|&m| (routes.cost(nodes[m], gw).unwrap_or(u64::MAX), m))
                    .expect("sites are never empty"),
                None => members[0],
            };
            leaders.push(leader);
        }
        CommTopology {
            site_of,
            leaders,
            sites,
        }
    }

    /// Number of sites spanned by the communicator.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// The site `rank` belongs to.
    pub fn site_of(&self, rank: usize) -> usize {
        self.site_of[rank]
    }

    /// The leader rank of `site`.
    pub fn leader(&self, site: usize) -> usize {
        self.leaders[site]
    }

    /// The member ranks of `site`.
    pub fn site_ranks(&self, site: usize) -> &[usize] {
        &self.sites[site]
    }

    /// Whether a message between the two ranks crosses a site boundary.
    pub fn is_inter_site(&self, a: usize, b: usize) -> bool {
        self.site_of[a] != self.site_of[b]
    }
}

struct PostedRecv {
    src: Option<usize>,
    tag: Option<i32>,
    callback: RecvCallback,
}

struct Inner {
    circuit: Circuit,
    cost: MiddlewareCost,
    unexpected: VecDeque<MpiMessage>,
    posted: VecDeque<PostedRecv>,
    coll_seq: i32,
    messages_sent: u64,
    bytes_sent: u64,
    /// Site decomposition, when installed: collectives become
    /// topology-aware and inter-site messages are counted.
    topology: Option<Rc<CommTopology>>,
    inter_site_msgs: u64,
}

/// Send accounting of one MPI communicator rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MpiStats {
    /// Point-to-point and collective messages sent by this rank.
    pub messages_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Sent messages that crossed a site boundary (topology installed).
    pub inter_site_messages: u64,
}

/// An MPI communicator bound to one Circuit.
#[derive(Clone)]
pub struct MpiComm {
    inner: Rc<RefCell<Inner>>,
}

impl MpiComm {
    /// Creates the communicator over `circuit` with the standard MPICH cost
    /// profile.
    pub fn new(world: &mut SimWorld, circuit: Circuit) -> MpiComm {
        Self::with_cost(world, circuit, MiddlewareCost::mpich())
    }

    /// Creates the communicator with an explicit cost profile.
    pub fn with_cost(world: &mut SimWorld, circuit: Circuit, cost: MiddlewareCost) -> MpiComm {
        let comm = MpiComm {
            inner: Rc::new(RefCell::new(Inner {
                circuit: circuit.clone(),
                cost,
                unexpected: VecDeque::new(),
                posted: VecDeque::new(),
                coll_seq: 0,
                messages_sent: 0,
                bytes_sent: 0,
                topology: None,
                inter_site_msgs: 0,
            })),
        };
        let c = comm.clone();
        circuit.set_message_callback(move |world, msg| {
            if msg.segments.is_empty() || msg.segments[0].len() < 4 {
                return;
            }
            let tag = i32::from_be_bytes(msg.segments[0][0..4].try_into().unwrap());
            let data = if msg.segments.len() > 1 {
                msg.segments[1].to_vec()
            } else {
                Vec::new()
            };
            let mpi_msg = MpiMessage {
                src: msg.src_rank,
                tag,
                data,
            };
            // Charge the receive-side software cost before delivery.
            let cost = c.inner.borrow().cost.recv_cost(mpi_msg.data.len());
            let c2 = c.clone();
            world.schedule_after(cost, move |world| c2.deliver(world, mpi_msg));
        });
        let rank_label = comm.inner.borrow().circuit.my_rank().to_string();
        let weak = Rc::downgrade(&comm.inner);
        world.metrics.register_collector(move |b| {
            let Some(inner) = weak.upgrade() else { return };
            let st = inner.borrow();
            let labels: &[(&str, &str)] = &[("rank", rank_label.as_str())];
            b.counter("mw.mpi.messages_sent", labels, st.messages_sent);
            b.counter("mw.mpi.bytes_sent", labels, st.bytes_sent);
            b.counter("mw.mpi.inter_site_messages", labels, st.inter_site_msgs);
        });
        comm
    }

    /// This process's rank.
    pub fn rank(&self) -> usize {
        self.inner.borrow().circuit.my_rank()
    }

    /// Number of processes in the communicator.
    pub fn size(&self) -> usize {
        self.inner.borrow().circuit.size()
    }

    /// Send accounting snapshot.
    pub fn stats(&self) -> MpiStats {
        let st = self.inner.borrow();
        MpiStats {
            messages_sent: st.messages_sent,
            bytes_sent: st.bytes_sent,
            inter_site_messages: st.inter_site_msgs,
        }
    }

    /// Installs the site decomposition derived from the grid's routing
    /// tables. From here on [`MpiComm::allreduce_sum`] runs the
    /// topology-aware hierarchical algorithm when the communicator spans
    /// several sites, and every sent message crossing a site boundary is
    /// counted in [`MpiComm::inter_site_messages`]. Must be installed on
    /// every rank's communicator (collectives mix the two algorithms
    /// otherwise).
    pub fn install_topology(&self, world: &SimWorld, routes: &GridRoutes) {
        let group = self.inner.borrow().circuit.group();
        let topo = Rc::new(CommTopology::from_routes(world, &group, routes));
        self.inner.borrow_mut().topology = Some(topo);
    }

    /// The installed site decomposition, if any.
    pub fn topology(&self) -> Option<Rc<CommTopology>> {
        self.inner.borrow().topology.clone()
    }

    /// Messages this rank sent across a site boundary (0 until a
    /// topology is installed).
    pub fn inter_site_messages(&self) -> u64 {
        self.inner.borrow().inter_site_msgs
    }

    /// Sends `data` to `dst` with `tag` (buffered/eager semantics: the call
    /// returns immediately).
    pub fn send(&self, world: &mut SimWorld, dst: usize, tag: i32, data: &[u8]) {
        let (circuit, cost) = {
            let mut st = self.inner.borrow_mut();
            st.messages_sent += 1;
            st.bytes_sent += data.len() as u64;
            let rank = st.circuit.my_rank();
            if let Some(t) = &st.topology {
                if t.is_inter_site(rank, dst) {
                    st.inter_site_msgs += 1;
                }
            }
            (st.circuit.clone(), st.cost.send_cost(data.len()))
        };
        let header = Bytes::copy_from_slice(&tag.to_be_bytes());
        let payload = Bytes::copy_from_slice(data);
        world.schedule_after(cost, move |world| {
            circuit.send(world, dst, vec![header, payload]);
        });
    }

    /// Posts a receive. `callback` runs once a matching message arrives
    /// (wildcards via `None`). Matching is FIFO per (source, tag) pair.
    pub fn recv(
        &self,
        world: &mut SimWorld,
        src: Option<usize>,
        tag: Option<i32>,
        callback: impl FnOnce(&mut SimWorld, MpiMessage) + 'static,
    ) {
        // Check the unexpected-message queue first.
        let mut st = self.inner.borrow_mut();
        let pos = st
            .unexpected
            .iter()
            .position(|m| src.is_none_or(|s| s == m.src) && tag.is_none_or(|t| t == m.tag));
        match pos {
            Some(i) => {
                let msg = st.unexpected.remove(i).expect("index valid");
                drop(st);
                callback(world, msg);
            }
            None => {
                st.posted.push_back(PostedRecv {
                    src,
                    tag,
                    callback: Box::new(callback),
                });
            }
        }
    }

    fn deliver(&self, world: &mut SimWorld, msg: MpiMessage) {
        let callback = {
            let mut st = self.inner.borrow_mut();
            let pos = st.posted.iter().position(|p| {
                p.src.is_none_or(|s| s == msg.src) && p.tag.is_none_or(|t| t == msg.tag)
            });
            match pos {
                Some(i) => Some(st.posted.remove(i).expect("index valid").callback),
                None => {
                    st.unexpected.push_back(msg.clone());
                    None
                }
            }
        };
        if let Some(cb) = callback {
            cb(world, msg);
        }
    }

    fn next_coll_tag(&self) -> i32 {
        let mut st = self.inner.borrow_mut();
        st.coll_seq += 1;
        COLL_TAG_BASE + st.coll_seq
    }

    // ------------------------------------------------------------------ //
    // Collectives (every member must call them in the same order)
    // ------------------------------------------------------------------ //

    /// Barrier: `done` runs once every rank has entered the barrier.
    ///
    /// With a [`CommTopology`] installed and the communicator spanning
    /// several sites, this runs the hierarchical gather/release tree —
    /// members sync with their site leader, leaders sync through the
    /// root leader — crossing the WAN `2·(S-1)` times instead of the
    /// flat barrier's `2·(N - |root site|)`. Without a topology it falls
    /// back to [`MpiComm::barrier_linear`].
    pub fn barrier(&self, world: &mut SimWorld, done: impl FnOnce(&mut SimWorld) + 'static) {
        let topo = self.inner.borrow().topology.clone();
        match topo {
            Some(t) if t.site_count() > 1 => self.barrier_hier(world, &t, done),
            _ => self.barrier_linear(world, done),
        }
    }

    /// The flat gather-to-rank-0/release barrier — the seed behaviour,
    /// kept as the oracle the hierarchical barrier is checked against.
    pub fn barrier_linear(&self, world: &mut SimWorld, done: impl FnOnce(&mut SimWorld) + 'static) {
        let tag = self.next_coll_tag();
        let size = self.size();
        let rank = self.rank();
        if size == 1 {
            done(world);
            return;
        }
        if rank == 0 {
            // Gather empty messages from everyone, then release them.
            let remaining = Rc::new(RefCell::new(size - 1));
            let comm = self.clone();
            let done = Rc::new(RefCell::new(Some(
                Box::new(done) as Box<dyn FnOnce(&mut SimWorld)>
            )));
            for _ in 1..size {
                let remaining = remaining.clone();
                let comm2 = comm.clone();
                let done = done.clone();
                self.recv(world, ANY_SOURCE, Some(tag), move |world, _msg| {
                    *remaining.borrow_mut() -= 1;
                    if *remaining.borrow() == 0 {
                        for dst in 1..comm2.size() {
                            comm2.send(world, dst, tag, &[]);
                        }
                        if let Some(done) = done.borrow_mut().take() {
                            done(world);
                        }
                    }
                });
            }
        } else {
            self.send(world, 0, tag, &[]);
            self.recv(world, Some(0), Some(tag), move |world, _msg| done(world));
        }
    }

    /// Hierarchical barrier: members sync with their site leader, the
    /// site leaders sync through the root leader (the only WAN
    /// crossings), then every leader releases its site. Three collective
    /// tags are consumed on every rank, whatever its role.
    fn barrier_hier(
        &self,
        world: &mut SimWorld,
        topo: &Rc<CommTopology>,
        done: impl FnOnce(&mut SimWorld) + 'static,
    ) {
        let tag_gather = self.next_coll_tag();
        let tag_inter = self.next_coll_tag();
        let tag_release = self.next_coll_tag();
        let rank = self.rank();
        let my_site = topo.site_of(rank);
        let my_leader = topo.leader(my_site);
        let root_leader = topo.leader(topo.site_of(0));

        if rank != my_leader {
            // Member: report in, wait for the site release.
            self.send(world, my_leader, tag_gather, &[]);
            self.recv(
                world,
                Some(my_leader),
                Some(tag_release),
                move |world, _msg| done(world),
            );
            return;
        }

        // Leader: gather the site, sync with the root leader, release.
        let comm = self.clone();
        let topo2 = topo.clone();
        let release = move |world: &mut SimWorld| {
            for &member in topo2.site_ranks(topo2.site_of(comm.rank())) {
                if member != comm.rank() {
                    comm.send(world, member, tag_release, &[]);
                }
            }
            done(world);
        };

        let comm = self.clone();
        let topo2 = topo.clone();
        let inter = move |world: &mut SimWorld| {
            if rank == root_leader {
                let other_leaders: Vec<usize> = (0..topo2.site_count())
                    .map(|s| topo2.leader(s))
                    .filter(|&l| l != root_leader)
                    .collect();
                let remaining = Rc::new(RefCell::new(other_leaders.len()));
                let release = Rc::new(RefCell::new(Some(
                    Box::new(release) as Box<dyn FnOnce(&mut SimWorld)>
                )));
                for &leader in &other_leaders {
                    let remaining = remaining.clone();
                    let release = release.clone();
                    let comm2 = comm.clone();
                    let leaders = other_leaders.clone();
                    comm.recv(world, Some(leader), Some(tag_inter), move |world, _msg| {
                        *remaining.borrow_mut() -= 1;
                        if *remaining.borrow() == 0 {
                            for &l in &leaders {
                                comm2.send(world, l, tag_inter, &[]);
                            }
                            if let Some(release) = release.borrow_mut().take() {
                                release(world);
                            }
                        }
                    });
                }
            } else {
                comm.send(world, root_leader, tag_inter, &[]);
                let release = RefCell::new(Some(release));
                comm.recv(
                    world,
                    Some(root_leader),
                    Some(tag_inter),
                    move |world, _msg| {
                        if let Some(release) = release.borrow_mut().take() {
                            release(world);
                        }
                    },
                );
            }
        };

        let workers = topo.site_ranks(my_site).len() - 1;
        if workers == 0 {
            inter(world);
            return;
        }
        let remaining = Rc::new(RefCell::new(workers));
        let inter = Rc::new(RefCell::new(Some(
            Box::new(inter) as Box<dyn FnOnce(&mut SimWorld)>
        )));
        for _ in 0..workers {
            let remaining = remaining.clone();
            let inter = inter.clone();
            self.recv(world, ANY_SOURCE, Some(tag_gather), move |world, _msg| {
                *remaining.borrow_mut() -= 1;
                if *remaining.borrow() == 0 {
                    if let Some(inter) = inter.borrow_mut().take() {
                        inter(world);
                    }
                }
            });
        }
    }

    /// Broadcast from `root`: the root passes `Some(data)`, the others
    /// `None`; every rank's `done` receives the broadcast buffer.
    ///
    /// With a [`CommTopology`] installed and the communicator spanning
    /// several sites, the buffer travels the WAN once per remote site —
    /// root leader to site leaders, leaders into their sites — instead
    /// of once per remote *rank*. Without a topology it falls back to
    /// [`MpiComm::bcast_linear`].
    pub fn bcast(
        &self,
        world: &mut SimWorld,
        root: usize,
        data: Option<Vec<u8>>,
        done: impl FnOnce(&mut SimWorld, Vec<u8>) + 'static,
    ) {
        let topo = self.inner.borrow().topology.clone();
        match topo {
            Some(t) if t.site_count() > 1 => self.bcast_hier(world, &t, root, data, done),
            _ => self.bcast_linear(world, root, data, done),
        }
    }

    /// The flat root-sends-to-everyone broadcast — the seed behaviour,
    /// kept as the oracle the hierarchical broadcast is checked against.
    pub fn bcast_linear(
        &self,
        world: &mut SimWorld,
        root: usize,
        data: Option<Vec<u8>>,
        done: impl FnOnce(&mut SimWorld, Vec<u8>) + 'static,
    ) {
        let tag = self.next_coll_tag();
        let size = self.size();
        let rank = self.rank();
        if rank == root {
            let data = data.expect("root must provide the broadcast buffer");
            for dst in 0..size {
                if dst != root {
                    self.send(world, dst, tag, &data);
                }
            }
            done(world, data);
        } else {
            self.recv(world, Some(root), Some(tag), move |world, msg| {
                done(world, msg.data)
            });
        }
    }

    /// Hierarchical broadcast over the installed site decomposition: the
    /// root hands the buffer to its site leader (if it is not the leader
    /// itself), the root leader sends it to every other site leader —
    /// the only WAN crossings — and each leader copies it to its site
    /// members. Three collective tags are consumed on every rank.
    fn bcast_hier(
        &self,
        world: &mut SimWorld,
        topo: &Rc<CommTopology>,
        root: usize,
        data: Option<Vec<u8>>,
        done: impl FnOnce(&mut SimWorld, Vec<u8>) + 'static,
    ) {
        let tag_up = self.next_coll_tag();
        let tag_inter = self.next_coll_tag();
        let tag_down = self.next_coll_tag();
        let rank = self.rank();
        let my_site = topo.site_of(rank);
        let my_leader = topo.leader(my_site);
        let root_site = topo.site_of(root);
        let root_leader = topo.leader(root_site);

        // A leader holding the buffer fans it out: across the WAN to the
        // other site leaders (root leader only), and down into its own
        // site (skipping the root, which already holds it).
        let comm = self.clone();
        let topo2 = topo.clone();
        let fan_out = move |world: &mut SimWorld, data: &[u8]| {
            let me = comm.rank();
            if me == root_leader {
                for s in 0..topo2.site_count() {
                    let l = topo2.leader(s);
                    if l != root_leader {
                        comm.send(world, l, tag_inter, data);
                    }
                }
            }
            for &member in topo2.site_ranks(topo2.site_of(me)) {
                if member != me && member != root {
                    comm.send(world, member, tag_down, data);
                }
            }
        };

        if rank == root {
            let data = data.expect("root must provide the broadcast buffer");
            if rank == my_leader {
                fan_out(world, &data);
            } else {
                self.send(world, my_leader, tag_up, &data);
            }
            done(world, data);
            return;
        }
        if rank == my_leader {
            // The buffer arrives from the root (same site, up the tree)
            // or from the root leader (across the WAN).
            let (src, tag) = if my_site == root_site {
                (root, tag_up)
            } else {
                (root_leader, tag_inter)
            };
            let fan_out = RefCell::new(Some(fan_out));
            self.recv(world, Some(src), Some(tag), move |world, msg| {
                if let Some(fan_out) = fan_out.borrow_mut().take() {
                    fan_out(world, &msg.data);
                }
                done(world, msg.data);
            });
            return;
        }
        self.recv(world, Some(my_leader), Some(tag_down), move |world, msg| {
            done(world, msg.data)
        });
    }

    /// Sum-reduction of one `f64` to `root`; the root's `done` receives
    /// `Some(total)`, the others `None`.
    pub fn reduce_sum(
        &self,
        world: &mut SimWorld,
        root: usize,
        value: f64,
        done: impl FnOnce(&mut SimWorld, Option<f64>) + 'static,
    ) {
        let tag = self.next_coll_tag();
        let size = self.size();
        let rank = self.rank();
        if rank == root {
            let total = Rc::new(RefCell::new(value));
            let remaining = Rc::new(RefCell::new(size - 1));
            let done = Rc::new(RefCell::new(Some(
                Box::new(done) as Box<dyn FnOnce(&mut SimWorld, Option<f64>)>
            )));
            if size == 1 {
                if let Some(done) = done.borrow_mut().take() {
                    done(world, Some(value));
                }
                return;
            }
            for _ in 0..size - 1 {
                let total = total.clone();
                let remaining = remaining.clone();
                let done = done.clone();
                self.recv(world, ANY_SOURCE, Some(tag), move |world, msg| {
                    let v = f64::from_be_bytes(msg.data[0..8].try_into().unwrap());
                    *total.borrow_mut() += v;
                    *remaining.borrow_mut() -= 1;
                    if *remaining.borrow() == 0 {
                        if let Some(done) = done.borrow_mut().take() {
                            let t = *total.borrow();
                            done(world, Some(t));
                        }
                    }
                });
            }
        } else {
            self.send(world, root, tag, &value.to_be_bytes());
            done(world, None);
        }
    }

    /// All-reduce (sum of one `f64`): every rank's `done` receives the
    /// total.
    ///
    /// With a [`CommTopology`] installed (see
    /// [`MpiComm::install_topology`]) and the communicator spanning
    /// several sites, this runs the **topology-aware hierarchical**
    /// algorithm — intra-site reduction to each site leader, one
    /// gateway-level exchange among leaders, intra-site broadcast — which
    /// sends `2·(S-1)` inter-site messages instead of the linear
    /// reduce+broadcast's `2·(N - |root site|)`. Without a topology it
    /// falls back to [`MpiComm::allreduce_sum_linear`].
    pub fn allreduce_sum(
        &self,
        world: &mut SimWorld,
        value: f64,
        done: impl FnOnce(&mut SimWorld, f64) + 'static,
    ) {
        let topo = self.inner.borrow().topology.clone();
        match topo {
            Some(t) if t.site_count() > 1 => self.allreduce_sum_hier(world, &t, value, done),
            _ => self.allreduce_sum_linear(world, value, done),
        }
    }

    /// The naive linear all-reduce (reduce to rank 0, then broadcast) —
    /// the seed behaviour, kept as the flat baseline the routing bench
    /// compares the hierarchical algorithm against.
    pub fn allreduce_sum_linear(
        &self,
        world: &mut SimWorld,
        value: f64,
        done: impl FnOnce(&mut SimWorld, f64) + 'static,
    ) {
        let comm = self.clone();
        self.reduce_sum(world, 0, value, move |world, total| {
            // Root broadcasts the result; everyone completes on reception.
            // Explicitly the *linear* broadcast: this is the flat oracle,
            // whatever topology is installed.
            comm.bcast_linear(
                world,
                0,
                total.map(|t| t.to_be_bytes().to_vec()),
                move |world, buf| {
                    let t = f64::from_be_bytes(buf[0..8].try_into().unwrap());
                    done(world, t);
                },
            );
        });
    }

    /// Hierarchical all-reduce over the installed site decomposition:
    ///
    /// 1. non-leaders send their value to their site leader, which sums;
    /// 2. non-root leaders send the site partial to the *root leader*
    ///    (the leader of rank 0's site), which sums and returns the grand
    ///    total to each leader — the only messages that cross the WAN;
    /// 3. leaders broadcast the total within their site.
    ///
    /// Every rank must call the collective in the same order (three
    /// collective tags are consumed on every rank, whatever its role).
    fn allreduce_sum_hier(
        &self,
        world: &mut SimWorld,
        topo: &Rc<CommTopology>,
        value: f64,
        done: impl FnOnce(&mut SimWorld, f64) + 'static,
    ) {
        let tag_reduce = self.next_coll_tag();
        let tag_inter = self.next_coll_tag();
        let tag_bcast = self.next_coll_tag();
        let rank = self.rank();
        let my_site = topo.site_of(rank);
        let my_leader = topo.leader(my_site);
        let root_leader = topo.leader(topo.site_of(0));

        if rank != my_leader {
            // Worker: contribute, then wait for the site broadcast.
            self.send(world, my_leader, tag_reduce, &value.to_be_bytes());
            self.recv(
                world,
                Some(my_leader),
                Some(tag_bcast),
                move |world, msg| {
                    let t = f64::from_be_bytes(msg.data[0..8].try_into().unwrap());
                    done(world, t);
                },
            );
            return;
        }

        // Leader: sum the site's contributions, run the inter-site
        // exchange, broadcast the total back into the site.
        let comm = self.clone();
        let topo2 = topo.clone();
        let done = Rc::new(RefCell::new(Some(
            Box::new(done) as Box<dyn FnOnce(&mut SimWorld, f64)>
        )));
        let finish = move |world: &mut SimWorld, total: f64| {
            for &member in topo2.site_ranks(topo2.site_of(comm.rank())) {
                if member != comm.rank() {
                    comm.send(world, member, tag_bcast, &total.to_be_bytes());
                }
            }
            if let Some(done) = done.borrow_mut().take() {
                done(world, total);
            }
        };

        let comm = self.clone();
        let topo2 = topo.clone();
        let inter = move |world: &mut SimWorld, partial: f64| {
            if rank == root_leader {
                // Collect the other sites' partials, then fan the grand
                // total back out to their leaders.
                let other_leaders: Vec<usize> = (0..topo2.site_count())
                    .map(|s| topo2.leader(s))
                    .filter(|&l| l != root_leader)
                    .collect();
                let total = Rc::new(RefCell::new(partial));
                let remaining = Rc::new(RefCell::new(other_leaders.len()));
                let finish = Rc::new(RefCell::new(Some(
                    Box::new(finish) as Box<dyn FnOnce(&mut SimWorld, f64)>
                )));
                for &leader in &other_leaders {
                    let total = total.clone();
                    let remaining = remaining.clone();
                    let finish = finish.clone();
                    let comm2 = comm.clone();
                    let leaders = other_leaders.clone();
                    comm.recv(world, Some(leader), Some(tag_inter), move |world, msg| {
                        let v = f64::from_be_bytes(msg.data[0..8].try_into().unwrap());
                        *total.borrow_mut() += v;
                        *remaining.borrow_mut() -= 1;
                        if *remaining.borrow() == 0 {
                            let t = *total.borrow();
                            for &l in &leaders {
                                comm2.send(world, l, tag_inter, &t.to_be_bytes());
                            }
                            if let Some(finish) = finish.borrow_mut().take() {
                                finish(world, t);
                            }
                        }
                    });
                }
            } else {
                comm.send(world, root_leader, tag_inter, &partial.to_be_bytes());
                let finish = RefCell::new(Some(finish));
                comm.recv(
                    world,
                    Some(root_leader),
                    Some(tag_inter),
                    move |world, msg| {
                        let t = f64::from_be_bytes(msg.data[0..8].try_into().unwrap());
                        if let Some(finish) = finish.borrow_mut().take() {
                            finish(world, t);
                        }
                    },
                );
            }
        };

        let workers = topo.site_ranks(my_site).len() - 1;
        if workers == 0 {
            inter(world, value);
            return;
        }
        let partial = Rc::new(RefCell::new(value));
        let remaining = Rc::new(RefCell::new(workers));
        let inter = Rc::new(RefCell::new(Some(
            Box::new(inter) as Box<dyn FnOnce(&mut SimWorld, f64)>
        )));
        for _ in 0..workers {
            let partial = partial.clone();
            let remaining = remaining.clone();
            let inter = inter.clone();
            self.recv(world, ANY_SOURCE, Some(tag_reduce), move |world, msg| {
                let v = f64::from_be_bytes(msg.data[0..8].try_into().unwrap());
                *partial.borrow_mut() += v;
                *remaining.borrow_mut() -= 1;
                if *remaining.borrow() == 0 {
                    if let Some(inter) = inter.borrow_mut().take() {
                        let p = *partial.borrow();
                        inter(world, p);
                    }
                }
            });
        }
    }

    /// Gather: every rank contributes `data`; the root's `done` receives
    /// the contributions indexed by rank, the others `None`.
    pub fn gather(
        &self,
        world: &mut SimWorld,
        root: usize,
        data: Vec<u8>,
        done: impl FnOnce(&mut SimWorld, Option<Vec<Vec<u8>>>) + 'static,
    ) {
        let tag = self.next_coll_tag();
        let size = self.size();
        let rank = self.rank();
        if rank == root {
            let slots: Rc<RefCell<Vec<Option<Vec<u8>>>>> = Rc::new(RefCell::new(vec![None; size]));
            slots.borrow_mut()[root] = Some(data);
            let remaining = Rc::new(RefCell::new(size - 1));
            let done = Rc::new(RefCell::new(Some(
                Box::new(done) as Box<dyn FnOnce(&mut SimWorld, Option<Vec<Vec<u8>>>)>
            )));
            if size == 1 {
                let all = slots.borrow_mut().drain(..).map(|s| s.unwrap()).collect();
                if let Some(done) = done.borrow_mut().take() {
                    done(world, Some(all));
                }
                return;
            }
            for _ in 0..size - 1 {
                let slots = slots.clone();
                let remaining = remaining.clone();
                let done = done.clone();
                self.recv(world, ANY_SOURCE, Some(tag), move |world, msg| {
                    slots.borrow_mut()[msg.src] = Some(msg.data);
                    *remaining.borrow_mut() -= 1;
                    if *remaining.borrow() == 0 {
                        let all = slots.borrow_mut().drain(..).map(|s| s.unwrap()).collect();
                        if let Some(done) = done.borrow_mut().take() {
                            done(world, Some(all));
                        }
                    }
                });
            }
        } else {
            self.send(world, root, tag, &data);
            done(world, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use padico_core::{runtimes_for_cluster, SelectorPreferences};
    use simnet::topology;
    use std::cell::Cell;

    /// Builds an MPI "world" of `n` processes on a Myrinet cluster.
    fn mpi_world(n: usize) -> (SimWorld, Vec<MpiComm>) {
        let mut world = SimWorld::new(83);
        let cluster =
            topology::build_san_cluster(&mut world, "n", n, simnet::NetworkSpec::myrinet_2000());
        let rts = runtimes_for_cluster(
            &mut world,
            cluster.san.unwrap(),
            &cluster.nodes,
            SelectorPreferences::default(),
        );
        let comms: Vec<MpiComm> = rts
            .iter()
            .map(|rt| {
                let circuit = rt.circuit_create(&mut world, cluster.nodes.clone(), 900);
                MpiComm::new(&mut world, circuit)
            })
            .collect();
        (world, comms)
    }

    #[test]
    fn point_to_point_with_tags() {
        let (mut world, comms) = mpi_world(2);
        assert_eq!(comms[0].rank(), 0);
        assert_eq!(comms[1].size(), 2);
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        comms[1].recv(&mut world, Some(0), Some(7), move |_w, msg| {
            g.borrow_mut().push((msg.tag, msg.data));
        });
        comms[0].send(&mut world, 1, 7, b"tagged payload");
        world.run();
        assert_eq!(*got.borrow(), vec![(7, b"tagged payload".to_vec())]);
    }

    #[test]
    fn unexpected_messages_are_buffered_until_recv() {
        let (mut world, comms) = mpi_world(2);
        comms[0].send(&mut world, 1, 3, b"early bird");
        world.run();
        let got = Rc::new(Cell::new(false));
        let g = got.clone();
        comms[1].recv(&mut world, ANY_SOURCE, Some(3), move |_w, msg| {
            assert_eq!(msg.data, b"early bird");
            assert_eq!(msg.src, 0);
            g.set(true);
        });
        world.run();
        assert!(got.get());
    }

    #[test]
    fn wildcard_receive_matches_any_tag_and_source() {
        let (mut world, comms) = mpi_world(3);
        let count = Rc::new(Cell::new(0));
        for _ in 0..2 {
            let c = count.clone();
            comms[0].recv(&mut world, ANY_SOURCE, ANY_TAG, move |_w, _m| {
                c.set(c.get() + 1)
            });
        }
        comms[1].send(&mut world, 0, 11, b"from 1");
        comms[2].send(&mut world, 0, 22, b"from 2");
        world.run();
        assert_eq!(count.get(), 2);
    }

    #[test]
    fn ping_pong_latency_matches_table1() {
        let (mut world, comms) = mpi_world(2);
        // One-way latency of a 4-byte message, measured as half the
        // round-trip (as the paper does).
        let done_at = Rc::new(Cell::new(0.0f64));
        let d = done_at.clone();
        let c1 = comms[1].clone();
        comms[1].recv(&mut world, Some(0), Some(1), move |world, msg| {
            c1.send(world, 0, 2, &msg.data);
        });
        comms[0].recv(&mut world, Some(1), Some(2), move |world, _msg| {
            d.set(world.now().as_micros_f64());
        });
        comms[0].send(&mut world, 1, 1, &[0u8; 4]);
        world.run();
        let one_way = done_at.get() / 2.0;
        assert!(
            one_way > 10.0 && one_way < 14.5,
            "MPI one-way latency {one_way:.2} µs, expected ≈12 µs"
        );
    }

    #[test]
    fn barrier_releases_all_ranks() {
        let (mut world, comms) = mpi_world(4);
        let released = Rc::new(Cell::new(0));
        for comm in &comms {
            let r = released.clone();
            comm.barrier(&mut world, move |_w| r.set(r.get() + 1));
        }
        world.run();
        assert_eq!(released.get(), 4);
    }

    #[test]
    fn bcast_reaches_every_rank() {
        let (mut world, comms) = mpi_world(3);
        let results = Rc::new(RefCell::new(vec![Vec::new(); 3]));
        for (i, comm) in comms.iter().enumerate() {
            let r = results.clone();
            let data = if i == 1 {
                Some(b"broadcast!".to_vec())
            } else {
                None
            };
            comm.bcast(&mut world, 1, data, move |_w, buf| {
                r.borrow_mut()[i] = buf;
            });
        }
        world.run();
        for i in 0..3 {
            assert_eq!(results.borrow()[i], b"broadcast!");
        }
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let (mut world, comms) = mpi_world(4);
        let results = Rc::new(RefCell::new(vec![0.0f64; 4]));
        for (i, comm) in comms.iter().enumerate() {
            let r = results.clone();
            comm.allreduce_sum(&mut world, (i + 1) as f64, move |_w, total| {
                r.borrow_mut()[i] = total;
            });
        }
        world.run();
        for i in 0..4 {
            assert_eq!(results.borrow()[i], 10.0, "rank {i}");
        }
    }

    /// An MPI world over a multi-site grid: one comm per node of every
    /// site, with the grid's (hierarchical) routes installed as topology.
    fn grid_mpi_world(
        sites: usize,
        nodes_per_site: usize,
        install: bool,
    ) -> (SimWorld, Vec<MpiComm>) {
        use gridtopo::{GridTopology, SiteSpec};
        use padico_core::runtimes_for_grid;

        let mut world = SimWorld::new(97);
        let specs: Vec<SiteSpec> = (0..sites)
            .map(|i| SiteSpec::san_cluster(format!("s{i}"), nodes_per_site))
            .collect();
        let grid = GridTopology::star(&mut world, &specs, simnet::NetworkSpec::vthd_wan());
        let (rts, _proxies) = runtimes_for_grid(&mut world, &grid, SelectorPreferences::default());
        let all = grid.all_nodes();
        let comms: Vec<MpiComm> = rts
            .iter()
            .map(|rt| {
                let circuit = rt.circuit_create(&mut world, all.clone(), 901);
                let comm = MpiComm::new(&mut world, circuit);
                if install {
                    comm.install_topology(&world, &grid.routes);
                }
                comm
            })
            .collect();
        (world, comms)
    }

    #[test]
    fn comm_topology_groups_ranks_by_site_and_elects_gateways() {
        let (_world, comms) = grid_mpi_world(2, 3, true);
        let topo = comms[0].topology().unwrap();
        assert_eq!(topo.site_count(), 2);
        // all_nodes order is [gw0, s0-1, s0-2, gw1, s1-1, s1-2].
        assert_eq!(topo.site_ranks(0), &[0, 1, 2]);
        assert_eq!(topo.site_ranks(1), &[3, 4, 5]);
        // The gateway is a member rank, so it is closest to itself and
        // wins the leadership.
        assert_eq!(topo.leader(0), 0);
        assert_eq!(topo.leader(1), 3);
        assert!(topo.is_inter_site(1, 4));
        assert!(!topo.is_inter_site(4, 5));
    }

    #[test]
    fn hierarchical_allreduce_matches_linear_total() {
        let (mut world, comms) = grid_mpi_world(3, 3, true);
        let n = comms.len();
        let results = Rc::new(RefCell::new(vec![f64::NAN; n]));
        for (i, comm) in comms.iter().enumerate() {
            let r = results.clone();
            comm.allreduce_sum(&mut world, (i + 1) as f64, move |_w, total| {
                r.borrow_mut()[i] = total;
            });
        }
        world.run();
        let expected = (n * (n + 1) / 2) as f64;
        for i in 0..n {
            assert_eq!(results.borrow()[i], expected, "rank {i}");
        }
    }

    #[test]
    fn hierarchical_allreduce_sends_fewer_inter_site_messages() {
        let run = |hier: bool| -> (u64, u64) {
            let (mut world, comms) = grid_mpi_world(2, 4, true);
            let done = Rc::new(Cell::new(0usize));
            for (i, comm) in comms.iter().enumerate() {
                let d = done.clone();
                let value = (i + 1) as f64;
                let cb = move |_w: &mut SimWorld, total: f64| {
                    assert_eq!(total, 36.0);
                    d.set(d.get() + 1);
                };
                if hier {
                    comm.allreduce_sum(&mut world, value, cb);
                } else {
                    comm.allreduce_sum_linear(&mut world, value, cb);
                }
            }
            world.run();
            assert_eq!(done.get(), comms.len(), "every rank completes");
            let inter: u64 = comms.iter().map(|c| c.inter_site_messages()).sum();
            (inter, world.now().as_nanos())
        };
        let (linear_inter, _) = run(false);
        let (hier_inter, _) = run(true);
        // Linear: every site-1 rank crosses twice (reduce up, bcast
        // down) = 2·4 = 8. Hierarchical: one leader exchange = 2·(S-1).
        assert_eq!(linear_inter, 8);
        assert_eq!(hier_inter, 2);
        assert!(
            hier_inter < linear_inter,
            "hierarchy must cross the WAN strictly less"
        );
    }

    #[test]
    fn hierarchical_bcast_matches_linear_oracle() {
        // Same grid, same root, same payload: both algorithms must hand
        // every rank the identical buffer; the hierarchy must cross the
        // site boundary once per remote site instead of once per remote
        // rank.
        let run = |hier: bool, root: usize| -> (Vec<Vec<u8>>, u64) {
            let (mut world, comms) = grid_mpi_world(3, 3, true);
            let n = comms.len();
            let results = Rc::new(RefCell::new(vec![Vec::new(); n]));
            for (i, comm) in comms.iter().enumerate() {
                let r = results.clone();
                let data = (i == root).then(|| b"hier payload".to_vec());
                let cb = move |_w: &mut SimWorld, buf: Vec<u8>| {
                    r.borrow_mut()[i] = buf;
                };
                if hier {
                    comm.bcast(&mut world, root, data, cb);
                } else {
                    comm.bcast_linear(&mut world, root, data, cb);
                }
            }
            world.run();
            let inter: u64 = comms.iter().map(|c| c.inter_site_messages()).sum();
            (Rc::try_unwrap(results).unwrap().into_inner(), inter)
        };
        // Root 4 is a plain member of site 1 — the up-the-tree hop, the
        // leader exchange and the skip-the-root fan-out all engage.
        let (linear_bufs, linear_inter) = run(false, 4);
        let (hier_bufs, hier_inter) = run(true, 4);
        assert_eq!(hier_bufs, linear_bufs, "buffers must match the oracle");
        assert!(hier_bufs.iter().all(|b| b == b"hier payload"));
        // Linear from rank 4: 6 remote-site ranks cross. Hierarchical:
        // one leader exchange = S-1 = 2.
        assert_eq!(linear_inter, 6);
        assert_eq!(hier_inter, 2);
    }

    #[test]
    fn hierarchical_bcast_from_leader_root_matches_oracle() {
        let (mut world, comms) = grid_mpi_world(2, 3, true);
        let n = comms.len();
        let results = Rc::new(RefCell::new(vec![Vec::new(); n]));
        for (i, comm) in comms.iter().enumerate() {
            let r = results.clone();
            // Rank 0 is the gateway (and leader) of site 0.
            let data = (i == 0).then(|| vec![9u8; 100]);
            comm.bcast(&mut world, 0, data, move |_w, buf| {
                r.borrow_mut()[i] = buf;
            });
        }
        world.run();
        for i in 0..n {
            assert_eq!(results.borrow()[i], vec![9u8; 100], "rank {i}");
        }
        let inter: u64 = comms.iter().map(|c| c.inter_site_messages()).sum();
        assert_eq!(inter, 1, "leader root crosses once per remote site");
    }

    #[test]
    fn hierarchical_barrier_releases_all_and_crosses_less() {
        let run = |hier: bool| -> u64 {
            let (mut world, comms) = grid_mpi_world(2, 4, true);
            let released = Rc::new(Cell::new(0));
            for comm in &comms {
                let r = released.clone();
                let cb = move |_w: &mut SimWorld| r.set(r.get() + 1);
                if hier {
                    comm.barrier(&mut world, cb);
                } else {
                    comm.barrier_linear(&mut world, cb);
                }
            }
            world.run();
            assert_eq!(released.get(), comms.len(), "every rank releases");
            comms.iter().map(|c| c.inter_site_messages()).sum()
        };
        let linear_inter = run(false);
        let hier_inter = run(true);
        // Linear: each of site 1's four ranks crosses twice (enter +
        // release). Hierarchical: one leader round-trip = 2·(S-1).
        assert_eq!(linear_inter, 8);
        assert_eq!(hier_inter, 2);
    }

    #[test]
    fn allreduce_without_topology_stays_linear() {
        let (mut world, comms) = grid_mpi_world(2, 2, false);
        let results = Rc::new(RefCell::new(vec![0.0f64; 4]));
        for (i, comm) in comms.iter().enumerate() {
            assert!(comm.topology().is_none());
            assert_eq!(comm.inter_site_messages(), 0);
            let r = results.clone();
            comm.allreduce_sum(&mut world, 1.0, move |_w, total| {
                r.borrow_mut()[i] = total;
            });
        }
        world.run();
        for i in 0..4 {
            assert_eq!(results.borrow()[i], 4.0);
        }
    }

    #[test]
    fn gather_collects_rank_data_in_order() {
        let (mut world, comms) = mpi_world(3);
        let out: Rc<RefCell<Option<Vec<Vec<u8>>>>> = Rc::new(RefCell::new(None));
        for (i, comm) in comms.iter().enumerate() {
            let o = out.clone();
            comm.gather(&mut world, 0, vec![i as u8; i + 1], move |_w, res| {
                if let Some(res) = res {
                    *o.borrow_mut() = Some(res);
                }
            });
        }
        world.run();
        let res = out.borrow().clone().unwrap();
        assert_eq!(res, vec![vec![0u8; 1], vec![1u8; 2], vec![2u8; 3]]);
    }
}
