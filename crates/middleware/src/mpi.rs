//! An MPI-like message-passing middleware over the Circuit interface.
//!
//! This plays the role of MPICH/Madeleine in the paper: the parallel
//! middleware used both standalone and inside parallel components. It
//! provides tagged point-to-point messages with posted receives and the
//! usual collectives, and charges the calibrated MPICH software costs so
//! that Table 1's 12 µs / 238 MB/s point is reproduced on the simulated
//! Myrinet.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use bytes::Bytes;
use padico_core::Circuit;
use simnet::SimWorld;

use crate::cost::MiddlewareCost;

/// Wildcard source for [`MpiComm::recv`].
pub const ANY_SOURCE: Option<usize> = None;
/// Wildcard tag for [`MpiComm::recv`].
pub const ANY_TAG: Option<i32> = None;

/// Tag space reserved for collective operations.
const COLL_TAG_BASE: i32 = i32::MIN / 2;

/// A received message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MpiMessage {
    /// Rank of the sender.
    pub src: usize,
    /// Message tag.
    pub tag: i32,
    /// Payload.
    pub data: Vec<u8>,
}

type RecvCallback = Box<dyn FnOnce(&mut SimWorld, MpiMessage)>;

struct PostedRecv {
    src: Option<usize>,
    tag: Option<i32>,
    callback: RecvCallback,
}

struct Inner {
    circuit: Circuit,
    cost: MiddlewareCost,
    unexpected: VecDeque<MpiMessage>,
    posted: VecDeque<PostedRecv>,
    coll_seq: i32,
    messages_sent: u64,
    bytes_sent: u64,
}

/// An MPI communicator bound to one Circuit.
#[derive(Clone)]
pub struct MpiComm {
    inner: Rc<RefCell<Inner>>,
}

impl MpiComm {
    /// Creates the communicator over `circuit` with the standard MPICH cost
    /// profile.
    pub fn new(world: &mut SimWorld, circuit: Circuit) -> MpiComm {
        Self::with_cost(world, circuit, MiddlewareCost::mpich())
    }

    /// Creates the communicator with an explicit cost profile.
    pub fn with_cost(world: &mut SimWorld, circuit: Circuit, cost: MiddlewareCost) -> MpiComm {
        let comm = MpiComm {
            inner: Rc::new(RefCell::new(Inner {
                circuit: circuit.clone(),
                cost,
                unexpected: VecDeque::new(),
                posted: VecDeque::new(),
                coll_seq: 0,
                messages_sent: 0,
                bytes_sent: 0,
            })),
        };
        let c = comm.clone();
        circuit.set_message_callback(move |world, msg| {
            if msg.segments.is_empty() || msg.segments[0].len() < 4 {
                return;
            }
            let tag = i32::from_be_bytes(msg.segments[0][0..4].try_into().unwrap());
            let data = if msg.segments.len() > 1 {
                msg.segments[1].to_vec()
            } else {
                Vec::new()
            };
            let mpi_msg = MpiMessage {
                src: msg.src_rank,
                tag,
                data,
            };
            // Charge the receive-side software cost before delivery.
            let cost = c.inner.borrow().cost.recv_cost(mpi_msg.data.len());
            let c2 = c.clone();
            world.schedule_after(cost, move |world| c2.deliver(world, mpi_msg));
        });
        let _ = world;
        comm
    }

    /// This process's rank.
    pub fn rank(&self) -> usize {
        self.inner.borrow().circuit.my_rank()
    }

    /// Number of processes in the communicator.
    pub fn size(&self) -> usize {
        self.inner.borrow().circuit.size()
    }

    /// (messages sent, payload bytes sent).
    pub fn stats(&self) -> (u64, u64) {
        let st = self.inner.borrow();
        (st.messages_sent, st.bytes_sent)
    }

    /// Sends `data` to `dst` with `tag` (buffered/eager semantics: the call
    /// returns immediately).
    pub fn send(&self, world: &mut SimWorld, dst: usize, tag: i32, data: &[u8]) {
        let (circuit, cost) = {
            let mut st = self.inner.borrow_mut();
            st.messages_sent += 1;
            st.bytes_sent += data.len() as u64;
            (st.circuit.clone(), st.cost.send_cost(data.len()))
        };
        let header = Bytes::copy_from_slice(&tag.to_be_bytes());
        let payload = Bytes::copy_from_slice(data);
        world.schedule_after(cost, move |world| {
            circuit.send(world, dst, vec![header, payload]);
        });
    }

    /// Posts a receive. `callback` runs once a matching message arrives
    /// (wildcards via `None`). Matching is FIFO per (source, tag) pair.
    pub fn recv(
        &self,
        world: &mut SimWorld,
        src: Option<usize>,
        tag: Option<i32>,
        callback: impl FnOnce(&mut SimWorld, MpiMessage) + 'static,
    ) {
        // Check the unexpected-message queue first.
        let mut st = self.inner.borrow_mut();
        let pos = st
            .unexpected
            .iter()
            .position(|m| src.is_none_or(|s| s == m.src) && tag.is_none_or(|t| t == m.tag));
        match pos {
            Some(i) => {
                let msg = st.unexpected.remove(i).expect("index valid");
                drop(st);
                callback(world, msg);
            }
            None => {
                st.posted.push_back(PostedRecv {
                    src,
                    tag,
                    callback: Box::new(callback),
                });
            }
        }
    }

    fn deliver(&self, world: &mut SimWorld, msg: MpiMessage) {
        let callback = {
            let mut st = self.inner.borrow_mut();
            let pos = st.posted.iter().position(|p| {
                p.src.is_none_or(|s| s == msg.src) && p.tag.is_none_or(|t| t == msg.tag)
            });
            match pos {
                Some(i) => Some(st.posted.remove(i).expect("index valid").callback),
                None => {
                    st.unexpected.push_back(msg.clone());
                    None
                }
            }
        };
        if let Some(cb) = callback {
            cb(world, msg);
        }
    }

    fn next_coll_tag(&self) -> i32 {
        let mut st = self.inner.borrow_mut();
        st.coll_seq += 1;
        COLL_TAG_BASE + st.coll_seq
    }

    // ------------------------------------------------------------------ //
    // Collectives (every member must call them in the same order)
    // ------------------------------------------------------------------ //

    /// Barrier: `done` runs once every rank has entered the barrier.
    pub fn barrier(&self, world: &mut SimWorld, done: impl FnOnce(&mut SimWorld) + 'static) {
        let tag = self.next_coll_tag();
        let size = self.size();
        let rank = self.rank();
        if size == 1 {
            done(world);
            return;
        }
        if rank == 0 {
            // Gather empty messages from everyone, then release them.
            let remaining = Rc::new(RefCell::new(size - 1));
            let comm = self.clone();
            let done = Rc::new(RefCell::new(Some(
                Box::new(done) as Box<dyn FnOnce(&mut SimWorld)>
            )));
            for _ in 1..size {
                let remaining = remaining.clone();
                let comm2 = comm.clone();
                let done = done.clone();
                self.recv(world, ANY_SOURCE, Some(tag), move |world, _msg| {
                    *remaining.borrow_mut() -= 1;
                    if *remaining.borrow() == 0 {
                        for dst in 1..comm2.size() {
                            comm2.send(world, dst, tag, &[]);
                        }
                        if let Some(done) = done.borrow_mut().take() {
                            done(world);
                        }
                    }
                });
            }
        } else {
            self.send(world, 0, tag, &[]);
            self.recv(world, Some(0), Some(tag), move |world, _msg| done(world));
        }
    }

    /// Broadcast from `root`: the root passes `Some(data)`, the others
    /// `None`; every rank's `done` receives the broadcast buffer.
    pub fn bcast(
        &self,
        world: &mut SimWorld,
        root: usize,
        data: Option<Vec<u8>>,
        done: impl FnOnce(&mut SimWorld, Vec<u8>) + 'static,
    ) {
        let tag = self.next_coll_tag();
        let size = self.size();
        let rank = self.rank();
        if rank == root {
            let data = data.expect("root must provide the broadcast buffer");
            for dst in 0..size {
                if dst != root {
                    self.send(world, dst, tag, &data);
                }
            }
            done(world, data);
        } else {
            self.recv(world, Some(root), Some(tag), move |world, msg| {
                done(world, msg.data)
            });
        }
    }

    /// Sum-reduction of one `f64` to `root`; the root's `done` receives
    /// `Some(total)`, the others `None`.
    pub fn reduce_sum(
        &self,
        world: &mut SimWorld,
        root: usize,
        value: f64,
        done: impl FnOnce(&mut SimWorld, Option<f64>) + 'static,
    ) {
        let tag = self.next_coll_tag();
        let size = self.size();
        let rank = self.rank();
        if rank == root {
            let total = Rc::new(RefCell::new(value));
            let remaining = Rc::new(RefCell::new(size - 1));
            let done = Rc::new(RefCell::new(Some(
                Box::new(done) as Box<dyn FnOnce(&mut SimWorld, Option<f64>)>
            )));
            if size == 1 {
                if let Some(done) = done.borrow_mut().take() {
                    done(world, Some(value));
                }
                return;
            }
            for _ in 0..size - 1 {
                let total = total.clone();
                let remaining = remaining.clone();
                let done = done.clone();
                self.recv(world, ANY_SOURCE, Some(tag), move |world, msg| {
                    let v = f64::from_be_bytes(msg.data[0..8].try_into().unwrap());
                    *total.borrow_mut() += v;
                    *remaining.borrow_mut() -= 1;
                    if *remaining.borrow() == 0 {
                        if let Some(done) = done.borrow_mut().take() {
                            let t = *total.borrow();
                            done(world, Some(t));
                        }
                    }
                });
            }
        } else {
            self.send(world, root, tag, &value.to_be_bytes());
            done(world, None);
        }
    }

    /// All-reduce (sum of one `f64`): every rank's `done` receives the total.
    pub fn allreduce_sum(
        &self,
        world: &mut SimWorld,
        value: f64,
        done: impl FnOnce(&mut SimWorld, f64) + 'static,
    ) {
        let comm = self.clone();
        self.reduce_sum(world, 0, value, move |world, total| {
            // Root broadcasts the result; everyone completes on reception.
            comm.bcast(
                world,
                0,
                total.map(|t| t.to_be_bytes().to_vec()),
                move |world, buf| {
                    let t = f64::from_be_bytes(buf[0..8].try_into().unwrap());
                    done(world, t);
                },
            );
        });
    }

    /// Gather: every rank contributes `data`; the root's `done` receives
    /// the contributions indexed by rank, the others `None`.
    pub fn gather(
        &self,
        world: &mut SimWorld,
        root: usize,
        data: Vec<u8>,
        done: impl FnOnce(&mut SimWorld, Option<Vec<Vec<u8>>>) + 'static,
    ) {
        let tag = self.next_coll_tag();
        let size = self.size();
        let rank = self.rank();
        if rank == root {
            let slots: Rc<RefCell<Vec<Option<Vec<u8>>>>> = Rc::new(RefCell::new(vec![None; size]));
            slots.borrow_mut()[root] = Some(data);
            let remaining = Rc::new(RefCell::new(size - 1));
            let done = Rc::new(RefCell::new(Some(
                Box::new(done) as Box<dyn FnOnce(&mut SimWorld, Option<Vec<Vec<u8>>>)>
            )));
            if size == 1 {
                let all = slots.borrow_mut().drain(..).map(|s| s.unwrap()).collect();
                if let Some(done) = done.borrow_mut().take() {
                    done(world, Some(all));
                }
                return;
            }
            for _ in 0..size - 1 {
                let slots = slots.clone();
                let remaining = remaining.clone();
                let done = done.clone();
                self.recv(world, ANY_SOURCE, Some(tag), move |world, msg| {
                    slots.borrow_mut()[msg.src] = Some(msg.data);
                    *remaining.borrow_mut() -= 1;
                    if *remaining.borrow() == 0 {
                        let all = slots.borrow_mut().drain(..).map(|s| s.unwrap()).collect();
                        if let Some(done) = done.borrow_mut().take() {
                            done(world, Some(all));
                        }
                    }
                });
            }
        } else {
            self.send(world, root, tag, &data);
            done(world, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use padico_core::{runtimes_for_cluster, SelectorPreferences};
    use simnet::topology;
    use std::cell::Cell;

    /// Builds an MPI "world" of `n` processes on a Myrinet cluster.
    fn mpi_world(n: usize) -> (SimWorld, Vec<MpiComm>) {
        let mut world = SimWorld::new(83);
        let cluster =
            topology::build_san_cluster(&mut world, "n", n, simnet::NetworkSpec::myrinet_2000());
        let rts = runtimes_for_cluster(
            &mut world,
            cluster.san.unwrap(),
            &cluster.nodes,
            SelectorPreferences::default(),
        );
        let comms: Vec<MpiComm> = rts
            .iter()
            .map(|rt| {
                let circuit = rt.circuit_create(&mut world, cluster.nodes.clone(), 900);
                MpiComm::new(&mut world, circuit)
            })
            .collect();
        (world, comms)
    }

    #[test]
    fn point_to_point_with_tags() {
        let (mut world, comms) = mpi_world(2);
        assert_eq!(comms[0].rank(), 0);
        assert_eq!(comms[1].size(), 2);
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        comms[1].recv(&mut world, Some(0), Some(7), move |_w, msg| {
            g.borrow_mut().push((msg.tag, msg.data));
        });
        comms[0].send(&mut world, 1, 7, b"tagged payload");
        world.run();
        assert_eq!(*got.borrow(), vec![(7, b"tagged payload".to_vec())]);
    }

    #[test]
    fn unexpected_messages_are_buffered_until_recv() {
        let (mut world, comms) = mpi_world(2);
        comms[0].send(&mut world, 1, 3, b"early bird");
        world.run();
        let got = Rc::new(Cell::new(false));
        let g = got.clone();
        comms[1].recv(&mut world, ANY_SOURCE, Some(3), move |_w, msg| {
            assert_eq!(msg.data, b"early bird");
            assert_eq!(msg.src, 0);
            g.set(true);
        });
        world.run();
        assert!(got.get());
    }

    #[test]
    fn wildcard_receive_matches_any_tag_and_source() {
        let (mut world, comms) = mpi_world(3);
        let count = Rc::new(Cell::new(0));
        for _ in 0..2 {
            let c = count.clone();
            comms[0].recv(&mut world, ANY_SOURCE, ANY_TAG, move |_w, _m| {
                c.set(c.get() + 1)
            });
        }
        comms[1].send(&mut world, 0, 11, b"from 1");
        comms[2].send(&mut world, 0, 22, b"from 2");
        world.run();
        assert_eq!(count.get(), 2);
    }

    #[test]
    fn ping_pong_latency_matches_table1() {
        let (mut world, comms) = mpi_world(2);
        // One-way latency of a 4-byte message, measured as half the
        // round-trip (as the paper does).
        let done_at = Rc::new(Cell::new(0.0f64));
        let d = done_at.clone();
        let c1 = comms[1].clone();
        comms[1].recv(&mut world, Some(0), Some(1), move |world, msg| {
            c1.send(world, 0, 2, &msg.data);
        });
        comms[0].recv(&mut world, Some(1), Some(2), move |world, _msg| {
            d.set(world.now().as_micros_f64());
        });
        comms[0].send(&mut world, 1, 1, &[0u8; 4]);
        world.run();
        let one_way = done_at.get() / 2.0;
        assert!(
            one_way > 10.0 && one_way < 14.5,
            "MPI one-way latency {one_way:.2} µs, expected ≈12 µs"
        );
    }

    #[test]
    fn barrier_releases_all_ranks() {
        let (mut world, comms) = mpi_world(4);
        let released = Rc::new(Cell::new(0));
        for comm in &comms {
            let r = released.clone();
            comm.barrier(&mut world, move |_w| r.set(r.get() + 1));
        }
        world.run();
        assert_eq!(released.get(), 4);
    }

    #[test]
    fn bcast_reaches_every_rank() {
        let (mut world, comms) = mpi_world(3);
        let results = Rc::new(RefCell::new(vec![Vec::new(); 3]));
        for (i, comm) in comms.iter().enumerate() {
            let r = results.clone();
            let data = if i == 1 {
                Some(b"broadcast!".to_vec())
            } else {
                None
            };
            comm.bcast(&mut world, 1, data, move |_w, buf| {
                r.borrow_mut()[i] = buf;
            });
        }
        world.run();
        for i in 0..3 {
            assert_eq!(results.borrow()[i], b"broadcast!");
        }
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let (mut world, comms) = mpi_world(4);
        let results = Rc::new(RefCell::new(vec![0.0f64; 4]));
        for (i, comm) in comms.iter().enumerate() {
            let r = results.clone();
            comm.allreduce_sum(&mut world, (i + 1) as f64, move |_w, total| {
                r.borrow_mut()[i] = total;
            });
        }
        world.run();
        for i in 0..4 {
            assert_eq!(results.borrow()[i], 10.0, "rank {i}");
        }
    }

    #[test]
    fn gather_collects_rank_data_in_order() {
        let (mut world, comms) = mpi_world(3);
        let out: Rc<RefCell<Option<Vec<Vec<u8>>>>> = Rc::new(RefCell::new(None));
        for (i, comm) in comms.iter().enumerate() {
            let o = out.clone();
            comm.gather(&mut world, 0, vec![i as u8; i + 1], move |_w, res| {
                if let Some(res) = res {
                    *o.borrow_mut() = Some(res);
                }
            });
        }
        world.run();
        let res = out.borrow().clone().unwrap();
        assert_eq!(res, vec![vec![0u8; 1], vec![1u8; 2], vec![2u8; 3]]);
    }
}
