//! Java-style sockets: buffered streams with the per-call cost of a
//! 2003-era JVM.
//!
//! Figure 3 and Table 1 include "Java socket" curves: peak bandwidth close
//! to the wire rate but a one-way latency of 40 µs, dominated by the
//! JNI/stream overhead of each call. This module reproduces that shape on
//! top of VLink.

use std::rc::Rc;

use padico_core::{PadicoRuntime, VLink};
use simnet::{NodeId, SimWorld};

use crate::cost::MiddlewareCost;

/// A `java.net.Socket`-like handle.
#[derive(Clone)]
pub struct JavaSocket {
    vlink: VLink,
    cost: Rc<MiddlewareCost>,
}

/// A `java.net.ServerSocket`-like factory.
pub struct JavaServerSocket;

impl JavaServerSocket {
    /// Binds a server socket: accepted connections are delivered to
    /// `on_accept` wrapped as [`JavaSocket`]s.
    pub fn bind(
        world: &mut SimWorld,
        runtime: &PadicoRuntime,
        service: u16,
        mut on_accept: impl FnMut(&mut SimWorld, JavaSocket) + 'static,
    ) {
        let cost = Rc::new(MiddlewareCost::java_sockets());
        runtime.vlink_listen(world, service, move |world, vlink| {
            on_accept(
                world,
                JavaSocket {
                    vlink,
                    cost: cost.clone(),
                },
            );
        });
    }
}

impl JavaSocket {
    /// Connects to `remote:service` through the runtime (the JVM has been
    /// "ported" onto PadicoTM, so its sockets are VLinks underneath).
    pub fn connect(
        world: &mut SimWorld,
        runtime: &PadicoRuntime,
        remote: NodeId,
        service: u16,
    ) -> JavaSocket {
        JavaSocket {
            vlink: runtime.vlink_connect(world, remote, service),
            cost: Rc::new(MiddlewareCost::java_sockets()),
        }
    }

    /// `OutputStream.write`: queues the whole buffer.
    pub fn write(&self, world: &mut SimWorld, data: &[u8]) {
        let vlink = self.vlink.clone();
        let payload = data.to_vec();
        let cost = self.cost.send_cost(data.len());
        world.schedule_after(cost, move |world| {
            vlink.post_write(world, &payload);
        });
    }

    /// `InputStream.available`.
    pub fn available(&self) -> usize {
        self.vlink.available()
    }

    /// `InputStream.read`: non-blocking read of up to `max` bytes (the
    /// receive-side JVM cost is charged per call by the caller's pattern of
    /// polling; bulk reads amortize it as on the real platform).
    pub fn read(&self, world: &mut SimWorld, max: usize) -> Vec<u8> {
        self.vlink.read_now(world, max)
    }

    /// Registers a data callback (`java.nio`-style readiness). The JVM
    /// receive cost is charged before the application sees each batch.
    pub fn on_data(&self, cb: impl FnMut(&mut SimWorld, Vec<u8>) + 'static) {
        use std::cell::RefCell;
        let vlink = self.vlink.clone();
        let recv_overhead = self.cost.recv_overhead;
        #[allow(clippy::type_complexity)]
        let cb: Rc<RefCell<Box<dyn FnMut(&mut SimWorld, Vec<u8>)>>> =
            Rc::new(RefCell::new(Box::new(cb)));
        self.vlink.set_handler(move |world, event| {
            if event == padico_core::VLinkEvent::Readable {
                let data = vlink.read_now(world, usize::MAX);
                if !data.is_empty() {
                    let cb = cb.clone();
                    world.schedule_after(recv_overhead, move |world| {
                        (cb.borrow_mut())(world, data);
                    });
                }
            }
        });
    }

    /// Closes the socket.
    pub fn close(&self, world: &mut SimWorld) {
        self.vlink.close(world);
    }

    /// The underlying VLink (for experiment instrumentation).
    pub fn vlink(&self) -> &VLink {
        &self.vlink
    }
}
