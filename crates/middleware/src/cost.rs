//! Per-middleware cost profiles.
//!
//! The paper's Table 1 and Figure 3 are governed by two knobs per
//! middleware system: the fixed software cost added to every call/message,
//! and the per-byte cost of its marshalling engine (zero for engines that
//! marshal in place, one or two memory copies for the others — the reason
//! Mico and ORBacus top out near 55–63 MB/s while omniORB reaches the wire
//! rate). The constants here are calibrated against the paper's testbed
//! (dual Pentium III 1 GHz).

use simnet::{SimDuration, SimWorld};

/// Cost profile of one middleware implementation.
#[derive(Debug, Clone)]
pub struct MiddlewareCost {
    /// Human-readable name (used in experiment output).
    pub name: &'static str,
    /// Fixed cost added on the sending/calling side of every message.
    pub send_overhead: SimDuration,
    /// Fixed cost added on the receiving/serving side of every message.
    pub recv_overhead: SimDuration,
    /// Marshalling cost per payload byte on the sending side (ns/byte).
    pub send_copy_ns_per_byte: f64,
    /// Unmarshalling cost per payload byte on the receiving side (ns/byte).
    pub recv_copy_ns_per_byte: f64,
}

impl MiddlewareCost {
    /// Cost of processing `bytes` on the sending side.
    pub fn send_cost(&self, bytes: usize) -> SimDuration {
        self.send_overhead
            + SimDuration::from_nanos((self.send_copy_ns_per_byte * bytes as f64).round() as u64)
    }

    /// Cost of processing `bytes` on the receiving side.
    pub fn recv_cost(&self, bytes: usize) -> SimDuration {
        self.recv_overhead
            + SimDuration::from_nanos((self.recv_copy_ns_per_byte * bytes as f64).round() as u64)
    }

    /// MPICH over the Circuit/Madeleine path (Table 1: 12.06 µs one-way,
    /// ≈238.7 MB/s).
    pub fn mpich() -> MiddlewareCost {
        MiddlewareCost {
            name: "MPICH",
            send_overhead: SimDuration::from_micros_f64(1.7),
            recv_overhead: SimDuration::from_micros_f64(1.7),
            send_copy_ns_per_byte: 0.0,
            recv_copy_ns_per_byte: 0.0,
        }
    }

    /// omniORB 3: zero-copy marshalling (Table 1: 20.3 µs, ≈238.4 MB/s).
    pub fn omniorb3() -> MiddlewareCost {
        MiddlewareCost {
            name: "omniORB-3",
            send_overhead: SimDuration::from_micros_f64(5.1),
            recv_overhead: SimDuration::from_micros_f64(5.0),
            send_copy_ns_per_byte: 0.02,
            recv_copy_ns_per_byte: 0.02,
        }
    }

    /// omniORB 4: zero-copy marshalling (Table 1: 18.4 µs, ≈235.8 MB/s).
    pub fn omniorb4() -> MiddlewareCost {
        MiddlewareCost {
            name: "omniORB-4",
            send_overhead: SimDuration::from_micros_f64(4.1),
            recv_overhead: SimDuration::from_micros_f64(4.1),
            send_copy_ns_per_byte: 0.05,
            recv_copy_ns_per_byte: 0.05,
        }
    }

    /// Mico 2.3: copies on both marshal and unmarshal (≈55 MB/s, 63 µs).
    pub fn mico() -> MiddlewareCost {
        MiddlewareCost {
            name: "Mico-2.3",
            send_overhead: SimDuration::from_micros_f64(26.0),
            recv_overhead: SimDuration::from_micros_f64(26.0),
            send_copy_ns_per_byte: 6.7,
            recv_copy_ns_per_byte: 6.7,
        }
    }

    /// ORBacus 4.0: copies on both sides, slightly cheaper than Mico
    /// (≈63 MB/s, 54 µs).
    pub fn orbacus() -> MiddlewareCost {
        MiddlewareCost {
            name: "ORBacus-4.0",
            send_overhead: SimDuration::from_micros_f64(21.5),
            recv_overhead: SimDuration::from_micros_f64(21.5),
            send_copy_ns_per_byte: 5.9,
            recv_copy_ns_per_byte: 5.9,
        }
    }

    /// Java sockets on a 2003-era JVM: high per-call cost, no extra copy on
    /// the bulk path (Table 1: 40 µs, ≈237.9 MB/s).
    pub fn java_sockets() -> MiddlewareCost {
        MiddlewareCost {
            name: "Java-sockets",
            send_overhead: SimDuration::from_micros_f64(15.0),
            recv_overhead: SimDuration::from_micros_f64(14.5),
            send_copy_ns_per_byte: 0.0,
            recv_copy_ns_per_byte: 0.0,
        }
    }

    /// gSOAP 2.2: text (XML) encoding of every byte.
    pub fn gsoap() -> MiddlewareCost {
        MiddlewareCost {
            name: "gSOAP-2.2",
            send_overhead: SimDuration::from_micros_f64(35.0),
            recv_overhead: SimDuration::from_micros_f64(35.0),
            send_copy_ns_per_byte: 40.0,
            recv_copy_ns_per_byte: 40.0,
        }
    }

    /// HLA/Certi RTI.
    pub fn hla_certi() -> MiddlewareCost {
        MiddlewareCost {
            name: "HLA-Certi",
            send_overhead: SimDuration::from_micros_f64(18.0),
            recv_overhead: SimDuration::from_micros_f64(18.0),
            send_copy_ns_per_byte: 2.0,
            recv_copy_ns_per_byte: 2.0,
        }
    }
}

/// Runs `f` after charging `cost` of virtual CPU time.
pub fn charge(world: &mut SimWorld, cost: SimDuration, f: impl FnOnce(&mut SimWorld) + 'static) {
    world.schedule_after(cost, f);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_plus_per_byte() {
        let c = MiddlewareCost::mico();
        let small = c.send_cost(0);
        let big = c.send_cost(1_000_000);
        assert_eq!(small, c.send_overhead);
        assert!(big > small);
        // 1 MB at 6.7 ns/byte is 6.7 ms of copy time.
        assert!((big.as_millis_f64() - small.as_millis_f64() - 6.7).abs() < 0.05);
    }

    #[test]
    fn zero_copy_engines_have_negligible_per_byte_cost() {
        for c in [
            MiddlewareCost::mpich(),
            MiddlewareCost::omniorb4(),
            MiddlewareCost::java_sockets(),
        ] {
            let per_mb = c.send_cost(1_000_000) - c.send_overhead;
            assert!(per_mb.as_millis_f64() < 0.1, "{} copies too much", c.name);
        }
    }

    #[test]
    fn copying_orbs_are_ranked_mico_slowest() {
        let mico =
            MiddlewareCost::mico().send_cost(100_000) + MiddlewareCost::mico().recv_cost(100_000);
        let orbacus = MiddlewareCost::orbacus().send_cost(100_000)
            + MiddlewareCost::orbacus().recv_cost(100_000);
        let omni = MiddlewareCost::omniorb4().send_cost(100_000)
            + MiddlewareCost::omniorb4().recv_cost(100_000);
        assert!(mico > orbacus);
        assert!(orbacus > omni);
    }
}
