//! A SOAP-like RPC middleware (gSOAP flavour): XML text envelopes over a
//! VLink.
//!
//! The paper's motivating scenarios include "a SOAP-based monitoring system
//! of a MPI application" — a second, distributed-oriented middleware that
//! must share the node and networks with the parallel one. The envelope
//! here is a simplified XML dialect; what matters for the reproduction is
//! the text encoding cost and the coexistence behaviour, not XML fidelity.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use padico_core::{PadicoRuntime, VLink};
use simnet::{NodeId, SimWorld};

use crate::cost::MiddlewareCost;

/// A SOAP call: method name and named string parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoapCall {
    /// Method name.
    pub method: String,
    /// (name, value) parameters.
    pub params: Vec<(String, String)>,
}

impl SoapCall {
    /// Builds a call.
    pub fn new(method: &str) -> SoapCall {
        SoapCall {
            method: method.to_string(),
            params: Vec::new(),
        }
    }

    /// Adds a parameter.
    pub fn param(mut self, name: &str, value: impl ToString) -> SoapCall {
        self.params.push((name.to_string(), value.to_string()));
        self
    }

    /// Looks a parameter up.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn xml_unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&amp;", "&")
}

/// Serializes a call (or response) into an envelope.
pub fn encode_envelope(kind: &str, id: u64, call: &SoapCall) -> String {
    let mut body = String::new();
    body.push_str("<?xml version=\"1.0\"?>\n<Envelope><Body>");
    body.push_str(&format!(
        "<{} id=\"{}\" method=\"{}\">",
        kind,
        id,
        xml_escape(&call.method)
    ));
    for (name, value) in &call.params {
        body.push_str(&format!(
            "<{}>{}</{}>",
            xml_escape(name),
            xml_escape(value),
            xml_escape(name)
        ));
    }
    body.push_str(&format!("</{kind}></Body></Envelope>"));
    body
}

/// Parses an envelope produced by [`encode_envelope`].
pub fn decode_envelope(text: &str) -> Option<(String, u64, SoapCall)> {
    let start = text.find("<Body>")? + 6;
    let rest = &text[start..];
    let open_end = rest.find('>')?;
    let tag = &rest[1..open_end];
    let mut parts = tag.split_whitespace();
    let kind = parts.next()?.to_string();
    let mut id = 0u64;
    let mut method = String::new();
    for attr in parts {
        if let Some(v) = attr.strip_prefix("id=\"") {
            id = v.trim_end_matches('"').parse().ok()?;
        } else if let Some(v) = attr.strip_prefix("method=\"") {
            method = xml_unescape(v.trim_end_matches('"'));
        }
    }
    let mut call = SoapCall::new(&method);
    let mut cursor = &rest[open_end + 1..];
    while let Some(p_open) = cursor.find('<') {
        if cursor[p_open..].starts_with("</") {
            break;
        }
        let p_end = cursor[p_open..].find('>')? + p_open;
        let name = cursor[p_open + 1..p_end].to_string();
        let close = format!("</{name}>");
        let v_end = cursor.find(&close)?;
        let value = xml_unescape(&cursor[p_end + 1..v_end]);
        call.params.push((xml_unescape(&name), value));
        cursor = &cursor[v_end + close.len()..];
    }
    Some((kind, id, call))
}

type SoapHandler = Box<dyn FnMut(&mut SimWorld, SoapCall) -> SoapCall>;
type SoapReply = Box<dyn FnOnce(&mut SimWorld, SoapCall)>;

struct Inner {
    runtime: PadicoRuntime,
    cost: MiddlewareCost,
    handlers: HashMap<String, SoapHandler>,
    pending: HashMap<u64, SoapReply>,
    next_id: u64,
    connections: HashMap<(NodeId, u16), Rc<Conn>>,
}

struct Conn {
    vlink: VLink,
    rx: RefCell<String>,
}

/// A SOAP endpoint (client and server in one, like gSOAP).
#[derive(Clone)]
pub struct SoapEndpoint {
    inner: Rc<RefCell<Inner>>,
}

impl SoapEndpoint {
    /// Creates an endpoint over a runtime.
    pub fn new(runtime: PadicoRuntime) -> SoapEndpoint {
        SoapEndpoint {
            inner: Rc::new(RefCell::new(Inner {
                runtime,
                cost: MiddlewareCost::gsoap(),
                handlers: HashMap::new(),
                pending: HashMap::new(),
                next_id: 1,
                connections: HashMap::new(),
            })),
        }
    }

    /// Registers a method handler and starts serving on `service`.
    pub fn serve(
        &self,
        world: &mut SimWorld,
        service: u16,
        method: &str,
        handler: impl FnMut(&mut SimWorld, SoapCall) -> SoapCall + 'static,
    ) {
        self.inner
            .borrow_mut()
            .handlers
            .insert(method.to_string(), Box::new(handler));
        let runtime = self.inner.borrow().runtime.clone();
        let ep = self.clone();
        runtime.vlink_listen(world, service, move |world, vlink| {
            ep.attach(world, vlink);
        });
    }

    /// Calls `call.method` on `remote:service`; `reply` receives the
    /// response call structure.
    pub fn call(
        &self,
        world: &mut SimWorld,
        remote: NodeId,
        service: u16,
        call: SoapCall,
        reply: impl FnOnce(&mut SimWorld, SoapCall) + 'static,
    ) {
        let id = {
            let mut st = self.inner.borrow_mut();
            let id = st.next_id;
            st.next_id += 1;
            st.pending.insert(id, Box::new(reply));
            id
        };
        let conn = self.connection_to(world, remote, service);
        let envelope = encode_envelope("Call", id, &call);
        let cost = self.inner.borrow().cost.send_cost(envelope.len());
        let vlink = conn.vlink.clone();
        world.schedule_after(cost, move |world| {
            let framed = format!("{:08x}{}", envelope.len(), envelope);
            vlink.post_write(world, framed.as_bytes());
        });
    }

    fn connection_to(&self, world: &mut SimWorld, node: NodeId, service: u16) -> Rc<Conn> {
        if let Some(c) = self
            .inner
            .borrow()
            .connections
            .get(&(node, service))
            .cloned()
        {
            return c;
        }
        let runtime = self.inner.borrow().runtime.clone();
        let vlink = runtime.vlink_connect(world, node, service);
        let conn = self.attach(world, vlink);
        self.inner
            .borrow_mut()
            .connections
            .insert((node, service), conn.clone());
        conn
    }

    fn attach(&self, _world: &mut SimWorld, vlink: VLink) -> Rc<Conn> {
        let conn = Rc::new(Conn {
            vlink: vlink.clone(),
            rx: RefCell::new(String::new()),
        });
        let ep = self.clone();
        let conn2 = conn.clone();
        vlink.set_handler(move |world, event| {
            if event == padico_core::VLinkEvent::Readable {
                ep.on_readable(world, &conn2);
            }
        });
        conn
    }

    fn on_readable(&self, world: &mut SimWorld, conn: &Rc<Conn>) {
        let data = conn.vlink.read_now(world, usize::MAX);
        let mut rx = conn.rx.borrow_mut();
        rx.push_str(&String::from_utf8_lossy(&data));
        loop {
            if rx.len() < 8 {
                return;
            }
            let len = match usize::from_str_radix(&rx[..8], 16) {
                Ok(l) => l,
                Err(_) => {
                    rx.clear();
                    return;
                }
            };
            if rx.len() < 8 + len {
                return;
            }
            let envelope: String = rx.drain(..8 + len).skip(8).collect();
            let Some((kind, id, call)) = decode_envelope(&envelope) else {
                continue;
            };
            let cost = self.inner.borrow().cost.recv_cost(envelope.len());
            let ep = self.clone();
            let conn = conn.clone();
            world.schedule_after(cost, move |world| match kind.as_str() {
                "Call" => ep.dispatch(world, &conn, id, call),
                "Response" => {
                    let cb = ep.inner.borrow_mut().pending.remove(&id);
                    if let Some(cb) = cb {
                        cb(world, call);
                    }
                }
                _ => {}
            });
        }
    }

    fn dispatch(&self, world: &mut SimWorld, conn: &Rc<Conn>, id: u64, call: SoapCall) {
        let handler = self.inner.borrow_mut().handlers.remove(&call.method);
        let response = match handler {
            Some(mut h) => {
                let resp = h(world, call.clone());
                self.inner
                    .borrow_mut()
                    .handlers
                    .entry(call.method.clone())
                    .or_insert(h);
                resp
            }
            None => SoapCall::new("Fault").param("faultstring", "unknown method"),
        };
        let envelope = encode_envelope("Response", id, &response);
        let cost = self.inner.borrow().cost.send_cost(envelope.len());
        let vlink = conn.vlink.clone();
        world.schedule_after(cost, move |world| {
            let framed = format!("{:08x}{}", envelope.len(), envelope);
            vlink.post_write(world, framed.as_bytes());
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use padico_core::{runtimes_for_cluster, SelectorPreferences};
    use simnet::topology;

    #[test]
    fn envelope_roundtrip() {
        let call = SoapCall::new("getTemperature")
            .param("node", "cluster-a<3>")
            .param("step", 42);
        let text = encode_envelope("Call", 9, &call);
        let (kind, id, decoded) = decode_envelope(&text).unwrap();
        assert_eq!(kind, "Call");
        assert_eq!(id, 9);
        assert_eq!(decoded, call);
        assert_eq!(decoded.get("step"), Some("42"));
    }

    #[test]
    fn rpc_roundtrip_over_the_framework() {
        let p = topology::san_pair(101);
        let mut world = p.world;
        let nodes = vec![p.a, p.b];
        let rts = runtimes_for_cluster(&mut world, p.san, &nodes, SelectorPreferences::default());
        let server = SoapEndpoint::new(rts[1].clone());
        let client = SoapEndpoint::new(rts[0].clone());
        server.serve(&mut world, 1200, "monitor.status", |_w, call| {
            SoapCall::new("statusResponse")
                .param("job", call.get("job").unwrap_or("?"))
                .param("progress", "73%")
        });
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        client.call(
            &mut world,
            nodes[1],
            1200,
            SoapCall::new("monitor.status").param("job", "cfd-17"),
            move |_w, resp| *g.borrow_mut() = Some(resp),
        );
        world.run();
        let resp = got.borrow().clone().unwrap();
        assert_eq!(resp.method, "statusResponse");
        assert_eq!(resp.get("job"), Some("cfd-17"));
        assert_eq!(resp.get("progress"), Some("73%"));
    }

    #[test]
    fn unknown_method_faults() {
        let p = topology::san_pair(103);
        let mut world = p.world;
        let nodes = vec![p.a, p.b];
        let rts = runtimes_for_cluster(&mut world, p.san, &nodes, SelectorPreferences::default());
        let server = SoapEndpoint::new(rts[1].clone());
        let client = SoapEndpoint::new(rts[0].clone());
        server.serve(&mut world, 1300, "known", |_w, _c| SoapCall::new("ok"));
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        client.call(
            &mut world,
            nodes[1],
            1300,
            SoapCall::new("unknown"),
            move |_w, resp| *g.borrow_mut() = Some(resp),
        );
        world.run();
        assert_eq!(got.borrow().as_ref().unwrap().method, "Fault");
    }
}
