//! # middleware — the middleware systems ported onto PadicoTM-RS
//!
//! The paper's point is that the framework supports *existing* middleware
//! of both paradigms, several at a time. This crate provides behavioural
//! re-implementations of the systems used in the evaluation:
//!
//! * [`mpi`] — an MPI-like message-passing library over Circuit (the role
//!   of MPICH/Madeleine): tagged point-to-point messages and collectives.
//! * [`corba`] — a CORBA-like ORB over VLink with CDR marshalling and
//!   per-implementation cost profiles (omniORB 3/4 zero-copy, Mico and
//!   ORBacus copying engines).
//! * [`javasock`] — Java-style sockets (the Kaffe JVM port).
//! * [`soap`] — a gSOAP-like XML RPC endpoint (monitoring/steering role).
//! * [`hla`] — a minimal HLA-RTI (Certi role): federation management,
//!   publish/subscribe, conservative time advance.
//! * [`cost`] — the calibrated per-middleware cost profiles behind Table 1
//!   and Figure 3.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod corba;
pub mod cost;
pub mod hla;
pub mod javasock;
pub mod mpi;
pub mod soap;

pub use corba::{cdr_decode, cdr_encode, IdlValue, ObjRef, Orb, OrbImpl, OrbStats};
pub use cost::MiddlewareCost;
pub use hla::{Federate, RtiGateway};
pub use javasock::{JavaServerSocket, JavaSocket};
pub use mpi::{CommTopology, MpiComm, MpiMessage, MpiStats, ANY_SOURCE, ANY_TAG};
pub use soap::{SoapCall, SoapEndpoint};
