//! A minimal HLA-RTI (High Level Architecture run-time infrastructure).
//!
//! The paper ports the Certi HLA implementation onto PadicoTM; HLA is the
//! distributed-simulation middleware of its coexistence scenarios. This
//! module implements the small subset needed to exercise that role: one
//! federation per RTI gateway node, federates joining over VLink,
//! publish/subscribe on object classes, attribute updates reflected to
//! subscribers, and conservative time management (time-advance requests
//! granted when every regulating federate has reached the requested time).

use std::cell::RefCell;
use std::rc::Rc;

use padico_core::{PadicoRuntime, VLink};
use simnet::{NodeId, SimWorld};

use crate::cost::MiddlewareCost;

/// Callback invoked when a subscribed attribute update is reflected.
pub type ReflectCallback = Box<dyn FnMut(&mut SimWorld, String, String, f64)>;
/// Callback invoked when a time advance is granted.
pub type GrantCallback = Box<dyn FnMut(&mut SimWorld, f64)>;

// Wire: simple line protocol, length-prefixed.
fn frame(parts: &[&str]) -> Vec<u8> {
    let body = parts.join("\x1f");
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(body.as_bytes());
    out
}

struct FederateState {
    name: String,
    vlink: VLink,
    subscriptions: Vec<String>,
    regulating: bool,
    current_time: f64,
    pending_request: Option<f64>,
}

struct RtigInner {
    cost: MiddlewareCost,
    federates: Vec<Rc<RefCell<FederateState>>>,
}

/// The RTI gateway (rtig) process: coordinates one federation.
#[derive(Clone)]
pub struct RtiGateway {
    inner: Rc<RefCell<RtigInner>>,
}

impl RtiGateway {
    /// Starts the gateway on `service`.
    pub fn new(world: &mut SimWorld, runtime: &PadicoRuntime, service: u16) -> RtiGateway {
        let gw = RtiGateway {
            inner: Rc::new(RefCell::new(RtigInner {
                cost: MiddlewareCost::hla_certi(),
                federates: Vec::new(),
            })),
        };
        let gw2 = gw.clone();
        runtime.vlink_listen(world, service, move |world, vlink| {
            gw2.attach_federate(world, vlink);
        });
        gw
    }

    /// Number of joined federates.
    pub fn federate_count(&self) -> usize {
        self.inner.borrow().federates.len()
    }

    fn attach_federate(&self, _world: &mut SimWorld, vlink: VLink) {
        let state = Rc::new(RefCell::new(FederateState {
            name: String::new(),
            vlink: vlink.clone(),
            subscriptions: Vec::new(),
            regulating: false,
            current_time: 0.0,
            pending_request: None,
        }));
        self.inner.borrow_mut().federates.push(state.clone());
        let gw = self.clone();
        let rx = Rc::new(RefCell::new(Vec::<u8>::new()));
        vlink.set_handler(move |world, event| {
            if event != padico_core::VLinkEvent::Readable {
                return;
            }
            let data = state.borrow().vlink.read_now(world, usize::MAX);
            let mut buf = rx.borrow_mut();
            buf.extend_from_slice(&data);
            loop {
                if buf.len() < 4 {
                    return;
                }
                let len = u32::from_be_bytes(buf[0..4].try_into().unwrap()) as usize;
                if buf.len() < 4 + len {
                    return;
                }
                let body: Vec<u8> = buf.drain(..4 + len).skip(4).collect();
                let text = String::from_utf8_lossy(&body).into_owned();
                let parts: Vec<String> = text.split('\x1f').map(|s| s.to_string()).collect();
                gw.handle(world, &state, &parts);
            }
        });
    }

    fn handle(&self, world: &mut SimWorld, fed: &Rc<RefCell<FederateState>>, parts: &[String]) {
        match parts.first().map(String::as_str) {
            Some("JOIN") => {
                fed.borrow_mut().name = parts.get(1).cloned().unwrap_or_default();
            }
            Some("SUBSCRIBE") => {
                if let Some(class) = parts.get(1) {
                    fed.borrow_mut().subscriptions.push(class.clone());
                }
            }
            Some("REGULATING") => {
                fed.borrow_mut().regulating = true;
            }
            Some("UPDATE") => {
                // UPDATE class attribute value time
                let class = parts.get(1).cloned().unwrap_or_default();
                let attribute = parts.get(2).cloned().unwrap_or_default();
                let value = parts.get(3).cloned().unwrap_or_default();
                let time: f64 = parts.get(4).and_then(|s| s.parse().ok()).unwrap_or(0.0);
                let cost = self.inner.borrow().cost.recv_cost(value.len());
                let subscribers: Vec<VLink> = self
                    .inner
                    .borrow()
                    .federates
                    .iter()
                    .filter(|f| !Rc::ptr_eq(f, fed) && f.borrow().subscriptions.contains(&class))
                    .map(|f| f.borrow().vlink.clone())
                    .collect();
                let wire = frame(&["REFLECT", &class, &attribute, &value, &time.to_string()]);
                world.schedule_after(cost, move |world| {
                    for v in &subscribers {
                        v.post_write(world, &wire);
                    }
                });
            }
            Some("ADVANCE") => {
                // ADVANCE requested_time
                let t: f64 = parts.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.0);
                fed.borrow_mut().pending_request = Some(t);
                self.try_grant(world);
            }
            _ => {}
        }
    }

    /// Conservative time management: a requested time is granted once no
    /// regulating federate can still send an event earlier than it.
    fn try_grant(&self, world: &mut SimWorld) {
        let feds = self.inner.borrow().federates.clone();
        let min_floor = feds
            .iter()
            .filter(|f| f.borrow().regulating)
            .map(|f| {
                let f = f.borrow();
                f.pending_request
                    .unwrap_or(f.current_time)
                    .max(f.current_time)
            })
            .fold(f64::INFINITY, f64::min);
        for fed in &feds {
            let grant = {
                let f = fed.borrow();
                match f.pending_request {
                    Some(t) if t <= min_floor || !f.regulating => Some(t),
                    _ => None,
                }
            };
            if let Some(t) = grant {
                {
                    let mut f = fed.borrow_mut();
                    f.pending_request = None;
                    f.current_time = t;
                }
                let wire = frame(&["GRANT", &t.to_string()]);
                fed.borrow().vlink.post_write(world, &wire);
            }
        }
    }
}

/// A federate: one simulation process joined to the federation.
#[derive(Clone)]
pub struct Federate {
    vlink: VLink,
    state: Rc<RefCell<FederateLocal>>,
    cost: Rc<MiddlewareCost>,
}

struct FederateLocal {
    time: f64,
    on_reflect: Option<ReflectCallback>,
    on_grant: Option<GrantCallback>,
    rx: Vec<u8>,
}

impl Federate {
    /// Joins the federation managed by the gateway at `rtig_node:service`.
    pub fn join(
        world: &mut SimWorld,
        runtime: &PadicoRuntime,
        rtig_node: NodeId,
        service: u16,
        name: &str,
    ) -> Federate {
        let vlink = runtime.vlink_connect(world, rtig_node, service);
        let fed = Federate {
            vlink: vlink.clone(),
            state: Rc::new(RefCell::new(FederateLocal {
                time: 0.0,
                on_reflect: None,
                on_grant: None,
                rx: Vec::new(),
            })),
            cost: Rc::new(MiddlewareCost::hla_certi()),
        };
        vlink.post_write(world, &frame(&["JOIN", name]));
        let f2 = fed.clone();
        vlink.set_handler(move |world, event| {
            if event == padico_core::VLinkEvent::Readable {
                f2.on_readable(world);
            }
        });
        fed
    }

    /// Current logical time.
    pub fn time(&self) -> f64 {
        self.state.borrow().time
    }

    /// Subscribes to an object class.
    pub fn subscribe(&self, world: &mut SimWorld, class: &str) {
        self.vlink.post_write(world, &frame(&["SUBSCRIBE", class]));
    }

    /// Declares this federate time-regulating.
    pub fn enable_time_regulation(&self, world: &mut SimWorld) {
        self.vlink.post_write(world, &frame(&["REGULATING"]));
    }

    /// Publishes an attribute update at logical time `time`.
    pub fn update_attribute(
        &self,
        world: &mut SimWorld,
        class: &str,
        attribute: &str,
        value: &str,
        time: f64,
    ) {
        let cost = self.cost.send_cost(value.len());
        let wire = frame(&["UPDATE", class, attribute, value, &time.to_string()]);
        let vlink = self.vlink.clone();
        world.schedule_after(cost, move |world| {
            vlink.post_write(world, &wire);
        });
    }

    /// Requests a time advance to `t`.
    pub fn request_time_advance(&self, world: &mut SimWorld, t: f64) {
        self.vlink
            .post_write(world, &frame(&["ADVANCE", &t.to_string()]));
    }

    /// Registers the callback for reflected attribute updates.
    pub fn on_reflect(&self, cb: impl FnMut(&mut SimWorld, String, String, f64) + 'static) {
        self.state.borrow_mut().on_reflect = Some(Box::new(cb));
    }

    /// Registers the callback for time-advance grants.
    pub fn on_grant(&self, cb: impl FnMut(&mut SimWorld, f64) + 'static) {
        self.state.borrow_mut().on_grant = Some(Box::new(cb));
    }

    fn on_readable(&self, world: &mut SimWorld) {
        let data = self.vlink.read_now(world, usize::MAX);
        let frames = {
            let mut st = self.state.borrow_mut();
            st.rx.extend_from_slice(&data);
            let mut frames = Vec::new();
            loop {
                if st.rx.len() < 4 {
                    break;
                }
                let len = u32::from_be_bytes(st.rx[0..4].try_into().unwrap()) as usize;
                if st.rx.len() < 4 + len {
                    break;
                }
                let body: Vec<u8> = st.rx.drain(..4 + len).skip(4).collect();
                frames.push(String::from_utf8_lossy(&body).into_owned());
            }
            frames
        };
        for text in frames {
            let parts: Vec<&str> = text.split('\x1f').collect();
            match parts.first().copied() {
                Some("REFLECT") => {
                    let class = parts.get(1).unwrap_or(&"").to_string();
                    let value = parts.get(3).unwrap_or(&"").to_string();
                    let time: f64 = parts.get(4).and_then(|s| s.parse().ok()).unwrap_or(0.0);
                    let cb = self.state.borrow_mut().on_reflect.take();
                    if let Some(mut cb) = cb {
                        cb(world, class, value, time);
                        let mut st = self.state.borrow_mut();
                        if st.on_reflect.is_none() {
                            st.on_reflect = Some(cb);
                        }
                    }
                }
                Some("GRANT") => {
                    let t: f64 = parts.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.0);
                    self.state.borrow_mut().time = t;
                    let cb = self.state.borrow_mut().on_grant.take();
                    if let Some(mut cb) = cb {
                        cb(world, t);
                        let mut st = self.state.borrow_mut();
                        if st.on_grant.is_none() {
                            st.on_grant = Some(cb);
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use padico_core::{runtimes_for_cluster, SelectorPreferences};
    use simnet::topology;
    use std::cell::Cell;

    fn federation() -> (SimWorld, RtiGateway, Federate, Federate) {
        let mut world = SimWorld::new(111);
        let cluster =
            topology::build_san_cluster(&mut world, "n", 3, simnet::NetworkSpec::myrinet_2000());
        let rts = runtimes_for_cluster(
            &mut world,
            cluster.san.unwrap(),
            &cluster.nodes,
            SelectorPreferences::default(),
        );
        let gw = RtiGateway::new(&mut world, &rts[0], 1500);
        let f1 = Federate::join(&mut world, &rts[1], cluster.nodes[0], 1500, "flight-sim");
        let f2 = Federate::join(&mut world, &rts[2], cluster.nodes[0], 1500, "radar");
        world.run();
        (world, gw, f1, f2)
    }

    #[test]
    fn join_and_count() {
        let (_world, gw, _f1, _f2) = federation();
        assert_eq!(gw.federate_count(), 2);
    }

    #[test]
    fn updates_are_reflected_to_subscribers_only() {
        let (mut world, _gw, f1, f2) = federation();
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        f2.on_reflect(move |_w, class, value, time| {
            g.borrow_mut().push((class, value, time));
        });
        f2.subscribe(&mut world, "Aircraft");
        world.run();
        f1.update_attribute(&mut world, "Aircraft", "position", "48.1,-1.6", 10.0);
        f1.update_attribute(&mut world, "Ship", "position", "0,0", 11.0);
        world.run();
        let got = got.borrow();
        assert_eq!(got.len(), 1, "only the subscribed class is reflected");
        assert_eq!(got[0].0, "Aircraft");
        assert_eq!(got[0].1, "48.1,-1.6");
        assert_eq!(got[0].2, 10.0);
    }

    #[test]
    fn conservative_time_advance() {
        let (mut world, _gw, f1, f2) = federation();
        f1.enable_time_regulation(&mut world);
        f2.enable_time_regulation(&mut world);
        world.run();
        let granted1 = Rc::new(Cell::new(-1.0));
        let granted2 = Rc::new(Cell::new(-1.0));
        let (g1, g2) = (granted1.clone(), granted2.clone());
        f1.on_grant(move |_w, t| g1.set(t));
        f2.on_grant(move |_w, t| g2.set(t));
        // f1 asks for 5.0 but f2 (regulating) has not advanced yet: no grant.
        f1.request_time_advance(&mut world, 5.0);
        world.run();
        assert_eq!(
            granted1.get(),
            -1.0,
            "grant must wait for the other regulating federate"
        );
        // Once f2 requests a greater-or-equal time, both can be granted.
        f2.request_time_advance(&mut world, 5.0);
        world.run();
        assert_eq!(granted1.get(), 5.0);
        assert_eq!(granted2.get(), 5.0);
        assert_eq!(f1.time(), 5.0);
    }
}
