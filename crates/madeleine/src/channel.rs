//! Madeleine channels: groups of nodes exchanging incrementally packed
//! messages over a SAN.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::rc::Rc;

use bytes::Bytes;
use simnet::{Frame, NetworkId, NodeId, ProtoId, SimDuration, SimWorld};

use crate::message::{FrameKind, MadMessage, RecvMode, Segment, SendMode, WireMessage};

/// Cost model and protocol thresholds of the Madeleine library.
#[derive(Debug, Clone)]
pub struct MadConfig {
    /// Fixed sender-side software overhead per message.
    pub send_overhead: SimDuration,
    /// Fixed receiver-side software overhead per message.
    pub recv_overhead: SimDuration,
    /// Messages larger than this use the rendezvous protocol; smaller ones
    /// are sent eagerly.
    pub rendezvous_threshold: usize,
    /// Extra round-trips are harmless for huge messages, but the grant
    /// itself costs one software overhead on each side.
    pub rendezvous_overhead: SimDuration,
}

impl Default for MadConfig {
    fn default() -> Self {
        MadConfig {
            send_overhead: SimDuration::from_nanos(500),
            recv_overhead: SimDuration::from_nanos(500),
            rendezvous_threshold: 64 * 1024,
            rendezvous_overhead: SimDuration::from_nanos(300),
        }
    }
}

/// Error returned when opening more channels than the hardware supports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MadError {
    /// The NIC/driver only exposes a limited number of hardware channels
    /// (e.g. 2 on Myrinet with GM, 1 on SCI).
    NoHardwareChannelLeft {
        /// Number of channels the hardware supports.
        max: u8,
    },
    /// The local node is not part of the requested group.
    NotInGroup,
    /// A rank outside the channel's group was addressed.
    InvalidRank(usize),
}

impl std::fmt::Display for MadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MadError::NoHardwareChannelLeft { max } => {
                write!(f, "the network hardware exposes only {max} channels")
            }
            MadError::NotInGroup => write!(f, "the local node is not a member of the group"),
            MadError::InvalidRank(r) => write!(f, "rank {r} is outside the channel group"),
        }
    }
}
impl std::error::Error for MadError {}

type MessageCallback = Box<dyn FnMut(&mut SimWorld, MadMessage)>;

struct PendingRendezvous {
    dst_rank: usize,
    /// The message's FIFO sequence number, assigned at `end_packing` and
    /// carried onto the eventual `RendezvousData` frame.
    seq: u64,
    segments: Vec<Segment>,
}

/// Accounting of one Madeleine channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MadChannelStats {
    /// Messages sent on this channel.
    pub messages_sent: u64,
    /// Messages received on this channel.
    pub messages_received: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
}

struct ChannelState {
    id: u16,
    group: Vec<NodeId>,
    my_rank: usize,
    incoming: VecDeque<MadMessage>,
    callback: Option<MessageCallback>,
    notify_pending: bool,
    // Sender-side rendezvous bookkeeping.
    next_rendezvous_id: u32,
    pending_rendezvous: HashMap<u32, PendingRendezvous>,
    // Per-pair FIFO sequencing (Madeleine channels never reorder messages
    // between one sender and one receiver — MPI's non-overtaking rule).
    // A small eager message would otherwise overtake the rendezvous
    // round-trip of a large one sent just before it.
    next_send_seq: HashMap<usize, u64>,
    next_recv_seq: HashMap<u32, u64>,
    /// Data frames that arrived ahead of a predecessor, held per sender
    /// until the gap fills.
    reorder: HashMap<u32, BTreeMap<u64, WireMessage>>,
    // Stats.
    messages_sent: u64,
    messages_received: u64,
    bytes_sent: u64,
}

struct MadInner {
    node: NodeId,
    network: NetworkId,
    config: MadConfig,
    hw_channels: u8,
    channels: BTreeMap<u16, Rc<RefCell<ChannelState>>>,
    next_channel_id: u16,
    /// Instant until which the sending CPU path is busy: per-message
    /// software overheads serialize on the host, they do not overlap.
    send_cpu_free: simnet::SimTime,
    /// Instant until which the receiving CPU path is busy.
    recv_cpu_free: simnet::SimTime,
}

/// A node's instance of the Madeleine communication library, bound to one
/// SAN.
#[derive(Clone)]
pub struct Madeleine {
    inner: Rc<RefCell<MadInner>>,
}

/// A communication channel over a group of nodes.
#[derive(Clone)]
pub struct MadChannel {
    mad: Madeleine,
    state: Rc<RefCell<ChannelState>>,
}

/// Handle used to build a message incrementally (`pack` … `end_packing`).
pub struct PackHandle<'a> {
    channel: &'a MadChannel,
    dst_rank: usize,
    segments: Vec<Segment>,
    copied_bytes: u64,
}

/// Handle used to consume a received message incrementally.
pub struct UnpackHandle {
    message: MadMessage,
    next: usize,
}

impl Madeleine {
    /// Creates a Madeleine instance for `node` over `network` and registers
    /// its frame handler.
    pub fn new(world: &mut SimWorld, node: NodeId, network: NetworkId) -> Madeleine {
        Self::with_config(world, node, network, MadConfig::default())
    }

    /// Creates a Madeleine instance with an explicit cost model.
    pub fn with_config(
        world: &mut SimWorld,
        node: NodeId,
        network: NetworkId,
        config: MadConfig,
    ) -> Madeleine {
        let hw_channels = world.network(network).spec.hw_channels;
        let mad = Madeleine {
            inner: Rc::new(RefCell::new(MadInner {
                node,
                network,
                config,
                hw_channels: if hw_channels == 0 {
                    u8::MAX
                } else {
                    hw_channels
                },
                channels: BTreeMap::new(),
                next_channel_id: 0,
                send_cpu_free: simnet::SimTime::ZERO,
                recv_cpu_free: simnet::SimTime::ZERO,
            })),
        };
        let m2 = mad.clone();
        world.register_handler(node, ProtoId::MADELEINE, move |world, _net, frame| {
            m2.on_frame(world, frame);
        });
        let weak = Rc::downgrade(&mad.inner);
        let node_label = node.0.to_string();
        world.metrics.register_collector(move |b| {
            let Some(inner) = weak.upgrade() else { return };
            let inner = inner.borrow();
            // BTreeMap keys iterate in channel-id order already.
            let ids: Vec<u16> = inner.channels.keys().copied().collect();
            for id in ids {
                let st = inner.channels[&id].borrow();
                let chan = id.to_string();
                let labels: &[(&str, &str)] =
                    &[("chan", chan.as_str()), ("node", node_label.as_str())];
                b.counter("madeleine.channel.messages_sent", labels, st.messages_sent);
                b.counter(
                    "madeleine.channel.messages_received",
                    labels,
                    st.messages_received,
                );
                b.counter("madeleine.channel.bytes_sent", labels, st.bytes_sent);
            }
        });
        mad
    }

    /// The node this instance runs on.
    pub fn node(&self) -> NodeId {
        self.inner.borrow().node
    }

    /// The SAN this instance is bound to.
    pub fn network(&self) -> NetworkId {
        self.inner.borrow().network
    }

    /// Number of hardware channels still available.
    pub fn channels_left(&self) -> u8 {
        let inner = self.inner.borrow();
        inner.hw_channels.saturating_sub(inner.channels.len() as u8)
    }

    /// Opens a channel over `group`. All members must call `open_channel`
    /// with the same group in the same order (SPMD style) so channel ids
    /// match across nodes.
    pub fn open_channel(&self, group: Vec<NodeId>) -> Result<MadChannel, MadError> {
        let mut inner = self.inner.borrow_mut();
        if inner.channels.len() as u8 >= inner.hw_channels {
            return Err(MadError::NoHardwareChannelLeft {
                max: inner.hw_channels,
            });
        }
        let my_rank = group
            .iter()
            .position(|&n| n == inner.node)
            .ok_or(MadError::NotInGroup)?;
        let id = inner.next_channel_id;
        inner.next_channel_id += 1;
        let state = Rc::new(RefCell::new(ChannelState {
            id,
            group,
            my_rank,
            incoming: VecDeque::new(),
            callback: None,
            notify_pending: false,
            next_rendezvous_id: 0,
            pending_rendezvous: HashMap::new(),
            next_send_seq: HashMap::new(),
            next_recv_seq: HashMap::new(),
            reorder: HashMap::new(),
            messages_sent: 0,
            messages_received: 0,
            bytes_sent: 0,
        }));
        inner.channels.insert(id, state.clone());
        Ok(MadChannel {
            mad: self.clone(),
            state,
        })
    }

    fn send_wire(&self, world: &mut SimWorld, dst: NodeId, wire: WireMessage, delay: SimDuration) {
        let (src, network) = {
            let inner = self.inner.borrow();
            (inner.node, inner.network)
        };
        let payload = wire.encode();
        let frame = Frame::new(src, dst, ProtoId::MADELEINE, payload)
            .with_header_bytes(WireMessage::HEADER_BYTES as u32);
        if delay.is_zero() {
            world
                .send_frame(network, frame)
                .expect("Madeleine node detached from its SAN");
        } else {
            let network2 = network;
            world.schedule_after(delay, move |world| {
                world
                    .send_frame(network2, frame)
                    .expect("Madeleine node detached from its SAN");
            });
        }
    }

    fn on_frame(&self, world: &mut SimWorld, frame: Frame) {
        let Some(wire) = WireMessage::decode(frame.payload) else {
            return;
        };
        let (config, channel_state) = {
            let inner = self.inner.borrow();
            (
                inner.config.clone(),
                inner.channels.get(&wire.channel).cloned(),
            )
        };
        let Some(state) = channel_state else { return };
        match wire.kind {
            FrameKind::Eager | FrameKind::RendezvousData => {
                // Per-pair FIFO: a frame arriving ahead of a predecessor
                // (an eager message that beat a rendezvous round-trip) is
                // held until the gap fills. The SAN is lossless, so the
                // predecessor always arrives.
                let ready = {
                    let mut st = state.borrow_mut();
                    let src = wire.src_rank;
                    let expected = *st.next_recv_seq.get(&src).unwrap_or(&0);
                    if wire.seq > expected {
                        st.reorder.entry(src).or_default().insert(wire.seq, wire);
                        Vec::new()
                    } else {
                        debug_assert_eq!(wire.seq, expected, "duplicate Madeleine message");
                        let mut out = vec![wire];
                        let mut next = expected + 1;
                        while let Some(w) = st.reorder.get_mut(&src).and_then(|m| m.remove(&next)) {
                            out.push(w);
                            next += 1;
                        }
                        st.next_recv_seq.insert(src, next);
                        out
                    }
                };
                for wire in ready {
                    // Charge the receiver-side software overhead before the
                    // message becomes visible; receive processing of
                    // successive messages serializes on the host CPU.
                    let mad = self.clone();
                    let state = state.clone();
                    let deliver_at = {
                        let mut inner = self.inner.borrow_mut();
                        let ready = world.now().max(inner.recv_cpu_free) + config.recv_overhead;
                        inner.recv_cpu_free = ready;
                        ready
                    };
                    world.schedule_at(deliver_at, move |world| {
                        let msg = MadMessage {
                            src_rank: wire.src_rank as usize,
                            segments: wire.segments.clone(),
                        };
                        {
                            let mut st = state.borrow_mut();
                            st.messages_received += 1;
                            st.incoming.push_back(msg);
                        }
                        MadChannel {
                            mad: mad.clone(),
                            state: state.clone(),
                        }
                        .schedule_notify(world);
                    });
                }
            }
            FrameKind::RendezvousRequest => {
                // Grant immediately (the receiver in this model always has
                // room); the grant costs one small control frame.
                let grant = WireMessage {
                    channel: wire.channel,
                    kind: FrameKind::RendezvousGrant,
                    src_rank: state.borrow().my_rank as u32,
                    rendezvous_id: wire.rendezvous_id,
                    seq: 0,
                    segments: vec![],
                };
                let dst = state.borrow().group[wire.src_rank as usize];
                self.send_wire(world, dst, grant, config.rendezvous_overhead);
            }
            FrameKind::RendezvousGrant => {
                let pending = state
                    .borrow_mut()
                    .pending_rendezvous
                    .remove(&wire.rendezvous_id);
                if let Some(p) = pending {
                    let (dst, my_rank, channel) = {
                        let st = state.borrow();
                        (st.group[p.dst_rank], st.my_rank, st.id)
                    };
                    let data = WireMessage {
                        channel,
                        kind: FrameKind::RendezvousData,
                        src_rank: my_rank as u32,
                        rendezvous_id: wire.rendezvous_id,
                        seq: p.seq,
                        segments: p.segments,
                    };
                    self.send_wire(world, dst, data, config.rendezvous_overhead);
                }
            }
        }
    }
}

impl MadChannel {
    /// This node's rank within the channel group.
    pub fn my_rank(&self) -> usize {
        self.state.borrow().my_rank
    }

    /// The channel's group, in rank order.
    pub fn group(&self) -> Vec<NodeId> {
        self.state.borrow().group.clone()
    }

    /// Number of members.
    pub fn group_size(&self) -> usize {
        self.state.borrow().group.len()
    }

    /// Accounting snapshot of this channel.
    pub fn stats(&self) -> MadChannelStats {
        let st = self.state.borrow();
        MadChannelStats {
            messages_sent: st.messages_sent,
            messages_received: st.messages_received,
            bytes_sent: st.bytes_sent,
        }
    }

    /// Starts packing a message for `dst_rank`.
    pub fn begin_packing(&self, dst_rank: usize) -> Result<PackHandle<'_>, MadError> {
        let st = self.state.borrow();
        if dst_rank >= st.group.len() {
            return Err(MadError::InvalidRank(dst_rank));
        }
        Ok(PackHandle {
            channel: self,
            dst_rank,
            segments: Vec::new(),
            copied_bytes: 0,
        })
    }

    /// Pops the next received message, if any.
    pub fn poll_message(&self) -> Option<MadMessage> {
        self.state.borrow_mut().incoming.pop_front()
    }

    /// Starts unpacking the next received message, if any.
    pub fn begin_unpacking(&self) -> Option<UnpackHandle> {
        self.poll_message()
            .map(|message| UnpackHandle { message, next: 0 })
    }

    /// Number of messages waiting to be unpacked.
    pub fn pending_messages(&self) -> usize {
        self.state.borrow().incoming.len()
    }

    /// Registers a callback invoked (as a simulation event) whenever a
    /// message is ready. Queued messages remain pollable.
    pub fn set_message_callback(&self, cb: impl FnMut(&mut SimWorld, MadMessage) + 'static) {
        self.state.borrow_mut().callback = Some(Box::new(cb));
    }

    fn schedule_notify(&self, world: &mut SimWorld) {
        let should = {
            let mut st = self.state.borrow_mut();
            if st.callback.is_some() && !st.notify_pending && !st.incoming.is_empty() {
                st.notify_pending = true;
                true
            } else {
                false
            }
        };
        if should {
            let ch = self.clone();
            world.schedule_after(SimDuration::ZERO, move |world| {
                loop {
                    let (cb, msg) = {
                        let mut st = ch.state.borrow_mut();
                        if st.incoming.is_empty() || st.callback.is_none() {
                            st.notify_pending = false;
                            return;
                        }
                        let msg = st.incoming.pop_front().expect("checked non-empty");
                        (st.callback.take().expect("checked some"), msg)
                    };
                    let mut cb = cb;
                    cb(world, msg);
                    let mut st = ch.state.borrow_mut();
                    if st.callback.is_none() {
                        st.callback = Some(cb);
                    } else {
                        // The user installed a new callback from within the
                        // old one; stop draining with the stale closure.
                        st.notify_pending = false;
                        return;
                    }
                }
            });
        }
    }
}

impl PackHandle<'_> {
    /// Appends a segment to the message being built.
    pub fn pack(&mut self, data: impl Into<Bytes>, mode: SendMode) -> &mut Self {
        let data = data.into();
        if mode == SendMode::Safer {
            // SAFER semantics force an internal copy: account for it.
            self.copied_bytes += data.len() as u64;
        }
        self.segments.push(Segment {
            data,
            send_mode: mode,
        });
        self
    }

    /// Finishes the message and hands it to the network. Returns the number
    /// of payload bytes sent.
    pub fn end_packing(self, world: &mut SimWorld) -> usize {
        let PackHandle {
            channel,
            dst_rank,
            segments,
            copied_bytes,
        } = self;
        let payload: usize = segments.iter().map(|s| s.data.len()).sum();
        let (dst, my_rank, channel_id, config, node) = {
            let st = channel.state.borrow();
            let inner = channel.mad.inner.borrow();
            (
                st.group[dst_rank],
                st.my_rank,
                st.id,
                inner.config.clone(),
                inner.node,
            )
        };
        {
            let mut st = channel.state.borrow_mut();
            st.messages_sent += 1;
            st.bytes_sent += payload as u64;
        }
        // Sender-side cost: fixed software overhead plus one memory copy for
        // every SAFER segment. The sending CPU handles one message at a
        // time, so back-to-back sends serialize.
        let mut cost = config.send_overhead;
        if copied_bytes > 0 {
            cost += world.copy_cost(node, copied_bytes);
        }
        let delay = {
            let mut inner = channel.mad.inner.borrow_mut();
            let ready = world.now().max(inner.send_cpu_free) + cost;
            inner.send_cpu_free = ready;
            ready - world.now()
        };

        if dst == node {
            // Self-delivery: loop the message back without touching the SAN.
            let state = channel.state.clone();
            let ch = channel.clone();
            let recv_overhead = config.recv_overhead;
            world.schedule_after(delay + recv_overhead, move |world| {
                {
                    let mut st = state.borrow_mut();
                    st.messages_received += 1;
                    st.incoming.push_back(MadMessage {
                        src_rank: my_rank,
                        segments: segments.clone(),
                    });
                }
                ch.schedule_notify(world);
            });
            return payload;
        }

        // FIFO sequence number towards this destination; the receiver
        // delivers strictly in this order even when an eager message beats
        // a rendezvous round-trip.
        let seq = {
            let mut st = channel.state.borrow_mut();
            let next = st.next_send_seq.entry(dst_rank).or_insert(0);
            let s = *next;
            *next += 1;
            s
        };
        if payload > config.rendezvous_threshold {
            // Rendezvous: announce, wait for the grant, then send the data.
            let rendezvous_id = {
                let mut st = channel.state.borrow_mut();
                let id = st.next_rendezvous_id;
                st.next_rendezvous_id += 1;
                st.pending_rendezvous.insert(
                    id,
                    PendingRendezvous {
                        dst_rank,
                        seq,
                        segments,
                    },
                );
                id
            };
            let request = WireMessage {
                channel: channel_id,
                kind: FrameKind::RendezvousRequest,
                src_rank: my_rank as u32,
                rendezvous_id,
                seq: 0,
                segments: vec![],
            };
            channel.mad.send_wire(world, dst, request, delay);
        } else {
            let wire = WireMessage {
                channel: channel_id,
                kind: FrameKind::Eager,
                src_rank: my_rank as u32,
                rendezvous_id: 0,
                seq,
                segments,
            };
            channel.mad.send_wire(world, dst, wire, delay);
        }
        payload
    }
}

impl UnpackHandle {
    /// Rank of the message's sender.
    pub fn src_rank(&self) -> usize {
        self.message.src_rank
    }

    /// Unpacks the next segment. The receive mode only expresses when the
    /// caller needs the data; segments are always returned in packing
    /// order.
    pub fn unpack(&mut self, _mode: RecvMode) -> Option<Bytes> {
        let seg = self.message.segments.get(self.next)?;
        self.next += 1;
        Some(seg.data.clone())
    }

    /// Number of segments not yet unpacked.
    pub fn remaining(&self) -> usize {
        self.message.segments.len() - self.next
    }

    /// Finishes unpacking and returns the underlying message.
    pub fn end_unpacking(self) -> MadMessage {
        self.message
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::topology;
    use simnet::NetworkSpec;
    use std::cell::Cell;

    fn san_world(n: usize) -> (SimWorld, Vec<NodeId>, NetworkId) {
        let mut world = SimWorld::new(3);
        let cluster = topology::build_san_cluster(&mut world, "n", n, NetworkSpec::myrinet_2000());
        let san = cluster.san.unwrap();
        (world, cluster.nodes, san)
    }

    #[test]
    fn channel_limit_matches_hardware() {
        let (mut world, nodes, san) = san_world(2);
        let mad = Madeleine::new(&mut world, nodes[0], san);
        assert_eq!(mad.channels_left(), 2, "Myrinet exposes 2 channels");
        let _c1 = mad.open_channel(nodes.clone()).unwrap();
        let _c2 = mad.open_channel(nodes.clone()).unwrap();
        let err = mad.open_channel(nodes.clone()).err().unwrap();
        assert_eq!(err, MadError::NoHardwareChannelLeft { max: 2 });
    }

    #[test]
    fn small_eager_message_does_not_overtake_large_rendezvous() {
        // A message above the rendezvous threshold pays a request/grant
        // round-trip; a tiny eager message sent right behind it lands on
        // the wire first. Per-pair FIFO sequencing must still deliver
        // them in sending order (MPI's non-overtaking rule; the stream
        // emulation depends on it for correctness).
        let (mut world, nodes, san) = san_world(2);
        let mad0 = Madeleine::new(&mut world, nodes[0], san);
        let mad1 = Madeleine::new(&mut world, nodes[1], san);
        let c0 = mad0.open_channel(nodes.clone()).unwrap();
        let c1 = mad1.open_channel(nodes.clone()).unwrap();
        let big = vec![7u8; 100 * 1024]; // > rendezvous_threshold
        let mut pk = c0.begin_packing(1).unwrap();
        pk.pack(big.clone(), SendMode::Cheaper);
        pk.end_packing(&mut world);
        let mut pk = c0.begin_packing(1).unwrap();
        pk.pack(&b"tiny"[..], SendMode::Cheaper);
        pk.end_packing(&mut world);
        world.run();
        assert_eq!(c1.pending_messages(), 2);
        let first = c1.poll_message().unwrap();
        assert_eq!(first.payload_len(), big.len(), "big message first");
        let second = c1.poll_message().unwrap();
        assert_eq!(second.concat(), b"tiny");
    }

    #[test]
    fn not_in_group_is_rejected() {
        let (mut world, nodes, san) = san_world(3);
        let mad = Madeleine::new(&mut world, nodes[0], san);
        let err = mad.open_channel(vec![nodes[1], nodes[2]]).err().unwrap();
        assert_eq!(err, MadError::NotInGroup);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let (mut world, nodes, san) = san_world(2);
        let mad0 = Madeleine::new(&mut world, nodes[0], san);
        let mad1 = Madeleine::new(&mut world, nodes[1], san);
        let c0 = mad0.open_channel(nodes.clone()).unwrap();
        let c1 = mad1.open_channel(nodes.clone()).unwrap();

        let mut pk = c0.begin_packing(1).unwrap();
        pk.pack(&b"hdr"[..], SendMode::Safer);
        pk.pack(&b"payload-payload"[..], SendMode::Cheaper);
        let sent = pk.end_packing(&mut world);
        assert_eq!(sent, 18);
        world.run();

        let mut up = c1.begin_unpacking().expect("message arrived");
        assert_eq!(up.src_rank(), 0);
        assert_eq!(up.remaining(), 2);
        assert_eq!(&up.unpack(RecvMode::Express).unwrap()[..], b"hdr");
        assert_eq!(
            &up.unpack(RecvMode::Cheaper).unwrap()[..],
            b"payload-payload"
        );
        assert!(up.unpack(RecvMode::Cheaper).is_none());
    }

    #[test]
    fn small_message_latency_is_a_few_microseconds() {
        let (mut world, nodes, san) = san_world(2);
        let mad0 = Madeleine::new(&mut world, nodes[0], san);
        let mad1 = Madeleine::new(&mut world, nodes[1], san);
        let c0 = mad0.open_channel(nodes.clone()).unwrap();
        let c1 = mad1.open_channel(nodes.clone()).unwrap();
        let arrived = Rc::new(Cell::new(0.0f64));
        let a = arrived.clone();
        c1.set_message_callback(move |world, _msg| a.set(world.now().as_micros_f64()));
        let mut pk = c0.begin_packing(1).unwrap();
        pk.pack(&[0u8; 4][..], SendMode::Cheaper);
        pk.end_packing(&mut world);
        world.run();
        let latency = arrived.get();
        // Myrinet hardware (≈6.8 µs) plus Madeleine overheads: ~7.5–9 µs.
        assert!(latency > 7.0 && latency < 9.5, "latency {latency} µs");
    }

    #[test]
    fn large_message_bandwidth_approaches_wire_rate() {
        let (mut world, nodes, san) = san_world(2);
        let mad0 = Madeleine::new(&mut world, nodes[0], san);
        let mad1 = Madeleine::new(&mut world, nodes[1], san);
        let c0 = mad0.open_channel(nodes.clone()).unwrap();
        let c1 = mad1.open_channel(nodes.clone()).unwrap();
        let received = Rc::new(Cell::new(0usize));
        let done_at = Rc::new(Cell::new(0.0f64));
        let (r, d) = (received.clone(), done_at.clone());
        c1.set_message_callback(move |world, msg| {
            r.set(r.get() + msg.payload_len());
            d.set(world.now().as_secs_f64());
        });
        let total = 32 * 1024 * 1024usize;
        let msg_size = 1024 * 1024usize;
        for _ in 0..total / msg_size {
            let mut pk = c0.begin_packing(1).unwrap();
            pk.pack(vec![0u8; msg_size], SendMode::Cheaper);
            pk.end_packing(&mut world);
        }
        world.run();
        assert_eq!(received.get(), total);
        let bw = total as f64 / done_at.get() / 1e6;
        // Zero-copy Madeleine should reach ~96% of the 250 MB/s wire rate.
        assert!(bw > 235.0, "bandwidth {bw} MB/s");
        assert!(bw <= 251.0, "bandwidth {bw} MB/s exceeds hardware");
    }

    #[test]
    fn safer_mode_costs_a_copy() {
        let run = |mode: SendMode| -> f64 {
            let (mut world, nodes, san) = san_world(2);
            let mad0 = Madeleine::new(&mut world, nodes[0], san);
            let mad1 = Madeleine::new(&mut world, nodes[1], san);
            let c0 = mad0.open_channel(nodes.clone()).unwrap();
            let c1 = mad1.open_channel(nodes.clone()).unwrap();
            let done = Rc::new(Cell::new(0.0f64));
            let d = done.clone();
            c1.set_message_callback(move |world, _| d.set(world.now().as_secs_f64()));
            let mut pk = c0.begin_packing(1).unwrap();
            pk.pack(vec![0u8; 4 * 1024 * 1024], mode);
            pk.end_packing(&mut world);
            world.run();
            done.get()
        };
        let cheap = run(SendMode::Cheaper);
        let safe = run(SendMode::Safer);
        assert!(
            safe > cheap * 1.5,
            "SAFER ({safe}s) must pay a copy versus CHEAPER ({cheap}s)"
        );
    }

    #[test]
    fn rendezvous_and_eager_both_deliver() {
        let (mut world, nodes, san) = san_world(2);
        let mad0 = Madeleine::new(&mut world, nodes[0], san);
        let mad1 = Madeleine::new(&mut world, nodes[1], san);
        let c0 = mad0.open_channel(nodes.clone()).unwrap();
        let c1 = mad1.open_channel(nodes.clone()).unwrap();
        // Eager (small) and rendezvous (large) messages.
        let mut pk = c0.begin_packing(1).unwrap();
        pk.pack(vec![1u8; 100], SendMode::Cheaper);
        pk.end_packing(&mut world);
        let mut pk = c0.begin_packing(1).unwrap();
        pk.pack(vec![2u8; 500_000], SendMode::Cheaper);
        pk.end_packing(&mut world);
        world.run();
        assert_eq!(c1.pending_messages(), 2);
        let m1 = c1.poll_message().unwrap();
        let m2 = c1.poll_message().unwrap();
        assert_eq!(m1.payload_len() + m2.payload_len(), 500_100);
    }

    #[test]
    fn self_delivery_loops_back() {
        let (mut world, nodes, san) = san_world(2);
        let mad0 = Madeleine::new(&mut world, nodes[0], san);
        let c0 = mad0.open_channel(nodes.clone()).unwrap();
        let mut pk = c0.begin_packing(0).unwrap();
        pk.pack(&b"to myself"[..], SendMode::Cheaper);
        pk.end_packing(&mut world);
        world.run();
        let msg = c0.poll_message().unwrap();
        assert_eq!(msg.src_rank, 0);
        assert_eq!(msg.concat(), b"to myself");
    }

    #[test]
    fn invalid_rank_is_rejected() {
        let (mut world, nodes, san) = san_world(2);
        let mad0 = Madeleine::new(&mut world, nodes[0], san);
        let c0 = mad0.open_channel(nodes.clone()).unwrap();
        assert!(matches!(c0.begin_packing(5), Err(MadError::InvalidRank(5))));
        let _ = &mut world;
    }
}
