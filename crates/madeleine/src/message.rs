//! Madeleine message model: incrementally packed segments with explicit
//! send/receive semantics.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// How a packed segment may be sent (Madeleine's `send_mode`).
///
/// The mode is a *constraint given by the caller*, letting the library pick
/// the cheapest correct strategy — this is the "explicit semantics" that
/// allow zero-copy and on-the-fly packet reordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SendMode {
    /// The buffer may be reused by the caller immediately: the library must
    /// copy it (or send it synchronously).
    Safer,
    /// The buffer stays valid until `end_packing`: the library may delay
    /// and aggregate it, and send straight from user memory (zero-copy).
    Cheaper,
    /// The buffer stays valid and the data is only needed by the receiver
    /// at `end_unpacking`: maximal freedom to aggregate.
    Later,
}

impl SendMode {
    fn to_byte(self) -> u8 {
        match self {
            SendMode::Safer => 0,
            SendMode::Cheaper => 1,
            SendMode::Later => 2,
        }
    }

    fn from_byte(b: u8) -> Option<SendMode> {
        match b {
            0 => Some(SendMode::Safer),
            1 => Some(SendMode::Cheaper),
            2 => Some(SendMode::Later),
            _ => None,
        }
    }
}

/// How a segment is received (Madeleine's `receive_mode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecvMode {
    /// The data is needed immediately after the matching `unpack` call
    /// (e.g. a header that decides how to unpack the rest).
    Express,
    /// The data is only needed after `end_unpacking`.
    Cheaper,
}

/// One packed segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Payload bytes.
    pub data: Bytes,
    /// Send semantics requested by the packer.
    pub send_mode: SendMode,
}

/// A complete Madeleine message: the ordered list of segments produced by
/// one `begin_packing` … `end_packing` sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MadMessage {
    /// Rank of the sender within the channel's group.
    pub src_rank: usize,
    /// Packed segments, in packing order.
    pub segments: Vec<Segment>,
}

impl MadMessage {
    /// Total payload bytes across all segments.
    pub fn payload_len(&self) -> usize {
        self.segments.iter().map(|s| s.data.len()).sum()
    }

    /// Concatenates all segments (convenience for callers that packed a
    /// single logical buffer).
    pub fn concat(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.payload_len());
        for s in &self.segments {
            v.extend_from_slice(&s.data);
        }
        v
    }
}

/// Kinds of frames exchanged on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FrameKind {
    /// A self-contained message (all segments aggregated).
    Eager,
    /// Rendezvous request announcing a large message.
    RendezvousRequest,
    /// Rendezvous grant from the receiver.
    RendezvousGrant,
    /// The data of a granted rendezvous.
    RendezvousData,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Eager => 0,
            FrameKind::RendezvousRequest => 1,
            FrameKind::RendezvousGrant => 2,
            FrameKind::RendezvousData => 3,
        }
    }

    fn from_byte(b: u8) -> Option<FrameKind> {
        match b {
            0 => Some(FrameKind::Eager),
            1 => Some(FrameKind::RendezvousRequest),
            2 => Some(FrameKind::RendezvousGrant),
            3 => Some(FrameKind::RendezvousData),
            _ => None,
        }
    }
}

/// On-wire representation of a Madeleine exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct WireMessage {
    pub channel: u16,
    pub kind: FrameKind,
    pub src_rank: u32,
    /// Identifier used to match rendezvous request/grant/data.
    pub rendezvous_id: u32,
    /// Per-(channel, sender→receiver) message sequence number, assigned at
    /// `end_packing`. Madeleine channels are FIFO per pair (MPI's
    /// non-overtaking rule); without it a small eager message racing the
    /// rendezvous round-trip of a large one overtakes it on delivery.
    /// Meaningful on data-bearing frames (`Eager`, `RendezvousData`);
    /// zero on control frames.
    pub seq: u64,
    pub segments: Vec<Segment>,
}

impl WireMessage {
    /// Bytes of header added per message by Madeleine itself.
    pub const HEADER_BYTES: usize = 19;
    /// Bytes of header added per segment.
    pub const PER_SEGMENT_BYTES: usize = 5;

    pub fn encode(&self) -> Bytes {
        let payload: usize = self.segments.iter().map(|s| s.data.len()).sum();
        let mut buf = BytesMut::with_capacity(
            Self::HEADER_BYTES + self.segments.len() * Self::PER_SEGMENT_BYTES + payload,
        );
        buf.put_u16(self.channel);
        buf.put_u8(self.kind.to_byte());
        buf.put_u32(self.src_rank);
        buf.put_u32(self.rendezvous_id);
        buf.put_u64(self.seq);
        // Segment count is implicit: read until the buffer is exhausted.
        for seg in &self.segments {
            buf.put_u8(seg.send_mode.to_byte());
            buf.put_u32(seg.data.len() as u32);
            buf.extend_from_slice(&seg.data);
        }
        buf.freeze()
    }

    pub fn decode(mut payload: Bytes) -> Option<WireMessage> {
        if payload.len() < Self::HEADER_BYTES {
            return None;
        }
        let channel = payload.get_u16();
        let kind = FrameKind::from_byte(payload.get_u8())?;
        let src_rank = payload.get_u32();
        let rendezvous_id = payload.get_u32();
        let seq = payload.get_u64();
        let mut segments = Vec::new();
        while payload.has_remaining() {
            if payload.remaining() < Self::PER_SEGMENT_BYTES {
                return None;
            }
            let mode = SendMode::from_byte(payload.get_u8())?;
            let len = payload.get_u32() as usize;
            if payload.remaining() < len {
                return None;
            }
            let data = payload.split_to(len);
            segments.push(Segment {
                data,
                send_mode: mode,
            });
        }
        Some(WireMessage {
            channel,
            kind,
            src_rank,
            rendezvous_id,
            seq,
            segments,
        })
    }

    /// Total payload bytes.
    #[allow(dead_code)]
    pub fn payload_len(&self) -> usize {
        self.segments.iter().map(|s| s.data.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_mode_bytes_roundtrip() {
        for m in [SendMode::Safer, SendMode::Cheaper, SendMode::Later] {
            assert_eq!(SendMode::from_byte(m.to_byte()), Some(m));
        }
        assert_eq!(SendMode::from_byte(9), None);
    }

    #[test]
    fn wire_roundtrip_multi_segment() {
        let wm = WireMessage {
            channel: 3,
            kind: FrameKind::Eager,
            src_rank: 7,
            rendezvous_id: 0,
            seq: 99,
            segments: vec![
                Segment {
                    data: Bytes::from_static(b"header"),
                    send_mode: SendMode::Safer,
                },
                Segment {
                    data: Bytes::from_static(b"body body body"),
                    send_mode: SendMode::Cheaper,
                },
                Segment {
                    data: Bytes::new(),
                    send_mode: SendMode::Later,
                },
            ],
        };
        let decoded = WireMessage::decode(wm.encode()).unwrap();
        assert_eq!(decoded, wm);
        assert_eq!(decoded.payload_len(), 20);
    }

    #[test]
    fn wire_roundtrip_all_kinds() {
        for kind in [
            FrameKind::Eager,
            FrameKind::RendezvousRequest,
            FrameKind::RendezvousGrant,
            FrameKind::RendezvousData,
        ] {
            let wm = WireMessage {
                channel: 1,
                kind,
                src_rank: 0,
                rendezvous_id: 42,
                seq: 7,
                segments: vec![],
            };
            assert_eq!(WireMessage::decode(wm.encode()).unwrap().kind, kind);
        }
    }

    #[test]
    fn decode_rejects_truncation() {
        let wm = WireMessage {
            channel: 1,
            kind: FrameKind::Eager,
            src_rank: 0,
            rendezvous_id: 0,
            seq: 0,
            segments: vec![Segment {
                data: Bytes::from_static(b"0123456789"),
                send_mode: SendMode::Cheaper,
            }],
        };
        let enc = wm.encode();
        assert!(WireMessage::decode(enc.slice(..5)).is_none());
        assert!(WireMessage::decode(enc.slice(..enc.len() - 3)).is_none());
    }

    #[test]
    fn message_concat_preserves_order() {
        let msg = MadMessage {
            src_rank: 1,
            segments: vec![
                Segment {
                    data: Bytes::from_static(b"abc"),
                    send_mode: SendMode::Cheaper,
                },
                Segment {
                    data: Bytes::from_static(b"def"),
                    send_mode: SendMode::Cheaper,
                },
            ],
        };
        assert_eq!(msg.concat(), b"abcdef");
        assert_eq!(msg.payload_len(), 6);
    }
}
