//! # madeleine — a Madeleine-style SAN message library
//!
//! The original PadicoTM builds its parallel-oriented arbitration layer
//! (`MadIO`) on the Madeleine communication library (Aumage et al., CLUSTER
//! 2000), which gives portable, zero-copy, incrementally-packed messages
//! over Myrinet, SCI and VIA. This crate reproduces that layer over the
//! simulated SAN of [`simnet`]:
//!
//! * channels over a *group* of nodes, limited by the number of hardware
//!   channels the NIC exposes (2 on Myrinet-2000, 1 on SCI) — the reason
//!   MadIO must multiplex in software;
//! * incremental packing with explicit send semantics
//!   ([`SendMode::Safer`]/[`SendMode::Cheaper`]/[`SendMode::Later`]) and
//!   receive semantics ([`RecvMode::Express`]/[`RecvMode::Cheaper`]);
//! * an eager protocol for small messages, rendezvous for large ones;
//! * a cost model calibrated so a 4-byte message crosses in ≈8 µs and large
//!   messages sustain ≈240 MB/s on the simulated Myrinet-2000, matching the
//!   paper's Table 1.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod channel;
pub mod message;

pub use channel::{
    MadChannel, MadChannelStats, MadConfig, MadError, Madeleine, PackHandle, UnpackHandle,
};
pub use message::{MadMessage, RecvMode, Segment, SendMode};
