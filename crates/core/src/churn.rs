//! Live churn at the runtime layer: applying backbone deltas to a
//! running grid, admitting new sites, and draining departing ones.
//!
//! The routing half of churn lives in `gridtopo` ([`BackboneDelta`]
//! drives incremental reconvergence of the hierarchical table); this
//! module is the *runtime* half — the part that keeps a grid of live
//! [`PadicoRuntime`]s consistent through the transition:
//!
//! * [`apply_backbone_delta`] — one flap (link or gateway, down or up)
//!   reconverges the table, republishes it to every live runtime,
//!   reflects gateway state in each knowledge base (selective cache
//!   sweeps), and emits typed [`TraceEvent`]s for the transition;
//! * [`admit_site_live`] — builds a new site into the running world,
//!   spins up its runtimes, installs its gateway proxies, splices its
//!   trunks onto the backbone, and publishes its routes everywhere;
//! * [`drain_site_live`] — quiesces in-flight streams, flushes
//!   consumed-credit batches (so conservation balances exactly), retires
//!   the trunks in both directions, withdraws the site's routes and
//!   tombstones its slot.
//!
//! Every transition is observable: enable `world.events` and the ring
//! carries `SiteAdmitted` / `SiteDraining` / `SiteDrained` /
//! `LinkDown` / `LinkUp` / `GatewayDown` / `GatewayRestored` plus one
//! `Reconverged` receipt per delta.

use std::collections::BTreeSet;
use std::rc::Rc;

use gridtopo::{BackboneDelta, GridTopology, IsolationViolation, ReconvergeStats, SiteSpec};
use simnet::{NodeId, SimWorld, TraceEvent};

use crate::relay::{self, GatewayProxy};
use crate::runtime::PadicoRuntime;
use crate::selector::SelectorPreferences;

/// Everything a live admit brought up, returned to the caller (who owns
/// the runtime lifetimes).
pub struct AdmittedSite {
    /// Index of the new site in `grid.sites` / the layout.
    pub index: usize,
    /// The new site's runtimes, in site-node order (gateways first).
    pub runtimes: Vec<PadicoRuntime>,
    /// One proxy handle per new gateway, in rank order.
    pub proxies: Vec<GatewayProxy>,
    /// The reconvergence receipt of the `SiteJoin` delta.
    pub stats: ReconvergeStats,
}

/// Receipt of a graceful site drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// The reconvergence receipt of the `SiteLeave` delta.
    pub stats: ReconvergeStats,
    /// Trunks retired across both directions (survivors towards the
    /// departing gateways, and everything the departing nodes held).
    pub trunks_retired: u32,
    /// Live events the departing site's sharded-merge lane still held
    /// when the drain began (0 when the world is not sharded, or the
    /// lane was already idle). These are executed by the quiesce, not
    /// dropped.
    pub lane_backlog: u32,
    /// Cancelled entries (tombstones) compacted off the departing
    /// site's lane before detach, so a dead lane does not keep them
    /// resident for the rest of the run (0 when not sharded).
    pub lane_swept: u32,
}

fn record(world: &mut SimWorld, event: TraceEvent) {
    if world.events.is_enabled() {
        let now = world.now();
        world.events.record(now, event);
    }
}

/// Republishes the grid's (re)converged route table to every runtime of
/// a live site and re-pools the gateway runtimes' route cache (route
/// installation detaches each runtime into a fresh cache by design, so
/// sharing must be re-established after). Runtimes of tombstoned sites
/// are skipped — their routes are withdrawn, not refreshed.
pub fn republish_routes(grid: &GridTopology, runtimes: &[PadicoRuntime]) {
    let routes = Rc::new(grid.routes.clone());
    let live: BTreeSet<NodeId> = grid.all_nodes().into_iter().collect();
    let gateways: BTreeSet<NodeId> = grid.all_gateways().into_iter().collect();
    let mut first_gateway: Option<&PadicoRuntime> = None;
    for rt in runtimes {
        if !live.contains(&rt.node()) {
            continue;
        }
        rt.set_route_table(routes.clone());
        if gateways.contains(&rt.node()) {
            match first_gateway {
                Some(first) => rt.share_route_cache_with(first),
                None => first_gateway = Some(rt),
            }
        }
    }
}

/// Applies one churn delta to a running grid end to end: the routing
/// table reconverges (incrementally on hierarchical routes), the
/// reconverged table is republished to every live runtime, gateway
/// up/down deltas are reflected in each runtime's knowledge base (so
/// failover resolution and trunk liveness agree with the table-level
/// mask), and typed trace events bracket the transition.
///
/// Site join/leave deltas should go through [`admit_site_live`] /
/// [`drain_site_live`] instead, which also manage the runtime lifecycle.
pub fn apply_backbone_delta(
    world: &mut SimWorld,
    grid: &mut GridTopology,
    runtimes: &[PadicoRuntime],
    delta: &BackboneDelta,
) -> Result<ReconvergeStats, IsolationViolation> {
    match delta {
        BackboneDelta::LinkDown(net) => record(world, TraceEvent::LinkDown { net: *net }),
        BackboneDelta::LinkUp(net) => record(world, TraceEvent::LinkUp { net: *net }),
        BackboneDelta::GatewayDown(gw) => record(world, TraceEvent::GatewayDown { node: *gw }),
        BackboneDelta::GatewayUp(gw) => record(world, TraceEvent::GatewayRestored { node: *gw }),
        BackboneDelta::SiteJoin { .. } | BackboneDelta::SiteLeave(_) => {}
    }
    let stats = grid.apply_delta(world, delta)?;
    match delta {
        BackboneDelta::GatewayDown(gw) => {
            for rt in runtimes {
                rt.mark_gateway_down(*gw);
            }
        }
        BackboneDelta::GatewayUp(gw) => {
            for rt in runtimes {
                rt.mark_gateway_up(*gw);
            }
        }
        _ => {}
    }
    republish_routes(grid, runtimes);
    record(
        world,
        TraceEvent::Reconverged {
            sites_recomputed: stats.sites_recomputed as u32,
            backbone_gateways: stats.bb_sources as u32,
        },
    );
    Ok(stats)
}

/// Admits a new site into a *running* grid: builds `spec` into the
/// world, splices its gateways onto the existing backbones, reconverges
/// the routes via a `SiteJoin` delta, spins up one runtime per new node
/// (MadIO on the site SAN where present), installs a gateway proxy on
/// every new gateway, publishes the reconverged table to every live
/// runtime, and pre-warms the gateway trunks in both directions. The new
/// runtimes are appended to `runtimes`, preserving
/// [`GridTopology::all_nodes`] order.
pub fn admit_site_live(
    world: &mut SimWorld,
    grid: &mut GridTopology,
    runtimes: &mut Vec<PadicoRuntime>,
    spec: &SiteSpec,
    prefs: SelectorPreferences,
) -> Result<AdmittedSite, IsolationViolation> {
    let (index, stats) = grid.admit_site(world, spec, None)?;
    let site_nodes = grid.sites[index].nodes.clone();
    let site_gateways = grid.sites[index].gateways.clone();
    let site_san = grid.sites[index].san;
    record(
        world,
        TraceEvent::SiteAdmitted {
            site: index as u32,
            gateways: site_gateways.len() as u32,
            nodes: site_nodes.len() as u32,
        },
    );
    let mut new_rts = Vec::new();
    let mut new_proxies = Vec::new();
    for &node in &site_nodes {
        let san = site_san.map(|san| (san, site_nodes.clone()));
        let rt = PadicoRuntime::new(world, node, san, prefs.clone());
        if site_gateways.contains(&node) {
            new_proxies.push(relay::install_gateway_proxy(world, &rt));
        }
        new_rts.push(rt.clone());
        runtimes.push(rt);
    }
    // Publish the reconverged table everywhere — the new runtimes are in
    // `runtimes` already, so one pass covers old and new alike.
    republish_routes(grid, runtimes);
    record(
        world,
        TraceEvent::Reconverged {
            sites_recomputed: stats.sites_recomputed as u32,
            backbone_gateways: stats.bb_sources as u32,
        },
    );
    // Splice the trunks: every gateway (newcomers included) dials every
    // gateway proxy it does not already hold a live trunk towards —
    // `ensure_trunk` reuses live carriers, so existing pairs are no-ops.
    let all_gateways = grid.all_gateways();
    for rt in runtimes.iter() {
        if all_gateways.contains(&rt.node()) && !rt.is_dead() {
            relay::establish_gateway_trunks(world, rt, &all_gateways);
        }
    }
    Ok(AdmittedSite {
        index,
        runtimes: new_rts,
        proxies: new_proxies,
        stats,
    })
}

/// Gracefully drains site `index` out of a running grid: in-flight
/// streams quiesce (the world runs dry first), every trunk touching the
/// site flushes its consumed-credit batches while the carriers still
/// deliver — so in credit mode the conservation ledgers balance exactly
/// through the drain — then retires, the routes reconverge via a
/// `SiteLeave` delta and the survivors get the reconverged table. The
/// departing runtimes stay alive (their owner may still inspect them)
/// but hold no trunks and receive no routes.
///
/// Shard-aware: when the world runs the sharded-merge executor, the
/// departing site's lane is inspected before the quiesce — its live
/// backlog is reported in [`DrainReport::lane_backlog`] (and executed,
/// never dropped), and its cancel tombstones are compacted off the lane
/// ([`DrainReport::lane_swept`]) so the detached site's dead closures
/// stop occupying queue slots.
pub fn drain_site_live(
    world: &mut SimWorld,
    grid: &mut GridTopology,
    runtimes: &[PadicoRuntime],
    index: usize,
) -> Result<DrainReport, IsolationViolation> {
    let departing: BTreeSet<NodeId> = grid.sites[index].nodes.iter().copied().collect();
    let departing_gateways = grid.sites[index].gateways.clone();
    record(world, TraceEvent::SiteDraining { site: index as u32 });
    // Shard-aware drain: under the sharded-merge executor, site `index`
    // lives on lane `index + 1` (the `GridTopology::shard_map`
    // convention; lane 0 is the control lane, and an out-of-range lane
    // reports `None`). Record how much live work the lane still holds —
    // the quiesce below executes it, never drops it — and compact its
    // tombstones eagerly: cancelled entries never fire, so sweeping them
    // is behaviour-neutral, but a detached site's lane would otherwise
    // keep the dead closures resident until the pop path happened to
    // reach their (possibly far-future) timestamps.
    let lane = (index + 1) as u16;
    let lane_backlog = world.shard_lane_pending(lane).map_or(0, |(live, _)| live);
    let lane_swept = world.sweep_shard_lane(lane);
    // Quiesce: whatever is in flight towards or from the site is
    // delivered (or accounted) before any carrier goes away.
    world.run();
    debug_assert_eq!(
        world.shard_lane_pending(lane).unwrap_or((0, 0)),
        (0, 0),
        "the departing site's lane is empty after quiesce"
    );
    let mut retired = 0usize;
    // Survivors retire their trunks towards the departing gateways;
    // departing nodes retire everything they hold. Both paths flush
    // consumed credits before the carrier closes.
    let every_gateway = grid.all_gateways();
    for rt in runtimes {
        if rt.is_dead() {
            continue;
        }
        if departing.contains(&rt.node()) {
            retired += rt.retire_trunks_to(world, &every_gateway);
        } else {
            retired += rt.retire_trunks_to(world, &departing_gateways);
        }
    }
    // Let the closes and flushed credit batches propagate.
    world.run();
    let stats = grid.drain_site(world, index)?;
    republish_routes(grid, runtimes);
    record(
        world,
        TraceEvent::Reconverged {
            sites_recomputed: stats.sites_recomputed as u32,
            backbone_gateways: stats.bb_sources as u32,
        },
    );
    record(
        world,
        TraceEvent::SiteDrained {
            site: index as u32,
            trunks_retired: retired as u32,
        },
    );
    Ok(DrainReport {
        stats,
        trunks_retired: retired as u32,
        lane_backlog: lane_backlog as u32,
        lane_swept: lane_swept as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::runtimes_for_grid;
    use std::cell::RefCell;
    use std::collections::BTreeMap;

    fn star_grid(world: &mut SimWorld, sites: usize) -> GridTopology {
        let specs: Vec<SiteSpec> = (0..sites)
            .map(|i| SiteSpec::san_cluster(format!("s{i}"), 3).with_gateways(2))
            .collect();
        GridTopology::star(world, &specs, simnet::NetworkSpec::vthd_wan())
    }

    /// Opens a relayed VLink `from -> to`, pushes one payload through and
    /// asserts it arrives intact.
    fn exchange(
        world: &mut SimWorld,
        runtimes: &BTreeMap<NodeId, PadicoRuntime>,
        from: NodeId,
        to: NodeId,
        service: u16,
    ) {
        let accepted: Rc<RefCell<Option<crate::vlink::VLink>>> = Rc::new(RefCell::new(None));
        let slot = accepted.clone();
        runtimes[&to].vlink_listen(world, service, move |_w, v| *slot.borrow_mut() = Some(v));
        let client = runtimes[&from].vlink_connect(world, to, service);
        world.run();
        let server = accepted.borrow().clone().expect("accept reached the peer");
        client.post_write(world, b"through the churned grid");
        let op = server.post_read(world, 24);
        world.run();
        assert_eq!(
            server.complete_read(op).unwrap(),
            b"through the churned grid"
        );
    }

    fn by_node(runtimes: &[PadicoRuntime]) -> BTreeMap<NodeId, PadicoRuntime> {
        runtimes.iter().map(|rt| (rt.node(), rt.clone())).collect()
    }

    #[test]
    fn admitting_a_site_live_routes_and_relays_to_it() {
        let mut world = SimWorld::new(11);
        world.events.enable();
        let mut grid = star_grid(&mut world, 2);
        let prefs = SelectorPreferences::default();
        let (mut runtimes, _proxies) = runtimes_for_grid(&mut world, &grid, prefs.clone());
        // Baseline cross-site traffic.
        exchange(
            &mut world,
            &by_node(&runtimes),
            grid.site(0).node(2),
            grid.site(1).node(2),
            100,
        );
        // A third site joins the running world.
        let admitted = admit_site_live(
            &mut world,
            &mut grid,
            &mut runtimes,
            &SiteSpec::san_cluster("late", 3).with_gateways(2),
            prefs,
        )
        .unwrap();
        assert_eq!(admitted.index, 2);
        assert_eq!(admitted.runtimes.len(), 3);
        assert_eq!(admitted.proxies.len(), 2);
        assert_eq!(
            admitted.stats.sites_recomputed, 1,
            "only the newcomer's intra table is computed"
        );
        // Old nodes reach the new site and vice versa, relayed end to end.
        let nodes = by_node(&runtimes);
        exchange(
            &mut world,
            &nodes,
            grid.site(0).node(2),
            grid.site(2).node(2),
            101,
        );
        exchange(
            &mut world,
            &nodes,
            grid.site(2).node(1),
            grid.site(1).node(2),
            102,
        );
        let events: Vec<TraceEvent> = world.events.events().map(|te| te.event).collect();
        assert!(events.contains(&TraceEvent::SiteAdmitted {
            site: 2,
            gateways: 2,
            nodes: 3,
        }));
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::Reconverged {
                sites_recomputed: 1,
                ..
            }
        )));
    }

    #[test]
    fn draining_a_site_retires_trunks_and_survivors_keep_talking() {
        let mut world = SimWorld::new(12);
        world.events.enable();
        let mut grid = star_grid(&mut world, 3);
        let (runtimes, _proxies) =
            runtimes_for_grid(&mut world, &grid, SelectorPreferences::default());
        let nodes = by_node(&runtimes);
        // Traffic through the soon-to-leave site's gateways, so there are
        // live trunks to retire.
        exchange(
            &mut world,
            &nodes,
            grid.site(0).node(2),
            grid.site(2).node(2),
            100,
        );
        let departed: Vec<NodeId> = grid.site(2).nodes.clone();
        let report = drain_site_live(&mut world, &mut grid, &runtimes, 2).unwrap();
        assert!(
            report.trunks_retired > 0,
            "the pre-warmed trunks towards the departing gateways retire"
        );
        assert_eq!(
            report.stats.sites_recomputed, 0,
            "survivors' intra tables are untouched"
        );
        // The departed site is out of the tables...
        assert!(grid.sites[2].nodes.is_empty());
        for &gone in &departed {
            assert!(!grid.routes.reachable(grid.site(0).node(1), gone));
        }
        // ...and the survivors still relay to each other.
        exchange(
            &mut world,
            &nodes,
            grid.site(0).node(1),
            grid.site(1).node(2),
            101,
        );
        let events: Vec<TraceEvent> = world.events.events().map(|te| te.event).collect();
        assert!(events.contains(&TraceEvent::SiteDraining { site: 2 }));
        assert!(events.contains(&TraceEvent::SiteDrained {
            site: 2,
            trunks_retired: report.trunks_retired,
        }));
    }

    /// Fault injection: drain a site while its sharded-merge lane still
    /// holds live far-future events *and* cancel tombstones. The drain
    /// must quiesce the lane (live work executes, nothing is dropped),
    /// sweep the tombstones off it before detach, and leave the
    /// survivors talking.
    #[test]
    fn drain_under_sharded_load_quiesces_and_sweeps_the_lane() {
        use simnet::{Frame, ProtoId};
        use std::cell::Cell;

        let mut world = SimWorld::new(14);
        world.events.enable();
        let mut grid = star_grid(&mut world, 3);
        let (runtimes, _proxies) =
            runtimes_for_grid(&mut world, &grid, SelectorPreferences::default());
        world.enable_sharding(grid.shard_map(&world));
        let nodes = by_node(&runtimes);
        // Live trunks through the soon-to-leave site.
        exchange(
            &mut world,
            &nodes,
            grid.site(0).node(2),
            grid.site(2).node(2),
            100,
        );

        // Plant load on the departing site's lane: a handler on one of
        // its nodes schedules far-future follow-ups — `schedule_at`
        // inherits the executing event's lane, so they land on the
        // site's lane, not the control lane — and half are cancelled
        // from outside, leaving tombstones behind.
        const LOAD: ProtoId = ProtoId(ProtoId::USER_BASE.0 + 90);
        let victim = grid.site(2).node(2);
        let san = grid.sites[2].san.expect("san_cluster sites have a SAN");
        let ids: Rc<RefCell<Vec<simnet::EventId>>> = Rc::new(RefCell::new(Vec::new()));
        let fired = Rc::new(Cell::new(0u64));
        let (ids2, fired2) = (ids.clone(), fired.clone());
        world.register_handler(victim, LOAD, move |w, _net, _f| {
            let far = w.now() + simnet::SimDuration::from_secs(30);
            for _ in 0..8 {
                let fired = fired2.clone();
                ids2.borrow_mut()
                    .push(w.schedule_at(far, move |_| fired.set(fired.get() + 1)));
            }
        });
        world
            .send_frame(san, Frame::new(grid.site(2).node(1), victim, LOAD, vec![1]))
            .unwrap();
        // Deliver the frame and run the handler, but stop well before
        // the far-future follow-ups so they stay pending on the lane.
        let boundary = world.now() + simnet::SimDuration::from_secs(1);
        world.run_before(boundary);
        for &id in ids.borrow().iter().take(4) {
            assert!(world.cancel(id));
        }
        let (live, tombstoned) = world.shard_lane_pending(3).expect("site 2 lives on lane 3");
        assert!(live >= 4, "live far-future load is on the lane: {live}");
        assert!(
            tombstoned >= 4,
            "cancel tombstones are on the lane: {tombstoned}"
        );

        let report = drain_site_live(&mut world, &mut grid, &runtimes, 2).unwrap();
        assert!(
            report.lane_backlog >= 4,
            "the drain saw the lane's live backlog: {report:?}"
        );
        assert!(
            report.lane_swept >= 4,
            "the drain swept the lane's tombstones: {report:?}"
        );
        assert_eq!(
            fired.get(),
            4,
            "quiesce executed the live follow-ups; the cancelled ones never fired"
        );
        assert_eq!(world.shard_lane_pending(3), Some((0, 0)));
        assert!(report.trunks_retired > 0);
        // Survivors still relay to each other on the sharded executor.
        exchange(
            &mut world,
            &nodes,
            grid.site(0).node(1),
            grid.site(1).node(2),
            101,
        );
        let events: Vec<TraceEvent> = world.events.events().map(|te| te.event).collect();
        assert!(events.contains(&TraceEvent::SiteDraining { site: 2 }));
        assert!(events.contains(&TraceEvent::SiteDrained {
            site: 2,
            trunks_retired: report.trunks_retired,
        }));
    }

    #[test]
    fn gateway_flap_delta_reroutes_runtimes_and_recovers() {
        let mut world = SimWorld::new(13);
        world.events.enable();
        let mut grid = star_grid(&mut world, 2);
        let prefs = SelectorPreferences {
            gateway_failover: true,
            ..Default::default()
        };
        let (runtimes, _proxies) = runtimes_for_grid(&mut world, &grid, prefs);
        let victim = grid.site(1).gateway;
        let secondary = grid.site(1).gateways[1];
        let src = grid.site(0).node(2);
        let dst = grid.site(1).node(2);
        let src_rt = runtimes.iter().find(|rt| rt.node() == src).unwrap().clone();
        let healthy = src_rt.resolved_route(&world, dst).unwrap();
        assert!(healthy.info.relays.contains(&victim));
        let stats = apply_backbone_delta(
            &mut world,
            &mut grid,
            &runtimes,
            &BackboneDelta::GatewayDown(victim),
        )
        .unwrap();
        assert_eq!(
            stats.sites_recomputed, 0,
            "a flap recomputes no intra table"
        );
        // Both the republished table and the knowledge bases avoid it.
        assert_eq!(src_rt.down_gateways(), vec![victim]);
        let rerouted = src_rt.resolved_route(&world, dst).unwrap();
        assert!(rerouted.info.relays.contains(&secondary));
        assert!(!rerouted.info.relays.contains(&victim));
        // Recovery restores the primary.
        apply_backbone_delta(
            &mut world,
            &mut grid,
            &runtimes,
            &BackboneDelta::GatewayUp(victim),
        )
        .unwrap();
        assert!(src_rt.down_gateways().is_empty());
        let back = src_rt.resolved_route(&world, dst).unwrap();
        assert!(back.info.relays.contains(&victim));
        let events: Vec<TraceEvent> = world.events.events().map(|te| te.event).collect();
        assert!(events.contains(&TraceEvent::GatewayDown { node: victim }));
        assert!(events.contains(&TraceEvent::GatewayRestored { node: victim }));
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, TraceEvent::Reconverged { .. }))
                .count(),
            2,
            "one receipt per delta"
        );
    }
}
