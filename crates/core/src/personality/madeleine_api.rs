//! A virtual Madeleine API over Circuit.
//!
//! PadicoTM exposes a (virtual) Madeleine personality so the existing
//! MPICH/Madeleine port runs inside the framework without modification.
//! The API mirrors `madeleine`'s packing interface but is carried by a
//! Circuit, which means it works on *any* network the Circuit can use —
//! not only the SAN.

use bytes::Bytes;
use madeleine::{RecvMode, SendMode};
use simnet::SimWorld;

use crate::circuit::{Circuit, CircuitMessage};

/// The virtual Madeleine personality over one Circuit.
#[derive(Clone)]
pub struct VirtualMadeleine {
    circuit: Circuit,
}

/// An in-progress outgoing message.
pub struct VPackHandle<'a> {
    vm: &'a VirtualMadeleine,
    dst_rank: usize,
    segments: Vec<Bytes>,
}

/// An in-progress incoming message.
pub struct VUnpackHandle {
    message: CircuitMessage,
    next: usize,
}

impl VirtualMadeleine {
    /// Wraps a Circuit in the Madeleine personality.
    pub fn new(circuit: Circuit) -> VirtualMadeleine {
        VirtualMadeleine { circuit }
    }

    /// This node's rank.
    pub fn my_rank(&self) -> usize {
        self.circuit.my_rank()
    }

    /// Group size.
    pub fn size(&self) -> usize {
        self.circuit.size()
    }

    /// `mad_begin_packing`.
    pub fn begin_packing(&self, dst_rank: usize) -> VPackHandle<'_> {
        VPackHandle {
            vm: self,
            dst_rank,
            segments: Vec::new(),
        }
    }

    /// `mad_begin_unpacking`: starts consuming the next received message.
    pub fn begin_unpacking(&self) -> Option<VUnpackHandle> {
        self.circuit
            .poll_message()
            .map(|message| VUnpackHandle { message, next: 0 })
    }

    /// Number of messages waiting.
    pub fn pending(&self) -> usize {
        self.circuit.pending_messages()
    }
}

impl VPackHandle<'_> {
    /// `mad_pack`. The send mode is accepted for API compatibility; the
    /// Circuit below makes its own zero-copy decisions.
    pub fn pack(&mut self, data: impl Into<Bytes>, _mode: SendMode) -> &mut Self {
        self.segments.push(data.into());
        self
    }

    /// `mad_end_packing`.
    pub fn end_packing(self, world: &mut SimWorld) {
        self.vm.circuit.send(world, self.dst_rank, self.segments);
    }
}

impl VUnpackHandle {
    /// Rank of the sender.
    pub fn src_rank(&self) -> usize {
        self.message.src_rank
    }

    /// `mad_unpack`: next segment, in packing order.
    pub fn unpack(&mut self, _mode: RecvMode) -> Option<Bytes> {
        let seg = self.message.segments.get(self.next)?;
        self.next += 1;
        Some(seg.clone())
    }

    /// `mad_end_unpacking`.
    pub fn end_unpacking(self) -> CircuitMessage {
        self.message
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_madeleine_pack_unpack() {
        let mut world = SimWorld::new(0);
        let n = world.add_node("n");
        let circuit = Circuit::new(vec![n], 0);
        let vm = VirtualMadeleine::new(circuit);
        assert_eq!(vm.my_rank(), 0);
        assert_eq!(vm.size(), 1);

        let mut pk = vm.begin_packing(0);
        pk.pack(&b"header"[..], SendMode::Safer);
        pk.pack(&b"body"[..], SendMode::Cheaper);
        pk.end_packing(&mut world);
        world.run();

        assert_eq!(vm.pending(), 1);
        let mut up = vm.begin_unpacking().unwrap();
        assert_eq!(up.src_rank(), 0);
        assert_eq!(&up.unpack(RecvMode::Express).unwrap()[..], b"header");
        assert_eq!(&up.unpack(RecvMode::Cheaper).unwrap()[..], b"body");
        assert!(up.unpack(RecvMode::Cheaper).is_none());
    }
}
