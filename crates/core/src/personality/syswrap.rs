//! SysWrap: a BSD-socket-compatible personality.
//!
//! In PadicoTM, `SysWrap` re-implements the libc socket entry points at
//! link stage so unmodified C/C++/Fortran binaries transparently use the
//! framework. In this Rust reproduction the equivalent is an integer-
//! descriptor API with the familiar verbs (`socket`, `bind`, `listen`,
//! `accept`, `connect`, `send`, `recv`, `close`), implemented as a thin
//! veneer over the runtime's VLink service.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use simnet::{NodeId, SimWorld};

use crate::runtime::PadicoRuntime;
use crate::vlink::VLink;

/// Error codes, loosely modelled on errno values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SockErr {
    /// Descriptor does not exist.
    BadFd,
    /// Operation would block (no data / no pending connection).
    WouldBlock,
    /// The descriptor is not in the right state for the operation.
    InvalidState,
}

enum SocketState {
    /// Created but unbound.
    Fresh,
    /// Bound to a service and listening; holds the accept backlog.
    Listening {
        backlog: Rc<RefCell<VecDeque<VLink>>>,
    },
    /// Connected (either actively or via accept).
    Connected(VLink),
}

/// The SysWrap personality for one node.
pub struct SysWrap {
    runtime: PadicoRuntime,
    sockets: RefCell<HashMap<i32, SocketState>>,
    next_fd: RefCell<i32>,
}

impl SysWrap {
    /// Creates the wrapper over a runtime.
    pub fn new(runtime: PadicoRuntime) -> SysWrap {
        SysWrap {
            runtime,
            sockets: RefCell::new(HashMap::new()),
            next_fd: RefCell::new(3), // 0/1/2 are stdio, as tradition demands
        }
    }

    /// `socket()`: allocates a descriptor.
    pub fn socket(&self) -> i32 {
        let mut next = self.next_fd.borrow_mut();
        let fd = *next;
        *next += 1;
        self.sockets.borrow_mut().insert(fd, SocketState::Fresh);
        fd
    }

    /// `bind()` + `listen()`: starts accepting on `service`.
    pub fn listen(&self, world: &mut SimWorld, fd: i32, service: u16) -> Result<(), SockErr> {
        let mut sockets = self.sockets.borrow_mut();
        match sockets.get_mut(&fd) {
            Some(state @ SocketState::Fresh) => {
                let backlog: Rc<RefCell<VecDeque<VLink>>> = Rc::new(RefCell::new(VecDeque::new()));
                let b = backlog.clone();
                self.runtime.vlink_listen(world, service, move |_w, vlink| {
                    b.borrow_mut().push_back(vlink);
                });
                *state = SocketState::Listening { backlog };
                Ok(())
            }
            Some(_) => Err(SockErr::InvalidState),
            None => Err(SockErr::BadFd),
        }
    }

    /// `accept()`: pops a pending connection, returning a new descriptor.
    pub fn accept(&self, fd: i32) -> Result<i32, SockErr> {
        let vlink = {
            let sockets = self.sockets.borrow();
            match sockets.get(&fd) {
                Some(SocketState::Listening { backlog }) => backlog
                    .borrow_mut()
                    .pop_front()
                    .ok_or(SockErr::WouldBlock)?,
                Some(_) => return Err(SockErr::InvalidState),
                None => return Err(SockErr::BadFd),
            }
        };
        let new_fd = self.socket();
        self.sockets
            .borrow_mut()
            .insert(new_fd, SocketState::Connected(vlink));
        Ok(new_fd)
    }

    /// `connect()`: connects the descriptor to `remote:service`.
    pub fn connect(
        &self,
        world: &mut SimWorld,
        fd: i32,
        remote: NodeId,
        service: u16,
    ) -> Result<(), SockErr> {
        let mut sockets = self.sockets.borrow_mut();
        match sockets.get_mut(&fd) {
            Some(state @ SocketState::Fresh) => {
                let vlink = self.runtime.vlink_connect(world, remote, service);
                *state = SocketState::Connected(vlink);
                Ok(())
            }
            Some(_) => Err(SockErr::InvalidState),
            None => Err(SockErr::BadFd),
        }
    }

    /// `send()`.
    pub fn send(&self, world: &mut SimWorld, fd: i32, data: &[u8]) -> Result<usize, SockErr> {
        match self.sockets.borrow().get(&fd) {
            Some(SocketState::Connected(v)) => Ok(v.post_write(world, data)),
            Some(_) => Err(SockErr::InvalidState),
            None => Err(SockErr::BadFd),
        }
    }

    /// `recv()`: non-blocking read; `WouldBlock` when nothing is available.
    pub fn recv(&self, world: &mut SimWorld, fd: i32, buf: &mut [u8]) -> Result<usize, SockErr> {
        match self.sockets.borrow().get(&fd) {
            Some(SocketState::Connected(v)) => {
                let data = v.read_now(world, buf.len());
                if data.is_empty() && !v.is_finished() {
                    return Err(SockErr::WouldBlock);
                }
                buf[..data.len()].copy_from_slice(&data);
                Ok(data.len())
            }
            Some(_) => Err(SockErr::InvalidState),
            None => Err(SockErr::BadFd),
        }
    }

    /// `close()`.
    pub fn close(&self, world: &mut SimWorld, fd: i32) -> Result<(), SockErr> {
        match self.sockets.borrow_mut().remove(&fd) {
            Some(SocketState::Connected(v)) => {
                v.close(world);
                Ok(())
            }
            Some(_) => Ok(()),
            None => Err(SockErr::BadFd),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::runtimes_for_cluster;
    use crate::selector::SelectorPreferences;
    use simnet::topology;

    #[test]
    fn bsd_style_client_server() {
        let p = topology::san_pair(71);
        let mut world = p.world;
        let nodes = vec![p.a, p.b];
        let rts = runtimes_for_cluster(&mut world, p.san, &nodes, SelectorPreferences::default());
        let server_api = SysWrap::new(rts[1].clone());
        let client_api = SysWrap::new(rts[0].clone());

        let listen_fd = server_api.socket();
        server_api.listen(&mut world, listen_fd, 2000).unwrap();
        assert_eq!(server_api.accept(listen_fd), Err(SockErr::WouldBlock));

        let client_fd = client_api.socket();
        client_api
            .connect(&mut world, client_fd, nodes[1], 2000)
            .unwrap();
        client_api
            .send(&mut world, client_fd, b"legacy code says hi")
            .unwrap();
        world.run();

        let conn_fd = server_api.accept(listen_fd).unwrap();
        let mut buf = [0u8; 64];
        let n = server_api.recv(&mut world, conn_fd, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"legacy code says hi");

        // Error paths.
        assert_eq!(client_api.send(&mut world, 999, b"x"), Err(SockErr::BadFd));
        assert_eq!(
            server_api.recv(&mut world, conn_fd, &mut buf),
            Err(SockErr::WouldBlock)
        );
        assert_eq!(
            client_api.connect(&mut world, client_fd, nodes[1], 2000),
            Err(SockErr::InvalidState)
        );
        client_api.close(&mut world, client_fd).unwrap();
        assert_eq!(client_api.close(&mut world, client_fd), Err(SockErr::BadFd));
    }
}
