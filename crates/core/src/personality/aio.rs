//! Aio: a POSIX.2 asynchronous-I/O style personality over VLink.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use simnet::SimWorld;

use crate::vlink::{ReadOp, VLink};

/// State of an asynchronous operation (mirrors `aio_error` semantics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AioState {
    /// Still in progress (`EINPROGRESS`).
    InProgress,
    /// Completed; `aio_return` will yield the data / byte count.
    Complete,
    /// Already returned to the caller.
    Consumed,
}

/// Handle of an asynchronous operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AioHandle(u64);

enum Op {
    Read(ReadOp),
    Write(usize),
}

/// The asynchronous-I/O personality over one VLink.
pub struct Aio {
    vlink: VLink,
    ops: Rc<RefCell<HashMap<u64, Op>>>,
    next: RefCell<u64>,
}

impl Aio {
    /// Wraps a VLink.
    pub fn new(vlink: VLink) -> Aio {
        Aio {
            vlink,
            ops: Rc::new(RefCell::new(HashMap::new())),
            next: RefCell::new(0),
        }
    }

    fn alloc(&self, op: Op) -> AioHandle {
        let mut next = self.next.borrow_mut();
        let id = *next;
        *next += 1;
        self.ops.borrow_mut().insert(id, op);
        AioHandle(id)
    }

    /// `aio_write`: posts an asynchronous write of the whole buffer.
    pub fn aio_write(&self, world: &mut SimWorld, data: &[u8]) -> AioHandle {
        let n = self.vlink.post_write(world, data);
        self.alloc(Op::Write(n))
    }

    /// `aio_read`: posts an asynchronous read of exactly `len` bytes.
    pub fn aio_read(&self, world: &mut SimWorld, len: usize) -> AioHandle {
        let op = self.vlink.post_read(world, len);
        self.alloc(Op::Read(op))
    }

    /// `aio_error`: the state of an operation.
    pub fn aio_error(&self, h: AioHandle) -> AioState {
        match self.ops.borrow().get(&h.0) {
            None => AioState::Consumed,
            Some(Op::Write(_)) => AioState::Complete,
            Some(Op::Read(op)) => {
                if self.vlink.test(*op) {
                    AioState::Complete
                } else {
                    AioState::InProgress
                }
            }
        }
    }

    /// `aio_return`: takes the result of a completed operation: the data of
    /// a read, or the accepted byte count of a write (as a vec for API
    /// uniformity: its length is the count).
    pub fn aio_return(&self, h: AioHandle) -> Option<Vec<u8>> {
        let op = self.ops.borrow_mut().remove(&h.0)?;
        match op {
            Op::Write(n) => Some(vec![0u8; n]),
            Op::Read(read) => {
                let data = self.vlink.complete_read(read);
                if data.is_none() {
                    // Not complete yet: put it back.
                    self.ops.borrow_mut().insert(h.0, Op::Read(read));
                }
                data
            }
        }
    }

    /// `aio_suspend`-style helper for tests: true when every listed
    /// operation has completed.
    pub fn all_complete(&self, handles: &[AioHandle]) -> bool {
        handles
            .iter()
            .all(|h| self.aio_error(*h) != AioState::InProgress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vlink::VLinkMethod;
    use transport::loopback_pair;

    #[test]
    fn async_read_write_lifecycle() {
        let mut world = SimWorld::new(0);
        let n = world.add_node("n");
        let (a, b) = loopback_pair(&world, n);
        let aio_a = Aio::new(VLink::from_stream(Rc::new(a), VLinkMethod::Loopback));
        let aio_b = Aio::new(VLink::from_stream(Rc::new(b), VLinkMethod::Loopback));

        let w = aio_a.aio_write(&mut world, b"async data");
        assert_eq!(aio_a.aio_error(w), AioState::Complete);
        assert_eq!(aio_a.aio_return(w).unwrap().len(), 10);
        assert_eq!(aio_a.aio_error(w), AioState::Consumed);

        let r = aio_b.aio_read(&mut world, 10);
        assert_eq!(aio_b.aio_error(r), AioState::InProgress);
        assert!(aio_b.aio_return(r).is_none(), "not complete yet");
        world.run();
        assert_eq!(aio_b.aio_error(r), AioState::Complete);
        assert!(aio_b.all_complete(&[r]));
        assert_eq!(aio_b.aio_return(r).unwrap(), b"async data");
    }
}
