//! FastMessage: an FM 2.0-style active-message personality over Circuit.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use bytes::Bytes;
use simnet::SimWorld;

use crate::circuit::Circuit;

/// Identifier of a registered message handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HandlerId(pub u16);

type Handler = Box<dyn FnMut(&mut SimWorld, usize, &[u8])>;

/// The FastMessage personality over one Circuit.
#[derive(Clone)]
pub struct FastMessage {
    circuit: Circuit,
    handlers: Rc<RefCell<HashMap<HandlerId, Handler>>>,
}

impl FastMessage {
    /// Wraps a Circuit. Incoming circuit messages are dispatched to the
    /// handler named in their first segment (FM's "handler id").
    pub fn new(world: &mut SimWorld, circuit: Circuit) -> FastMessage {
        let fm = FastMessage {
            circuit: circuit.clone(),
            handlers: Rc::new(RefCell::new(HashMap::new())),
        };
        let handlers = fm.handlers.clone();
        circuit.set_message_callback(move |world, msg| {
            if msg.segments.is_empty() || msg.segments[0].len() < 2 {
                return;
            }
            let id = HandlerId(u16::from_be_bytes(
                msg.segments[0][0..2].try_into().unwrap(),
            ));
            let payload = if msg.segments.len() > 1 {
                msg.segments[1].to_vec()
            } else {
                Vec::new()
            };
            let h = handlers.borrow_mut().remove(&id);
            if let Some(mut h) = h {
                h(world, msg.src_rank, &payload);
                handlers.borrow_mut().entry(id).or_insert(h);
            }
        });
        let _ = world;
        fm
    }

    /// Registers (or replaces) the handler for `id`.
    pub fn register_handler(
        &self,
        id: HandlerId,
        handler: impl FnMut(&mut SimWorld, usize, &[u8]) + 'static,
    ) {
        self.handlers.borrow_mut().insert(id, Box::new(handler));
    }

    /// `FM_send`: sends `payload` to `dst_rank`, to be handled by `id`.
    pub fn send(&self, world: &mut SimWorld, dst_rank: usize, id: HandlerId, payload: &[u8]) {
        self.circuit.send(
            world,
            dst_rank,
            vec![
                Bytes::copy_from_slice(&id.0.to_be_bytes()),
                Bytes::copy_from_slice(payload),
            ],
        );
    }

    /// `FM_send_4`: the short-message variant carrying one machine word.
    pub fn send_4(&self, world: &mut SimWorld, dst_rank: usize, id: HandlerId, word: u32) {
        self.send(world, dst_rank, id, &word.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn handlers_receive_messages() {
        let mut world = SimWorld::new(0);
        let n = world.add_node("n");
        // A 1-node circuit is enough to exercise the personality itself.
        let circuit = Circuit::new(vec![n], 0);
        let fm = FastMessage::new(&mut world, circuit);
        let sum = Rc::new(Cell::new(0u32));
        let s = sum.clone();
        fm.register_handler(HandlerId(7), move |_w, src, payload| {
            assert_eq!(src, 0);
            s.set(s.get() + u32::from_be_bytes(payload[0..4].try_into().unwrap()));
        });
        fm.send_4(&mut world, 0, HandlerId(7), 40);
        fm.send_4(&mut world, 0, HandlerId(7), 2);
        fm.send(
            &mut world,
            0,
            HandlerId(99),
            b"no handler, silently dropped",
        );
        world.run();
        assert_eq!(sum.get(), 42);
    }
}
