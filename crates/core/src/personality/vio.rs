//! Vio: the explicit socket-like personality over VLink.

use simnet::SimWorld;

use crate::vlink::{VLink, VLinkMethod};

/// A socket-like handle over a VLink.
///
/// The API mirrors what a middleware system expects from a non-blocking
/// socket: `write` queues data, `read` returns whatever has arrived,
/// `poll`-style readiness is available through [`VioSocket::readable`].
#[derive(Clone)]
pub struct VioSocket {
    vlink: VLink,
}

impl VioSocket {
    /// Wraps a VLink in the Vio personality.
    pub fn new(vlink: VLink) -> VioSocket {
        VioSocket { vlink }
    }

    /// The underlying VLink.
    pub fn vlink(&self) -> &VLink {
        &self.vlink
    }

    /// The method carrying this socket (for diagnostics).
    pub fn method(&self) -> VLinkMethod {
        self.vlink.method()
    }

    /// Non-blocking write; returns the number of bytes accepted.
    pub fn write(&self, world: &mut SimWorld, data: &[u8]) -> usize {
        self.vlink.post_write(world, data)
    }

    /// Non-blocking read into `buf`; returns the number of bytes read.
    pub fn read(&self, world: &mut SimWorld, buf: &mut [u8]) -> usize {
        let data = self.vlink.read_now(world, buf.len());
        buf[..data.len()].copy_from_slice(&data);
        data.len()
    }

    /// True if data is available to read.
    pub fn readable(&self) -> bool {
        self.vlink.available() > 0
    }

    /// True once the connection is established.
    pub fn connected(&self) -> bool {
        self.vlink.is_established()
    }

    /// True once the peer has closed and everything was read.
    pub fn eof(&self) -> bool {
        self.vlink.is_finished()
    }

    /// Closes the socket.
    pub fn close(&self, world: &mut SimWorld) {
        self.vlink.close(world);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;
    use transport::loopback_pair;

    #[test]
    fn socket_like_roundtrip() {
        let mut world = SimWorld::new(0);
        let n = world.add_node("n");
        let (a, b) = loopback_pair(&world, n);
        let sa = VioSocket::new(VLink::from_stream(Rc::new(a), VLinkMethod::Loopback));
        let sb = VioSocket::new(VLink::from_stream(Rc::new(b), VLinkMethod::Loopback));
        assert!(sa.connected());
        assert_eq!(sa.write(&mut world, b"hello vio"), 9);
        world.run();
        assert!(sb.readable());
        let mut buf = [0u8; 64];
        let n = sb.read(&mut world, &mut buf);
        assert_eq!(&buf[..n], b"hello vio");
        assert!(!sb.readable());
        sa.close(&mut world);
        world.run();
        assert!(sb.eof());
    }
}
