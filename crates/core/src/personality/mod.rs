//! Personalities: thin wrappers exposing standard APIs on top of the
//! abstract interfaces.
//!
//! A personality does no protocol adaptation and no paradigm translation —
//! it only adapts the *syntax* so existing middleware and legacy code can
//! run unmodified on PadicoTM:
//!
//! * [`vio`] — an explicit socket-like API over VLink;
//! * [`syswrap`] — a BSD-socket-compatible API (integer descriptors) for
//!   legacy code, over VLink;
//! * [`aio`] — a POSIX.2 asynchronous-I/O style API over VLink;
//! * [`fastmessage`] — a FastMessage 2.0 style API over Circuit;
//! * [`madeleine_api`] — a virtual Madeleine API over Circuit, so an
//!   MPICH/Madeleine port runs unchanged.

pub mod aio;
pub mod fastmessage;
pub mod madeleine_api;
pub mod syswrap;
pub mod vio;

pub use aio::{Aio, AioHandle, AioState};
pub use fastmessage::FastMessage;
pub use madeleine_api::VirtualMadeleine;
pub use syswrap::SysWrap;
pub use vio::VioSocket;
