//! # padico-core — the PadicoTM dual-abstraction communication framework
//!
//! This crate is the Rust reproduction of the paper's contribution: a
//! communication framework for grids that decouples middleware systems from
//! the networks they run on, organized in three layers:
//!
//! 1. **Arbitration** — provided by the [`netaccess`] crate (MadIO, SysIO,
//!    fair polling core), re-exported here for convenience.
//! 2. **Abstraction** — two paradigm-specific abstract interfaces:
//!    * [`vlink::VLink`] for the distributed paradigm (client/server,
//!      dynamic connections, streaming, asynchronous operations);
//!    * [`circuit::Circuit`] for the parallel paradigm (groups, incremental
//!      packing, per-link adapters);
//!      plus the [`selector`] that picks the adapter for each link from the
//!      topology knowledge base and user preferences, and the
//!      [`madio_stream`] cross-paradigm driver (streams over a SAN).
//! 3. **Personalities** — thin syntax adapters in [`personality`]: Vio,
//!    SysWrap, Aio, FastMessage and a virtual Madeleine API.
//!
//! The [`runtime::PadicoRuntime`] ties the three layers together on each
//! node; middleware systems (see the `middleware` crate) are written
//! against it and never touch the network directly.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod churn;
pub mod circuit;
pub mod madio_stream;
pub mod personality;
pub mod relay;
pub mod runtime;
pub mod selector;
pub mod trunk;
pub mod vlink;

pub use churn::{
    admit_site_live, apply_backbone_delta, drain_site_live, republish_routes, AdmittedSite,
    DrainReport,
};
pub use circuit::{
    Circuit, CircuitLink, CircuitLinkKind, CircuitMessage, MadIoCircuitLink, StreamCircuitLink,
};
pub use madio_stream::{MadStream, MadStreamDriver};
pub use relay::{install_gateway_proxy, GatewayProxy, GatewayProxyStats, GATEWAY_PROXY_SERVICE};
pub use runtime::{
    enable_site_sharding, runtimes_for_cluster, runtimes_for_grid, runtimes_for_lan, PadicoRuntime,
};
pub use selector::{
    BackpressureMode, LinkDecision, ResolvedRoute, RouteCacheStats, SelectorPreferences, TopologyKb,
};
pub use trunk::{
    TrunkCreditStats, TrunkFlowConfig, TrunkHealthConfig, TrunkMemoryStats, TrunkMux, TrunkStream,
};
pub use vlink::{ReadOp, VLink, VLinkEvent, VLinkMethod};
