//! Stream-level gateway relaying: SOCKS-style proxies on gateway nodes.
//!
//! The frame-level [`gridtopo::RelayFabric`] relays individual frames; this
//! module relays whole *byte streams*, which is what VLinks and Circuit
//! links need. Every gateway node runs a proxy service: a connecting node
//! sends a small header naming the final destination node and service, the
//! gateway opens the onward leg — chosen by its own selector, so the leg
//! may itself be a SAN stream, plain TCP, Parallel Streams, or another
//! relayed hop towards the next gateway — and then splices the two streams
//! together, store-and-forwarding bytes in both directions.
//!
//! Each leg runs its own transport (TCP on the site LAN, Parallel Streams
//! on the backbone, a MadIO stream on the destination SAN…), so
//! reliability and congestion control are per-hop, exactly like a real
//! application-level gateway.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use bytes::Bytes;
use simnet::{
    FlightRecorder, NetworkClass, NodeId, SimDuration, SimWorld, StreamTransition, TraceEvent,
};
use transport::{
    ByteStream, ByteStreamExt, ParallelStream, ParallelStreamConfig, ReadableCallback, SegBuf,
};

use crate::runtime::PadicoRuntime;
use crate::selector::{BackpressureMode, SelectorPreferences};
use crate::trunk::{TrunkFlowConfig, TrunkMux, TrunkStream};
use crate::vlink::{VLink, VLinkEvent};

/// The well-known service port gateway proxies listen on.
pub const GATEWAY_PROXY_SERVICE: u16 = 45_000;

/// The port the proxy's persistent trunk carrier (a Parallel Streams
/// bundle multiplexing every relayed stream between a gateway pair)
/// listens on.
pub const GATEWAY_PROXY_TRUNK_SERVICE: u16 = GATEWAY_PROXY_SERVICE + 10_000;

/// Striping chunk of trunk carriers: small enough that modest relayed
/// transfers spread over every member connection of the bundle.
pub(crate) const TRUNK_STRIPE_CHUNK: usize = 4096;

/// Warm-up padding pushed through a trunk once at establishment —
/// roughly one bandwidth-delay product of the reference WAN (12.5 MB/s ×
/// 16 ms ≈ 200 kB), enough to take the carrier out of slow start. Used
/// as the fallback when no [`gridtopo::PathInfo`] towards the gateway is
/// available; see [`warmup_bytes_for`].
pub(crate) const TRUNK_WARMUP_BYTES: usize = 256 * 1024;

/// Sizes a trunk's warm-up padding from the cached [`gridtopo::PathInfo`]
/// of the path towards the gateway: two bandwidth-delay products of the
/// actual route (bottleneck rate × one-way latency), clamped so degenerate
/// paths neither skip slow start (floor) nor flood the first carrier
/// (ceiling).
pub(crate) fn warmup_bytes_for(info: &gridtopo::PathInfo) -> usize {
    if !info.bottleneck_bytes_per_sec.is_finite() {
        return TRUNK_WARMUP_BYTES;
    }
    let bdp = info.bottleneck_bytes_per_sec * info.total_latency.as_secs_f64();
    ((2.0 * bdp) as usize).clamp(64 * 1024, 512 * 1024)
}

/// Magic tag opening every proxy header.
const PROXY_MAGIC: u16 = 0x9D1C;

/// Header: magic(2) + flags(1) + ttl(1) + dst(4) + service(2).
const PROXY_HEADER_BYTES: usize = 10;

/// Flag bit: the onward leg must be a plain byte stream on Circuit port
/// conventions (never a MadIO VLink stream) — set for relayed Circuit
/// links.
const FLAG_CIRCUIT_STREAM: u8 = 0b0000_0001;

/// Initial time-to-live of a proxied connection (gateway hops).
pub(crate) const PROXY_TTL: u8 = 8;

/// Onward-driver backlog (unacknowledged plus credit-parked bytes) above
/// which a splice stops pulling off its incoming leg and polls instead:
/// the gateway's store-and-forward memory for one relayed stream is
/// bounded instead of ballooning when the downstream leg is the
/// bottleneck.
const SPLICE_HIGH_WATER: u64 = 1024 * 1024;

/// Poll interval of a paused splice.
const SPLICE_RETRY: SimDuration = SimDuration::from_micros(200);

/// The trunk flow-control configuration implied by the user preferences:
/// credit windows when `relay_backpressure` is `Credit`, none otherwise.
/// Both trunk ends derive it from the same preference, so they agree.
pub(crate) fn trunk_flow(prefs: &SelectorPreferences) -> Option<TrunkFlowConfig> {
    match prefs.relay_backpressure {
        BackpressureMode::Credit => Some(TrunkFlowConfig {
            trunk_budget: prefs.gateway_trunk_budget,
            ..Default::default()
        }),
        BackpressureMode::Drop => None,
    }
}

/// Ceiling on re-dials per relayed stream, so cascading gateway deaths
/// cannot loop a stream forever (each migration marks another gateway
/// down, and sites have few gateways).
const MAX_MIGRATIONS: u32 = 4;

/// Accounting for one gateway's stream proxy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayProxyStats {
    /// Connections accepted and spliced onwards.
    pub connections_relayed: u64,
    /// Connections refused (bad header or TTL exhausted).
    pub connections_refused: u64,
    /// Bytes forwarded from the connecting side towards the destination.
    pub bytes_forward: u64,
    /// Bytes forwarded from the destination back to the connecting side.
    pub bytes_backward: u64,
    /// Bytes a splice leg refused (the carrying stream died underneath);
    /// they are lost and accounted, never silently retried.
    pub bytes_refused: u64,
}

/// Handle to a gateway's proxy accounting.
#[derive(Clone)]
pub struct GatewayProxy {
    node: NodeId,
    stats: Rc<RefCell<GatewayProxyStats>>,
}

impl GatewayProxy {
    /// The gateway node this proxy runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// A snapshot of the proxy's accounting.
    pub fn stats(&self) -> GatewayProxyStats {
        *self.stats.borrow()
    }
}

/// Encodes the proxy header for a connection towards `(dst, service)`.
fn encode_header(dst: NodeId, service: u16, flags: u8, ttl: u8) -> [u8; PROXY_HEADER_BYTES] {
    let mut h = [0u8; PROXY_HEADER_BYTES];
    h[0..2].copy_from_slice(&PROXY_MAGIC.to_be_bytes());
    h[2] = flags;
    h[3] = ttl;
    h[4..8].copy_from_slice(&dst.0.to_be_bytes());
    h[8..10].copy_from_slice(&service.to_be_bytes());
    h
}

fn decode_header(h: &[u8]) -> Option<(u8, u8, NodeId, u16)> {
    if h.len() < PROXY_HEADER_BYTES {
        return None;
    }
    let magic = u16::from_be_bytes([h[0], h[1]]);
    if magic != PROXY_MAGIC {
        return None;
    }
    let flags = h[2];
    let ttl = h[3];
    let dst = NodeId(u32::from_be_bytes([h[4], h[5], h[6], h[7]]));
    let service = u16::from_be_bytes([h[8], h[9]]);
    Some((flags, ttl, dst, service))
}

/// Opens a relayed connection from `rt`'s node towards `(dst, service)`
/// through the gateway `via` on `network`, returning the raw stream with
/// the proxy header already sent. `circuit_stream` selects Circuit port
/// conventions for the final leg. Fresh connections start at
/// [`PROXY_TTL`]; gateways pass the decremented remainder.
#[allow(clippy::too_many_arguments)]
pub(crate) fn connect_through_gateway_with_ttl(
    world: &mut SimWorld,
    rt: &PadicoRuntime,
    network: simnet::NetworkId,
    via: NodeId,
    dst: NodeId,
    service: u16,
    circuit_stream: bool,
    ttl: u8,
) -> Rc<dyn ByteStream> {
    let flags = if circuit_stream {
        FLAG_CIRCUIT_STREAM
    } else {
        0
    };
    if rt.preferences().gateway_failover {
        // Failover mode: every relayed leg — intra-site ones included —
        // rides a liveness-monitored trunk, wrapped so a dead gateway
        // triggers automatic re-dial through a surviving one.
        return Rc::new(FailoverStream::connect(
            world, rt, network, via, dst, service, flags, ttl,
        ));
    }
    let wan_class = matches!(
        world.network(network).spec.class,
        NetworkClass::Wan | NetworkClass::Internet
    );
    let conn: Rc<dyn ByteStream> = if wan_class {
        // WAN-class leg: ride the persistent trunk towards the gateway —
        // no per-stream WAN handshake, warm congestion state shared with
        // every other relayed stream crossing this gateway pair.
        Rc::new(rt.trunk_stream(world, network, via))
    } else {
        // Intra-site leg (SAN/LAN): a per-stream connection is cheap.
        Rc::new(
            rt.netaccess()
                .sysio()
                .connect(world, network, via, GATEWAY_PROXY_SERVICE),
        )
    };
    let header = encode_header(dst, service, flags, ttl);
    conn.send_all(world, &header);
    conn
}

// --------------------------------------------------------------------- //
// Gateway failover: migratable relayed streams
// --------------------------------------------------------------------- //

struct FoInner {
    rt: PadicoRuntime,
    dst: NodeId,
    service: u16,
    flags: u8,
    ttl: u8,
    /// Credit mode: acknowledged == consumed by the far splice, so resume
    /// offsets are exact. Without flow control there is no honest ack —
    /// migration re-dials but bytes in flight at the kill are lost
    /// (accounted), matching drop-mode philosophy.
    flow: bool,
    /// The trunk stream currently carrying this connection.
    current: TrunkStream,
    /// App-byte offset (excluding the proxy header) where the current
    /// incarnation's data starts.
    resume_base: u64,
    /// Refcounted copies of sent-but-unacknowledged app bytes,
    /// `[retx_base, sent)`; trimmed as credits come back, resent on
    /// migration. Empty in non-flow mode.
    retx: SegBuf,
    retx_base: u64,
    /// App bytes accepted from the layer above.
    sent: u64,
    /// Receive-side leftovers salvaged from a dead incarnation, served
    /// before the current stream's buffer.
    pending_rx: SegBuf,
    self_closed: bool,
    /// Dead for good: no surviving route (or the migration cap hit).
    failed: bool,
    migrations: u32,
    /// The gateway currently carrying the stream (for forensics).
    via: NodeId,
    /// Connection id stamped into `StreamMigrated` trace events.
    stream_id: u64,
    /// Bounded per-stream forensic timeline (shared with the runtime so
    /// fault tests can dump it after the fact).
    recorder: Rc<RefCell<FlightRecorder>>,
}

/// A relayed byte stream that survives gateway death: it rides one
/// multiplexed trunk stream at a time, and when trunk liveness declares
/// the carrier dead it *migrates* — re-resolves the route (the dead
/// gateway is marked down by then), re-dials the trunk towards the
/// surviving gateway, replays the proxy header and every unacknowledged
/// byte, and carries on. The handle (and the VLink riding it) never
/// changes.
///
/// In credit mode the far gateway's fail-stop sequence flushes its
/// consumed-credit batches before the carrier closes, so "acknowledged"
/// equals "consumed and forwarded by the splice": the resend resumes at
/// exactly the first byte the old path did not deliver — zero
/// acknowledged bytes lost, zero duplicated.
#[derive(Clone)]
pub(crate) struct FailoverStream {
    inner: Rc<RefCell<FoInner>>,
    /// The consumer's readable callback, stable across migrations.
    readable: Rc<RefCell<Option<ReadableCallback>>>,
}

impl FailoverStream {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn connect(
        world: &mut SimWorld,
        rt: &PadicoRuntime,
        network: simnet::NetworkId,
        via: NodeId,
        dst: NodeId,
        service: u16,
        flags: u8,
        ttl: u8,
    ) -> FailoverStream {
        let mux = rt.ensure_trunk(world, network, via);
        let stream = mux.open();
        let flow = trunk_flow(&rt.preferences()).is_some();
        let stream_id = world.events.next_cause().0;
        let recorder = Rc::new(RefCell::new(FlightRecorder::new(format!(
            "stream#{stream_id} {src}->{dst}:{service}",
            src = rt.node()
        ))));
        recorder
            .borrow_mut()
            .record(world.now(), StreamTransition::Dialed { gateway: via });
        rt.register_flight_recorder(recorder.clone());
        let fo = FailoverStream {
            inner: Rc::new(RefCell::new(FoInner {
                rt: rt.clone(),
                dst,
                service,
                flags,
                ttl,
                flow,
                current: stream.clone(),
                resume_base: 0,
                retx: SegBuf::new(),
                retx_base: 0,
                sent: 0,
                pending_rx: SegBuf::new(),
                self_closed: false,
                failed: false,
                migrations: 0,
                via,
                stream_id,
                recorder,
            })),
            readable: Rc::new(RefCell::new(None)),
        };
        fo.attach_incarnation(world, &mux, &stream);
        fo
    }

    /// Wires one incarnation: forwards its readable events to the stable
    /// consumer callback, registers the re-dial hook on its mux, and
    /// sends the proxy header.
    fn attach_incarnation(&self, world: &mut SimWorld, mux: &TrunkMux, stream: &TrunkStream) {
        let readable = self.readable.clone();
        stream.set_readable_callback(Box::new(move |world| {
            let cb = readable.borrow_mut().take();
            if let Some(mut cb) = cb {
                cb(world);
                let mut slot = readable.borrow_mut();
                if slot.is_none() {
                    *slot = Some(cb);
                }
            }
        }));
        let weak = Rc::downgrade(&self.inner);
        let readable = self.readable.clone();
        // Migration runs whatever the cause: a peer death re-routes around
        // the corpse, a locally severed trunk (drop_trunks) re-dials the
        // same still-healthy gateway.
        mux.on_dead(move |world, _locally_severed| {
            if let Some(inner) = weak.upgrade() {
                FailoverStream { inner, readable }.migrate(world);
            }
        });
        let (dst, service, flags, ttl) = {
            let inner = self.inner.borrow();
            let (recorder, via, stream_id) = (inner.recorder.clone(), inner.via, inner.stream_id);
            stream.set_stall_hook(move |world, stalled| {
                let transition = if stalled {
                    StreamTransition::CreditStalled
                } else {
                    StreamTransition::CreditResumed
                };
                recorder.borrow_mut().record(world.now(), transition);
                if world.events.is_enabled() {
                    let now = world.now();
                    let event = if stalled {
                        TraceEvent::CreditStall {
                            node: via,
                            stream: stream_id,
                        }
                    } else {
                        TraceEvent::CreditResume {
                            node: via,
                            stream: stream_id,
                        }
                    };
                    world.events.record(now, event);
                }
            });
            (inner.dst, inner.service, inner.flags, inner.ttl)
        };
        let header = encode_header(dst, service, flags, ttl);
        stream.send_bytes(world, Bytes::copy_from_slice(&header));
    }

    /// Trims the retransmission buffer by what the peer has acknowledged
    /// (consumed-and-credited), including across migrations.
    fn trim(&self) {
        let mut inner = self.inner.borrow_mut();
        if !inner.flow {
            return;
        }
        let credits = inner.current.credit_stats().credits_received;
        let acked =
            (inner.resume_base + credits.saturating_sub(PROXY_HEADER_BYTES as u64)).min(inner.sent);
        if acked > inner.retx_base {
            let n = (acked - inner.retx_base) as usize;
            let n = n.min(inner.retx.len());
            inner.retx.consume(n);
            inner.retx_base = acked;
        }
    }

    /// Schedules the consumer's readable callback (migrations and terminal
    /// failures must wake blocked readers).
    fn wake(&self, world: &mut SimWorld) {
        let readable = self.readable.clone();
        world.schedule_after(SimDuration::ZERO, move |world| {
            let cb = readable.borrow_mut().take();
            if let Some(mut cb) = cb {
                cb(world);
                let mut slot = readable.borrow_mut();
                if slot.is_none() {
                    *slot = Some(cb);
                }
            }
        });
    }

    /// The mux under the current incarnation died: salvage, re-route,
    /// re-dial, replay.
    fn migrate(&self, world: &mut SimWorld) {
        self.trim();
        enum Action {
            Done,
            Fail,
            Redial {
                network: simnet::NetworkId,
                via: NodeId,
            },
        }
        let action = {
            let mut inner = self.inner.borrow_mut();
            if inner.failed || !inner.current.mux().is_dead() {
                // Stale hook (the stream already moved on) or nothing to do.
                return;
            }
            let via = inner.via;
            inner
                .recorder
                .borrow_mut()
                .record(world.now(), StreamTransition::CarrierDead { gateway: via });
            // Salvage whatever the dead incarnation had already received.
            loop {
                let data = inner.current.recv_bytes(world, usize::MAX);
                if data.is_empty() {
                    break;
                }
                inner.pending_rx.push_bytes(data);
            }
            if inner.rt.is_dead() {
                // Our own node is the dead gateway: nothing to resume.
                inner.failed = true;
                Action::Fail
            } else if inner.self_closed && inner.retx.is_empty() {
                // The stream was closed and nothing unacknowledged
                // remains to replay (in non-flow mode `retx` is always
                // empty — drop-mode philosophy accepts the in-flight
                // loss): the stream ended with the old path; re-dialing
                // would only deliver a ghost zero-byte connection.
                Action::Done
            } else if inner.migrations >= MAX_MIGRATIONS {
                inner.failed = true;
                Action::Fail
            } else {
                // Re-resolve towards the destination; the runtime's own
                // death hook (registered before ours) has already marked
                // the dead gateway down, so this avoids it.
                let rt = inner.rt.clone();
                let dst = inner.dst;
                drop(inner);
                let resolved = rt.resolved_route(world, dst);
                let mut inner = self.inner.borrow_mut();
                match resolved.as_ref().and_then(|r| r.route.first_hop()) {
                    Some(first) if first.node != dst => Action::Redial {
                        network: first.network,
                        via: first.node,
                    },
                    // No surviving relayed route (or the pair became
                    // direct, which a proxy stream cannot carry).
                    _ => {
                        inner.failed = true;
                        Action::Fail
                    }
                }
            }
        };
        match action {
            Action::Done => {}
            Action::Fail => {
                let inner = self.inner.borrow();
                inner
                    .recorder
                    .borrow_mut()
                    .record(world.now(), StreamTransition::Failed);
                drop(inner);
                self.wake(world)
            }
            Action::Redial { network, via } => {
                let (rt, chunks, self_closed) = {
                    let inner = self.inner.borrow();
                    let chunks: Vec<Bytes> = inner.retx.peek_chunks().cloned().collect();
                    (inner.rt.clone(), chunks, inner.self_closed)
                };
                let mux = rt.ensure_trunk(world, network, via);
                let stream = mux.open();
                {
                    let mut inner = self.inner.borrow_mut();
                    inner.migrations += 1;
                    inner.resume_base = inner.retx_base;
                    inner.current = stream.clone();
                    let from = inner.via;
                    inner.via = via;
                    let replayed: u64 = chunks.iter().map(|c| c.len() as u64).sum();
                    let now = world.now();
                    let mut rec = inner.recorder.borrow_mut();
                    rec.record(now, StreamTransition::Migrated { from, to: via });
                    rec.record(now, StreamTransition::Redialed { gateway: via });
                    if replayed > 0 {
                        rec.record(now, StreamTransition::Replayed { bytes: replayed });
                    }
                    drop(rec);
                    if world.events.is_enabled() {
                        world.events.record(
                            now,
                            TraceEvent::StreamMigrated {
                                stream: inner.stream_id,
                                from,
                                to: via,
                            },
                        );
                    }
                }
                self.attach_incarnation(world, &mux, &stream);
                for chunk in chunks {
                    stream.send_bytes(world, chunk);
                }
                if self_closed {
                    stream.close(world);
                }
                self.wake(world);
            }
        }
    }
}

impl ByteStream for FailoverStream {
    fn send(&self, world: &mut SimWorld, data: &[u8]) -> usize {
        self.send_bytes(world, Bytes::copy_from_slice(data))
    }

    fn send_bytes(&self, world: &mut SimWorld, data: Bytes) -> usize {
        let stream = {
            let mut inner = self.inner.borrow_mut();
            if inner.failed || inner.self_closed {
                return 0;
            }
            inner.sent += data.len() as u64;
            if inner.flow {
                inner.retx.push_bytes(data.clone());
            }
            inner.current.clone()
        };
        let n = stream.send_bytes(world, data);
        self.trim();
        n
    }

    fn available(&self) -> usize {
        let inner = self.inner.borrow();
        inner.pending_rx.len() + inner.current.available()
    }

    fn recv(&self, world: &mut SimWorld, max: usize) -> Vec<u8> {
        let salvaged = {
            let mut inner = self.inner.borrow_mut();
            if inner.pending_rx.is_empty() {
                None
            } else {
                Some(inner.pending_rx.read_into(max))
            }
        };
        match salvaged {
            Some(data) => data,
            None => {
                let stream = self.inner.borrow().current.clone();
                stream.recv(world, max)
            }
        }
    }

    fn recv_bytes(&self, world: &mut SimWorld, max: usize) -> Bytes {
        let salvaged = {
            let mut inner = self.inner.borrow_mut();
            if inner.pending_rx.is_empty() {
                None
            } else {
                Some(inner.pending_rx.pop_chunk(max))
            }
        };
        match salvaged {
            Some(data) => data,
            None => {
                let stream = self.inner.borrow().current.clone();
                stream.recv_bytes(world, max)
            }
        }
    }

    fn is_established(&self) -> bool {
        self.inner.borrow().current.is_established()
    }

    fn is_finished(&self) -> bool {
        let inner = self.inner.borrow();
        inner.pending_rx.is_empty() && (inner.failed || inner.current.is_finished())
    }

    fn close(&self, world: &mut SimWorld) {
        let stream = {
            let mut inner = self.inner.borrow_mut();
            inner.self_closed = true;
            inner
                .recorder
                .borrow_mut()
                .record(world.now(), StreamTransition::Closed);
            inner.current.clone()
        };
        stream.close(world);
    }

    fn set_readable_callback(&self, cb: ReadableCallback) {
        *self.readable.borrow_mut() = Some(cb);
    }

    fn bytes_acked(&self) -> u64 {
        let inner = self.inner.borrow();
        if inner.flow {
            inner.retx_base
        } else {
            inner.current.bytes_acked()
        }
    }

    fn bytes_unacked(&self) -> u64 {
        // `retx` and the trunk's parked bytes overlap, so the max (not the
        // sum) is the honest backlog bound the splice pump paces against.
        let inner = self.inner.borrow();
        inner.current.bytes_unacked().max(inner.retx.len() as u64)
    }
}

/// Installs the stream proxy on `rt`'s node, making it a gateway for
/// relayed VLinks and Circuit links. Returns the accounting handle.
///
/// The runtime must have a route table installed (see
/// [`PadicoRuntime::set_route_table`]) for multi-gateway chains to
/// resolve.
pub fn install_gateway_proxy(world: &mut SimWorld, rt: &PadicoRuntime) -> GatewayProxy {
    let proxy = GatewayProxy {
        node: rt.node(),
        stats: Rc::new(RefCell::new(GatewayProxyStats::default())),
    };
    {
        let weak = Rc::downgrade(&proxy.stats);
        let gw = proxy.node.0.to_string();
        world.metrics.register_collector(move |b| {
            let Some(stats) = weak.upgrade() else { return };
            let s = *stats.borrow();
            let labels: &[(&str, &str)] = &[("gw", gw.as_str())];
            b.counter(
                "relay.proxy.connections_relayed",
                labels,
                s.connections_relayed,
            );
            b.counter(
                "relay.proxy.connections_refused",
                labels,
                s.connections_refused,
            );
            b.counter("relay.proxy.bytes_forward", labels, s.bytes_forward);
            b.counter("relay.proxy.bytes_backward", labels, s.bytes_backward);
            b.counter("relay.proxy.bytes_refused", labels, s.bytes_refused);
        });
    }
    let stats = proxy.stats.clone();
    let rt2 = rt.clone();
    let stats2 = stats.clone();
    let registered =
        rt.clone()
            .netaccess()
            .sysio()
            .listen(GATEWAY_PROXY_SERVICE, move |_world, conn| {
                splice_incoming(&rt2, &stats2, Rc::new(conn));
            });
    assert!(
        registered,
        "gateway proxy port {GATEWAY_PROXY_SERVICE} is already taken on this node"
    );
    // Trunk carriers arrive as Parallel Streams bundles on the offset
    // port; each carries a multiplexed stream per relayed connection, and
    // every demultiplexed stream is spliced exactly like a plain one.
    let rt2 = rt.clone();
    let width = rt.preferences().trunk_width();
    ParallelStream::listen(
        world,
        &rt.netaccess().sysio().tcp(),
        GATEWAY_PROXY_TRUNK_SERVICE,
        ParallelStreamConfig {
            n_streams: width,
            chunk_size: TRUNK_STRIPE_CHUNK,
        },
        move |world, carrier| {
            let rt3 = rt2.clone();
            let stats3 = stats.clone();
            let flow = trunk_flow(&rt2.preferences());
            let mux = TrunkMux::acceptor(Rc::new(carrier), flow, move |_world, stream| {
                let weak_mux = stream.mux().downgrade();
                let probe: Rc<dyn Fn() -> bool> = Rc::new(move || weak_mux.is_dead());
                splice_incoming_with_probe(&rt3, &stats3, Rc::new(stream), Some(probe));
            });
            if rt2.preferences().gateway_failover {
                mux.enable_health(world, crate::trunk::TrunkHealthConfig::default());
            }
            rt2.register_accepted_trunk(mux);
        },
    );
    proxy
}

/// Eagerly establishes this gateway's outgoing trunks towards the given
/// peer gateways on every WAN-class network they share, so the first
/// relayed stream finds a warm carrier instead of paying the WAN
/// handshake. Only nodes running a gateway proxy may be named in `peers`
/// (nothing else listens for trunk carriers — dialing a non-gateway would
/// retry its SYNs forever). Called by `runtimes_for_grid`, which knows
/// the grid's gateway set; lazy establishment on first use remains the
/// fallback for everything else.
pub fn establish_gateway_trunks(world: &mut SimWorld, rt: &PadicoRuntime, peers: &[NodeId]) {
    for net in world.network_ids() {
        let spec_class = world.network(net).spec.class;
        if !matches!(spec_class, NetworkClass::Wan | NetworkClass::Internet) {
            continue;
        }
        let members = world.network(net).members().to_vec();
        if !members.contains(&rt.node()) {
            continue;
        }
        for m in members {
            if m != rt.node() && peers.contains(&m) {
                rt.ensure_trunk(world, net, m);
            }
        }
    }
}

/// Installs the proxy splice on one accepted connection: buffer the proxy
/// header, open the onward leg, then store-and-forward in both directions.
///
/// The forward pump is *occupancy-aware*: while the onward driver's
/// backlog (unacknowledged bytes plus anything a flow-controlled trunk has
/// parked for want of credits) exceeds [`SPLICE_HIGH_WATER`], the pump
/// leaves arriving data on the incoming leg and polls instead of buffering
/// without bound — backpressure from a congested downstream leg reaches
/// back through the gateway rather than turning into gateway memory.
fn splice_incoming(
    rt: &PadicoRuntime,
    stats: &Rc<RefCell<GatewayProxyStats>>,
    conn: Rc<dyn ByteStream>,
) {
    splice_incoming_with_probe(rt, stats, conn, None)
}

/// Like [`splice_incoming`], with an optional probe reporting whether the
/// incoming leg's trunk has been declared dead (trunk-accepted splices
/// pass one; plain TCP splices have no trunk to probe).
fn splice_incoming_with_probe(
    rt: &PadicoRuntime,
    stats: &Rc<RefCell<GatewayProxyStats>>,
    conn: Rc<dyn ByteStream>,
    trunk_dead: Option<Rc<dyn Fn() -> bool>>,
) {
    let rt = rt.clone();
    let stats = stats.clone();
    // Per-connection state: buffer the header, then splice.
    let pending: Rc<RefCell<SegBuf>> = Rc::new(RefCell::new(SegBuf::new()));
    let onward: Rc<RefCell<Option<VLink>>> = Rc::new(RefCell::new(None));
    let refused = Rc::new(Cell::new(false));
    let retry_pending = Rc::new(Cell::new(false));
    // The pump re-invokes itself from poll events, so it lives in a slot
    // it can reach through. The closure only holds the slot weakly (the
    // readable callback keeps it alive), so the slot and the closure never
    // form their own reference cycle.
    type Pump = Rc<dyn Fn(&mut SimWorld)>;
    let pump_slot: Rc<RefCell<Option<Pump>>> = Rc::new(RefCell::new(None));
    let slot_for_pump = Rc::downgrade(&pump_slot);
    let conn2 = conn.clone();
    let pump = move |world: &mut SimWorld| {
        if refused.get() {
            return;
        }
        if rt.is_dead() {
            // Fail-stop: a killed gateway consumes nothing more. Both
            // legs are closed in an orderly way, so everything the splice
            // *already* forwarded still drains to its endpoint — which is
            // exactly what the peer's credit ledger says was consumed.
            if let Some(link) = onward.borrow().clone() {
                link.close(world);
            }
            conn2.close(world);
            return;
        }
        if let Some(link) = onward.borrow().clone() {
            if rt.preferences().gateway_failover && trunk_dead.as_ref().is_some_and(|p| p()) {
                // The incoming trunk died under the splice. Whatever is
                // still buffered was never credited back (a dead mux sends
                // nothing), so the migrating sender resends those bytes
                // through the surviving gateway — forwarding them here
                // would deliver them twice. Abandon the tail; close the
                // onward leg gracefully so everything *already* forwarded
                // (== everything credited) still drains.
                loop {
                    let dropped = conn2.recv_bytes(world, usize::MAX);
                    if dropped.is_empty() {
                        break;
                    }
                    stats.borrow_mut().bytes_refused += dropped.len() as u64;
                }
                link.close(world);
                return;
            }
            // Established splice: forward arriving chunks onwards by
            // refcount — the store-and-forward queue never copies.
            loop {
                if link.driver_backlog() > SPLICE_HIGH_WATER {
                    // Pause: the incoming leg keeps the data until the
                    // onward leg drains below the high-water mark.
                    if conn2.available() > 0 && !retry_pending.get() {
                        retry_pending.set(true);
                        let slot = slot_for_pump.clone();
                        let again = retry_pending.clone();
                        world.schedule_after(SPLICE_RETRY, move |world| {
                            again.set(false);
                            let p = slot.upgrade().and_then(|s| s.borrow().clone());
                            if let Some(p) = p {
                                p(world);
                            }
                        });
                    }
                    break;
                }
                let data = conn2.recv_bytes(world, usize::MAX);
                if data.is_empty() {
                    break;
                }
                stats.borrow_mut().bytes_forward += data.len() as u64;
                link.post_write_bytes(world, data);
            }
            // `is_finished` only turns true once every byte has been
            // read, so a paused pump can never close early.
            if conn2.is_finished() {
                link.close(world);
            }
            return;
        }
        let refuse = |world: &mut SimWorld| {
            refused.set(true);
            stats.borrow_mut().connections_refused += 1;
            conn2.close(world);
        };
        {
            let mut buf = pending.borrow_mut();
            loop {
                let data = conn2.recv_bytes(world, usize::MAX);
                if data.is_empty() {
                    break;
                }
                buf.push_bytes(data);
            }
        }
        let header = {
            let buf = pending.borrow();
            let mut head = [0u8; PROXY_HEADER_BYTES];
            if buf.copy_peek(&mut head) < PROXY_HEADER_BYTES {
                // A peer that closes before completing the header is
                // refused, not left dangling.
                if conn2.is_finished() {
                    drop(buf);
                    refuse(world);
                }
                return;
            }
            decode_header(&head)
        };
        let Some((flags, ttl, dst, service)) = header else {
            refuse(world);
            return;
        };
        if ttl == 0 {
            refuse(world);
            return;
        }
        let circuit_stream = flags & FLAG_CIRCUIT_STREAM != 0;
        let link = rt.open_onward_leg(world, dst, service, circuit_stream, ttl - 1);
        stats.borrow_mut().connections_relayed += 1;
        // Reverse pump: destination -> connecting side, chunk by chunk,
        // with the same occupancy pause as the forward direction: while
        // the connecting leg's backlog is above the high-water mark, the
        // response bytes stay buffered on the onward VLink (whose trunk
        // window bounds them) instead of ballooning this gateway's send
        // queue.
        let back = conn2.clone();
        let link2 = link.clone();
        let stats2 = stats.clone();
        let back_retry = Rc::new(Cell::new(false));
        let rt_back = rt.clone();
        let drain_slot: Rc<RefCell<Option<Pump>>> = Rc::new(RefCell::new(None));
        let slot_for_drain = Rc::downgrade(&drain_slot);
        let drain: Pump = Rc::new(move |world: &mut SimWorld| {
            if rt_back.is_dead() {
                back.close(world);
                return;
            }
            loop {
                if back.bytes_unacked() > SPLICE_HIGH_WATER {
                    if link2.available() > 0 && !back_retry.get() {
                        back_retry.set(true);
                        let slot = slot_for_drain.clone();
                        let again = back_retry.clone();
                        world.schedule_after(SPLICE_RETRY, move |world| {
                            again.set(false);
                            let d = slot.upgrade().and_then(|s| s.borrow().clone());
                            if let Some(d) = d {
                                d(world);
                            }
                        });
                    }
                    break;
                }
                let data = link2.read_now_bytes(world, usize::MAX);
                if data.is_empty() {
                    break;
                }
                stats2.borrow_mut().bytes_backward += data.len() as u64;
                let len = data.len();
                let sent = back.send_bytes(world, data);
                if sent < len {
                    // The connecting side died under the splice: the
                    // response bytes are lost and accounted.
                    stats2.borrow_mut().bytes_refused += (len - sent) as u64;
                }
            }
            // A Finished withheld while the pump was paused (the VLink
            // only announces events on driver activity) is caught here
            // once the buffer drains.
            if link2.is_finished() {
                back.close(world);
            }
        });
        *drain_slot.borrow_mut() = Some(drain.clone());
        let back2 = conn2.clone();
        link.set_handler(move |world, event| {
            // The handler owns the slot: the drain stays reachable for
            // exactly as long as the link can produce events.
            let _keep = &drain_slot;
            match event {
                VLinkEvent::Readable => drain(world),
                VLinkEvent::Finished => back2.close(world),
                VLinkEvent::Connected => {}
            }
        });
        // Forward any payload that followed the header.
        {
            let mut buf = pending.borrow_mut();
            buf.consume(PROXY_HEADER_BYTES);
            loop {
                let rest = buf.pop_chunk(usize::MAX);
                if rest.is_empty() {
                    break;
                }
                stats.borrow_mut().bytes_forward += rest.len() as u64;
                link.post_write_bytes(world, rest);
            }
        }
        *onward.borrow_mut() = Some(link);
        if conn2.is_finished() {
            if let Some(link) = onward.borrow().clone() {
                link.close(world);
            }
        }
    };
    let pump: Pump = Rc::new(pump);
    *pump_slot.borrow_mut() = Some(pump.clone());
    // Data buffered before this callback is installed (the header can race
    // the handshake) is re-announced by the SysIO accept dispatch, so
    // installing the callback is all that is needed.
    conn.set_readable_callback(Box::new(move |world| pump(world)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = encode_header(NodeId(300), 1234, FLAG_CIRCUIT_STREAM, 5);
        let (flags, ttl, dst, service) = decode_header(&h).unwrap();
        assert_eq!(flags, FLAG_CIRCUIT_STREAM);
        assert_eq!(ttl, 5);
        assert_eq!(dst, NodeId(300));
        assert_eq!(service, 1234);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut h = encode_header(NodeId(1), 2, 0, 3);
        h[0] = 0;
        assert!(decode_header(&h).is_none());
        assert!(decode_header(&h[..4]).is_none());
    }
}
