//! The adapter selector and its topology knowledge base.
//!
//! VLink and Circuit "automatically choose which protocol to use according
//! to a knowledge base of the network topology managed by PadicoTM and
//! user-defined preferences" (§4.2). This module implements that choice:
//! given two nodes, the networks they share, and the user's preferences, it
//! decides which adapter/method carries the link — straight adapters where
//! possible, cross-paradigm or WAN-specific methods where required.
//!
//! With a [`gridtopo::GridRoutes`] table installed (hierarchical by
//! default, flat as the oracle), the knowledge base is *route-aware*:
//! endpoints that share no network no longer fail — the selector resolves
//! them to a [`LinkDecision::Relayed`] through the first gateway of the
//! multi-hop route, memoizing the resolved [`Route`]/[`PathInfo`] in a
//! bounded cache so the hot path never re-derives hop vectors.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::rc::Rc;

use gridtopo::{GridRoutes, PathInfo, Route};
use simnet::{NetworkClass, NetworkId, NodeId, SimWorld};

pub use gridtopo::BackpressureMode;

/// User-defined preferences consulted by the selector.
#[derive(Debug, Clone)]
pub struct SelectorPreferences {
    /// Use Parallel Streams on WAN-class networks.
    pub parallel_streams_on_wan: bool,
    /// Number of member streams for Parallel Streams.
    pub parallel_stream_width: usize,
    /// Width of the persistent gateway-to-gateway trunk bundles that carry
    /// relayed streams. Trunks aggregate every relayed stream crossing a
    /// gateway pair, so they are sized wider than a single-transfer bundle
    /// (GridFTP deployments of the era used up to 8 streams). Ignored when
    /// `parallel_streams_on_wan` is off (trunks then use one connection).
    pub gateway_trunk_width: usize,
    /// Use AdOC adaptive compression on slow Internet-class links.
    pub compression_on_slow_links: bool,
    /// Cipher and authenticate traffic that crosses site boundaries
    /// (WAN/Internet). Intra-site networks are considered secure, so this
    /// never applies to SAN/LAN/loopback ("if the network is secure, it is
    /// useless to cipher data").
    ///
    /// **Caveat:** this does not yet cover *relayed* paths — the
    /// gateway-to-gateway legs are opened by the gateways' own runtimes
    /// and stay plaintext. The selector warns loudly and counts every
    /// such decision in [`TopologyKb::plaintext_relay_events`]; set
    /// [`SelectorPreferences::refuse_plaintext_relay`] to refuse instead.
    pub secure_inter_site: bool,
    /// With `secure_inter_site` set, refuse (panic on) relayed link
    /// decisions instead of warning: no plaintext ever leaves the site,
    /// at the price of cross-site connectivity through gateways.
    pub refuse_plaintext_relay: bool,
    /// How relay-layer congestion is resolved: `Drop` (bounded gateway
    /// queues discard overload, the seed behaviour) or `Credit`
    /// (credit-based backpressure — senders park instead, gateway trunks
    /// run per-stream credit windows, nothing is dropped). Must be set
    /// uniformly across a grid: the two ends of a gateway trunk have to
    /// agree on windowing.
    pub relay_backpressure: BackpressureMode,
    /// Aggregate byte budget shared by *all* multiplexed streams of one
    /// gateway trunk, layered on the per-stream credit windows: the sum of
    /// unconsumed bytes in flight across the trunk never exceeds it, so
    /// one gateway pair's total store-and-forward memory is bounded — not
    /// just each stream's. `0` disables the shared budget (per-stream
    /// windows only). Only effective with `relay_backpressure = Credit`,
    /// which the budget rides on.
    pub gateway_trunk_budget: usize,
    /// Entries kept in the selector's route cache (resolved
    /// [`Route`]/[`PathInfo`] pairs, memoized on the link-decision hot
    /// path; evicted by LRU recency beyond this bound — a hot gateway
    /// destination survives any number of one-shot lookups — and
    /// invalidated whenever a route table is installed or a gateway is
    /// marked down).
    pub route_cache_capacity: usize,
    /// Gateway failover: relayed streams ride liveness-monitored trunks
    /// (heartbeats + dead-carrier detection) on *every* leg, a dead trunk
    /// marks its gateway down in the knowledge base, routes re-resolve
    /// through any surviving gateway of the site, and in-flight relayed
    /// streams re-dial and resume automatically — in credit mode with
    /// zero acknowledged bytes lost. Off by default: the seed behaviour
    /// (manual `drop_trunks` recovery) is preserved exactly.
    pub gateway_failover: bool,
    /// Never use the SAN even when available (ablation / debugging knob).
    pub forbid_san: bool,
}

impl SelectorPreferences {
    /// Member count of a gateway trunk carrier bundle. The connecting and
    /// accepting ends of a trunk must agree on this, so both derive it
    /// here: `gateway_trunk_width` when Parallel Streams are enabled on
    /// WANs, a single connection otherwise.
    pub fn trunk_width(&self) -> usize {
        if self.parallel_streams_on_wan {
            self.gateway_trunk_width.max(1)
        } else {
            1
        }
    }
}

impl Default for SelectorPreferences {
    fn default() -> Self {
        SelectorPreferences {
            parallel_streams_on_wan: true,
            parallel_stream_width: 4,
            gateway_trunk_width: 8,
            compression_on_slow_links: true,
            secure_inter_site: false,
            refuse_plaintext_relay: false,
            relay_backpressure: BackpressureMode::Drop,
            gateway_trunk_budget: 0,
            route_cache_capacity: 4096,
            gateway_failover: false,
            forbid_san: false,
        }
    }
}

/// The method selected for one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDecision {
    /// Both endpoints are the same node.
    Loopback,
    /// Straight parallel adapter (MadIO) over the given SAN.
    San(NetworkId),
    /// Plain TCP through SysIO over the given network.
    Tcp(NetworkId),
    /// Parallel TCP streams over the given WAN.
    ParallelStreams(NetworkId, usize),
    /// AdOC-compressed TCP over the given slow link.
    Adoc(NetworkId),
    /// Authenticated/encrypted TCP over the given inter-site link.
    Secure(NetworkId),
    /// The endpoints share no network: the link is carried hop by hop
    /// through gateway relays along the routed path.
    Relayed {
        /// The first-hop gateway to connect through.
        via: NodeId,
        /// The network shared with that gateway.
        network: NetworkId,
        /// Total number of networks the full route crosses.
        hops: u32,
    },
}

impl LinkDecision {
    /// The network the decision uses, if any. For a relayed decision this
    /// is the *first-hop* network.
    pub fn network(&self) -> Option<NetworkId> {
        match self {
            LinkDecision::Loopback => None,
            LinkDecision::San(n)
            | LinkDecision::Tcp(n)
            | LinkDecision::ParallelStreams(n, _)
            | LinkDecision::Adoc(n)
            | LinkDecision::Secure(n)
            | LinkDecision::Relayed { network: n, .. } => Some(*n),
        }
    }

    /// Whether the decision is a straight adapter for a parallel middleware
    /// (no paradigm translation).
    pub fn is_straight_for_parallel(&self) -> bool {
        matches!(self, LinkDecision::Loopback | LinkDecision::San(_))
    }

    /// Whether the decision crosses at least one gateway relay.
    pub fn is_relayed(&self) -> bool {
        matches!(self, LinkDecision::Relayed { .. })
    }
}

/// A fully resolved route with its aggregate path characteristics — what
/// the route cache memoizes, behind an `Rc` so hot-path consumers share
/// one materialization instead of re-deriving hop vectors per lookup.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedRoute {
    /// The materialized multi-hop route.
    pub route: Route,
    /// Aggregate characteristics of the route.
    pub info: PathInfo,
}

/// Cache statistics, for tests and the routing bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that resolved and inserted a fresh entry.
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Invalidation sweeps. Route-table installs clear everything;
    /// gateway-state changes sweep *selectively* — down drops only the
    /// entries relaying through the affected gateway, up drops only the
    /// detours resolved while some gateway was down.
    pub invalidations: u64,
    /// Entries currently resident.
    pub len: usize,
}

/// Bounded LRU memo of resolved routes, keyed by ordered node pair.
/// Hierarchical tables materialize `Route`/`PathInfo` lazily, so the cache
/// is what keeps repeated link decisions (and the relay fabric's
/// per-stream lookups) allocation-free.
///
/// Eviction is by *recency*, not insertion order: each entry carries a
/// monotonically stamped last-use tick, and the `order` queue holds
/// (stamp, key) records — stale records (an entry re-stamped since) are
/// skipped on pop, so a hit costs O(1) (one push, no search) and eviction
/// is amortized O(1). A hot gateway destination therefore survives any
/// number of one-shot lookups streaming past it, which FIFO eviction —
/// the previous policy — did not guarantee.
#[derive(Debug, Default)]
struct RouteCache {
    entries: HashMap<(NodeId, NodeId), CacheEntry>,
    /// (stamp, key) in stamp order; records whose stamp no longer matches
    /// the entry's are stale and skipped.
    order: VecDeque<(u64, (NodeId, NodeId))>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
}

/// One memoized resolution: the shared materialization, its last-use
/// recency stamp, and whether it was resolved while some gateway was
/// marked down (such detours are swept when a gateway returns).
#[derive(Debug)]
struct CacheEntry {
    value: Rc<ResolvedRoute>,
    stamp: u64,
    avoidance: bool,
}

impl RouteCache {
    /// Looks `key` up, refreshing its recency on a hit.
    fn get(&mut self, key: (NodeId, NodeId)) -> Option<Rc<ResolvedRoute>> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.get_mut(&key)?;
        entry.stamp = tick;
        let value = entry.value.clone();
        self.order.push_back((tick, key));
        // Hits stamp a fresh record each: hit-dominated workloads must
        // compact here too or the lazy-deletion queue grows one record
        // per lookup forever.
        self.compact_if_bloated();
        Some(value)
    }

    /// Drops stale order records once they outnumber the live entries,
    /// keeping the queue O(resident entries) amortized-O(1) per call.
    fn compact_if_bloated(&mut self) {
        if self.order.len() > 2 * self.entries.len().max(16) {
            let entries = &self.entries;
            self.order
                .retain(|(stamp, key)| entries.get(key).is_some_and(|e| e.stamp == *stamp));
        }
    }

    fn insert(
        &mut self,
        key: (NodeId, NodeId),
        value: Rc<ResolvedRoute>,
        avoidance: bool,
        capacity: usize,
    ) {
        let capacity = capacity.max(1);
        while self.entries.len() >= capacity && !self.entries.contains_key(&key) {
            let Some((stamp, oldest)) = self.order.pop_front() else {
                break;
            };
            match self.entries.get(&oldest) {
                // Live record: this is genuinely the least recently used.
                Some(e) if e.stamp == stamp => {
                    self.entries.remove(&oldest);
                    self.evictions += 1;
                }
                // Stale record (the entry was touched again later, or is
                // already gone): skip, its newer record is further back.
                _ => {}
            }
        }
        self.tick += 1;
        let tick = self.tick;
        self.entries.insert(
            key,
            CacheEntry {
                value,
                stamp: tick,
                avoidance,
            },
        );
        self.order.push_back((tick, key));
        self.compact_if_bloated();
    }

    /// Selective invalidation for a gateway going down: only the entries
    /// whose resolved route relays *through* it are dropped — every other
    /// entry keeps serving hits. Stale order records are skipped lazily.
    fn invalidate_through(&mut self, gateway: NodeId) {
        // simlint: allow(D1, reason = "pure per-entry predicate; the survivor set is visit-order independent and eviction order comes from the stamped recency queue, not map order")
        self.entries
            .retain(|_, e| !e.value.info.relays.contains(&gateway));
        self.invalidations += 1;
    }

    /// Selective invalidation for a gateway coming back: only the entries
    /// resolved while some gateway was down are dropped. Those routes
    /// detour around a gateway that may now be live again — still correct,
    /// but possibly no longer optimal, so they must re-resolve.
    fn invalidate_avoidance(&mut self) {
        // simlint: allow(D1, reason = "pure per-entry predicate; the survivor set is visit-order independent and eviction order comes from the stamped recency queue, not map order")
        self.entries.retain(|_, e| !e.avoidance);
        self.invalidations += 1;
    }
}

/// The topology knowledge base: what the runtime knows about reachable
/// networks and multi-hop routes, plus the user preferences.
#[derive(Debug, Clone, Default)]
pub struct TopologyKb {
    /// User preferences applied by the selector.
    pub prefs: SelectorPreferences,
    /// Multi-hop routes, when a grid topology has been registered. Without
    /// routes the selector only resolves direct (shared-network) links.
    routes: Option<Rc<GridRoutes>>,
    /// Gateways currently known dead (learned from trunk liveness, or
    /// marked by hand). With `gateway_failover` set, route resolution
    /// avoids them; shared across clones of this knowledge base.
    down_gateways: Rc<RefCell<BTreeSet<NodeId>>>,
    /// Memoized resolved routes (shared across clones of this knowledge
    /// base, invalidated whenever `routes` is replaced).
    cache: Rc<RefCell<RouteCache>>,
    /// Times the selector resolved a pair to a relayed decision while
    /// `secure_inter_site` was set: that traffic crosses the WAN legs in
    /// plaintext (shared across clones of this knowledge base).
    plaintext_relay_events: Rc<Cell<u64>>,
    /// The loud warning is printed once per knowledge base.
    plaintext_relay_warned: Rc<Cell<bool>>,
}

impl TopologyKb {
    /// Creates a knowledge base with the given preferences.
    pub fn new(prefs: SelectorPreferences) -> TopologyKb {
        TopologyKb {
            prefs,
            ..Default::default()
        }
    }

    /// Creates a route-aware knowledge base.
    pub fn with_routes(prefs: SelectorPreferences, routes: Rc<GridRoutes>) -> TopologyKb {
        TopologyKb {
            prefs,
            routes: Some(routes),
            ..Default::default()
        }
    }

    /// Installs (or replaces) the multi-hop route table. Every cached
    /// resolved route is invalidated: entries derived from the previous
    /// table must never serve lookups against the new one. This instance
    /// gets a *fresh* cache rather than clearing the shared one: clones
    /// of this knowledge base still hold the previous table, and through
    /// a shared cleared cache they would repopulate old-table routes
    /// right back into this instance's lookups. Counters carry over so
    /// the statistics stay monotonic.
    pub fn set_routes(&mut self, routes: Rc<GridRoutes>) {
        self.routes = Some(routes);
        let prev = self.cache.borrow();
        let fresh = RouteCache {
            hits: prev.hits,
            misses: prev.misses,
            evictions: prev.evictions,
            invalidations: prev.invalidations + 1,
            ..Default::default()
        };
        drop(prev);
        self.cache = Rc::new(RefCell::new(fresh));
    }

    /// Replaces the preferences in place, preserving the route table and
    /// the accumulated statistics.
    pub fn set_prefs(&mut self, prefs: SelectorPreferences) {
        self.prefs = prefs;
    }

    /// The installed route table, if any.
    pub fn routes(&self) -> Option<Rc<GridRoutes>> {
        self.routes.clone()
    }

    /// Resolves (and memoizes) the full route and its [`PathInfo`] from
    /// `a` to `b`. This is the selector hot path: a hit costs one hash
    /// lookup and an `Rc` clone; a miss materializes the route lazily
    /// from the installed table — for a hierarchical table that is the
    /// only time hop vectors are ever built.
    pub fn resolve_route(
        &self,
        world: &SimWorld,
        a: NodeId,
        b: NodeId,
    ) -> Option<Rc<ResolvedRoute>> {
        let routes = self.routes.as_ref()?;
        {
            let mut cache = self.cache.borrow_mut();
            if let Some(hit) = cache.get((a, b)) {
                cache.hits += 1;
                return Some(hit);
            }
        }
        let down = self.down_gateways.borrow();
        let (route, cost) = if self.prefs.gateway_failover && !down.is_empty() {
            let route = routes.route_avoiding(a, b, &down)?;
            // The additive cost of any materialized route is the sum of
            // its per-hop link costs (the hier tests assert this), so sum
            // them here instead of paying a second composition through
            // `cost_avoiding` on the failover path.
            let cost = route
                .hops
                .iter()
                .map(|h| gridtopo::link_cost(world, h.network))
                .sum();
            (route, cost)
        } else {
            (routes.route(a, b)?, routes.cost(a, b).unwrap_or(0))
        };
        let avoidance = self.prefs.gateway_failover && !down.is_empty();
        drop(down);
        let info = PathInfo::for_route(world, &route, cost);
        let resolved = Rc::new(ResolvedRoute { route, info });
        let mut cache = self.cache.borrow_mut();
        cache.misses += 1;
        cache.insert(
            (a, b),
            resolved.clone(),
            avoidance,
            self.prefs.route_cache_capacity,
        );
        Some(resolved)
    }

    /// Marks `gateway` dead: with `gateway_failover` set, subsequent
    /// resolutions avoid it (re-composing routes through any surviving
    /// gateway of its site). Invalidation is *selective*: only the cached
    /// entries whose route relays through the dead gateway are dropped —
    /// routes that never touch it keep serving hits, so one gateway death
    /// does not cold-start every other destination this node talks to.
    /// Learned automatically from trunk liveness by the runtime; also
    /// available to tests and operators. Acts on the *shared* cache, so
    /// the sweep reaches every knowledge base sharing it.
    pub fn mark_gateway_down(&self, gateway: NodeId) {
        if self.down_gateways.borrow_mut().insert(gateway) {
            self.cache.borrow_mut().invalidate_through(gateway);
        }
    }

    /// Marks a previously down gateway live again (restarted process).
    /// Selectively drops the detour entries — routes resolved while some
    /// gateway was down — so traffic re-optimizes through the returned
    /// gateway; entries resolved on a clean table are untouched.
    pub fn mark_gateway_up(&self, gateway: NodeId) {
        if self.down_gateways.borrow_mut().remove(&gateway) {
            self.cache.borrow_mut().invalidate_avoidance();
        }
    }

    /// The gateways currently marked down.
    pub fn down_gateways(&self) -> Vec<NodeId> {
        self.down_gateways.borrow().iter().copied().collect()
    }

    /// Adopts `other`'s route cache, pooling both knowledge bases'
    /// memoized resolutions in one shared LRU. Entries are keyed by the
    /// *(source, destination)* pair, so knowledge bases of different nodes
    /// never serve each other's routes — sharing only pools the memory
    /// bound and lets a gateway-state sweep reach every sharer at once.
    /// Gateway runtimes resolve a route per relayed stream, so the grid
    /// bring-up shares one cache across them instead of one per runtime.
    /// Sharers should hold the same route table (re-share after
    /// republishing routes: [`TopologyKb::set_routes`] detaches into a
    /// fresh cache by design).
    pub fn share_cache_with(&mut self, other: &TopologyKb) {
        self.cache = Rc::clone(&other.cache);
    }

    /// A snapshot of the route-cache counters.
    pub fn route_cache_stats(&self) -> RouteCacheStats {
        let c = self.cache.borrow();
        RouteCacheStats {
            hits: c.hits,
            misses: c.misses,
            evictions: c.evictions,
            invalidations: c.invalidations,
            len: c.entries.len(),
        }
    }

    /// Times the selector resolved a relayed decision while
    /// `secure_inter_site` was set (plaintext crossed — or would have
    /// crossed — the WAN legs).
    pub fn plaintext_relay_events(&self) -> u64 {
        self.plaintext_relay_events.get()
    }

    /// Resolves a no-shared-network pair through the route table.
    ///
    /// `forbid_san` is honoured for the leg this node opens itself: if the
    /// route's first hop rides a SAN the user forbade, another network
    /// shared with the same gateway is substituted when one exists. Other
    /// preferences (notably `secure_inter_site`) do **not** yet propagate
    /// to the gateway-to-gateway legs, which are opened by the gateways'
    /// own runtimes — so a relayed decision under `secure_inter_site`
    /// means plaintext on the WAN: it is never silent (a loud warning plus
    /// [`TopologyKb::plaintext_relay_events`]) and is refused outright
    /// under `refuse_plaintext_relay`. Full secure trunks are the ROADMAP
    /// follow-up.
    fn relayed(&self, world: &SimWorld, a: NodeId, b: NodeId) -> Option<LinkDecision> {
        let resolved = self.resolve_route(world, a, b)?;
        let first = resolved.route.first_hop()?;
        if self.prefs.secure_inter_site {
            self.plaintext_relay_events
                .set(self.plaintext_relay_events.get() + 1);
            assert!(
                !self.prefs.refuse_plaintext_relay,
                "secure_inter_site is set and refuse_plaintext_relay refuses the relayed link \
                 {a} -> {b}: gateway-to-gateway legs are not yet ciphered"
            );
            if !self.plaintext_relay_warned.replace(true) {
                eprintln!(
                    "warning: secure_inter_site is set but the link {a} -> {b} is relayed \
                     through gateways whose WAN legs are plaintext; occurrences are counted \
                     in TopologyKb::plaintext_relay_events() \
                     (set refuse_plaintext_relay to refuse instead)"
                );
            }
        }
        let mut network = first.network;
        if self.prefs.forbid_san && world.network(network).spec.class == NetworkClass::San {
            if let Some(alt) = world
                .networks_between(a, first.node)
                .into_iter()
                .find(|&n| world.network(n).spec.class != NetworkClass::San)
            {
                network = alt;
            }
        }
        Some(LinkDecision::Relayed {
            via: first.node,
            network,
            hops: resolved.info.hop_count as u32,
        })
    }

    /// Classifies the best network of each class shared by `a` and `b`.
    fn shared(
        &self,
        world: &SimWorld,
        a: NodeId,
        b: NodeId,
    ) -> Vec<(NetworkClass, NetworkId, f64)> {
        let mut v: Vec<(NetworkClass, NetworkId, f64)> = world
            .networks_between(a, b)
            .into_iter()
            .map(|id| {
                let spec = &world.network(id).spec;
                (spec.class, id, spec.bytes_per_sec)
            })
            .collect();
        // Fastest first within the list.
        v.sort_by(|x, y| y.2.partial_cmp(&x.2).unwrap_or(std::cmp::Ordering::Equal));
        v
    }

    fn best_of(
        &self,
        shared: &[(NetworkClass, NetworkId, f64)],
        class: NetworkClass,
    ) -> Option<NetworkId> {
        shared
            .iter()
            .find(|(c, _, _)| *c == class)
            .map(|(_, id, _)| *id)
    }

    /// Selects the method for a link used by a *distributed-oriented*
    /// middleware (through VLink).
    pub fn select_vlink(&self, world: &SimWorld, a: NodeId, b: NodeId) -> LinkDecision {
        if a == b {
            return LinkDecision::Loopback;
        }
        let shared = self.shared(world, a, b);
        if shared.is_empty() {
            return self.relayed(world, a, b).unwrap_or_else(|| {
                panic!("no network between {a} and {b}, and no route to relay through")
            });
        }
        if !self.prefs.forbid_san {
            if let Some(san) = self.best_of(&shared, NetworkClass::San) {
                // Cross-paradigm adapter: the distributed middleware rides
                // the SAN through the stream-over-MadIO driver.
                return LinkDecision::San(san);
            }
        }
        if let Some(lan) = self.best_of(&shared, NetworkClass::Lan) {
            return LinkDecision::Tcp(lan);
        }
        if let Some(wan) = self.best_of(&shared, NetworkClass::Wan) {
            if self.prefs.secure_inter_site {
                return LinkDecision::Secure(wan);
            }
            if self.prefs.parallel_streams_on_wan {
                return LinkDecision::ParallelStreams(wan, self.prefs.parallel_stream_width);
            }
            return LinkDecision::Tcp(wan);
        }
        if let Some(inet) = self.best_of(&shared, NetworkClass::Internet) {
            if self.prefs.secure_inter_site {
                return LinkDecision::Secure(inet);
            }
            if self.prefs.compression_on_slow_links {
                return LinkDecision::Adoc(inet);
            }
            return LinkDecision::Tcp(inet);
        }
        // Only loopback-class networks left.
        LinkDecision::Tcp(shared[0].1)
    }

    /// Selects the method for a link used by a *parallel-oriented*
    /// middleware (through Circuit).
    pub fn select_circuit(&self, world: &SimWorld, a: NodeId, b: NodeId) -> LinkDecision {
        if a == b {
            return LinkDecision::Loopback;
        }
        let shared = self.shared(world, a, b);
        if shared.is_empty() {
            // No shared network: the parallel middleware crosses the grid
            // through gateway relays (maximally cross-paradigm).
            return self.relayed(world, a, b).unwrap_or_else(|| {
                panic!("no network between {a} and {b}, and no route to relay through")
            });
        }
        if !self.prefs.forbid_san {
            if let Some(san) = self.best_of(&shared, NetworkClass::San) {
                // Straight adapter: parallel middleware on parallel hardware.
                return LinkDecision::San(san);
            }
        }
        // Cross-paradigm: the parallel middleware must ride a distributed
        // network; reuse the distributed-side method selection (which may
        // itself pick WAN-specific methods).
        match self.select_vlink(world, a, b) {
            LinkDecision::San(n) => LinkDecision::Tcp(n),
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::topology;
    use simnet::NetworkSpec;

    #[test]
    fn same_node_is_loopback() {
        let p = topology::san_pair(1);
        let kb = TopologyKb::default();
        assert_eq!(kb.select_vlink(&p.world, p.a, p.a), LinkDecision::Loopback);
        assert_eq!(
            kb.select_circuit(&p.world, p.b, p.b),
            LinkDecision::Loopback
        );
    }

    #[test]
    fn san_preferred_for_both_paradigms_when_available() {
        let p = topology::san_pair(1);
        let kb = TopologyKb::default();
        assert_eq!(
            kb.select_vlink(&p.world, p.a, p.b),
            LinkDecision::San(p.san)
        );
        assert_eq!(
            kb.select_circuit(&p.world, p.a, p.b),
            LinkDecision::San(p.san)
        );
        assert!(kb
            .select_circuit(&p.world, p.a, p.b)
            .is_straight_for_parallel());
    }

    #[test]
    fn forbidding_san_falls_back_to_lan() {
        let p = topology::san_pair(1);
        let kb = TopologyKb::new(SelectorPreferences {
            forbid_san: true,
            ..Default::default()
        });
        assert_eq!(
            kb.select_vlink(&p.world, p.a, p.b),
            LinkDecision::Tcp(p.lan)
        );
    }

    #[test]
    fn wan_gets_parallel_streams_and_internet_gets_adoc() {
        let wan = topology::wan_pair(1);
        let kb = TopologyKb::default();
        assert_eq!(
            kb.select_vlink(&wan.world, wan.a, wan.b),
            LinkDecision::ParallelStreams(wan.network, 4)
        );
        let inet = topology::lossy_internet_pair(1);
        assert_eq!(
            kb.select_vlink(&inet.world, inet.a, inet.b),
            LinkDecision::Adoc(inet.network)
        );
    }

    #[test]
    fn secure_preference_overrides_wan_methods() {
        let wan = topology::wan_pair(1);
        let kb = TopologyKb::new(SelectorPreferences {
            secure_inter_site: true,
            ..Default::default()
        });
        assert_eq!(
            kb.select_vlink(&wan.world, wan.a, wan.b),
            LinkDecision::Secure(wan.network)
        );
        // But never on an intra-site network.
        let lanp = topology::pair_over(1, NetworkSpec::ethernet_100());
        assert_eq!(
            kb.select_vlink(&lanp.world, lanp.a, lanp.b),
            LinkDecision::Tcp(lanp.network)
        );
    }

    #[test]
    fn circuit_on_wan_is_cross_paradigm() {
        let g = topology::two_clusters_over_wan(1, 2);
        let kb = TopologyKb::default();
        let a0 = g.cluster_a.node(0);
        let b0 = g.cluster_b.node(0);
        let d = kb.select_circuit(&g.world, a0, b0);
        assert!(!d.is_straight_for_parallel());
        assert_eq!(d, LinkDecision::ParallelStreams(g.wan, 4));
        // Within a cluster the straight SAN adapter is used.
        let a1 = g.cluster_a.node(1);
        assert!(kb
            .select_circuit(&g.world, a0, a1)
            .is_straight_for_parallel());
    }

    #[test]
    fn decision_network_accessor() {
        let p = topology::san_pair(1);
        let kb = TopologyKb::default();
        let d = kb.select_vlink(&p.world, p.a, p.b);
        assert_eq!(d.network(), Some(p.san));
        assert_eq!(LinkDecision::Loopback.network(), None);
    }

    #[test]
    fn no_shared_network_resolves_to_relayed_with_routes() {
        let mut world = simnet::SimWorld::new(4);
        let grid = gridtopo::GridTopology::two_sites(&mut world, 3);
        let routes = Rc::new(grid.routes.clone());
        let kb = TopologyKb::with_routes(SelectorPreferences::default(), routes);
        let a1 = grid.site(0).node(1);
        let b1 = grid.site(1).node(1);
        assert!(world.networks_between(a1, b1).is_empty());
        let d = kb.select_vlink(&world, a1, b1);
        assert_eq!(
            d,
            LinkDecision::Relayed {
                via: grid.site(0).gateway,
                network: grid.site(0).san.unwrap(),
                hops: 3,
            }
        );
        assert!(d.is_relayed());
        assert!(!d.is_straight_for_parallel());
        assert_eq!(d.network(), grid.site(0).san);
        // The parallel paradigm relays the same way.
        assert_eq!(kb.select_circuit(&world, a1, b1), d);
        // Direct pairs are still resolved directly, never relayed.
        let a2 = grid.site(0).node(2);
        assert!(!kb.select_vlink(&world, a1, a2).is_relayed());
    }

    #[test]
    fn secure_relayed_pair_is_counted_and_still_resolves() {
        let mut world = simnet::SimWorld::new(4);
        let grid = gridtopo::GridTopology::two_sites(&mut world, 2);
        let routes = Rc::new(grid.routes.clone());
        let kb = TopologyKb::with_routes(
            SelectorPreferences {
                secure_inter_site: true,
                ..Default::default()
            },
            routes,
        );
        let a1 = grid.site(0).node(1);
        let b1 = grid.site(1).node(1);
        assert_eq!(kb.plaintext_relay_events(), 0);
        let d = kb.select_vlink(&world, a1, b1);
        assert!(d.is_relayed(), "the link still resolves, loudly: {d:?}");
        assert_eq!(kb.plaintext_relay_events(), 1);
        let _ = kb.select_circuit(&world, a1, b1);
        assert_eq!(kb.plaintext_relay_events(), 2);
        // Direct secure pairs do not count.
        let _ = kb.select_vlink(&world, grid.site(0).gateway, grid.site(1).gateway);
        assert_eq!(kb.plaintext_relay_events(), 2);
    }

    #[test]
    #[should_panic(expected = "refuse_plaintext_relay refuses the relayed link")]
    fn strict_secure_refuses_relayed_pairs() {
        let mut world = simnet::SimWorld::new(4);
        let grid = gridtopo::GridTopology::two_sites(&mut world, 2);
        let routes = Rc::new(grid.routes.clone());
        let kb = TopologyKb::with_routes(
            SelectorPreferences {
                secure_inter_site: true,
                refuse_plaintext_relay: true,
                ..Default::default()
            },
            routes,
        );
        let _ = kb.select_vlink(&world, grid.site(0).node(1), grid.site(1).node(1));
    }

    #[test]
    fn route_cache_hits_after_first_resolution() {
        let mut world = simnet::SimWorld::new(4);
        let grid = gridtopo::GridTopology::two_sites(&mut world, 3);
        let kb =
            TopologyKb::with_routes(SelectorPreferences::default(), Rc::new(grid.routes.clone()));
        let a1 = grid.site(0).node(1);
        let b1 = grid.site(1).node(1);
        let first = kb.resolve_route(&world, a1, b1).unwrap();
        let stats = kb.route_cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (0, 1, 1));
        let second = kb.resolve_route(&world, a1, b1).unwrap();
        assert!(
            Rc::ptr_eq(&first, &second),
            "hit shares the materialization"
        );
        assert_eq!(kb.route_cache_stats().hits, 1);
        // The selector's relayed decisions ride the same cache.
        let _ = kb.select_vlink(&world, a1, b1);
        assert_eq!(kb.route_cache_stats().hits, 2);
        assert_eq!(first.info.hop_count, 3);
        assert_eq!(first.route.relays().count(), 2);
    }

    #[test]
    fn route_cache_evicts_least_recent_beyond_capacity() {
        let mut world = simnet::SimWorld::new(4);
        let grid = gridtopo::GridTopology::two_sites(&mut world, 4);
        let kb = TopologyKb::with_routes(
            SelectorPreferences {
                route_cache_capacity: 2,
                ..Default::default()
            },
            Rc::new(grid.routes.clone()),
        );
        let targets: Vec<_> = (1..4).map(|i| grid.site(1).node(i)).collect();
        let src = grid.site(0).node(1);
        for &t in &targets {
            kb.resolve_route(&world, src, t).unwrap();
        }
        let stats = kb.route_cache_stats();
        assert_eq!(stats.len, 2, "bounded at the configured capacity");
        assert_eq!(stats.evictions, 1, "the least-recent entry left");
        // The evicted (least recently used) pair resolves again as a miss.
        kb.resolve_route(&world, src, targets[0]).unwrap();
        assert_eq!(kb.route_cache_stats().misses, 4);
    }

    #[test]
    fn route_cache_recency_keeps_hot_entries_over_one_shot_lookups() {
        // The FIFO policy this replaces evicted the *oldest inserted*
        // entry — a hot gateway destination resolved early died as soon
        // as a few one-shot lookups streamed past. LRU must keep it.
        let mut world = simnet::SimWorld::new(4);
        let grid = gridtopo::GridTopology::two_sites(&mut world, 6);
        let kb = TopologyKb::with_routes(
            SelectorPreferences {
                route_cache_capacity: 3,
                ..Default::default()
            },
            Rc::new(grid.routes.clone()),
        );
        let src = grid.site(0).node(1);
        let hot = grid.site(1).node(1);
        let one_shots: Vec<_> = (2..6).map(|i| grid.site(1).node(i)).collect();
        kb.resolve_route(&world, src, hot).unwrap();
        for &cold in &one_shots {
            // Touch the hot pair between every one-shot lookup, like a
            // gateway resolving the same destination per relayed stream.
            assert!(kb.resolve_route(&world, src, hot).is_some());
            kb.resolve_route(&world, src, cold).unwrap();
        }
        let stats = kb.route_cache_stats();
        assert_eq!(stats.misses, 1 + one_shots.len() as u64);
        assert_eq!(stats.hits, one_shots.len() as u64);
        assert!(stats.evictions >= 2, "the one-shots evicted each other");
        // The hot entry is still resident: another touch is a hit, and
        // the hit shares the same materialization.
        let before = kb.route_cache_stats().hits;
        let again = kb.resolve_route(&world, src, hot).unwrap();
        assert_eq!(kb.route_cache_stats().hits, before + 1, "hot stays hot");
        assert_eq!(again.info.hop_count, 3);
        // Under FIFO the hot pair (inserted first) would have been the
        // first casualty; under LRU the evictions all hit cold pairs.
        assert_eq!(kb.route_cache_stats().len, 3);
    }

    #[test]
    fn marking_a_gateway_down_resolves_around_it_and_invalidates() {
        let mut world = simnet::SimWorld::new(4);
        let grid = gridtopo::GridTopology::star(
            &mut world,
            &[
                gridtopo::SiteSpec::san_cluster("a", 3).with_gateways(2),
                gridtopo::SiteSpec::san_cluster("b", 3).with_gateways(2),
            ],
            simnet::NetworkSpec::vthd_wan(),
        );
        let kb = TopologyKb::with_routes(
            SelectorPreferences {
                gateway_failover: true,
                ..Default::default()
            },
            Rc::new(grid.routes.clone()),
        );
        let src = grid.site(0).node(2);
        let dst = grid.site(1).node(2);
        let healthy = kb.resolve_route(&world, src, dst).unwrap();
        assert!(healthy.info.relays.contains(&grid.site(1).gateway));
        // A second entry that never touches the victim: an intra-site
        // pair, relayed through nothing.
        let local = kb.resolve_route(&world, src, grid.site(0).node(1)).unwrap();
        assert!(local.info.relays.is_empty());
        assert_eq!(kb.route_cache_stats().len, 2);
        // The far primary dies: invalidation is selective — only the
        // entry relaying through the corpse is dropped.
        kb.mark_gateway_down(grid.site(1).gateway);
        let stats = kb.route_cache_stats();
        assert_eq!(stats.len, 1, "the untouched local entry survives");
        assert_eq!(stats.invalidations, 1);
        assert_eq!(kb.down_gateways(), vec![grid.site(1).gateway]);
        let hits = stats.hits;
        assert!(kb
            .resolve_route(&world, src, grid.site(0).node(1))
            .is_some());
        assert_eq!(
            kb.route_cache_stats().hits,
            hits + 1,
            "the surviving entry still serves hits"
        );
        let rerouted = kb.resolve_route(&world, src, dst).unwrap();
        assert!(
            rerouted.info.relays.contains(&grid.site(1).gateways[1]),
            "the surviving secondary carries the route: {:?}",
            rerouted.info.relays
        );
        assert!(!rerouted.info.relays.contains(&grid.site(1).gateway));
        // Selector decisions follow the rerouted resolution.
        let d = kb.select_vlink(&world, src, dst);
        assert!(d.is_relayed());
        // Recovery: marking it up sweeps only the detour entry (resolved
        // under avoidance); the local entry stays and the primary returns.
        kb.mark_gateway_up(grid.site(1).gateway);
        let stats = kb.route_cache_stats();
        assert_eq!(stats.len, 1, "the detour left, the local entry stayed");
        assert_eq!(stats.invalidations, 2);
        let back = kb.resolve_route(&world, src, dst).unwrap();
        assert!(back.info.relays.contains(&grid.site(1).gateway));
    }

    #[test]
    fn shared_cache_pools_entries_and_sweeps_reach_every_sharer() {
        let mut world = simnet::SimWorld::new(4);
        let grid = gridtopo::GridTopology::star(
            &mut world,
            &[
                gridtopo::SiteSpec::san_cluster("a", 3).with_gateways(2),
                gridtopo::SiteSpec::san_cluster("b", 3).with_gateways(2),
            ],
            simnet::NetworkSpec::vthd_wan(),
        );
        let prefs = SelectorPreferences {
            gateway_failover: true,
            ..Default::default()
        };
        let routes = Rc::new(grid.routes.clone());
        let kb_a = TopologyKb::with_routes(prefs.clone(), routes.clone());
        let mut kb_b = TopologyKb::with_routes(prefs, routes);
        kb_b.share_cache_with(&kb_a);
        // Each knowledge base resolves from its own source node; entries
        // are source-keyed, so they pool without ever cross-serving.
        let a_src = grid.site(0).gateway;
        let b_src = grid.site(0).gateways[1];
        let dst = grid.site(1).node(2);
        kb_a.resolve_route(&world, a_src, dst).unwrap();
        kb_b.resolve_route(&world, b_src, dst).unwrap();
        assert_eq!(kb_a.route_cache_stats().len, 2, "one pooled cache");
        assert_eq!(kb_a.route_cache_stats().misses, 2);
        // Both routes relay through the far primary; one sharer learning
        // of its death sweeps the affected entries of every sharer.
        kb_a.mark_gateway_down(grid.site(1).gateway);
        assert_eq!(kb_a.route_cache_stats().len, 0);
        assert_eq!(kb_b.route_cache_stats().invalidations, 1);
    }

    #[test]
    fn stale_cache_is_invalidated_when_routes_are_recomputed() {
        let mut world = simnet::SimWorld::new(4);
        let grid = gridtopo::GridTopology::two_sites(&mut world, 3);
        let mut kb =
            TopologyKb::with_routes(SelectorPreferences::default(), Rc::new(grid.routes.clone()));
        let a1 = grid.site(0).node(1);
        let b1 = grid.site(1).node(1);
        // Cached while the pair is gateway-relayed: 3 hops.
        assert_eq!(kb.resolve_route(&world, a1, b1).unwrap().info.hop_count, 3);
        assert!(kb.select_vlink(&world, a1, b1).is_relayed());
        // The topology changes: a new LAN joins the two nodes directly.
        let lan = world.add_network(simnet::NetworkSpec::ethernet_100());
        world.attach(a1, lan);
        world.attach(b1, lan);
        // (The shortcut breaks gateway isolation, so the recomputed table
        // is the flat oracle.) Installing it must invalidate the cache:
        // a stale 3-hop entry would keep relaying a now-direct pair.
        kb.set_routes(Rc::new(gridtopo::GridRoutes::Flat(
            gridtopo::RouteTable::compute(&world),
        )));
        let stats = kb.route_cache_stats();
        assert_eq!(stats.len, 0, "installation clears every entry");
        assert_eq!(stats.invalidations, 1);
        let fresh = kb.resolve_route(&world, a1, b1).unwrap();
        assert_eq!(fresh.info.hop_count, 1, "resolved against the new table");
        // And the link decision is now direct, not relayed.
        assert_eq!(kb.select_vlink(&world, a1, b1), LinkDecision::Tcp(lan));
    }

    #[test]
    fn clones_with_the_old_table_cannot_repopulate_a_new_tables_cache() {
        let mut world = simnet::SimWorld::new(4);
        let grid = gridtopo::GridTopology::two_sites(&mut world, 3);
        let mut kb =
            TopologyKb::with_routes(SelectorPreferences::default(), Rc::new(grid.routes.clone()));
        let old_kb = kb.clone();
        let a1 = grid.site(0).node(1);
        let b1 = grid.site(1).node(1);
        assert_eq!(kb.resolve_route(&world, a1, b1).unwrap().info.hop_count, 3);
        // New direct LAN; the original installs a recomputed table.
        let lan = world.add_network(simnet::NetworkSpec::ethernet_100());
        world.attach(a1, lan);
        world.attach(b1, lan);
        kb.set_routes(Rc::new(gridtopo::GridRoutes::Flat(
            gridtopo::RouteTable::compute(&world),
        )));
        // The clone still resolves against the old table (its own cache)…
        assert_eq!(
            old_kb.resolve_route(&world, a1, b1).unwrap().info.hop_count,
            3
        );
        // …but must not leak that stale entry into the updated instance.
        assert_eq!(kb.resolve_route(&world, a1, b1).unwrap().info.hop_count, 1);
    }

    #[test]
    fn backpressure_preference_defaults_to_drop() {
        let prefs = SelectorPreferences::default();
        assert_eq!(prefs.relay_backpressure, BackpressureMode::Drop);
        assert!(!prefs.refuse_plaintext_relay);
    }

    #[test]
    #[should_panic(expected = "no route to relay through")]
    fn no_shared_network_without_routes_panics() {
        let mut world = simnet::SimWorld::new(4);
        let grid = gridtopo::GridTopology::two_sites(&mut world, 2);
        let kb = TopologyKb::default();
        let _ = kb.select_vlink(&world, grid.site(0).node(1), grid.site(1).node(1));
    }

    #[test]
    #[should_panic(expected = "no route to relay through")]
    fn unreachable_node_panics_even_with_routes() {
        let mut world = simnet::SimWorld::new(4);
        let grid = gridtopo::GridTopology::two_sites(&mut world, 2);
        let island = world.add_node("island");
        let routes = Rc::new(GridRoutes::from(gridtopo::RouteTable::compute(&world)));
        let kb = TopologyKb::with_routes(SelectorPreferences::default(), routes);
        let _ = kb.select_vlink(&world, grid.site(0).node(1), island);
    }
}
