//! The adapter selector and its topology knowledge base.
//!
//! VLink and Circuit "automatically choose which protocol to use according
//! to a knowledge base of the network topology managed by PadicoTM and
//! user-defined preferences" (§4.2). This module implements that choice:
//! given two nodes, the networks they share, and the user's preferences, it
//! decides which adapter/method carries the link — straight adapters where
//! possible, cross-paradigm or WAN-specific methods where required.
//!
//! With a [`gridtopo::RouteTable`] installed, the knowledge base is
//! *route-aware*: endpoints that share no network no longer fail — the
//! selector resolves them to a [`LinkDecision::Relayed`] through the first
//! gateway of the multi-hop route.

use std::cell::Cell;
use std::rc::Rc;

use gridtopo::RouteTable;
use simnet::{NetworkClass, NetworkId, NodeId, SimWorld};

pub use gridtopo::BackpressureMode;

/// User-defined preferences consulted by the selector.
#[derive(Debug, Clone)]
pub struct SelectorPreferences {
    /// Use Parallel Streams on WAN-class networks.
    pub parallel_streams_on_wan: bool,
    /// Number of member streams for Parallel Streams.
    pub parallel_stream_width: usize,
    /// Width of the persistent gateway-to-gateway trunk bundles that carry
    /// relayed streams. Trunks aggregate every relayed stream crossing a
    /// gateway pair, so they are sized wider than a single-transfer bundle
    /// (GridFTP deployments of the era used up to 8 streams). Ignored when
    /// `parallel_streams_on_wan` is off (trunks then use one connection).
    pub gateway_trunk_width: usize,
    /// Use AdOC adaptive compression on slow Internet-class links.
    pub compression_on_slow_links: bool,
    /// Cipher and authenticate traffic that crosses site boundaries
    /// (WAN/Internet). Intra-site networks are considered secure, so this
    /// never applies to SAN/LAN/loopback ("if the network is secure, it is
    /// useless to cipher data").
    ///
    /// **Caveat:** this does not yet cover *relayed* paths — the
    /// gateway-to-gateway legs are opened by the gateways' own runtimes
    /// and stay plaintext. The selector warns loudly and counts every
    /// such decision in [`TopologyKb::plaintext_relay_events`]; set
    /// [`SelectorPreferences::refuse_plaintext_relay`] to refuse instead.
    pub secure_inter_site: bool,
    /// With `secure_inter_site` set, refuse (panic on) relayed link
    /// decisions instead of warning: no plaintext ever leaves the site,
    /// at the price of cross-site connectivity through gateways.
    pub refuse_plaintext_relay: bool,
    /// How relay-layer congestion is resolved: `Drop` (bounded gateway
    /// queues discard overload, the seed behaviour) or `Credit`
    /// (credit-based backpressure — senders park instead, gateway trunks
    /// run per-stream credit windows, nothing is dropped). Must be set
    /// uniformly across a grid: the two ends of a gateway trunk have to
    /// agree on windowing.
    pub relay_backpressure: BackpressureMode,
    /// Never use the SAN even when available (ablation / debugging knob).
    pub forbid_san: bool,
}

impl SelectorPreferences {
    /// Member count of a gateway trunk carrier bundle. The connecting and
    /// accepting ends of a trunk must agree on this, so both derive it
    /// here: `gateway_trunk_width` when Parallel Streams are enabled on
    /// WANs, a single connection otherwise.
    pub fn trunk_width(&self) -> usize {
        if self.parallel_streams_on_wan {
            self.gateway_trunk_width.max(1)
        } else {
            1
        }
    }
}

impl Default for SelectorPreferences {
    fn default() -> Self {
        SelectorPreferences {
            parallel_streams_on_wan: true,
            parallel_stream_width: 4,
            gateway_trunk_width: 8,
            compression_on_slow_links: true,
            secure_inter_site: false,
            refuse_plaintext_relay: false,
            relay_backpressure: BackpressureMode::Drop,
            forbid_san: false,
        }
    }
}

/// The method selected for one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDecision {
    /// Both endpoints are the same node.
    Loopback,
    /// Straight parallel adapter (MadIO) over the given SAN.
    San(NetworkId),
    /// Plain TCP through SysIO over the given network.
    Tcp(NetworkId),
    /// Parallel TCP streams over the given WAN.
    ParallelStreams(NetworkId, usize),
    /// AdOC-compressed TCP over the given slow link.
    Adoc(NetworkId),
    /// Authenticated/encrypted TCP over the given inter-site link.
    Secure(NetworkId),
    /// The endpoints share no network: the link is carried hop by hop
    /// through gateway relays along the routed path.
    Relayed {
        /// The first-hop gateway to connect through.
        via: NodeId,
        /// The network shared with that gateway.
        network: NetworkId,
        /// Total number of networks the full route crosses.
        hops: u32,
    },
}

impl LinkDecision {
    /// The network the decision uses, if any. For a relayed decision this
    /// is the *first-hop* network.
    pub fn network(&self) -> Option<NetworkId> {
        match self {
            LinkDecision::Loopback => None,
            LinkDecision::San(n)
            | LinkDecision::Tcp(n)
            | LinkDecision::ParallelStreams(n, _)
            | LinkDecision::Adoc(n)
            | LinkDecision::Secure(n)
            | LinkDecision::Relayed { network: n, .. } => Some(*n),
        }
    }

    /// Whether the decision is a straight adapter for a parallel middleware
    /// (no paradigm translation).
    pub fn is_straight_for_parallel(&self) -> bool {
        matches!(self, LinkDecision::Loopback | LinkDecision::San(_))
    }

    /// Whether the decision crosses at least one gateway relay.
    pub fn is_relayed(&self) -> bool {
        matches!(self, LinkDecision::Relayed { .. })
    }
}

/// The topology knowledge base: what the runtime knows about reachable
/// networks and multi-hop routes, plus the user preferences.
#[derive(Debug, Clone, Default)]
pub struct TopologyKb {
    /// User preferences applied by the selector.
    pub prefs: SelectorPreferences,
    /// Multi-hop routes, when a grid topology has been registered. Without
    /// routes the selector only resolves direct (shared-network) links.
    routes: Option<Rc<RouteTable>>,
    /// Times the selector resolved a pair to a relayed decision while
    /// `secure_inter_site` was set: that traffic crosses the WAN legs in
    /// plaintext (shared across clones of this knowledge base).
    plaintext_relay_events: Rc<Cell<u64>>,
    /// The loud warning is printed once per knowledge base.
    plaintext_relay_warned: Rc<Cell<bool>>,
}

impl TopologyKb {
    /// Creates a knowledge base with the given preferences.
    pub fn new(prefs: SelectorPreferences) -> TopologyKb {
        TopologyKb {
            prefs,
            ..Default::default()
        }
    }

    /// Creates a route-aware knowledge base.
    pub fn with_routes(prefs: SelectorPreferences, routes: Rc<RouteTable>) -> TopologyKb {
        TopologyKb {
            prefs,
            routes: Some(routes),
            ..Default::default()
        }
    }

    /// Installs (or replaces) the multi-hop route table.
    pub fn set_routes(&mut self, routes: Rc<RouteTable>) {
        self.routes = Some(routes);
    }

    /// Replaces the preferences in place, preserving the route table and
    /// the accumulated statistics.
    pub fn set_prefs(&mut self, prefs: SelectorPreferences) {
        self.prefs = prefs;
    }

    /// The installed route table, if any.
    pub fn routes(&self) -> Option<Rc<RouteTable>> {
        self.routes.clone()
    }

    /// Times the selector resolved a relayed decision while
    /// `secure_inter_site` was set (plaintext crossed — or would have
    /// crossed — the WAN legs).
    pub fn plaintext_relay_events(&self) -> u64 {
        self.plaintext_relay_events.get()
    }

    /// Resolves a no-shared-network pair through the route table.
    ///
    /// `forbid_san` is honoured for the leg this node opens itself: if the
    /// route's first hop rides a SAN the user forbade, another network
    /// shared with the same gateway is substituted when one exists. Other
    /// preferences (notably `secure_inter_site`) do **not** yet propagate
    /// to the gateway-to-gateway legs, which are opened by the gateways'
    /// own runtimes — so a relayed decision under `secure_inter_site`
    /// means plaintext on the WAN: it is never silent (a loud warning plus
    /// [`TopologyKb::plaintext_relay_events`]) and is refused outright
    /// under `refuse_plaintext_relay`. Full secure trunks are the ROADMAP
    /// follow-up.
    fn relayed(&self, world: &SimWorld, a: NodeId, b: NodeId) -> Option<LinkDecision> {
        let routes = self.routes.as_ref()?;
        let route = routes.route(a, b)?;
        let first = route.first_hop()?;
        if self.prefs.secure_inter_site {
            self.plaintext_relay_events
                .set(self.plaintext_relay_events.get() + 1);
            assert!(
                !self.prefs.refuse_plaintext_relay,
                "secure_inter_site is set and refuse_plaintext_relay refuses the relayed link \
                 {a} -> {b}: gateway-to-gateway legs are not yet ciphered"
            );
            if !self.plaintext_relay_warned.replace(true) {
                eprintln!(
                    "warning: secure_inter_site is set but the link {a} -> {b} is relayed \
                     through gateways whose WAN legs are plaintext; occurrences are counted \
                     in TopologyKb::plaintext_relay_events() \
                     (set refuse_plaintext_relay to refuse instead)"
                );
            }
        }
        let mut network = first.network;
        if self.prefs.forbid_san && world.network(network).spec.class == NetworkClass::San {
            if let Some(alt) = world
                .networks_between(a, first.node)
                .into_iter()
                .find(|&n| world.network(n).spec.class != NetworkClass::San)
            {
                network = alt;
            }
        }
        Some(LinkDecision::Relayed {
            via: first.node,
            network,
            hops: route.hop_count() as u32,
        })
    }

    /// Classifies the best network of each class shared by `a` and `b`.
    fn shared(
        &self,
        world: &SimWorld,
        a: NodeId,
        b: NodeId,
    ) -> Vec<(NetworkClass, NetworkId, f64)> {
        let mut v: Vec<(NetworkClass, NetworkId, f64)> = world
            .networks_between(a, b)
            .into_iter()
            .map(|id| {
                let spec = &world.network(id).spec;
                (spec.class, id, spec.bytes_per_sec)
            })
            .collect();
        // Fastest first within the list.
        v.sort_by(|x, y| y.2.partial_cmp(&x.2).unwrap_or(std::cmp::Ordering::Equal));
        v
    }

    fn best_of(
        &self,
        shared: &[(NetworkClass, NetworkId, f64)],
        class: NetworkClass,
    ) -> Option<NetworkId> {
        shared
            .iter()
            .find(|(c, _, _)| *c == class)
            .map(|(_, id, _)| *id)
    }

    /// Selects the method for a link used by a *distributed-oriented*
    /// middleware (through VLink).
    pub fn select_vlink(&self, world: &SimWorld, a: NodeId, b: NodeId) -> LinkDecision {
        if a == b {
            return LinkDecision::Loopback;
        }
        let shared = self.shared(world, a, b);
        if shared.is_empty() {
            return self.relayed(world, a, b).unwrap_or_else(|| {
                panic!("no network between {a} and {b}, and no route to relay through")
            });
        }
        if !self.prefs.forbid_san {
            if let Some(san) = self.best_of(&shared, NetworkClass::San) {
                // Cross-paradigm adapter: the distributed middleware rides
                // the SAN through the stream-over-MadIO driver.
                return LinkDecision::San(san);
            }
        }
        if let Some(lan) = self.best_of(&shared, NetworkClass::Lan) {
            return LinkDecision::Tcp(lan);
        }
        if let Some(wan) = self.best_of(&shared, NetworkClass::Wan) {
            if self.prefs.secure_inter_site {
                return LinkDecision::Secure(wan);
            }
            if self.prefs.parallel_streams_on_wan {
                return LinkDecision::ParallelStreams(wan, self.prefs.parallel_stream_width);
            }
            return LinkDecision::Tcp(wan);
        }
        if let Some(inet) = self.best_of(&shared, NetworkClass::Internet) {
            if self.prefs.secure_inter_site {
                return LinkDecision::Secure(inet);
            }
            if self.prefs.compression_on_slow_links {
                return LinkDecision::Adoc(inet);
            }
            return LinkDecision::Tcp(inet);
        }
        // Only loopback-class networks left.
        LinkDecision::Tcp(shared[0].1)
    }

    /// Selects the method for a link used by a *parallel-oriented*
    /// middleware (through Circuit).
    pub fn select_circuit(&self, world: &SimWorld, a: NodeId, b: NodeId) -> LinkDecision {
        if a == b {
            return LinkDecision::Loopback;
        }
        let shared = self.shared(world, a, b);
        if shared.is_empty() {
            // No shared network: the parallel middleware crosses the grid
            // through gateway relays (maximally cross-paradigm).
            return self.relayed(world, a, b).unwrap_or_else(|| {
                panic!("no network between {a} and {b}, and no route to relay through")
            });
        }
        if !self.prefs.forbid_san {
            if let Some(san) = self.best_of(&shared, NetworkClass::San) {
                // Straight adapter: parallel middleware on parallel hardware.
                return LinkDecision::San(san);
            }
        }
        // Cross-paradigm: the parallel middleware must ride a distributed
        // network; reuse the distributed-side method selection (which may
        // itself pick WAN-specific methods).
        match self.select_vlink(world, a, b) {
            LinkDecision::San(n) => LinkDecision::Tcp(n),
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::topology;
    use simnet::NetworkSpec;

    #[test]
    fn same_node_is_loopback() {
        let p = topology::san_pair(1);
        let kb = TopologyKb::default();
        assert_eq!(kb.select_vlink(&p.world, p.a, p.a), LinkDecision::Loopback);
        assert_eq!(
            kb.select_circuit(&p.world, p.b, p.b),
            LinkDecision::Loopback
        );
    }

    #[test]
    fn san_preferred_for_both_paradigms_when_available() {
        let p = topology::san_pair(1);
        let kb = TopologyKb::default();
        assert_eq!(
            kb.select_vlink(&p.world, p.a, p.b),
            LinkDecision::San(p.san)
        );
        assert_eq!(
            kb.select_circuit(&p.world, p.a, p.b),
            LinkDecision::San(p.san)
        );
        assert!(kb
            .select_circuit(&p.world, p.a, p.b)
            .is_straight_for_parallel());
    }

    #[test]
    fn forbidding_san_falls_back_to_lan() {
        let p = topology::san_pair(1);
        let kb = TopologyKb::new(SelectorPreferences {
            forbid_san: true,
            ..Default::default()
        });
        assert_eq!(
            kb.select_vlink(&p.world, p.a, p.b),
            LinkDecision::Tcp(p.lan)
        );
    }

    #[test]
    fn wan_gets_parallel_streams_and_internet_gets_adoc() {
        let wan = topology::wan_pair(1);
        let kb = TopologyKb::default();
        assert_eq!(
            kb.select_vlink(&wan.world, wan.a, wan.b),
            LinkDecision::ParallelStreams(wan.network, 4)
        );
        let inet = topology::lossy_internet_pair(1);
        assert_eq!(
            kb.select_vlink(&inet.world, inet.a, inet.b),
            LinkDecision::Adoc(inet.network)
        );
    }

    #[test]
    fn secure_preference_overrides_wan_methods() {
        let wan = topology::wan_pair(1);
        let kb = TopologyKb::new(SelectorPreferences {
            secure_inter_site: true,
            ..Default::default()
        });
        assert_eq!(
            kb.select_vlink(&wan.world, wan.a, wan.b),
            LinkDecision::Secure(wan.network)
        );
        // But never on an intra-site network.
        let lanp = topology::pair_over(1, NetworkSpec::ethernet_100());
        assert_eq!(
            kb.select_vlink(&lanp.world, lanp.a, lanp.b),
            LinkDecision::Tcp(lanp.network)
        );
    }

    #[test]
    fn circuit_on_wan_is_cross_paradigm() {
        let g = topology::two_clusters_over_wan(1, 2);
        let kb = TopologyKb::default();
        let a0 = g.cluster_a.node(0);
        let b0 = g.cluster_b.node(0);
        let d = kb.select_circuit(&g.world, a0, b0);
        assert!(!d.is_straight_for_parallel());
        assert_eq!(d, LinkDecision::ParallelStreams(g.wan, 4));
        // Within a cluster the straight SAN adapter is used.
        let a1 = g.cluster_a.node(1);
        assert!(kb
            .select_circuit(&g.world, a0, a1)
            .is_straight_for_parallel());
    }

    #[test]
    fn decision_network_accessor() {
        let p = topology::san_pair(1);
        let kb = TopologyKb::default();
        let d = kb.select_vlink(&p.world, p.a, p.b);
        assert_eq!(d.network(), Some(p.san));
        assert_eq!(LinkDecision::Loopback.network(), None);
    }

    #[test]
    fn no_shared_network_resolves_to_relayed_with_routes() {
        let mut world = simnet::SimWorld::new(4);
        let grid = gridtopo::GridTopology::two_sites(&mut world, 3);
        let routes = Rc::new(grid.routes.clone());
        let kb = TopologyKb::with_routes(SelectorPreferences::default(), routes);
        let a1 = grid.site(0).node(1);
        let b1 = grid.site(1).node(1);
        assert!(world.networks_between(a1, b1).is_empty());
        let d = kb.select_vlink(&world, a1, b1);
        assert_eq!(
            d,
            LinkDecision::Relayed {
                via: grid.site(0).gateway,
                network: grid.site(0).san.unwrap(),
                hops: 3,
            }
        );
        assert!(d.is_relayed());
        assert!(!d.is_straight_for_parallel());
        assert_eq!(d.network(), grid.site(0).san);
        // The parallel paradigm relays the same way.
        assert_eq!(kb.select_circuit(&world, a1, b1), d);
        // Direct pairs are still resolved directly, never relayed.
        let a2 = grid.site(0).node(2);
        assert!(!kb.select_vlink(&world, a1, a2).is_relayed());
    }

    #[test]
    fn secure_relayed_pair_is_counted_and_still_resolves() {
        let mut world = simnet::SimWorld::new(4);
        let grid = gridtopo::GridTopology::two_sites(&mut world, 2);
        let routes = Rc::new(grid.routes.clone());
        let kb = TopologyKb::with_routes(
            SelectorPreferences {
                secure_inter_site: true,
                ..Default::default()
            },
            routes,
        );
        let a1 = grid.site(0).node(1);
        let b1 = grid.site(1).node(1);
        assert_eq!(kb.plaintext_relay_events(), 0);
        let d = kb.select_vlink(&world, a1, b1);
        assert!(d.is_relayed(), "the link still resolves, loudly: {d:?}");
        assert_eq!(kb.plaintext_relay_events(), 1);
        let _ = kb.select_circuit(&world, a1, b1);
        assert_eq!(kb.plaintext_relay_events(), 2);
        // Direct secure pairs do not count.
        let _ = kb.select_vlink(&world, grid.site(0).gateway, grid.site(1).gateway);
        assert_eq!(kb.plaintext_relay_events(), 2);
    }

    #[test]
    #[should_panic(expected = "refuse_plaintext_relay refuses the relayed link")]
    fn strict_secure_refuses_relayed_pairs() {
        let mut world = simnet::SimWorld::new(4);
        let grid = gridtopo::GridTopology::two_sites(&mut world, 2);
        let routes = Rc::new(grid.routes.clone());
        let kb = TopologyKb::with_routes(
            SelectorPreferences {
                secure_inter_site: true,
                refuse_plaintext_relay: true,
                ..Default::default()
            },
            routes,
        );
        let _ = kb.select_vlink(&world, grid.site(0).node(1), grid.site(1).node(1));
    }

    #[test]
    fn backpressure_preference_defaults_to_drop() {
        let prefs = SelectorPreferences::default();
        assert_eq!(prefs.relay_backpressure, BackpressureMode::Drop);
        assert!(!prefs.refuse_plaintext_relay);
    }

    #[test]
    #[should_panic(expected = "no route to relay through")]
    fn no_shared_network_without_routes_panics() {
        let mut world = simnet::SimWorld::new(4);
        let grid = gridtopo::GridTopology::two_sites(&mut world, 2);
        let kb = TopologyKb::default();
        let _ = kb.select_vlink(&world, grid.site(0).node(1), grid.site(1).node(1));
    }

    #[test]
    #[should_panic(expected = "no route to relay through")]
    fn unreachable_node_panics_even_with_routes() {
        let mut world = simnet::SimWorld::new(4);
        let grid = gridtopo::GridTopology::two_sites(&mut world, 2);
        let island = world.add_node("island");
        let routes = Rc::new(gridtopo::RouteTable::compute(&world));
        let kb = TopologyKb::with_routes(SelectorPreferences::default(), routes);
        let _ = kb.select_vlink(&world, grid.site(0).node(1), island);
    }
}
