//! Byte streams over MadIO messages: the cross-paradigm building block that
//! lets the distributed-oriented VLink interface run on parallel-oriented
//! hardware (e.g. CORBA over Myrinet).
//!
//! MadIO is message-based; a VLink is a connected stream. This module
//! implements a tiny connection protocol (CONNECT / ACCEPT / DATA / CLOSE)
//! on one MadIO tag so any number of logical streams share the SAN.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use bytes::{Bytes, BytesMut};
use netaccess::{MadIO, MadIOMessage, MadIOTag};
use simnet::{SimDuration, SimWorld};
use transport::{ByteStream, ReadableCallback, SegBuf};

const KIND_CONNECT: u8 = 0;
const KIND_ACCEPT: u8 = 1;
const KIND_DATA: u8 = 2;
const KIND_CLOSE: u8 = 3;
const KIND_REFUSE: u8 = 4;

/// Header bytes of the stream-over-MadIO protocol.
const HEADER_BYTES: usize = 11;

fn encode_header(kind: u8, stream_id: u64, service: u16) -> Bytes {
    let mut b = BytesMut::with_capacity(HEADER_BYTES);
    b.extend_from_slice(&[kind]);
    b.extend_from_slice(&stream_id.to_be_bytes());
    b.extend_from_slice(&service.to_be_bytes());
    b.freeze()
}

struct StreamState {
    remote_rank: usize,
    stream_id: u64,
    established: bool,
    refused: bool,
    peer_closed: bool,
    self_closed: bool,
    recv_buf: SegBuf,
    readable_cb: Option<ReadableCallback>,
    notify_pending: bool,
    bytes_sent: u64,
}

/// One logical byte stream carried over MadIO messages.
#[derive(Clone)]
pub struct MadStream {
    driver: MadStreamDriver,
    state: Rc<RefCell<StreamState>>,
}

type AcceptCallback = Box<dyn FnMut(&mut SimWorld, MadStream)>;

struct DriverInner {
    madio: MadIO,
    /// Cost charged per DATA message by the stream emulation (marshalling a
    /// stream onto messages is not free; this is part of VLink's extra
    /// latency over Circuit).
    per_message_overhead: SimDuration,
    listeners: HashMap<u16, AcceptCallback>,
    streams: HashMap<u64, Rc<RefCell<StreamState>>>,
    next_stream_id: u64,
}

/// The per-node driver multiplexing every [`MadStream`] onto one MadIO tag.
#[derive(Clone)]
pub struct MadStreamDriver {
    inner: Rc<RefCell<DriverInner>>,
}

impl MadStreamDriver {
    /// Creates the driver and registers it on [`MadIOTag::VLINK`].
    pub fn new(world: &mut SimWorld, madio: MadIO) -> MadStreamDriver {
        let my_rank = madio.my_rank() as u64;
        let driver = MadStreamDriver {
            inner: Rc::new(RefCell::new(DriverInner {
                madio: madio.clone(),
                per_message_overhead: SimDuration::from_nanos(900),
                listeners: HashMap::new(),
                streams: HashMap::new(),
                // Stream ids are made globally unique by embedding the
                // initiator's rank in the upper bits.
                next_stream_id: my_rank << 40,
            })),
        };
        let d = driver.clone();
        madio.register(world, MadIOTag::VLINK, move |world, msg| {
            d.on_message(world, msg);
        });
        driver
    }

    /// Starts accepting streams on `service`.
    pub fn listen(&self, service: u16, on_accept: impl FnMut(&mut SimWorld, MadStream) + 'static) {
        self.inner
            .borrow_mut()
            .listeners
            .insert(service, Box::new(on_accept));
    }

    /// Stops accepting streams on `service`.
    pub fn unlisten(&self, service: u16) {
        self.inner.borrow_mut().listeners.remove(&service);
    }

    /// Opens a stream to the node of `remote_rank` (rank within the MadIO
    /// channel group) on `service`.
    pub fn connect(&self, world: &mut SimWorld, remote_rank: usize, service: u16) -> MadStream {
        let (madio, stream_id) = {
            let mut inner = self.inner.borrow_mut();
            let id = inner.next_stream_id;
            inner.next_stream_id += 1;
            (inner.madio.clone(), id)
        };
        let state = Rc::new(RefCell::new(StreamState {
            remote_rank,
            stream_id,
            established: false,
            refused: false,
            peer_closed: false,
            self_closed: false,
            recv_buf: SegBuf::new(),
            readable_cb: None,
            notify_pending: false,
            bytes_sent: 0,
        }));
        self.inner
            .borrow_mut()
            .streams
            .insert(stream_id, state.clone());
        madio.send(
            world,
            remote_rank,
            MadIOTag::VLINK,
            vec![(
                encode_header(KIND_CONNECT, stream_id, service),
                madeleine::SendMode::Safer,
            )],
        );
        MadStream {
            driver: self.clone(),
            state,
        }
    }

    fn on_message(&self, world: &mut SimWorld, msg: MadIOMessage) {
        if msg.segments.is_empty() || msg.segments[0].len() < HEADER_BYTES {
            return;
        }
        let header = &msg.segments[0];
        let kind = header[0];
        let stream_id = u64::from_be_bytes(header[1..9].try_into().unwrap());
        let service = u16::from_be_bytes(header[9..11].try_into().unwrap());
        match kind {
            KIND_CONNECT => {
                let has_listener = self.inner.borrow().listeners.contains_key(&service);
                let madio = self.inner.borrow().madio.clone();
                if !has_listener {
                    madio.send(
                        world,
                        msg.src_rank,
                        MadIOTag::VLINK,
                        vec![(
                            encode_header(KIND_REFUSE, stream_id, service),
                            madeleine::SendMode::Safer,
                        )],
                    );
                    return;
                }
                let state = Rc::new(RefCell::new(StreamState {
                    remote_rank: msg.src_rank,
                    stream_id,
                    established: true,
                    refused: false,
                    peer_closed: false,
                    self_closed: false,
                    recv_buf: SegBuf::new(),
                    readable_cb: None,
                    notify_pending: false,
                    bytes_sent: 0,
                }));
                self.inner
                    .borrow_mut()
                    .streams
                    .insert(stream_id, state.clone());
                madio.send(
                    world,
                    msg.src_rank,
                    MadIOTag::VLINK,
                    vec![(
                        encode_header(KIND_ACCEPT, stream_id, service),
                        madeleine::SendMode::Safer,
                    )],
                );
                let stream = MadStream {
                    driver: self.clone(),
                    state,
                };
                // Hand the new stream to the listener (take the callback out
                // so it may itself register new listeners).
                let cb = self.inner.borrow_mut().listeners.remove(&service);
                if let Some(mut cb) = cb {
                    cb(world, stream);
                    self.inner
                        .borrow_mut()
                        .listeners
                        .entry(service)
                        .or_insert(cb);
                }
            }
            KIND_ACCEPT | KIND_REFUSE | KIND_DATA | KIND_CLOSE => {
                let state = self.inner.borrow().streams.get(&stream_id).cloned();
                let Some(state) = state else { return };
                let stream = MadStream {
                    driver: self.clone(),
                    state: state.clone(),
                };
                match kind {
                    KIND_ACCEPT => state.borrow_mut().established = true,
                    KIND_REFUSE => {
                        let mut st = state.borrow_mut();
                        st.refused = true;
                        st.peer_closed = true;
                    }
                    KIND_DATA => {
                        let mut st = state.borrow_mut();
                        // The arriving MadIO segments are queued by
                        // refcount; the SAN payload is never copied again.
                        for seg in &msg.segments[1..] {
                            st.recv_buf.push_bytes(seg.clone());
                        }
                    }
                    KIND_CLOSE => state.borrow_mut().peer_closed = true,
                    _ => unreachable!(),
                }
                if matches!(kind, KIND_DATA | KIND_CLOSE | KIND_REFUSE) {
                    stream.schedule_notify(world);
                }
            }
            _ => {}
        }
    }
}

impl MadStream {
    fn schedule_notify(&self, world: &mut SimWorld) {
        let should = {
            let mut st = self.state.borrow_mut();
            if st.readable_cb.is_some() && !st.notify_pending {
                st.notify_pending = true;
                true
            } else {
                false
            }
        };
        if should {
            let stream = self.clone();
            world.schedule_after(SimDuration::ZERO, move |world| {
                let cb = {
                    let mut st = stream.state.borrow_mut();
                    st.notify_pending = false;
                    st.readable_cb.take()
                };
                if let Some(mut cb) = cb {
                    cb(world);
                    let mut st = stream.state.borrow_mut();
                    if st.readable_cb.is_none() {
                        st.readable_cb = Some(cb);
                    }
                }
            });
        }
    }

    /// Whether the peer refused the connection (no listener on the service).
    pub fn is_refused(&self) -> bool {
        self.state.borrow().refused
    }
}

impl MadStream {
    /// Queues one DATA message carrying `payload` (already refcounted; the
    /// emulation adds its header as a combined segment, so the payload is
    /// never copied by the stream layer).
    fn queue_send(&self, world: &mut SimWorld, payload: Bytes) -> usize {
        let (madio, overhead) = {
            let inner = self.driver.inner.borrow();
            (inner.madio.clone(), inner.per_message_overhead)
        };
        let (remote_rank, stream_id, closed) = {
            let st = self.state.borrow();
            (
                st.remote_rank,
                st.stream_id,
                st.self_closed || st.peer_closed,
            )
        };
        if closed {
            return 0;
        }
        let len = payload.len();
        self.state.borrow_mut().bytes_sent += len as u64;
        let header = encode_header(KIND_DATA, stream_id, 0);
        // The stream emulation charges its per-message cost before handing
        // the message to MadIO.
        world.schedule_after(overhead, move |world| {
            madio.send(
                world,
                remote_rank,
                MadIOTag::VLINK,
                vec![
                    (header, madeleine::SendMode::Safer),
                    (payload, madeleine::SendMode::Cheaper),
                ],
            );
        });
        len
    }
}

impl ByteStream for MadStream {
    fn send(&self, world: &mut SimWorld, data: &[u8]) -> usize {
        self.queue_send(world, Bytes::copy_from_slice(data))
    }

    fn send_bytes(&self, world: &mut SimWorld, data: Bytes) -> usize {
        self.queue_send(world, data)
    }

    fn available(&self) -> usize {
        self.state.borrow().recv_buf.len()
    }

    fn recv(&self, _world: &mut SimWorld, max: usize) -> Vec<u8> {
        // Early out before touching the state when there is nothing to do
        // (`max == 0` reads and spurious wakeups on an empty buffer).
        if max == 0 || self.available() == 0 {
            return Vec::new();
        }
        self.state.borrow_mut().recv_buf.read_into(max)
    }

    fn recv_bytes(&self, _world: &mut SimWorld, max: usize) -> Bytes {
        self.state.borrow_mut().recv_buf.pop_chunk(max)
    }

    fn is_established(&self) -> bool {
        self.state.borrow().established
    }

    fn is_finished(&self) -> bool {
        let st = self.state.borrow();
        st.peer_closed && st.recv_buf.is_empty()
    }

    fn close(&self, world: &mut SimWorld) {
        let (madio, remote_rank, stream_id, already) = {
            let mut st = self.state.borrow_mut();
            let already = st.self_closed;
            st.self_closed = true;
            (
                self.driver.inner.borrow().madio.clone(),
                st.remote_rank,
                st.stream_id,
                already,
            )
        };
        if !already {
            madio.send(
                world,
                remote_rank,
                MadIOTag::VLINK,
                vec![(
                    encode_header(KIND_CLOSE, stream_id, 0),
                    madeleine::SendMode::Safer,
                )],
            );
        }
    }

    fn set_readable_callback(&self, cb: ReadableCallback) {
        self.state.borrow_mut().readable_cb = Some(cb);
    }

    fn bytes_acked(&self) -> u64 {
        // The SAN is lossless: everything handed to MadIO is delivered.
        self.state.borrow().bytes_sent
    }

    fn bytes_unacked(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netaccess::NetAccess;
    use simnet::topology;
    use transport::ByteStreamExt;

    fn setup() -> (SimWorld, MadStreamDriver, MadStreamDriver) {
        let p = topology::san_pair(41);
        let mut world = p.world;
        let nodes = vec![p.a, p.b];
        let na0 = NetAccess::new(&mut world, p.a, Some((p.san, nodes.clone())));
        let na1 = NetAccess::new(&mut world, p.b, Some((p.san, nodes.clone())));
        let d0 = MadStreamDriver::new(&mut world, na0.madio());
        let d1 = MadStreamDriver::new(&mut world, na1.madio());
        (world, d0, d1)
    }

    #[test]
    fn connect_accept_and_exchange() {
        let (mut world, d0, d1) = setup();
        let accepted: Rc<RefCell<Option<MadStream>>> = Rc::new(RefCell::new(None));
        let a = accepted.clone();
        d1.listen(42, move |_w, s| *a.borrow_mut() = Some(s));
        let client = d0.connect(&mut world, 1, 42);
        world.run();
        assert!(client.is_established());
        let server = accepted.borrow().clone().unwrap();
        client.send_all(&mut world, b"corba request over the SAN");
        server.send_all(&mut world, b"reply");
        world.run();
        assert_eq!(server.recv_all(&mut world), b"corba request over the SAN");
        assert_eq!(client.recv_all(&mut world), b"reply");
    }

    #[test]
    fn connect_to_missing_service_is_refused() {
        let (mut world, d0, _d1) = setup();
        let client = d0.connect(&mut world, 1, 999);
        world.run();
        assert!(client.is_refused());
        assert!(!client.is_established());
        assert_eq!(client.send(&mut world, b"x"), 0);
    }

    #[test]
    fn close_is_propagated() {
        let (mut world, d0, d1) = setup();
        let accepted: Rc<RefCell<Option<MadStream>>> = Rc::new(RefCell::new(None));
        let a = accepted.clone();
        d1.listen(7, move |_w, s| *a.borrow_mut() = Some(s));
        let client = d0.connect(&mut world, 1, 7);
        world.run();
        client.send_all(&mut world, b"last words");
        client.close(&mut world);
        world.run();
        let server = accepted.borrow().clone().unwrap();
        assert_eq!(server.recv_all(&mut world), b"last words");
        assert!(server.is_finished());
    }

    #[test]
    fn many_streams_share_one_tag() {
        let (mut world, d0, d1) = setup();
        let accepted: Rc<RefCell<Vec<MadStream>>> = Rc::new(RefCell::new(Vec::new()));
        let a = accepted.clone();
        d1.listen(5, move |_w, s| a.borrow_mut().push(s));
        let clients: Vec<MadStream> = (0..8).map(|_| d0.connect(&mut world, 1, 5)).collect();
        world.run();
        assert_eq!(accepted.borrow().len(), 8);
        for (i, c) in clients.iter().enumerate() {
            c.send_all(&mut world, format!("stream {i}").as_bytes());
        }
        world.run();
        let mut got: Vec<String> = accepted
            .borrow()
            .iter()
            .map(|s| String::from_utf8(s.recv_all(&mut world)).unwrap())
            .collect();
        got.sort();
        let mut want: Vec<String> = (0..8).map(|i| format!("stream {i}")).collect();
        want.sort();
        assert_eq!(got, want);
    }
}
