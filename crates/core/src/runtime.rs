//! The PadicoTM runtime: one instance per node, tying together the
//! arbitration layer, the abstract interfaces, the selector and the
//! personalities.
//!
//! Middleware systems never talk to the network directly: they ask the
//! runtime for VLinks (distributed paradigm) or Circuits (parallel
//! paradigm) and the runtime wires the appropriate adapters underneath,
//! according to the topology knowledge base and the user preferences.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use gridtopo::{GridRoutes, GridTopology};
use netaccess::{MadIOTag, NetAccess, NetAccessConfig};
use simnet::{FlightRecorder, NetworkId, NodeId, SimDuration, SimWorld, TraceEvent};
use transport::{
    adoc_over, loopback_pair, secure_over, AdocConfig, ByteStream, ParallelStream,
    ParallelStreamConfig, SecureConfig,
};

use crate::circuit::{Circuit, CircuitLinkKind, MadIoCircuitLink, StreamCircuitLink};
use crate::madio_stream::MadStreamDriver;
use crate::relay::{self, GatewayProxy};
use crate::selector::{LinkDecision, SelectorPreferences, TopologyKb};
use crate::trunk::{TrunkMux, TrunkStream};
use crate::vlink::{VLink, VLinkMethod};

/// Port offset used for Parallel Streams bundles.
const PSTREAM_PORT_OFFSET: u16 = 10_000;
/// Port offset used for AdOC-wrapped connections.
const ADOC_PORT_OFFSET: u16 = 20_000;
/// Port offset used for secured connections.
const SECURE_PORT_OFFSET: u16 = 30_000;
/// MadIO tag base used by Circuits (one tag per circuit port).
const CIRCUIT_TAG_BASE: u16 = 2_000;

type VLinkAcceptCallback = Rc<RefCell<Box<dyn FnMut(&mut SimWorld, VLink)>>>;

struct RuntimeInner {
    node: NodeId,
    netaccess: NetAccess,
    madstream: Option<MadStreamDriver>,
    san_group: Vec<NodeId>,
    kb: TopologyKb,
    /// Fail-stopped by [`PadicoRuntime::kill`]: splices consume nothing
    /// more, trunks are severed, nothing new is accepted.
    dead: bool,
    /// Accept callbacks per service, used for intra-node (loopback) connects.
    local_services: HashMap<u16, VLinkAcceptCallback>,
    /// Persistent trunks towards gateway proxies, keyed by
    /// (gateway, network). Established once, shared by every relayed
    /// stream this node opens through that gateway.
    trunks: BTreeMap<(NodeId, NetworkId), TrunkMux>,
    /// Trunk demultiplexers accepted by this node's proxy listener, kept
    /// alive here (their carrier callbacks hold only weak references).
    accepted_trunks: Vec<TrunkMux>,
    /// Flight recorders of every failover stream this node originated,
    /// retained so fault tests can dump a forensic timeline post mortem.
    flight_recorders: Vec<Rc<RefCell<FlightRecorder>>>,
}

/// A node's PadicoTM runtime.
#[derive(Clone)]
pub struct PadicoRuntime {
    inner: Rc<RefCell<RuntimeInner>>,
}

impl PadicoRuntime {
    /// Brings up the runtime on `node`. If the node is attached to a SAN,
    /// pass it along with the SAN group so MadIO can be set up.
    pub fn new(
        world: &mut SimWorld,
        node: NodeId,
        san: Option<(NetworkId, Vec<NodeId>)>,
        prefs: SelectorPreferences,
    ) -> PadicoRuntime {
        Self::with_netaccess_config(world, node, san, prefs, NetAccessConfig::default())
    }

    /// Brings up the runtime with an explicit arbitration-layer config.
    pub fn with_netaccess_config(
        world: &mut SimWorld,
        node: NodeId,
        san: Option<(NetworkId, Vec<NodeId>)>,
        prefs: SelectorPreferences,
        na_config: NetAccessConfig,
    ) -> PadicoRuntime {
        let san_group = san.as_ref().map(|(_, g)| g.clone()).unwrap_or_default();
        let netaccess = NetAccess::with_config(world, node, san.clone(), na_config);
        let madstream = san
            .as_ref()
            .map(|_| MadStreamDriver::new(world, netaccess.madio()));
        let rt = PadicoRuntime {
            inner: Rc::new(RefCell::new(RuntimeInner {
                node,
                netaccess,
                madstream,
                san_group,
                kb: TopologyKb::new(prefs),
                dead: false,
                local_services: HashMap::new(),
                trunks: BTreeMap::new(),
                accepted_trunks: Vec::new(),
                flight_recorders: Vec::new(),
            })),
        };
        rt.register_metrics(world);
        rt
    }

    /// Registers this runtime's metrics collector: route-cache counters
    /// under `route.cache.*{node=N}` and aggregate trunk credit/memory
    /// accounting under `trunk.credit.*{node=N}` / `trunk.memory.*{node=N}`.
    fn register_metrics(&self, world: &mut SimWorld) {
        let weak = Rc::downgrade(&self.inner);
        world.metrics.register_collector(move |b| {
            let Some(inner) = weak.upgrade() else { return };
            let inner = inner.borrow();
            let node = inner.node.0.to_string();
            let labels: &[(&str, &str)] = &[("node", node.as_str())];
            let rc = inner.kb.route_cache_stats();
            b.counter("route.cache.hits", labels, rc.hits);
            b.counter("route.cache.misses", labels, rc.misses);
            b.counter("route.cache.evictions", labels, rc.evictions);
            b.counter("route.cache.invalidations", labels, rc.invalidations);
            b.gauge("route.cache.len", labels, rc.len as i64);

            // Aggregate over every trunk this node holds (outgoing and
            // accepted): sums for flows/occupancy, maxima for high water.
            let mut budget = 0usize;
            let mut budget_available = 0usize;
            let mut recv_occupancy = 0usize;
            let mut recv_high_water = 0usize;
            let mut parked_streams = 0usize;
            let mut max_stream_high_water = 0usize;
            let muxes = inner.trunks.values().chain(inner.accepted_trunks.iter());
            let mut n_trunks = 0i64;
            for mux in muxes {
                let m = mux.memory_stats();
                budget += m.budget;
                budget_available += m.budget_available;
                recv_occupancy += m.recv_occupancy;
                recv_high_water = recv_high_water.max(m.recv_high_water);
                parked_streams += m.parked_streams;
                max_stream_high_water = max_stream_high_water.max(m.max_stream_high_water);
                n_trunks += 1;
            }
            b.gauge("trunk.memory.trunks", labels, n_trunks);
            b.gauge("trunk.memory.budget", labels, budget as i64);
            b.gauge(
                "trunk.memory.budget_available",
                labels,
                budget_available as i64,
            );
            b.gauge("trunk.memory.recv_occupancy", labels, recv_occupancy as i64);
            b.gauge(
                "trunk.memory.recv_high_water",
                labels,
                recv_high_water as i64,
            );
            b.gauge("trunk.memory.parked_streams", labels, parked_streams as i64);
            b.gauge(
                "trunk.memory.max_stream_high_water",
                labels,
                max_stream_high_water as i64,
            );

            // Credit conservation over this node's failover streams is
            // asserted from TrunkCreditStats directly in tests; here we
            // surface the per-node stall totals recorded by the recorders.
            b.gauge(
                "trunk.credit.flight_recorders",
                labels,
                inner.flight_recorders.len() as i64,
            );
            let transitions: u64 = inner
                .flight_recorders
                .iter()
                .map(|r| {
                    let r = r.borrow();
                    r.entries().count() as u64 + r.dropped()
                })
                .sum();
            b.counter("trunk.credit.stream_transitions", labels, transitions);
        });
    }

    /// Keeps a failover stream's flight recorder reachable for post-run
    /// forensics.
    pub(crate) fn register_flight_recorder(&self, rec: Rc<RefCell<FlightRecorder>>) {
        self.inner.borrow_mut().flight_recorders.push(rec);
    }

    /// Flight recorders of every failover stream this node originated,
    /// in open order.
    pub fn flight_recorders(&self) -> Vec<Rc<RefCell<FlightRecorder>>> {
        self.inner.borrow().flight_recorders.clone()
    }

    /// Rendered forensic timelines of this node's failover streams —
    /// what a fault-injection test prints when an assertion fails.
    pub fn flight_dumps(&self) -> Vec<String> {
        self.inner
            .borrow()
            .flight_recorders
            .iter()
            .map(|r| r.borrow().dump())
            .collect()
    }

    /// The node this runtime runs on.
    pub fn node(&self) -> NodeId {
        self.inner.borrow().node
    }

    /// The arbitration layer of this node.
    pub fn netaccess(&self) -> NetAccess {
        self.inner.borrow().netaccess.clone()
    }

    /// The topology knowledge base / selector preferences.
    pub fn preferences(&self) -> SelectorPreferences {
        self.inner.borrow().kb.prefs.clone()
    }

    /// Replaces the selector preferences (the route table and accumulated
    /// selector statistics are preserved).
    pub fn set_preferences(&self, prefs: SelectorPreferences) {
        self.inner.borrow_mut().kb.set_prefs(prefs);
    }

    /// Times this node's selector resolved a relayed decision while
    /// `secure_inter_site` was set (see
    /// [`TopologyKb::plaintext_relay_events`]).
    pub fn plaintext_relay_events(&self) -> u64 {
        self.inner.borrow().kb.plaintext_relay_events()
    }

    /// Installs the multi-hop route table (hierarchical or flat), making
    /// the selector route-aware: links towards nodes with which this node
    /// shares no network resolve to [`LinkDecision::Relayed`] instead of
    /// failing. Any previously cached resolved route is invalidated.
    pub fn set_route_table(&self, routes: Rc<GridRoutes>) {
        self.inner.borrow_mut().kb.set_routes(routes);
    }

    /// Adopts `other`'s route cache (see [`TopologyKb::share_cache_with`]):
    /// entries are source-keyed, so runtimes of different nodes pool one
    /// LRU without ever serving each other's routes. The grid bring-up
    /// shares one cache across the gateway runtimes — the nodes that
    /// resolve a route per relayed stream. Re-share after
    /// [`PadicoRuntime::set_route_table`], which detaches into a fresh
    /// cache by design.
    pub fn share_route_cache_with(&self, other: &PadicoRuntime) {
        let other_kb = other.inner.borrow().kb.clone();
        self.inner.borrow_mut().kb.share_cache_with(&other_kb);
    }

    /// The memoized route and [`gridtopo::PathInfo`] towards `remote`, if
    /// a route table is installed and a route exists (see
    /// [`crate::selector::TopologyKb::resolve_route`]).
    pub fn resolved_route(
        &self,
        world: &SimWorld,
        remote: NodeId,
    ) -> Option<Rc<crate::selector::ResolvedRoute>> {
        let inner = self.inner.borrow();
        inner.kb.resolve_route(world, inner.node, remote)
    }

    /// This node's route-cache counters.
    pub fn route_cache_stats(&self) -> crate::selector::RouteCacheStats {
        self.inner.borrow().kb.route_cache_stats()
    }

    /// Marks `gateway` dead in this node's knowledge base (see
    /// [`TopologyKb::mark_gateway_down`]). Learned automatically from
    /// trunk liveness; exposed for tests and operators.
    pub fn mark_gateway_down(&self, gateway: NodeId) {
        self.inner.borrow().kb.mark_gateway_down(gateway);
    }

    /// Marks a previously down gateway live again.
    pub fn mark_gateway_up(&self, gateway: NodeId) {
        self.inner.borrow().kb.mark_gateway_up(gateway);
    }

    /// The gateways this node currently believes dead.
    pub fn down_gateways(&self) -> Vec<NodeId> {
        self.inner.borrow().kb.down_gateways()
    }

    /// The method the selector would pick for a VLink towards `remote`.
    pub fn vlink_decision(&self, world: &SimWorld, remote: NodeId) -> LinkDecision {
        let inner = self.inner.borrow();
        inner.kb.select_vlink(world, inner.node, remote)
    }

    /// The method the selector would pick for a Circuit link towards `remote`.
    pub fn circuit_decision(&self, world: &SimWorld, remote: NodeId) -> LinkDecision {
        let inner = self.inner.borrow();
        inner.kb.select_circuit(world, inner.node, remote)
    }

    // ------------------------------------------------------------------ //
    // Gateway trunks
    // ------------------------------------------------------------------ //

    /// Returns (establishing it on first use) the persistent trunk towards
    /// the gateway proxy on `via` over `network`. The carrier is a
    /// Parallel Streams bundle — the selector's own answer to WAN-class
    /// links — sized by the `gateway_trunk_width` preference.
    pub(crate) fn ensure_trunk(
        &self,
        world: &mut SimWorld,
        network: NetworkId,
        via: NodeId,
    ) -> TrunkMux {
        if let Some(mux) = self.inner.borrow().trunks.get(&(via, network)).cloned() {
            if !mux.is_dead() {
                return mux;
            }
            // A dead trunk never serves a stream again: purge the entry
            // and re-dial a fresh carrier below.
            self.inner.borrow_mut().trunks.remove(&(via, network));
        }
        let prefs = self.preferences();
        let wan_class = matches!(
            world.network(network).spec.class,
            simnet::NetworkClass::Wan | simnet::NetworkClass::Internet
        );
        // WAN trunks stripe wide; intra-site trunks (SAN/LAN legs in
        // failover mode) need no striping — one member carries them.
        let width = if wan_class { prefs.trunk_width() } else { 1 };
        let tcp = self.inner.borrow().netaccess.sysio().tcp();
        let carrier = ParallelStream::connect(
            world,
            &tcp,
            network,
            via,
            relay::GATEWAY_PROXY_TRUNK_SERVICE,
            ParallelStreamConfig {
                n_streams: width,
                chunk_size: relay::TRUNK_STRIPE_CHUNK,
            },
        );
        let mux = TrunkMux::connector(Rc::new(carrier), relay::trunk_flow(&prefs));
        if prefs.gateway_failover {
            // Liveness: orderly closes are detected immediately, silent
            // deaths by heartbeat timeout. When this trunk dies, purge it
            // and mark the gateway down *before* any per-stream failover
            // hook runs (hooks fire in registration order), so migrating
            // streams re-resolve around the corpse.
            mux.enable_health(world, crate::trunk::TrunkHealthConfig::default());
            let weak_rt = Rc::downgrade(&self.inner);
            let key = (via, network);
            mux.on_dead(move |_world, locally_severed| {
                let Some(rt_inner) = weak_rt.upgrade() else {
                    return;
                };
                let mut inner = rt_inner.borrow_mut();
                if inner.dead {
                    return; // our own node died; nothing to learn
                }
                if inner.trunks.get(&key).is_some_and(|m| m.is_dead()) {
                    inner.trunks.remove(&key);
                }
                // A carrier *we* severed (`drop_trunks`, the local-restart
                // fault model) says nothing about the peer's health: only
                // a death the peer caused marks its gateway down.
                if !locally_severed {
                    inner.kb.mark_gateway_down(key.0);
                }
            });
        }
        if wan_class {
            // Drive the fresh carrier's congestion windows to steady state
            // once, so every relayed stream finds a hot trunk (the
            // simulated TCP keeps congestion state for the connection's
            // lifetime, like a cached GridFTP data channel). The padding
            // is sized from the cached PathInfo towards the gateway — two
            // bandwidth-delay products of the actual path — instead of one
            // hard-wired constant for every WAN class.
            let warmup = self
                .resolved_route(world, via)
                .map(|r| relay::warmup_bytes_for(&r.info))
                .unwrap_or(relay::TRUNK_WARMUP_BYTES);
            mux.warm_up(world, warmup);
        }
        self.inner
            .borrow_mut()
            .trunks
            .insert((via, network), mux.clone());
        mux
    }

    /// Whether this runtime has been fail-stopped by
    /// [`PadicoRuntime::kill`].
    pub fn is_dead(&self) -> bool {
        self.inner.borrow().dead
    }

    /// Fail-stops this node — the gateway-death fault model of the
    /// failover experiments. From this instant the node consumes nothing
    /// more: its splices stop pulling, its trunk carriers are severed and
    /// incoming connections are refused. Everything it had *already*
    /// consumed keeps draining in an orderly way, and each trunk's
    /// consumed-credit batches are flushed first — so in credit mode a
    /// peer's "acknowledged" ledger matches exactly what this gateway
    /// forwarded before dying, which is what makes failover resume
    /// byte-exact. Idempotent.
    pub fn kill(&self, world: &mut SimWorld) {
        let (outgoing, accepted) = {
            let mut inner = self.inner.borrow_mut();
            if inner.dead {
                return;
            }
            inner.dead = true;
            if world.events.is_enabled() {
                let now = world.now();
                world
                    .events
                    .record(now, TraceEvent::GatewayDown { node: inner.node });
            }
            // BTreeMap::into_iter is (gateway, network) key order.
            let outgoing: Vec<TrunkMux> = std::mem::take(&mut inner.trunks).into_values().collect();
            let accepted: Vec<TrunkMux> = inner.accepted_trunks.drain(..).collect();
            (outgoing, accepted)
        };
        // Flush every consumed-but-unreturned credit batch while the
        // carriers still deliver: after this instant, a peer's
        // "acknowledged" equals exactly what this node consumed.
        for mux in outgoing.iter().chain(accepted.iter()) {
            mux.flush_consumed_credits(world);
        }
        // Sever the ingress side only. Closing an accepted carrier wakes
        // every stream on it, and each woken splice pump — seeing the dead
        // flag — closes its onward leg *gracefully*: bytes this node
        // consumed (and therefore acknowledged) before dying were already
        // posted onwards, and the graceful close drains them, including
        // credit-parked window excess, before the CLOSE goes out. The
        // outgoing carriers therefore stay open until that drain finishes
        // and then simply idle; peers still detect the death immediately
        // through their own severed ingress trunks.
        for mux in &accepted {
            mux.close_carrier(world);
        }
    }

    /// Severs every outgoing gateway trunk this runtime holds (closing the
    /// carriers) and forgets them — the fault model for a crashed or
    /// restarted gateway. Streams riding a severed trunk end; bytes posted
    /// afterwards are lost and accounted (`TrunkMux::lost_bytes`,
    /// `VLink::bytes_refused`). The next relayed stream re-establishes a
    /// fresh trunk lazily. Returns how many trunks were severed.
    pub fn drop_trunks(&self, world: &mut SimWorld) -> usize {
        // BTreeMap::into_iter closes in (gateway, network) key order, so
        // runs stay bit-for-bit reproducible by construction.
        let severed: Vec<TrunkMux> = std::mem::take(&mut self.inner.borrow_mut().trunks)
            .into_values()
            .collect();
        let n = severed.len();
        for mux in severed {
            mux.close_carrier(world);
        }
        n
    }

    /// Gracefully retires the outgoing trunks towards the given peers —
    /// the drain-side counterpart of [`PadicoRuntime::drop_trunks`]: each
    /// trunk's consumed-but-unreturned credit batches are flushed while
    /// the carrier still delivers (so in credit mode the peer's ledger
    /// balances exactly), then the carrier closes and the entry is
    /// forgotten. Peers not in the list are untouched. Returns how many
    /// trunks were retired.
    pub fn retire_trunks_to(&self, world: &mut SimWorld, peers: &[NodeId]) -> usize {
        let retired: Vec<((NodeId, NetworkId), TrunkMux)> = {
            let mut inner = self.inner.borrow_mut();
            let keys: Vec<(NodeId, NetworkId)> = inner
                .trunks
                .keys()
                .filter(|(peer, _)| peers.contains(peer))
                .copied()
                .collect();
            keys.into_iter()
                .filter_map(|k| inner.trunks.remove(&k).map(|m| (k, m)))
                .collect()
        };
        // `keys` came from a BTreeMap, so the close order is already the
        // deterministic (gateway, network) order `drop_trunks` uses.
        let n = retired.len();
        for (_, mux) in retired {
            mux.flush_consumed_credits(world);
            mux.close_carrier(world);
        }
        n
    }

    /// Opens one multiplexed stream over the trunk towards `via`.
    pub(crate) fn trunk_stream(
        &self,
        world: &mut SimWorld,
        network: NetworkId,
        via: NodeId,
    ) -> TrunkStream {
        self.ensure_trunk(world, network, via).open()
    }

    /// Keeps an accepted trunk demultiplexer alive for the lifetime of
    /// this runtime (its carrier callback only holds a weak reference).
    /// Dead muxes are purged as new carriers arrive, so a gateway under
    /// peer churn (every failover re-dial lands a fresh carrier here)
    /// holds O(live peers) trunk state, not O(history).
    pub(crate) fn register_accepted_trunk(&self, mux: TrunkMux) {
        let mut inner = self.inner.borrow_mut();
        inner.accepted_trunks.retain(|m| !m.is_dead());
        inner.accepted_trunks.push(mux);
    }

    /// Memory accounting of every trunk this runtime holds — outgoing
    /// trunks first (in deterministic `(gateway, network)` key order),
    /// then accepted ones (in accept order). The trunk-wide budget bound
    /// (`gateway_trunk_budget`) is observable here: with the budget set,
    /// no entry's `recv_high_water` ever exceeds it.
    pub fn trunk_memory_stats(&self) -> Vec<crate::trunk::TrunkMemoryStats> {
        let inner = self.inner.borrow();
        inner
            .trunks
            .values()
            .map(|mux| mux.memory_stats())
            .chain(inner.accepted_trunks.iter().map(|m| m.memory_stats()))
            .collect()
    }

    // ------------------------------------------------------------------ //
    // VLink: distributed-oriented links
    // ------------------------------------------------------------------ //

    /// Starts accepting VLinks on `service`, on every substrate this node
    /// can be reached through (SAN, TCP, Parallel Streams, AdOC, secure).
    ///
    /// `service` must be below 10 000: the higher port space is reserved
    /// for the per-substrate offset listeners and the gateway proxy, so an
    /// out-of-range service would silently collide with them.
    pub fn vlink_listen(
        &self,
        world: &mut SimWorld,
        service: u16,
        on_accept: impl FnMut(&mut SimWorld, VLink) + 'static,
    ) {
        assert!(
            service < PSTREAM_PORT_OFFSET,
            "service {service} is in the reserved port space (must be < {PSTREAM_PORT_OFFSET})"
        );
        let cb: VLinkAcceptCallback = Rc::new(RefCell::new(Box::new(on_accept)));
        self.inner
            .borrow_mut()
            .local_services
            .insert(service, cb.clone());

        // SAN substrate (stream-over-MadIO).
        let madstream = self.inner.borrow().madstream.clone();
        if let Some(driver) = madstream {
            let cb2 = cb.clone();
            driver.listen(service, move |world, stream| {
                let vlink = VLink::from_stream(Rc::new(stream), VLinkMethod::MadIo);
                (cb2.borrow_mut())(world, vlink);
            });
        }

        let sysio = self.inner.borrow().netaccess.sysio();

        // Plain TCP substrate.
        let cb2 = cb.clone();
        sysio.listen(service, move |world, conn| {
            let vlink = VLink::from_stream(Rc::new(conn), VLinkMethod::SysIoTcp);
            (cb2.borrow_mut())(world, vlink);
        });

        // Parallel Streams substrate.
        let cb2 = cb.clone();
        let width = self.preferences().parallel_stream_width;
        ParallelStream::listen(
            world,
            &sysio.tcp(),
            service + PSTREAM_PORT_OFFSET,
            ParallelStreamConfig {
                n_streams: width,
                ..Default::default()
            },
            move |world, ps| {
                let w = ps.width();
                let vlink =
                    VLink::from_stream(Rc::new(ps), VLinkMethod::ParallelStreams { width: w });
                (cb2.borrow_mut())(world, vlink);
            },
        );

        // AdOC substrate (compressed TCP).
        let cb2 = cb.clone();
        sysio.listen(service + ADOC_PORT_OFFSET, move |world, conn| {
            let adoc = adoc_over(world, Box::new(conn), AdocConfig::default());
            let vlink = VLink::from_stream(Rc::new(adoc), VLinkMethod::Adoc);
            (cb2.borrow_mut())(world, vlink);
        });

        // Secure substrate (ciphered TCP).
        let cb2 = cb.clone();
        sysio.listen(service + SECURE_PORT_OFFSET, move |world, conn| {
            let sec = secure_over(world, Box::new(conn), SecureConfig::default());
            let vlink = VLink::from_stream(Rc::new(sec), VLinkMethod::Secure);
            (cb2.borrow_mut())(world, vlink);
        });
    }

    /// Opens a VLink to `remote:service`; the carrying method is chosen by
    /// the selector.
    pub fn vlink_connect(&self, world: &mut SimWorld, remote: NodeId, service: u16) -> VLink {
        let decision = self.vlink_decision(world, remote);
        self.vlink_connect_with(world, remote, service, decision)
    }

    /// Opens a VLink forcing a specific method (used by experiments that
    /// compare methods explicitly).
    pub fn vlink_connect_with(
        &self,
        world: &mut SimWorld,
        remote: NodeId,
        service: u16,
        decision: LinkDecision,
    ) -> VLink {
        self.vlink_connect_internal(world, remote, service, decision, relay::PROXY_TTL)
    }

    fn vlink_connect_internal(
        &self,
        world: &mut SimWorld,
        remote: NodeId,
        service: u16,
        decision: LinkDecision,
        relay_ttl: u8,
    ) -> VLink {
        let node = self.node();
        match decision {
            LinkDecision::Loopback => {
                assert_eq!(remote, node, "loopback decision for distinct nodes");
                let (local, peer) = loopback_pair(world, node);
                let cb = self
                    .inner
                    .borrow()
                    .local_services
                    .get(&service)
                    .cloned()
                    .unwrap_or_else(|| panic!("no local service {service} to loop back to"));
                let peer_vlink = VLink::from_stream(Rc::new(peer), VLinkMethod::Loopback);
                world.schedule_after(SimDuration::ZERO, move |world| {
                    (cb.borrow_mut())(world, peer_vlink);
                });
                VLink::from_stream(Rc::new(local), VLinkMethod::Loopback)
            }
            LinkDecision::San(_) => {
                let (driver, rank) = {
                    let inner = self.inner.borrow();
                    let driver = inner
                        .madstream
                        .clone()
                        .expect("SAN decision on a node without MadIO");
                    let rank = inner
                        .san_group
                        .iter()
                        .position(|&n| n == remote)
                        .expect("remote outside the SAN group");
                    (driver, rank)
                };
                let stream = driver.connect(world, rank, service);
                VLink::from_stream(Rc::new(stream), VLinkMethod::MadIo)
            }
            LinkDecision::Tcp(net) => {
                let conn = self
                    .inner
                    .borrow()
                    .netaccess
                    .sysio()
                    .connect(world, net, remote, service);
                VLink::from_stream(Rc::new(conn), VLinkMethod::SysIoTcp)
            }
            LinkDecision::ParallelStreams(net, width) => {
                let tcp = self.inner.borrow().netaccess.sysio().tcp();
                let ps = ParallelStream::connect(
                    world,
                    &tcp,
                    net,
                    remote,
                    service + PSTREAM_PORT_OFFSET,
                    ParallelStreamConfig {
                        n_streams: width,
                        ..Default::default()
                    },
                );
                VLink::from_stream(Rc::new(ps), VLinkMethod::ParallelStreams { width })
            }
            LinkDecision::Adoc(net) => {
                let conn = self.inner.borrow().netaccess.sysio().connect(
                    world,
                    net,
                    remote,
                    service + ADOC_PORT_OFFSET,
                );
                let adoc = adoc_over(world, Box::new(conn), AdocConfig::default());
                VLink::from_stream(Rc::new(adoc), VLinkMethod::Adoc)
            }
            LinkDecision::Secure(net) => {
                let conn = self.inner.borrow().netaccess.sysio().connect(
                    world,
                    net,
                    remote,
                    service + SECURE_PORT_OFFSET,
                );
                let sec = secure_over(world, Box::new(conn), SecureConfig::default());
                VLink::from_stream(Rc::new(sec), VLinkMethod::Secure)
            }
            LinkDecision::Relayed { via, network, hops } => {
                let stream = relay::connect_through_gateway_with_ttl(
                    world, self, network, via, remote, service, false, relay_ttl,
                );
                VLink::from_stream(stream, VLinkMethod::Relayed { hops })
            }
        }
    }

    /// Opens the onward leg of a proxied connection towards
    /// `(dst, service)`, as chosen by this gateway's own selector. With
    /// `circuit_stream` the leg follows Circuit port conventions (plain
    /// streams only); otherwise it is a full VLink connect (which may ride
    /// the destination SAN). Used by the gateway stream proxy.
    pub(crate) fn open_onward_leg(
        &self,
        world: &mut SimWorld,
        dst: NodeId,
        service: u16,
        circuit_stream: bool,
        relay_ttl: u8,
    ) -> VLink {
        if !circuit_stream {
            let decision = self.vlink_decision(world, dst);
            return self.vlink_connect_internal(world, dst, service, decision, relay_ttl);
        }
        // Circuit conventions: mirror the port mapping of `circuit_create`,
        // but never MadIO (a proxy splices byte streams). A shared SAN is
        // still used — as a fabric for TCP frames.
        let decision = self.circuit_decision(world, dst);
        let (stream, method) = self.open_circuit_stream(world, dst, service, decision, relay_ttl);
        VLink::from_stream(stream, method)
    }

    /// Opens the plain byte stream carrying one Circuit link towards
    /// `dst`, following the Circuit port conventions (`circuit_port` for
    /// TCP, `+PSTREAM_PORT_OFFSET` for Parallel Streams,
    /// `+ADOC_PORT_OFFSET` for AdOC, `+SECURE_PORT_OFFSET` for
    /// secure). Shared by `circuit_create`'s
    /// outgoing links and the gateway proxy's onward circuit legs so the
    /// two can never diverge. A `San` decision rides TCP over the SAN
    /// fabric (byte-stream contexts cannot use MadIO directly).
    fn open_circuit_stream(
        &self,
        world: &mut SimWorld,
        dst: NodeId,
        circuit_port: u16,
        decision: LinkDecision,
        relay_ttl: u8,
    ) -> (Rc<dyn ByteStream>, VLinkMethod) {
        let sysio = self.inner.borrow().netaccess.sysio();
        match decision {
            LinkDecision::Loopback => {
                panic!("no byte stream carries a loopback circuit leg")
            }
            LinkDecision::San(net) | LinkDecision::Tcp(net) => {
                let conn = sysio.connect(world, net, dst, circuit_port);
                (Rc::new(conn), VLinkMethod::SysIoTcp)
            }
            LinkDecision::ParallelStreams(net, width) => {
                let ps = ParallelStream::connect(
                    world,
                    &sysio.tcp(),
                    net,
                    dst,
                    circuit_port + PSTREAM_PORT_OFFSET,
                    ParallelStreamConfig {
                        n_streams: width,
                        ..Default::default()
                    },
                );
                (Rc::new(ps), VLinkMethod::ParallelStreams { width })
            }
            LinkDecision::Adoc(net) => {
                let conn = sysio.connect(world, net, dst, circuit_port + ADOC_PORT_OFFSET);
                (
                    Rc::new(adoc_over(world, Box::new(conn), AdocConfig::default())),
                    VLinkMethod::Adoc,
                )
            }
            LinkDecision::Secure(net) => {
                // Secure legs get their own port family: the seed dialed
                // the AdOC port, so one listener had to guess which
                // transform an accepted connection carried.
                let conn = sysio.connect(world, net, dst, circuit_port + SECURE_PORT_OFFSET);
                (
                    Rc::new(secure_over(world, Box::new(conn), SecureConfig::default())),
                    VLinkMethod::Secure,
                )
            }
            LinkDecision::Relayed { via, network, hops } => {
                let stream = relay::connect_through_gateway_with_ttl(
                    world,
                    self,
                    network,
                    via,
                    dst,
                    circuit_port,
                    true,
                    relay_ttl,
                );
                (stream, VLinkMethod::Relayed { hops })
            }
        }
    }

    // ------------------------------------------------------------------ //
    // Circuit: parallel-oriented groups
    // ------------------------------------------------------------------ //

    /// Creates a Circuit over `group` (this node must be a member), using
    /// `circuit_port` as the rendezvous identifier. Every member must call
    /// this with the same group and port before the simulation runs the
    /// exchanged traffic (SPMD style).
    pub fn circuit_create(
        &self,
        world: &mut SimWorld,
        group: Vec<NodeId>,
        circuit_port: u16,
    ) -> Circuit {
        assert!(
            circuit_port < PSTREAM_PORT_OFFSET,
            "circuit port {circuit_port} is in the reserved port space (must be < {PSTREAM_PORT_OFFSET})"
        );
        let node = self.node();
        let my_rank = group
            .iter()
            .position(|&n| n == node)
            .expect("this node is not in the Circuit group");
        let circuit = Circuit::new(group.clone(), my_rank);
        let tag = MadIOTag(CIRCUIT_TAG_BASE + circuit_port);

        // Incoming: MadIO tag and framed streams on the circuit port
        // family. Each listener mirrors the outgoing transform of
        // `open_circuit_stream` exactly: plain TCP attaches raw, the AdOC
        // and secure ports wrap the accepted connection in the matching
        // transform stream before the Circuit framing is parsed (the seed
        // attached them raw, which silently broke Circuit links whose
        // selector decision was AdOC or Secure — the transform block
        // framing is not Circuit framing).
        let has_san = self.inner.borrow().madstream.is_some();
        if has_san {
            let madio = self.inner.borrow().netaccess.madio();
            circuit.attach_madio_incoming(world, &madio, tag);
        }
        let sysio = self.inner.borrow().netaccess.sysio();
        let c = circuit.clone();
        sysio.listen(circuit_port, move |world, conn| {
            c.attach_incoming_stream(world, Rc::new(conn));
        });
        let c = circuit.clone();
        let width = self.preferences().parallel_stream_width;
        ParallelStream::listen(
            world,
            &sysio.tcp(),
            circuit_port + PSTREAM_PORT_OFFSET,
            ParallelStreamConfig {
                n_streams: width,
                ..Default::default()
            },
            move |world, ps| {
                c.attach_incoming_stream(world, Rc::new(ps));
            },
        );
        let c = circuit.clone();
        sysio.listen(circuit_port + ADOC_PORT_OFFSET, move |world, conn| {
            let adoc = adoc_over(world, Box::new(conn), AdocConfig::default());
            c.attach_incoming_stream(world, Rc::new(adoc));
        });
        let c = circuit.clone();
        sysio.listen(circuit_port + SECURE_PORT_OFFSET, move |world, conn| {
            let sec = secure_over(world, Box::new(conn), SecureConfig::default());
            c.attach_incoming_stream(world, Rc::new(sec));
        });

        // Outgoing links, one per remote rank, chosen by the selector.
        for (rank, &dst) in group.iter().enumerate() {
            if rank == my_rank {
                continue;
            }
            let decision = self.circuit_decision(world, dst);
            match decision {
                LinkDecision::Loopback => {}
                LinkDecision::San(_) => {
                    let inner = self.inner.borrow();
                    let madio = inner.netaccess.madio();
                    let mad_rank = madio
                        .group()
                        .iter()
                        .position(|&n| n == dst)
                        .expect("SAN decision for a node outside the MadIO group");
                    circuit.set_link(
                        rank,
                        Box::new(MadIoCircuitLink::new(madio.clone(), tag, mad_rank)),
                    );
                }
                decision => {
                    // Every other method rides a plain byte stream on the
                    // Circuit port conventions (a relayed decision splices
                    // it through the gateway chain; the far end's plain
                    // listener attaches it as an incoming stream).
                    let (stream, method) = self.open_circuit_stream(
                        world,
                        dst,
                        circuit_port,
                        decision,
                        relay::PROXY_TTL,
                    );
                    let kind = match method {
                        VLinkMethod::SysIoTcp => CircuitLinkKind::SysIoStream,
                        _ => CircuitLinkKind::VLinkStream,
                    };
                    circuit.set_link(rank, Box::new(StreamCircuitLink::new(stream, kind)));
                }
            }
        }
        circuit
    }
}

/// Builds runtimes for every node of a SAN cluster (the common case in the
/// experiments): each node gets MadIO over the cluster's SAN.
pub fn runtimes_for_cluster(
    world: &mut SimWorld,
    san: NetworkId,
    nodes: &[NodeId],
    prefs: SelectorPreferences,
) -> Vec<PadicoRuntime> {
    nodes
        .iter()
        .map(|&n| PadicoRuntime::new(world, n, Some((san, nodes.to_vec())), prefs.clone()))
        .collect()
}

/// Builds runtimes for nodes that only have distributed networks (no SAN).
pub fn runtimes_for_lan(
    world: &mut SimWorld,
    nodes: &[NodeId],
    prefs: SelectorPreferences,
) -> Vec<PadicoRuntime> {
    nodes
        .iter()
        .map(|&n| PadicoRuntime::new(world, n, None, prefs.clone()))
        .collect()
}

/// Switches `world` to the per-site sharded-merge executor for `grid`:
/// every site becomes a shard lane driven by its own timer wheel, with
/// the conservative lookahead derived from the slowest-case backbone
/// (see [`GridTopology::shard_map`]). Call it any time after the grid is
/// built — already-scheduled events migrate to the control lane and stay
/// cancellable. Returns the number of lanes (sites + control).
///
/// Execution order, RNG draws and `MetricsSnapshot` output are
/// bit-for-bit identical to the single-queue executor; the sharding
/// only changes the queue's internal organization (and exposes per-site
/// counters via `SimWorld::shard_stats`).
pub fn enable_site_sharding(world: &mut SimWorld, grid: &GridTopology) -> u16 {
    let map = grid.shard_map(world);
    let lanes = map.lanes();
    world.enable_sharding(map);
    lanes
}

/// Brings up a full multi-site grid: one runtime per node (with MadIO on
/// the site SAN where present), the grid's route table installed
/// everywhere, and a stream proxy on every gateway. Runtimes are returned
/// in [`GridTopology::all_nodes`] order; proxies in site order.
pub fn runtimes_for_grid(
    world: &mut SimWorld,
    grid: &GridTopology,
    prefs: SelectorPreferences,
) -> (Vec<PadicoRuntime>, Vec<GatewayProxy>) {
    let routes = Rc::new(grid.routes.clone());
    let mut runtimes = Vec::new();
    let mut proxies = Vec::new();
    let mut gateway_rts = Vec::new();
    for site in &grid.sites {
        for &node in &site.nodes {
            let san = site.san.map(|san| (san, site.nodes.clone()));
            let rt = PadicoRuntime::new(world, node, san, prefs.clone());
            rt.set_route_table(routes.clone());
            // Every gateway — redundant secondaries included — runs a
            // proxy, so failover has a live ingress point to shift to.
            if site.gateways.contains(&node) {
                proxies.push(relay::install_gateway_proxy(world, &rt));
                gateway_rts.push(rt.clone());
            }
            runtimes.push(rt);
        }
    }
    // The gateway runtimes resolve a route per relayed stream: pool their
    // memoized resolutions in one shared cache (entries are source-keyed,
    // so sharing is observation-safe) instead of one LRU per runtime.
    if let Some((first, rest)) = gateway_rts.split_first() {
        for rt in rest {
            rt.share_route_cache_with(first);
        }
    }
    // Pre-warm the gateway-to-gateway trunks now that every proxy
    // listener exists: the first relayed stream then rides a hot carrier.
    let gateways: Vec<NodeId> = gateway_rts.iter().map(|rt| rt.node()).collect();
    for rt in &gateway_rts {
        relay::establish_gateway_trunks(world, rt, &gateways);
    }
    (runtimes, proxies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::topology;
    use std::cell::Cell;

    fn san_runtimes() -> (SimWorld, Vec<PadicoRuntime>, Vec<NodeId>) {
        let p = topology::san_pair(61);
        let mut world = p.world;
        let nodes = vec![p.a, p.b];
        let rts = runtimes_for_cluster(&mut world, p.san, &nodes, SelectorPreferences::default());
        (world, rts, nodes)
    }

    #[test]
    fn vlink_over_san_connects_and_exchanges() {
        let (mut world, rts, nodes) = san_runtimes();
        let accepted: Rc<RefCell<Option<VLink>>> = Rc::new(RefCell::new(None));
        let a = accepted.clone();
        rts[1].vlink_listen(&mut world, 100, move |_w, v| *a.borrow_mut() = Some(v));
        let client = rts[0].vlink_connect(&mut world, nodes[1], 100);
        assert_eq!(
            client.method(),
            VLinkMethod::MadIo,
            "SAN should be selected"
        );
        world.run();
        let server = accepted.borrow().clone().unwrap();
        assert_eq!(server.method(), VLinkMethod::MadIo);
        client.post_write(&mut world, b"over the SAN");
        let op = server.post_read(&mut world, 12);
        world.run();
        assert_eq!(server.complete_read(op).unwrap(), b"over the SAN");
    }

    #[test]
    fn vlink_over_wan_uses_parallel_streams() {
        let wanp = topology::wan_pair(3);
        let mut world = wanp.world;
        let rts = runtimes_for_lan(
            &mut world,
            &[wanp.a, wanp.b],
            SelectorPreferences::default(),
        );
        let accepted: Rc<RefCell<Option<VLink>>> = Rc::new(RefCell::new(None));
        let a = accepted.clone();
        rts[1].vlink_listen(&mut world, 200, move |_w, v| *a.borrow_mut() = Some(v));
        let client = rts[0].vlink_connect(&mut world, wanp.b, 200);
        assert!(matches!(
            client.method(),
            VLinkMethod::ParallelStreams { width: 4 }
        ));
        world.run();
        let server = accepted.borrow().clone().unwrap();
        client.post_write(&mut world, b"wide area");
        let op = server.post_read(&mut world, 9);
        world.run();
        assert_eq!(server.complete_read(op).unwrap(), b"wide area");
    }

    #[test]
    fn vlink_to_self_uses_loopback() {
        let (mut world, rts, nodes) = san_runtimes();
        let hits = Rc::new(Cell::new(0));
        let h = hits.clone();
        rts[0].vlink_listen(&mut world, 7, move |_w, _v| h.set(h.get() + 1));
        let v = rts[0].vlink_connect(&mut world, nodes[0], 7);
        assert_eq!(v.method(), VLinkMethod::Loopback);
        world.run();
        assert_eq!(hits.get(), 1);
    }

    #[test]
    fn forced_method_overrides_selector() {
        let (mut world, rts, nodes) = san_runtimes();
        let accepted: Rc<RefCell<Option<VLink>>> = Rc::new(RefCell::new(None));
        let a = accepted.clone();
        rts[1].vlink_listen(&mut world, 300, move |_w, v| *a.borrow_mut() = Some(v));
        // Force plain TCP on the Ethernet even though Myrinet is available.
        let lan = world.networks_between(nodes[0], nodes[1])[1];
        let client = rts[0].vlink_connect_with(&mut world, nodes[1], 300, LinkDecision::Tcp(lan));
        assert_eq!(client.method(), VLinkMethod::SysIoTcp);
        world.run();
        assert_eq!(
            accepted.borrow().as_ref().unwrap().method(),
            VLinkMethod::SysIoTcp
        );
    }

    #[test]
    fn circuit_inside_a_cluster_uses_the_san() {
        let (mut world, rts, nodes) = san_runtimes();
        let c0 = rts[0].circuit_create(&mut world, nodes.clone(), 50);
        let c1 = rts[1].circuit_create(&mut world, nodes.clone(), 50);
        assert_eq!(
            c0.link_kind(1),
            Some(crate::circuit::CircuitLinkKind::MadIo)
        );
        c0.send_bytes(&mut world, 1, &b"rank0->rank1"[..]);
        c1.send_bytes(&mut world, 0, &b"rank1->rank0"[..]);
        world.run();
        assert_eq!(c1.poll_message().unwrap().concat(), b"rank0->rank1");
        assert_eq!(c0.poll_message().unwrap().concat(), b"rank1->rank0");
    }

    #[test]
    fn circuit_across_a_grid_mixes_adapters() {
        let g = topology::two_clusters_over_wan(5, 2);
        let mut world = g.world;
        let all: Vec<NodeId> = g
            .cluster_a
            .nodes
            .iter()
            .chain(g.cluster_b.nodes.iter())
            .copied()
            .collect();
        let san_a = g.cluster_a.san.unwrap();
        let san_b = g.cluster_b.san.unwrap();
        let mut rts = Vec::new();
        for &n in &g.cluster_a.nodes {
            rts.push(PadicoRuntime::new(
                &mut world,
                n,
                Some((san_a, g.cluster_a.nodes.clone())),
                SelectorPreferences::default(),
            ));
        }
        for &n in &g.cluster_b.nodes {
            rts.push(PadicoRuntime::new(
                &mut world,
                n,
                Some((san_b, g.cluster_b.nodes.clone())),
                SelectorPreferences::default(),
            ));
        }
        let circuits: Vec<Circuit> = rts
            .iter()
            .map(|rt| rt.circuit_create(&mut world, all.clone(), 60))
            .collect();
        // Link 0 -> 1 stays inside cluster A (straight MadIO); 0 -> 2 spans
        // the WAN (cross-paradigm stream).
        assert_eq!(
            circuits[0].link_kind(1),
            Some(crate::circuit::CircuitLinkKind::MadIo)
        );
        assert_eq!(
            circuits[0].link_kind(2),
            Some(crate::circuit::CircuitLinkKind::VLinkStream)
        );
        circuits[0].send_bytes(&mut world, 1, &b"intra"[..]);
        circuits[0].send_bytes(&mut world, 2, &b"inter"[..]);
        world.run();
        assert_eq!(circuits[1].poll_message().unwrap().concat(), b"intra");
        assert_eq!(circuits[2].poll_message().unwrap().concat(), b"inter");
    }

    #[test]
    fn circuit_over_adoc_link_roundtrips() {
        // An Internet-class pair resolves Circuit links to AdOC; the seed
        // attached the incoming side raw (transform framing fed straight
        // to the Circuit parser), so this exchange silently never arrived.
        let p = topology::lossy_internet_pair(9);
        let mut world = p.world;
        let rts = runtimes_for_lan(&mut world, &[p.a, p.b], SelectorPreferences::default());
        assert_eq!(
            rts[0].circuit_decision(&world, p.b),
            LinkDecision::Adoc(p.network)
        );
        let c0 = rts[0].circuit_create(&mut world, vec![p.a, p.b], 70);
        let c1 = rts[1].circuit_create(&mut world, vec![p.a, p.b], 70);
        assert_eq!(
            c0.link_kind(1),
            Some(crate::circuit::CircuitLinkKind::VLinkStream)
        );
        let payload: Vec<u8> = (0..40_000usize).map(|i| (i % 13) as u8).collect();
        c0.send_bytes(&mut world, 1, payload.clone());
        c1.send_bytes(&mut world, 0, &b"compressed reply"[..]);
        world.run();
        assert_eq!(
            c1.poll_message().expect("AdOC circuit delivers").concat(),
            payload
        );
        assert_eq!(c0.poll_message().unwrap().concat(), b"compressed reply");
    }

    #[test]
    fn circuit_over_secure_link_roundtrips() {
        // With secure_inter_site, WAN Circuit links ride the secure
        // transform; the listener must unwrap it symmetrically (the seed
        // also collided secure onto the AdOC port).
        let wanp = topology::wan_pair(10);
        let mut world = wanp.world;
        let prefs = SelectorPreferences {
            secure_inter_site: true,
            ..Default::default()
        };
        let rts = runtimes_for_lan(&mut world, &[wanp.a, wanp.b], prefs);
        assert_eq!(
            rts[0].circuit_decision(&world, wanp.b),
            LinkDecision::Secure(wanp.network)
        );
        let c0 = rts[0].circuit_create(&mut world, vec![wanp.a, wanp.b], 71);
        let c1 = rts[1].circuit_create(&mut world, vec![wanp.a, wanp.b], 71);
        c0.send_bytes(&mut world, 1, &b"ciphered hello"[..]);
        c1.send_bytes(&mut world, 0, &b"ciphered back"[..]);
        world.run();
        assert_eq!(
            c1.poll_message().expect("secure circuit delivers").concat(),
            b"ciphered hello"
        );
        assert_eq!(c0.poll_message().unwrap().concat(), b"ciphered back");
    }

    /// Two gateway-isolated sites: only the gateways touch the backbone.
    fn grid_world(
        seed: u64,
        nodes_per_site: usize,
    ) -> (
        SimWorld,
        gridtopo::GridTopology,
        Vec<PadicoRuntime>,
        Vec<crate::relay::GatewayProxy>,
    ) {
        let mut world = SimWorld::new(seed);
        let grid = gridtopo::GridTopology::two_sites(&mut world, nodes_per_site);
        let (rts, proxies) = runtimes_for_grid(&mut world, &grid, SelectorPreferences::default());
        (world, grid, rts, proxies)
    }

    #[test]
    fn vlink_across_sites_is_relayed_through_gateways() {
        let (mut world, grid, rts, proxies) = grid_world(71, 3);
        let src = grid.site(0).node(1);
        let dst = grid.site(1).node(2);
        let src_rt = rts[1].clone(); // site 0, rank 1
        let dst_rt = rts[grid.site(0).len() + 2].clone(); // site 1, rank 2
        assert_eq!(src_rt.node(), src);
        assert_eq!(dst_rt.node(), dst);

        // The selector resolves the no-shared-network pair to a relay.
        let decision = src_rt.vlink_decision(&world, dst);
        assert!(decision.is_relayed(), "got {decision:?}");
        assert_eq!(
            decision,
            LinkDecision::Relayed {
                via: grid.site(0).gateway,
                network: grid.site(0).san.unwrap(),
                hops: 3,
            }
        );

        let accepted: Rc<RefCell<Option<VLink>>> = Rc::new(RefCell::new(None));
        let a = accepted.clone();
        dst_rt.vlink_listen(&mut world, 600, move |_w, v| *a.borrow_mut() = Some(v));
        let client = src_rt.vlink_connect(&mut world, dst, 600);
        assert_eq!(client.method(), VLinkMethod::Relayed { hops: 3 });
        world.run();
        let server = accepted.borrow().clone().expect("relayed accept");

        client.post_write(&mut world, b"across the grid");
        let op = server.post_read(&mut world, 15);
        world.run();
        assert_eq!(server.complete_read(op).unwrap(), b"across the grid");

        // And back.
        server.post_write(&mut world, b"pong");
        let op = client.post_read(&mut world, 4);
        world.run();
        assert_eq!(client.complete_read(op).unwrap(), b"pong");

        // Both gateways spliced the connection and forwarded the bytes.
        let s0 = proxies[0].stats();
        let s1 = proxies[1].stats();
        assert_eq!(s0.connections_relayed, 1);
        assert_eq!(s1.connections_relayed, 1);
        assert!(s0.bytes_forward >= 15, "{s0:?}");
        assert!(s1.bytes_backward >= 4, "{s1:?}");
    }

    #[test]
    fn intra_site_links_still_use_the_straight_san() {
        let (mut world, grid, rts, _proxies) = grid_world(72, 3);
        let a1 = grid.site(0).node(1);
        let a2 = grid.site(0).node(2);
        let rt = rts[1].clone();
        assert_eq!(rt.node(), a1);
        assert_eq!(
            rt.vlink_decision(&world, a2),
            LinkDecision::San(grid.site(0).san.unwrap())
        );
        assert!(rt.circuit_decision(&world, a2).is_straight_for_parallel());
        let _ = &mut world;
    }

    #[test]
    fn circuit_across_sites_relays_streams() {
        let (mut world, grid, rts, proxies) = grid_world(73, 2);
        let all = grid.all_nodes();
        let circuits: Vec<Circuit> = rts
            .iter()
            .map(|rt| rt.circuit_create(&mut world, all.clone(), 90))
            .collect();
        // Rank 0 (site 0) -> rank 2 (site 1 gateway? no: all_nodes order is
        // [gw_a, a1, gw_b, b1]); rank 0 -> rank 3 crosses sites.
        assert_eq!(
            circuits[1].link_kind(3),
            Some(crate::circuit::CircuitLinkKind::VLinkStream)
        );
        circuits[1].send_bytes(&mut world, 3, &b"routed circuit"[..]);
        world.run();
        assert_eq!(
            circuits[3].poll_message().unwrap().concat(),
            b"routed circuit"
        );
        // The connection went through at least one gateway proxy. (Rank 1
        // is a plain site node, so its stream to rank 3 must be spliced.)
        let relayed: u64 = proxies.iter().map(|p| p.stats().connections_relayed).sum();
        assert!(relayed >= 1, "no proxy saw the circuit stream");
    }

    #[test]
    fn relayed_vlink_works_with_credit_backpressure() {
        // Same relayed exchange as above, but with relay_backpressure =
        // Credit: both trunk ends window every multiplexed stream.
        let mut world = SimWorld::new(74);
        let grid = gridtopo::GridTopology::two_sites(&mut world, 3);
        let prefs = SelectorPreferences {
            relay_backpressure: crate::selector::BackpressureMode::Credit,
            ..Default::default()
        };
        let (rts, proxies) = runtimes_for_grid(&mut world, &grid, prefs);
        let dst = grid.site(1).node(2);
        let dst_rt = rts[grid.site(0).len() + 2].clone();
        let got: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        dst_rt.vlink_listen(&mut world, 620, move |_world, v| {
            let v2 = v.clone();
            let g = g.clone();
            v.set_handler(move |world, ev| {
                if ev == crate::vlink::VLinkEvent::Readable {
                    g.borrow_mut().extend(v2.read_now(world, usize::MAX));
                }
            });
        });
        let client = rts[1].vlink_connect(&mut world, dst, 620);
        // Push well past the trunk window so credits must cycle.
        let payload: Vec<u8> = (0..600_000usize).map(|i| (i % 251) as u8).collect();
        client.post_write(&mut world, &payload);
        world.run();
        assert_eq!(got.borrow().len(), payload.len(), "lossless under credits");
        assert_eq!(*got.borrow(), payload, "no corruption under credits");
        assert_eq!(client.bytes_refused(), 0);
        let relayed: u64 = proxies.iter().map(|p| p.stats().connections_relayed).sum();
        assert!(relayed >= 2);
    }

    #[test]
    fn relayed_runs_are_deterministic() {
        let run = |seed: u64| -> (Vec<u8>, u64) {
            let (mut world, grid, rts, _p) = grid_world(seed, 2);
            let dst = grid.site(1).node(1);
            let got: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
            let g = got.clone();
            let dst_rt = rts[3].clone();
            dst_rt.vlink_listen(&mut world, 610, move |_world, v| {
                let v2 = v.clone();
                let g = g.clone();
                v.set_handler(move |world, ev| {
                    if ev == crate::vlink::VLinkEvent::Readable {
                        g.borrow_mut().extend(v2.read_now(world, usize::MAX));
                    }
                });
            });
            let client = rts[1].vlink_connect(&mut world, dst, 610);
            client.post_write(&mut world, &[9u8; 4000]);
            world.run();
            let data = got.borrow().clone();
            (data, world.now().as_nanos())
        };
        let (d1, t1) = run(5);
        let (d2, t2) = run(5);
        assert_eq!(d1.len(), 4000);
        assert_eq!(d1, d2);
        assert_eq!(t1, t2, "virtual end time must be bit-identical");
    }
}
