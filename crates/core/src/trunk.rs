//! Persistent gateway trunks: one warm striped bundle per gateway pair,
//! multiplexing every relayed stream that crosses it.
//!
//! The seed opened a fresh transport connection per relayed stream and per
//! backbone leg, so every cross-site stream paid a WAN handshake and a cold
//! congestion window on every hop. A trunk is established once (eagerly,
//! when the gateway proxy comes up) and stays warm; relayed streams ride it
//! as multiplexed channels framed by a 9-byte header, so opening a stream
//! over an established trunk costs no WAN round-trip at all.
//!
//! Framing: `[stream id: u32][kind: u8][length: u32][payload]`, big-endian.
//! Stream ids are allocated by the trunk's connecting side only (each
//! direction of a gateway pair uses its own trunk), so ids never collide.
//! A stream opens implicitly with its first frame and closes with a
//! zero-length `CLOSE` frame in each direction.
//!
//! The demultiplexer is built on [`SegBuf`]: arriving carrier segments are
//! queued by refcount and per-stream payloads are sliced out of them, so a
//! relayed byte is never copied by the trunk layer.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use bytes::{Bytes, BytesMut};
use simnet::{SimDuration, SimWorld};
use transport::{ByteStream, ReadableCallback, SegBuf};

const KIND_DATA: u8 = 0;
const KIND_CLOSE: u8 = 1;
/// Warm-up padding sent once at trunk establishment and discarded by the
/// far end; it drives the carrier's congestion windows to steady state so
/// the first relayed stream already finds a hot trunk (the same reason
/// GridFTP caches its data channels).
const KIND_WARMUP: u8 = 2;

/// Size of the per-frame multiplexing header.
pub(crate) const MUX_HEADER_BYTES: usize = 9;

/// Largest payload carried by one mux frame, so concurrent streams
/// interleave fairly on the trunk.
const MAX_FRAME_PAYLOAD: usize = 64 * 1024;

type TrunkAcceptCallback = Box<dyn FnMut(&mut SimWorld, TrunkStream)>;

struct StreamState {
    id: u32,
    recv_buf: SegBuf,
    readable_cb: Option<ReadableCallback>,
    notify_pending: bool,
    peer_closed: bool,
    self_closed: bool,
    bytes_sent: u64,
}

impl StreamState {
    fn new(id: u32) -> StreamState {
        StreamState {
            id,
            recv_buf: SegBuf::new(),
            readable_cb: None,
            notify_pending: false,
            peer_closed: false,
            self_closed: false,
            bytes_sent: 0,
        }
    }
}

struct MuxInner {
    carrier: Rc<dyn ByteStream>,
    /// Reassembly buffer for mux frames arriving on the carrier.
    rx: SegBuf,
    streams: HashMap<u32, Rc<RefCell<StreamState>>>,
    next_id: u32,
    /// Present on the accepting (gateway proxy) side: invoked with each
    /// stream a peer opens over this trunk.
    on_accept: Option<TrunkAcceptCallback>,
}

/// One end of a gateway trunk: demultiplexes mux frames arriving on the
/// carrier bundle into [`TrunkStream`]s.
#[derive(Clone)]
pub(crate) struct TrunkMux {
    inner: Rc<RefCell<MuxInner>>,
}

impl TrunkMux {
    /// Wraps the connecting end of a trunk carrier. Streams are opened
    /// locally with [`TrunkMux::open`].
    pub(crate) fn connector(carrier: Rc<dyn ByteStream>) -> TrunkMux {
        Self::new(carrier, None)
    }

    /// Wraps the accepting end of a trunk carrier; `on_accept` runs for
    /// every stream the remote end opens.
    pub(crate) fn acceptor(
        carrier: Rc<dyn ByteStream>,
        on_accept: impl FnMut(&mut SimWorld, TrunkStream) + 'static,
    ) -> TrunkMux {
        Self::new(carrier, Some(Box::new(on_accept)))
    }

    fn new(carrier: Rc<dyn ByteStream>, on_accept: Option<TrunkAcceptCallback>) -> TrunkMux {
        let mux = TrunkMux {
            inner: Rc::new(RefCell::new(MuxInner {
                carrier: carrier.clone(),
                rx: SegBuf::new(),
                streams: HashMap::new(),
                next_id: 1,
                on_accept,
            })),
        };
        let weak = Rc::downgrade(&mux.inner);
        carrier.set_readable_callback(Box::new(move |world| {
            if let Some(inner) = weak.upgrade() {
                TrunkMux { inner }.on_carrier_readable(world);
            }
        }));
        mux
    }

    /// Pushes `bytes` of warm-up padding through the trunk. The far end
    /// discards it; its only effect is growing the carrier's congestion
    /// state to steady state before real streams ride the trunk.
    pub(crate) fn warm_up(&self, world: &mut SimWorld, bytes: usize) {
        let mut left = bytes;
        while left > 0 {
            let chunk = left.min(MAX_FRAME_PAYLOAD);
            self.send_frame(world, 0, KIND_WARMUP, Bytes::from(vec![0u8; chunk]));
            left -= chunk;
        }
    }

    /// Opens a new multiplexed stream over this trunk. Costs no wire
    /// traffic: the stream exists remotely once its first frame arrives.
    pub(crate) fn open(&self) -> TrunkStream {
        let state = {
            let mut inner = self.inner.borrow_mut();
            let id = inner.next_id;
            inner.next_id += 1;
            let state = Rc::new(RefCell::new(StreamState::new(id)));
            inner.streams.insert(id, state.clone());
            state
        };
        TrunkStream {
            mux: self.clone(),
            state,
        }
    }

    fn on_carrier_readable(&self, world: &mut SimWorld) {
        // Phase 1: drain the carrier and slice out complete mux frames.
        let frames = {
            let mut inner = self.inner.borrow_mut();
            loop {
                let data = inner.carrier.recv_bytes(world, usize::MAX);
                if data.is_empty() {
                    break;
                }
                inner.rx.push_bytes(data);
            }
            let mut frames = Vec::new();
            loop {
                let mut header = [0u8; MUX_HEADER_BYTES];
                if inner.rx.copy_peek(&mut header) < MUX_HEADER_BYTES {
                    break;
                }
                let id = u32::from_be_bytes(header[0..4].try_into().unwrap());
                let kind = header[4];
                let len = u32::from_be_bytes(header[5..9].try_into().unwrap()) as usize;
                if inner.rx.len() < MUX_HEADER_BYTES + len {
                    break;
                }
                inner.rx.consume(MUX_HEADER_BYTES);
                // Zero-copy whenever the payload arrived in one segment.
                let payload = inner.rx.read_bytes(len);
                frames.push((id, kind, payload));
            }
            frames
        };

        // Phase 2: deliver outside the mux borrow (acceptors may open
        // onward legs, which can touch other trunks and the runtime).
        for (id, kind, payload) in frames {
            if kind == KIND_WARMUP {
                drop(payload); // padding: its work was done on the wire
                continue;
            }
            let (state, fresh) = {
                let mut inner = self.inner.borrow_mut();
                match inner.streams.get(&id) {
                    Some(s) => (s.clone(), false),
                    None => {
                        if inner.on_accept.is_none() {
                            // A frame for an unknown stream on the
                            // connecting side: stale after close; drop.
                            continue;
                        }
                        let state = Rc::new(RefCell::new(StreamState::new(id)));
                        inner.streams.insert(id, state.clone());
                        (state, true)
                    }
                }
            };
            let reap = {
                let mut st = state.borrow_mut();
                match kind {
                    KIND_DATA => st.recv_buf.push_bytes(payload),
                    KIND_CLOSE => st.peer_closed = true,
                    _ => {} // unknown kind: ignore
                }
                // Both directions closed: the carrier's ordering guarantees
                // no further frame with this id, so the demux entry can go
                // (live handles keep the state alive through their own Rc).
                st.self_closed && st.peer_closed
            };
            if reap {
                self.inner.borrow_mut().streams.remove(&id);
            }
            let stream = TrunkStream {
                mux: self.clone(),
                state: state.clone(),
            };
            if fresh {
                // Hand the new stream out (taking the callback allows the
                // acceptor to re-enter the mux).
                let cb = self.inner.borrow_mut().on_accept.take();
                if let Some(mut cb) = cb {
                    cb(world, stream.clone());
                    let mut inner = self.inner.borrow_mut();
                    if inner.on_accept.is_none() {
                        inner.on_accept = Some(cb);
                    }
                }
            }
            stream.schedule_notify(world);
        }
    }

    fn send_frame(&self, world: &mut SimWorld, id: u32, kind: u8, payload: Bytes) {
        let carrier = self.inner.borrow().carrier.clone();
        let mut header = BytesMut::with_capacity(MUX_HEADER_BYTES);
        header.extend_from_slice(&id.to_be_bytes());
        header.extend_from_slice(&[kind]);
        header.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        let expected = MUX_HEADER_BYTES + payload.len();
        let mut parts = vec![header.freeze()];
        if !payload.is_empty() {
            parts.push(payload);
        }
        let sent = carrier.send_bytes_vectored(world, parts);
        debug_assert_eq!(sent, expected, "trunk carrier refused a mux frame");
    }
}

/// One relayed stream multiplexed over a gateway trunk.
#[derive(Clone)]
pub(crate) struct TrunkStream {
    mux: TrunkMux,
    state: Rc<RefCell<StreamState>>,
}

impl TrunkStream {
    fn schedule_notify(&self, world: &mut SimWorld) {
        let should = {
            let mut st = self.state.borrow_mut();
            let has_event = !st.recv_buf.is_empty() || st.peer_closed;
            if st.readable_cb.is_some() && !st.notify_pending && has_event {
                st.notify_pending = true;
                true
            } else {
                false
            }
        };
        if should {
            let stream = self.clone();
            world.schedule_after(SimDuration::ZERO, move |world| {
                let cb = {
                    let mut st = stream.state.borrow_mut();
                    st.notify_pending = false;
                    st.readable_cb.take()
                };
                if let Some(mut cb) = cb {
                    cb(world);
                    let mut st = stream.state.borrow_mut();
                    if st.readable_cb.is_none() {
                        st.readable_cb = Some(cb);
                    }
                }
            });
        }
    }

    fn queue_send(&self, world: &mut SimWorld, mut data: Bytes) -> usize {
        // Half-close works like TCP: only our own close stops sending.
        // With the peer's read side gone the far end still drains data
        // that was in flight, matching the per-stream legs this replaces.
        let (id, closed) = {
            let st = self.state.borrow();
            (st.id, st.self_closed)
        };
        if closed {
            return 0;
        }
        let len = data.len();
        self.state.borrow_mut().bytes_sent += len as u64;
        // Split oversized writes so concurrent streams interleave.
        while data.len() > MAX_FRAME_PAYLOAD {
            let chunk = data.split_to(MAX_FRAME_PAYLOAD);
            self.mux.send_frame(world, id, KIND_DATA, chunk);
        }
        if !data.is_empty() {
            self.mux.send_frame(world, id, KIND_DATA, data);
        }
        len
    }
}

impl ByteStream for TrunkStream {
    fn send(&self, world: &mut SimWorld, data: &[u8]) -> usize {
        self.queue_send(world, Bytes::copy_from_slice(data))
    }

    fn send_bytes(&self, world: &mut SimWorld, data: Bytes) -> usize {
        self.queue_send(world, data)
    }

    fn available(&self) -> usize {
        self.state.borrow().recv_buf.len()
    }

    fn recv(&self, _world: &mut SimWorld, max: usize) -> Vec<u8> {
        if max == 0 || self.available() == 0 {
            return Vec::new();
        }
        self.state.borrow_mut().recv_buf.read_into(max)
    }

    fn recv_bytes(&self, _world: &mut SimWorld, max: usize) -> Bytes {
        self.state.borrow_mut().recv_buf.pop_chunk(max)
    }

    fn is_established(&self) -> bool {
        self.mux.inner.borrow().carrier.is_established()
    }

    fn is_finished(&self) -> bool {
        let st = self.state.borrow();
        st.peer_closed && st.recv_buf.is_empty()
    }

    fn close(&self, world: &mut SimWorld) {
        let id = {
            let mut st = self.state.borrow_mut();
            if st.self_closed {
                return;
            }
            st.self_closed = true;
            st.id
        };
        self.mux.send_frame(world, id, KIND_CLOSE, Bytes::new());
        // If the peer already closed too, the demux entry is dead (the
        // carrier's ordering guarantees no further frame with this id).
        if self.state.borrow().peer_closed {
            self.mux.inner.borrow_mut().streams.remove(&id);
        }
    }

    fn set_readable_callback(&self, cb: ReadableCallback) {
        self.state.borrow_mut().readable_cb = Some(cb);
    }

    fn bytes_acked(&self) -> u64 {
        // The trunk carrier is reliable: everything queued is delivered.
        self.state.borrow().bytes_sent
    }

    fn bytes_unacked(&self) -> u64 {
        // Trunk-wide backlog: the honest backpressure signal for a stream
        // sharing the bundle.
        self.mux.inner.borrow().carrier.bytes_unacked()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transport::{loopback_pair, ByteStreamExt};

    /// (connector, acceptor, accepted streams). The acceptor must stay
    /// alive for the carrier callback's weak reference to resolve.
    fn mux_pair(world: &SimWorld) -> (TrunkMux, TrunkMux, Rc<RefCell<Vec<TrunkStream>>>) {
        let n = world.node_ids()[0];
        let (a, b) = loopback_pair(world, n);
        let connector = TrunkMux::connector(Rc::new(a));
        let accepted: Rc<RefCell<Vec<TrunkStream>>> = Rc::new(RefCell::new(Vec::new()));
        let acc = accepted.clone();
        let acceptor = TrunkMux::acceptor(Rc::new(b), move |_world, stream| {
            acc.borrow_mut().push(stream);
        });
        (connector, acceptor, accepted)
    }

    #[test]
    fn streams_multiplex_over_one_carrier() {
        let mut world = SimWorld::new(0);
        world.add_node("n");
        let (mux, _acceptor, accepted) = mux_pair(&world);
        let s1 = mux.open();
        let s2 = mux.open();
        s1.send_all(&mut world, b"first stream");
        s2.send_all(&mut world, b"second");
        world.run();
        assert_eq!(accepted.borrow().len(), 2);
        let a1 = accepted.borrow()[0].clone();
        let a2 = accepted.borrow()[1].clone();
        assert_eq!(a1.recv_all(&mut world), b"first stream");
        assert_eq!(a2.recv_all(&mut world), b"second");
        // And back over the same trunk.
        a1.send_all(&mut world, b"reply");
        world.run();
        assert_eq!(s1.recv_all(&mut world), b"reply");
        assert_eq!(s2.available(), 0);
    }

    #[test]
    fn close_propagates_per_stream() {
        let mut world = SimWorld::new(0);
        world.add_node("n");
        let (mux, _acceptor, accepted) = mux_pair(&world);
        let s1 = mux.open();
        let s2 = mux.open();
        s1.send_all(&mut world, b"bye");
        s1.close(&mut world);
        s2.send_all(&mut world, b"still open");
        world.run();
        let a1 = accepted.borrow()[0].clone();
        let a2 = accepted.borrow()[1].clone();
        assert_eq!(a1.recv_all(&mut world), b"bye");
        assert!(a1.is_finished());
        assert!(!a2.is_finished());
        assert_eq!(a2.recv_all(&mut world), b"still open");
        assert_eq!(s1.send(&mut world, b"x"), 0, "closed stream refuses data");
    }

    #[test]
    fn half_close_still_delivers_the_response() {
        let mut world = SimWorld::new(0);
        world.add_node("n");
        let (mux, _acceptor, accepted) = mux_pair(&world);
        let s = mux.open();
        s.send_all(&mut world, b"request");
        s.close(&mut world);
        world.run();
        let a = accepted.borrow()[0].clone();
        assert_eq!(a.recv_all(&mut world), b"request");
        assert!(a.is_finished());
        // Like TCP half-close: the responder's write side is still open.
        a.send_all(&mut world, b"response");
        a.close(&mut world);
        world.run();
        assert_eq!(s.recv_all(&mut world), b"response");
        assert!(s.is_finished());
    }

    #[test]
    fn large_writes_are_split_into_frames() {
        let mut world = SimWorld::new(0);
        world.add_node("n");
        let (mux, _acceptor, accepted) = mux_pair(&world);
        let s = mux.open();
        let data: Vec<u8> = (0..200_000usize).map(|i| (i % 251) as u8).collect();
        s.send_all(&mut world, &data);
        world.run();
        let a = accepted.borrow()[0].clone();
        assert_eq!(a.recv_all(&mut world), data);
    }
}
