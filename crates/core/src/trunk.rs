//! Persistent gateway trunks: one warm striped bundle per gateway pair,
//! multiplexing every relayed stream that crosses it.
//!
//! The seed opened a fresh transport connection per relayed stream and per
//! backbone leg, so every cross-site stream paid a WAN handshake and a cold
//! congestion window on every hop. A trunk is established once (eagerly,
//! when the gateway proxy comes up) and stays warm; relayed streams ride it
//! as multiplexed channels framed by a 9-byte header, so opening a stream
//! over an established trunk costs no WAN round-trip at all.
//!
//! Framing: `[stream id: u32][kind: u8][length: u32][payload]`, big-endian.
//! Stream ids are allocated by the trunk's connecting side only (each
//! direction of a gateway pair uses its own trunk), so ids never collide.
//! A stream opens implicitly with its first frame and closes with a
//! zero-length `CLOSE` frame in each direction.
//!
//! The demultiplexer is built on [`SegBuf`]: arriving carrier segments are
//! queued by refcount and per-stream payloads are sliced out of them, so a
//! relayed byte is never copied by the trunk layer.
//!
//! ## Credit-based flow control
//!
//! With a [`TrunkFlowConfig`] installed (the `relay_backpressure = credit`
//! preference), every multiplexed stream carries its own byte-granular
//! credit window: a sender may only put `send_window` bytes on the carrier;
//! anything beyond *parks* in a sender-side [`SegBuf`] instead of flooding
//! the receiving gateway. The consumer's reads return credits as `CREDIT`
//! frames piggybacked on the same mux (batched by
//! [`TrunkFlowConfig::credit_grant_threshold`] to keep control traffic
//! cheap), which re-open the window and flush the parked bytes in order.
//! The receive buffer of a flow-controlled stream is therefore bounded by
//! `initial_window` — observable through [`SegBuf::high_water`] — and a
//! stalled relayed stream holds its bytes at the *sending* gateway rather
//! than ballooning the receiving one. Credits keep flowing across
//! half-close (a receiver that closed its own write side still grants for
//! what it consumes), so accounting is conserved until both sides close.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use bytes::{Bytes, BytesMut};
use simnet::{SimDuration, SimTime, SimWorld};
use transport::{ByteStream, ReadableCallback, SegBuf};

const KIND_DATA: u8 = 0;
const KIND_CLOSE: u8 = 1;
/// Warm-up padding sent once at trunk establishment and discarded by the
/// far end; it drives the carrier's congestion windows to steady state so
/// the first relayed stream already finds a hot trunk (the same reason
/// GridFTP caches its data channels).
const KIND_WARMUP: u8 = 2;
/// Credit return: the payload is a 4-byte big-endian count of consumed
/// bytes the receiver hands back to the sender's window.
const KIND_CREDIT: u8 = 3;
/// Liveness keep-alive (zero payload, stream id 0): sent while the peer
/// is actively talking to us but we have nothing else to say, so a
/// sender with outstanding credited data can tell a silent-but-alive
/// peer from a dead one.
const KIND_HEARTBEAT: u8 = 4;
/// Liveness probe (zero payload, stream id 0): sent **once per stall
/// epoch** by an end with a *blocked* stream (bytes parked behind an
/// exhausted window) whose wire has been quiet in both directions past
/// every grace window — and only after the peer has been silent a full
/// `dead_after`, so a live trunk never sees one. Unlike a heartbeat it
/// counts as real traffic at the receiver (so a live peer answers it
/// with heartbeats) and it opens a fresh expectation epoch at the
/// sender, so a peer that died silently *during* the long stall is
/// declared dead one `dead_after` later instead of never.
const KIND_PROBE: u8 = 5;

/// Size of the per-frame multiplexing header.
pub(crate) const MUX_HEADER_BYTES: usize = 9;

/// Largest payload carried by one mux frame, so concurrent streams
/// interleave fairly on the trunk.
const MAX_FRAME_PAYLOAD: usize = 64 * 1024;

/// Liveness configuration of a trunk end (see [`TrunkMux::enable_health`]).
///
/// Detection is *expectation-driven*: the health timer only runs while
/// this end has a reason to expect peer activity (parked bytes waiting
/// for credits, or an open credit window deficit), plus a short
/// grace window after the last real traffic. An idle trunk therefore
/// costs no simulation events at all — and a silently dead carrier is
/// detected on the next use, when the first unanswered send arms the
/// timer. An orderly carrier close is detected immediately, without
/// waiting for any timeout.
///
/// The expectation itself *decays* `heartbeat_interval` past
/// `dead_after` from the last real send: a receiver that legitimately
/// sits on sub-threshold data (owing no credits yet) must never be
/// mistaken for a corpse, and a timer armed for the whole stall would
/// keep the event queue alive forever. A *blocked* stream (bytes parked
/// behind an exhausted window) whose stall outlives every grace window
/// is covered by a single on-wire *probe* per epoch, fired only once
/// the peer has also been silent a full `dead_after` (any frame is
/// proof of life; until the deadline the timer parks on one silent
/// scheduler event that any real activity cancels — live trunks never
/// see a probe). The probe counts as real traffic at the peer (a live
/// one answers with heartbeats, which re-arm nothing further — probes
/// never chain) and opens a fresh expectation epoch here, so a peer
/// that died silently mid-stall is declared dead one `dead_after` after
/// the probe instead of never. Real traffic in either direction re-arms
/// the probe for the next stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrunkHealthConfig {
    /// How often the armed timer ticks (and, while the peer is actively
    /// talking, how often a keep-alive heartbeat goes out).
    pub heartbeat_interval: SimDuration,
    /// Silence (no frame of any kind from the peer) beyond which an
    /// *expecting* end declares the carrier dead.
    pub dead_after: SimDuration,
}

impl Default for TrunkHealthConfig {
    fn default() -> Self {
        TrunkHealthConfig {
            heartbeat_interval: SimDuration::from_millis(20),
            dead_after: SimDuration::from_millis(80),
        }
    }
}

/// Per-stream credit-window configuration of a flow-controlled trunk.
/// Both ends of a trunk must agree on it (the runtime derives it from the
/// same `relay_backpressure` preference on every node).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrunkFlowConfig {
    /// Bytes a sender may have in flight (unconsumed by the receiving
    /// application) per stream before it parks. Bounds the receiver-side
    /// buffer occupancy of each relayed stream.
    pub initial_window: usize,
    /// Consumed bytes the receiver batches before returning a `CREDIT`
    /// frame. Must be well below `initial_window` or the window starves.
    pub credit_grant_threshold: usize,
    /// Aggregate byte budget shared by **all** streams of the trunk,
    /// layered on the per-stream windows (`gateway_trunk_budget`
    /// preference): the sum of unconsumed bytes in flight across the
    /// whole trunk never exceeds it, so one gateway pair's total
    /// store-and-forward memory is bounded — not just each stream's.
    /// Senders that would exceed it park and resume in FIFO park order as
    /// credits return. `0` disables the shared budget.
    pub trunk_budget: usize,
}

impl Default for TrunkFlowConfig {
    fn default() -> Self {
        TrunkFlowConfig {
            initial_window: 256 * 1024,
            credit_grant_threshold: 32 * 1024,
            trunk_budget: 0,
        }
    }
}

/// Credit accounting of one flow-controlled trunk stream (all zero when
/// the trunk runs without flow control).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrunkCreditStats {
    /// Credit bytes received from the peer (window refills).
    pub credits_received: u64,
    /// Credit bytes granted to the peer for consumed data.
    pub credits_granted: u64,
    /// Payload bytes the local consumer has read off this stream.
    pub bytes_consumed: u64,
    /// Consumed bytes not yet returned as credits (below the grant
    /// threshold).
    pub unreturned_bytes: usize,
    /// Total virtual time this stream's sender spent parked with an
    /// exhausted window, in nanoseconds.
    pub stalled_ns: u64,
    /// Bytes currently parked sender-side waiting for credits.
    pub parked_bytes: usize,
    /// Current send window, in bytes.
    pub send_window: usize,
    /// Peak occupancy of the receive buffer (the occupancy bound the
    /// window is supposed to enforce).
    pub recv_high_water: usize,
}

/// Memory accounting of one trunk end: the shared-budget state on the
/// sending side and the aggregate receive-buffer occupancy on the
/// receiving side. With `trunk_budget` set on the peer, `recv_high_water`
/// never exceeds the budget — the bound a gateway's total
/// store-and-forward memory rests on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrunkMemoryStats {
    /// The configured shared budget (0 when unbounded).
    pub budget: usize,
    /// Budget bytes currently unspent (equals `budget` when idle).
    pub budget_available: usize,
    /// Unconsumed bytes currently sitting in this trunk's per-stream
    /// receive buffers.
    pub recv_occupancy: usize,
    /// Peak of `recv_occupancy` over the trunk's lifetime.
    pub recv_high_water: usize,
    /// Streams currently parked for want of window or budget.
    pub parked_streams: usize,
    /// Peak receive-buffer occupancy of any single live stream
    /// ([`transport::SegBuf::high_water`] of its buffer): bounded by the
    /// per-stream `initial_window`.
    pub max_stream_high_water: usize,
}

type TrunkAcceptCallback = Box<dyn FnMut(&mut SimWorld, TrunkStream)>;
/// Stall observer: invoked with `true` when the stream's sender parks on
/// an exhausted window/budget and `false` when the backlog fully drains.
type StallHook = Rc<RefCell<dyn FnMut(&mut SimWorld, bool)>>;
/// Death hook; the `bool` says whether *this* end severed the carrier
/// itself (`close_carrier` — the local-restart fault model) rather than
/// the peer dying: a local sever says nothing about the peer's health.
type TrunkDeadCallback = Box<dyn FnOnce(&mut SimWorld, bool)>;

struct StreamState {
    id: u32,
    recv_buf: SegBuf,
    readable_cb: Option<ReadableCallback>,
    notify_pending: bool,
    peer_closed: bool,
    self_closed: bool,
    /// The `CLOSE` frame has actually been emitted (it is deferred while
    /// parked bytes remain to flush).
    close_sent: bool,
    close_after_flush: bool,
    bytes_sent: u64,
    /// Flow control (None: unwindowed, the historical behaviour).
    flow: Option<TrunkFlowConfig>,
    send_window: usize,
    pending_tx: SegBuf,
    consumed_unreturned: usize,
    stall_started: Option<SimTime>,
    stalled_ns: u64,
    stall_hook: Option<StallHook>,
    credits_received: u64,
    credits_granted: u64,
    bytes_consumed: u64,
}

impl StreamState {
    fn new(id: u32, flow: Option<TrunkFlowConfig>) -> StreamState {
        StreamState {
            id,
            recv_buf: SegBuf::new(),
            readable_cb: None,
            notify_pending: false,
            peer_closed: false,
            self_closed: false,
            close_sent: false,
            close_after_flush: false,
            bytes_sent: 0,
            send_window: flow.map_or(usize::MAX, |f| f.initial_window),
            flow,
            pending_tx: SegBuf::new(),
            consumed_unreturned: 0,
            stall_started: None,
            stalled_ns: 0,
            stall_hook: None,
            credits_received: 0,
            credits_granted: 0,
            bytes_consumed: 0,
        }
    }
}

/// Sender-side shared-budget state of one trunk (present only when
/// [`TrunkFlowConfig::trunk_budget`] is non-zero).
#[derive(Debug, Clone, Copy)]
struct BudgetState {
    /// The configured budget (the cap `left` recovers towards).
    cap: usize,
    /// Bytes of budget currently unspent.
    left: usize,
}

struct MuxInner {
    carrier: Rc<dyn ByteStream>,
    /// Reassembly buffer for mux frames arriving on the carrier.
    rx: SegBuf,
    streams: BTreeMap<u32, Rc<RefCell<StreamState>>>,
    next_id: u32,
    flow: Option<TrunkFlowConfig>,
    /// Shared send budget across every stream of this trunk, if bounded.
    budget: Option<BudgetState>,
    /// Streams with parked bytes, in the order they first parked: budget
    /// returned by credits is re-offered in this (deterministic) order.
    parked_order: VecDeque<u32>,
    /// Receiver side of the budget bound: total unconsumed bytes sitting
    /// in this trunk's per-stream receive buffers, and its peak. With the
    /// peer enforcing a `trunk_budget`, the peak never exceeds it.
    recv_occupancy: usize,
    recv_high_water: usize,
    /// Bytes the carrier refused (it died or was closed under us); data
    /// already handed to a dead carrier is lost, not silently retried.
    lost_bytes: u64,
    /// Present on the accepting (gateway proxy) side: invoked with each
    /// stream a peer opens over this trunk.
    on_accept: Option<TrunkAcceptCallback>,
    /// Liveness configuration, when enabled.
    health: Option<TrunkHealthConfig>,
    /// Whether the health timer is currently scheduled.
    health_armed: bool,
    /// Last time any frame arrived from the peer (heartbeats included).
    last_rx: SimTime,
    /// Last time any frame was sent to the peer.
    last_tx: SimTime,
    /// Last time a *real* (non-heartbeat) frame arrived / was sent —
    /// heartbeats answer real traffic but never count as it, or two idle
    /// ends would keep each other's timers alive forever.
    last_data_rx: SimTime,
    last_data_tx: SimTime,
    /// Start of the current *expectation epoch*: the first data send
    /// after the previous expectation decayed (or ever). The silence
    /// verdict measures from `max(last_rx, expect_since)` — a trunk that
    /// falls idle (both ends legitimately silent) and then resumes must
    /// grant the peer a full `dead_after` from the resumption, not
    /// compare against a `last_rx` that is stale by design.
    expect_since: SimTime,
    /// The trunk has been declared dead (carrier closed or silent past
    /// `dead_after` while expecting): every stream on it is over.
    dead: bool,
    /// This end severed the carrier itself ([`TrunkMux::close_carrier`] —
    /// the `drop_trunks` / local-restart fault model). Death hooks use it
    /// to tell a local sever from a dead *peer*: only the latter may mark
    /// the remote gateway down.
    locally_severed: bool,
    /// Whether the current stall epoch already sent its liveness probe
    /// (see [`KIND_PROBE`]); cleared by real traffic in either direction
    /// so the *next* stall gets its own probe.
    probed: bool,
    /// Set when the pending health timer exists only to re-check a stall
    /// probe's peer-silence deadline (the scheduled event's id). Such a
    /// wake must stay *silent* — pre-probe code had no timer at all in
    /// this period, and injecting a heartbeat into a busy carrier
    /// perturbs the bulk datapath. Any wire activity preempts it: the
    /// parked event is cancelled and normal interval ticking resumes, so
    /// the probe machinery never delays a tick the old code would have
    /// run.
    probe_wait: Option<simnet::EventId>,
    /// Fault-model hook: a muted end sends nothing (its bytes are lost)
    /// and ignores everything it receives — a silently crashed gateway.
    muted: bool,
    /// Run once when the trunk is declared dead (failover re-dial hooks).
    on_dead: Vec<TrunkDeadCallback>,
    /// Shared-budget bytes charged for warm-up padding still in flight;
    /// returned by the far end's warm-up credits, or refunded wholesale
    /// when the trunk dies before establishment completes.
    warmup_charge: usize,
}

/// One end of a gateway trunk: demultiplexes mux frames arriving on the
/// carrier bundle into [`TrunkStream`]s.
#[derive(Clone)]
pub struct TrunkMux {
    inner: Rc<RefCell<MuxInner>>,
}

/// Non-owning [`TrunkMux`] handle (see [`TrunkMux::downgrade`]).
#[derive(Clone)]
pub(crate) struct WeakTrunkMux(std::rc::Weak<RefCell<MuxInner>>);

impl WeakTrunkMux {
    /// Whether the trunk is dead (a dropped mux counts as dead).
    pub(crate) fn is_dead(&self) -> bool {
        self.0.upgrade().is_none_or(|i| i.borrow().dead)
    }
}

impl TrunkMux {
    /// Wraps the connecting end of a trunk carrier. Streams are opened
    /// locally with [`TrunkMux::open`]. Pass a [`TrunkFlowConfig`] to run
    /// the trunk with credit-based flow control (both ends must agree).
    pub fn connector(carrier: Rc<dyn ByteStream>, flow: Option<TrunkFlowConfig>) -> TrunkMux {
        Self::new(carrier, flow, None)
    }

    /// Wraps the accepting end of a trunk carrier; `on_accept` runs for
    /// every stream the remote end opens.
    pub fn acceptor(
        carrier: Rc<dyn ByteStream>,
        flow: Option<TrunkFlowConfig>,
        on_accept: impl FnMut(&mut SimWorld, TrunkStream) + 'static,
    ) -> TrunkMux {
        Self::new(carrier, flow, Some(Box::new(on_accept)))
    }

    fn new(
        carrier: Rc<dyn ByteStream>,
        flow: Option<TrunkFlowConfig>,
        on_accept: Option<TrunkAcceptCallback>,
    ) -> TrunkMux {
        if let Some(f) = flow {
            assert!(
                f.credit_grant_threshold <= f.initial_window && f.initial_window > 0,
                "credit grant threshold must not exceed the window"
            );
            assert!(
                f.trunk_budget == 0 || f.trunk_budget >= f.credit_grant_threshold,
                "a trunk budget below the credit grant threshold can never be refilled"
            );
        }
        let budget = flow.and_then(|f| {
            (f.trunk_budget > 0).then_some(BudgetState {
                cap: f.trunk_budget,
                left: f.trunk_budget,
            })
        });
        let mux = TrunkMux {
            inner: Rc::new(RefCell::new(MuxInner {
                carrier: carrier.clone(),
                rx: SegBuf::new(),
                streams: BTreeMap::new(),
                next_id: 1,
                flow,
                budget,
                parked_order: VecDeque::new(),
                recv_occupancy: 0,
                recv_high_water: 0,
                lost_bytes: 0,
                on_accept,
                health: None,
                health_armed: false,
                last_rx: SimTime::ZERO,
                last_tx: SimTime::ZERO,
                last_data_rx: SimTime::ZERO,
                last_data_tx: SimTime::ZERO,
                expect_since: SimTime::ZERO,
                dead: false,
                locally_severed: false,
                probed: false,
                probe_wait: None,
                muted: false,
                on_dead: Vec::new(),
                warmup_charge: 0,
            })),
        };
        let weak = Rc::downgrade(&mux.inner);
        carrier.set_readable_callback(Box::new(move |world| {
            if let Some(inner) = weak.upgrade() {
                TrunkMux { inner }.on_carrier_readable(world);
            }
        }));
        mux
    }

    /// Pushes `bytes` of warm-up padding through the trunk. The far end
    /// discards it; its only effect is growing the carrier's congestion
    /// state to steady state before real streams ride the trunk.
    ///
    /// With a shared trunk budget configured, the padding *charges* the
    /// budget like any other in-flight bytes (it occupies the same carrier
    /// and far-end memory) and the far end returns it as mux-level credits
    /// on receipt — so warm-up accounting and
    /// [`TrunkMux::memory_stats`] stay consistent. If the carrier dies
    /// during establishment the outstanding charge is refunded when the
    /// death is detected ([`TrunkMux::declare_dead`]), before any stream
    /// attaches: an establishment failure can never leak the budget away.
    pub fn warm_up(&self, world: &mut SimWorld, bytes: usize) {
        let mut left = bytes;
        while left > 0 {
            let chunk = left.min(MAX_FRAME_PAYLOAD);
            {
                let mut inner = self.inner.borrow_mut();
                if let Some(b) = inner.budget.as_mut() {
                    let charge = chunk.min(b.left);
                    b.left -= charge;
                    inner.warmup_charge += charge;
                }
            }
            self.send_frame(world, 0, KIND_WARMUP, Bytes::from(vec![0u8; chunk]));
            left -= chunk;
        }
    }

    /// Enables liveness detection on this trunk end: an orderly carrier
    /// close is declared dead immediately; a silent carrier is declared
    /// dead once this end has been *expecting* peer activity (parked or
    /// window-limited bytes) for longer than
    /// [`TrunkHealthConfig::dead_after`]. While armed, the timer also
    /// answers an actively talking peer with keep-alive heartbeats so
    /// that a pure sender's expectation can be met.
    pub fn enable_health(&self, world: &mut SimWorld, config: TrunkHealthConfig) {
        {
            let mut inner = self.inner.borrow_mut();
            let now = world.now();
            inner.health = Some(config);
            inner.last_rx = now;
            inner.last_tx = now;
            inner.last_data_rx = now;
            inner.last_data_tx = now;
            inner.expect_since = now;
        }
        self.arm_health(world);
    }

    /// Registers a hook run once, when this trunk end is declared dead
    /// (orderly close observed or liveness timeout). Used by the runtime
    /// to purge its trunk table and by failover streams to re-dial. The
    /// hook receives `locally_severed`: whether this end closed the
    /// carrier itself (see [`TrunkMux::close_carrier`]).
    pub fn on_dead(&self, cb: impl FnOnce(&mut SimWorld, bool) + 'static) {
        self.inner.borrow_mut().on_dead.push(Box::new(cb));
    }

    /// Whether this trunk end has been declared dead.
    pub fn is_dead(&self) -> bool {
        self.inner.borrow().dead
    }

    /// True when `other` is the same trunk end.
    pub fn same(&self, other: &TrunkMux) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }

    /// Fault-model hook: silences this end — nothing is sent any more
    /// (bytes streams hand us are lost and accounted) and arriving frames
    /// are discarded unread. This models a gateway process that crashed
    /// without closing its connections; the peer can only notice through
    /// liveness timeouts.
    pub fn mute(&self) {
        self.inner.borrow_mut().muted = true;
    }

    /// Declares this trunk end dead: refunds any outstanding warm-up
    /// budget charge, closes the carrier, runs the death hooks and wakes
    /// every stream so blocked readers observe the end of stream.
    pub fn declare_dead(&self, world: &mut SimWorld) {
        if self.inner.borrow().dead {
            return;
        }
        // Final credit flush while our write side still delivers (the
        // peer closing its direction does not close ours — half-close):
        // a peer migrating its streams learns exactly what this end
        // consumed before our FIN, which is what makes its resume offset
        // exact. Futile when the peer is truly gone — the credits die on
        // the severed wire, accounted — and a no-op after a fail-stop
        // `kill`, which flushed explicitly first.
        self.flush_consumed_credits(world);
        let (hooks, states, locally_severed) = {
            let mut inner = self.inner.borrow_mut();
            if inner.dead {
                return;
            }
            inner.dead = true;
            // Warm-up padding that will never be credited back: refund it
            // now so an establishment failure returns the budget before
            // the first stream ever attaches.
            let charge = std::mem::take(&mut inner.warmup_charge);
            if let Some(b) = inner.budget.as_mut() {
                b.left = (b.left + charge).min(b.cap);
            }
            let hooks = std::mem::take(&mut inner.on_dead);
            // BTreeMap is keyed by stream id, so this is id order already.
            let states: Vec<_> = inner.streams.values().cloned().collect();
            (hooks, states, inner.locally_severed)
        };
        let carrier = self.inner.borrow().carrier.clone();
        carrier.close(world);
        for hook in hooks {
            hook(world, locally_severed);
        }
        for state in states {
            TrunkStream {
                mux: self.clone(),
                state,
            }
            .schedule_notify(world);
        }
    }

    /// Grants every stream's consumed-but-unreturned credit batch back to
    /// the peer immediately (in stream-id order). Part of the orderly
    /// fail-stop model: a gateway being killed flushes these so that the
    /// peer's notion of *acknowledged* matches exactly what this end
    /// consumed — and therefore what its splices already forwarded.
    pub fn flush_consumed_credits(&self, world: &mut SimWorld) {
        // BTreeMap is keyed by stream id, so this is id order already.
        let states: Vec<_> = self.inner.borrow().streams.values().cloned().collect();
        for state in states {
            let grant = {
                let mut st = state.borrow_mut();
                if st.flow.is_none() || st.consumed_unreturned == 0 {
                    None
                } else {
                    let g = st.consumed_unreturned;
                    st.consumed_unreturned = 0;
                    st.credits_granted += g as u64;
                    Some((st.id, g))
                }
            };
            if let Some((id, granted)) = grant {
                let mut left = granted;
                while left > 0 {
                    let part = left.min(u32::MAX as usize);
                    self.send_frame(world, id, KIND_CREDIT, credit_payload(part));
                    left -= part;
                }
            }
        }
    }

    /// Whether any stream of this end is *expecting* peer activity: bytes
    /// parked for want of window/budget, a partially spent credit window,
    /// or a deferred close. Only an expecting end may declare a silent
    /// carrier dead — a mere receiver cannot tell silence from idleness.
    fn expecting_activity(&self) -> bool {
        let inner = self.inner.borrow();
        inner.streams.values().any(|s| {
            let st = s.borrow();
            match st.flow {
                Some(f) => {
                    !st.pending_tx.is_empty()
                        || st.close_after_flush
                        || st.send_window < f.initial_window
                }
                None => false,
            }
        }) || inner.warmup_charge > 0
    }

    /// Like [`expecting_activity`](Self::expecting_activity) but
    /// restricted to streams that cannot make progress *at all* without
    /// the peer: bytes parked behind an exhausted window/budget, a close
    /// deferred behind them, or warm-up padding still unacknowledged. A
    /// stream merely carrying trailing unacked bytes (window partially
    /// spent, nothing parked) still moves on its own — its next send
    /// probes the wire naturally — so the stall probe does not spend
    /// wire traffic or quiescence time challenging on its behalf.
    fn blocked_activity(&self) -> bool {
        let inner = self.inner.borrow();
        inner.streams.values().any(|s| {
            let st = s.borrow();
            st.flow.is_some() && (!st.pending_tx.is_empty() || st.close_after_flush)
        }) || inner.warmup_charge > 0
    }

    /// Arms the liveness watch because an *expectation* just began (or
    /// deepened) without any frame hitting the wire — a send that parked
    /// entirely behind an exhausted window/budget, or a close deferred
    /// behind parked bytes. Sends arm the watch themselves; these paths
    /// used to arm nothing, leaving a silently dead peer undetected until
    /// the next actual send. Deliberately *not* an epoch renewal: only
    /// real wire traffic (the stall probe included) may extend the
    /// expectation, or a quiet-but-live peer could be declared dead
    /// without ever being asked.
    fn note_expectation(&self, world: &mut SimWorld) {
        self.arm_health(world);
    }

    /// (Re-)schedules the health timer if health is enabled and it is not
    /// already pending. A timer parked on a probe deadline (see
    /// [`MuxInner::probe_wait`]) does not count as pending: wire activity
    /// cancels it and resumes normal interval ticking.
    fn arm_health(&self, world: &mut SimWorld) {
        let (interval, parked) = {
            let mut inner = self.inner.borrow_mut();
            let Some(h) = inner.health else { return };
            let parked = inner.probe_wait.take();
            if parked.is_some() {
                inner.health_armed = false;
            }
            (h.heartbeat_interval, parked)
        };
        if let Some(id) = parked {
            world.cancel(id);
        }
        self.arm_health_after(world, interval);
    }

    /// Like [`arm_health`](Self::arm_health) but with an explicit delay;
    /// returns the scheduled event, or `None` if one was already pending.
    fn arm_health_after(
        &self,
        world: &mut SimWorld,
        delay: SimDuration,
    ) -> Option<simnet::EventId> {
        {
            let mut inner = self.inner.borrow_mut();
            if inner.health.is_none() || inner.health_armed || inner.dead {
                return None;
            }
            inner.health_armed = true;
        }
        let weak = Rc::downgrade(&self.inner);
        Some(world.schedule_after(delay, move |world| {
            if let Some(inner) = weak.upgrade() {
                TrunkMux { inner }.health_tick(world);
            }
        }))
    }

    /// Parks the health timer until a stall probe's peer-silence deadline
    /// — one silent scheduler event, nothing on the wire, preempted by
    /// any real activity.
    fn arm_probe_wait(&self, world: &mut SimWorld, delay: SimDuration) {
        if let Some(id) = self.arm_health_after(world, delay) {
            self.inner.borrow_mut().probe_wait = Some(id);
        }
    }

    fn health_tick(&self, world: &mut SimWorld) {
        let now = world.now();
        enum Verdict {
            Dead,
            Probe,
            ProbeWait(SimDuration),
            Tick { heartbeat: bool, rearm: bool },
        }
        let was_probe_wait;
        let verdict = {
            let mut inner = self.inner.borrow_mut();
            inner.health_armed = false;
            was_probe_wait = inner.probe_wait.take().is_some();
            let Some(h) = inner.health else { return };
            if inner.dead {
                return;
            }
            if inner.carrier.is_finished() {
                Verdict::Dead
            } else {
                drop(inner);
                let expecting = self.expecting_activity();
                let blocked = self.blocked_activity();
                let inner = self.inner.borrow();
                // A receiver answers recent real traffic with keep-alives
                // for `hb_window`; a sender's expectation stays *active*
                // for `expect_window` after its last real send. The
                // invariant `expect_window < hb_window + dead_after`
                // guarantees a live peer's heartbeats always land before
                // an active expectation can time out — a receiver that
                // merely sits on sub-threshold data (owing no credits yet)
                // is never mistaken for a corpse.
                let hb_window = h.heartbeat_interval + h.heartbeat_interval;
                let expect_window = h.dead_after + h.heartbeat_interval;
                let active_expectation =
                    expecting && now.since(inner.last_data_tx) <= expect_window;
                // Silence is measured from the later of the peer's last
                // frame and the start of the current expectation epoch —
                // a live peer answering a fresh resumption is one RTT
                // away, not dead.
                let silent_from = inner.last_rx.max(inner.expect_since);
                if active_expectation && now.since(silent_from) > h.dead_after {
                    Verdict::Dead
                } else {
                    // Heartbeat only towards a recently *talking* peer —
                    // answering heartbeats with heartbeats would keep two
                    // idle ends pinging forever (and the world from ever
                    // draining).
                    let heartbeat = !inner.muted
                        && now.since(inner.last_data_rx) <= hb_window
                        && now.since(inner.last_tx) >= h.heartbeat_interval;
                    // Stay armed while the expectation is live or real
                    // traffic is recent; otherwise let the timer lapse
                    // (the next send or arrival re-arms it). Detection
                    // beyond the active window is lazy-on-next-use.
                    let rearm = active_expectation
                        || now.since(inner.last_data_rx) <= hb_window
                        || now.since(inner.last_data_tx) <= hb_window;
                    if !rearm && blocked && !inner.probed && !inner.muted {
                        // The timer is about to lapse while this end is
                        // still *expecting* — both directions have been
                        // quiet past the grace windows. This was the old
                        // blind spot: a peer that died silently here went
                        // undetected until the next send. Challenge it
                        // once per stall epoch — but only after the peer
                        // has been silent a full `dead_after` (any frame,
                        // heartbeats included, is proof of life; probing
                        // a live trunk injects traffic that perturbs the
                        // bulk datapath). Until that deadline, park one
                        // silent wake instead of ticking — real activity
                        // in either direction cancels it and resumes
                        // normal arming, so behaviour on live trunks is
                        // exactly the pre-probe lapse.
                        let silence = now.since(inner.last_rx);
                        if silence > h.dead_after {
                            Verdict::Probe
                        } else {
                            Verdict::ProbeWait(h.dead_after + h.heartbeat_interval - silence)
                        }
                    } else {
                        Verdict::Tick { heartbeat, rearm }
                    }
                }
            }
        };
        match verdict {
            Verdict::Dead => self.declare_dead(world),
            Verdict::Probe => {
                self.inner.borrow_mut().probed = true;
                self.send_frame(world, 0, KIND_PROBE, Bytes::new());
            }
            Verdict::ProbeWait(delay) => self.arm_probe_wait(world, delay),
            Verdict::Tick { heartbeat, rearm } => {
                // A wake that existed only to re-check a probe deadline
                // stays off the wire: without the probe machinery there
                // would have been no timer here at all.
                if heartbeat && !was_probe_wait {
                    self.send_frame(world, 0, KIND_HEARTBEAT, Bytes::new());
                }
                if rearm {
                    self.arm_health(world);
                }
            }
        }
    }

    /// Opens a new multiplexed stream over this trunk. Costs no wire
    /// traffic: the stream exists remotely once its first frame arrives.
    pub fn open(&self) -> TrunkStream {
        let state = {
            let mut inner = self.inner.borrow_mut();
            let id = inner.next_id;
            inner.next_id += 1;
            let state = Rc::new(RefCell::new(StreamState::new(id, inner.flow)));
            inner.streams.insert(id, state.clone());
            state
        };
        TrunkStream {
            mux: self.clone(),
            state,
        }
    }

    /// Bytes the carrier refused because it died or was closed; they are
    /// lost, exactly as bytes on a severed wire would be.
    pub fn lost_bytes(&self) -> u64 {
        self.inner.borrow().lost_bytes
    }

    /// Memory accounting of this trunk end (see [`TrunkMemoryStats`]).
    pub fn memory_stats(&self) -> TrunkMemoryStats {
        let inner = self.inner.borrow();
        let mut parked = 0;
        let mut max_stream_hw = 0;
        for state in inner.streams.values() {
            let st = state.borrow();
            if !st.pending_tx.is_empty() {
                parked += 1;
            }
            max_stream_hw = max_stream_hw.max(st.recv_buf.high_water());
        }
        TrunkMemoryStats {
            budget: inner.budget.map_or(0, |b| b.cap),
            budget_available: inner.budget.map_or(0, |b| b.left),
            recv_occupancy: inner.recv_occupancy,
            recv_high_water: inner.recv_high_water,
            parked_streams: parked,
            max_stream_high_water: max_stream_hw,
        }
    }

    /// Remembers that `id` parked (has pending bytes), preserving
    /// first-park FIFO order for deterministic resumption.
    fn register_parked(&self, id: u32) {
        let mut inner = self.inner.borrow_mut();
        if !inner.parked_order.contains(&id) {
            inner.parked_order.push_back(id);
        }
    }

    /// Offers newly returned budget/window to every parked stream, in the
    /// order they first parked. Each stream flushes what its own window
    /// and the shared budget allow; streams that drained completely leave
    /// the park queue.
    fn replenish_parked(&self, world: &mut SimWorld) {
        let ids: Vec<u32> = self.inner.borrow().parked_order.iter().copied().collect();
        for id in ids {
            let state = self.inner.borrow().streams.get(&id).cloned();
            if let Some(state) = state {
                TrunkStream {
                    mux: self.clone(),
                    state,
                }
                .flush_pending(world);
            }
        }
        let mut inner = self.inner.borrow_mut();
        let MuxInner {
            parked_order,
            streams,
            ..
        } = &mut *inner;
        parked_order.retain(|id| {
            streams
                .get(id)
                .is_some_and(|s| !s.borrow().pending_tx.is_empty())
        });
    }

    /// True once the underlying carrier is finished (the far end closed or
    /// the bundle died); no further frame can arrive.
    pub fn carrier_finished(&self) -> bool {
        self.inner.borrow().carrier.is_finished()
    }

    /// Closes the underlying carrier, killing the trunk: every stream
    /// riding it ends once in-flight data drains, and bytes sent
    /// afterwards are lost (accounted in [`TrunkMux::lost_bytes`]).
    pub fn close_carrier(&self, world: &mut SimWorld) {
        let carrier = {
            let mut inner = self.inner.borrow_mut();
            inner.locally_severed = true;
            inner.carrier.clone()
        };
        carrier.close(world);
    }

    /// Whether this end severed the carrier itself (as opposed to the
    /// peer dying or closing).
    pub fn locally_severed(&self) -> bool {
        self.inner.borrow().locally_severed
    }

    /// A non-owning handle for death probes (splices must not keep their
    /// own mux alive through a probe, or the probe closes a leak cycle).
    pub(crate) fn downgrade(&self) -> WeakTrunkMux {
        WeakTrunkMux(Rc::downgrade(&self.inner))
    }

    fn on_carrier_readable(&self, world: &mut SimWorld) {
        // Phase 1: drain the carrier and slice out complete mux frames.
        let frames = {
            let mut inner = self.inner.borrow_mut();
            loop {
                let data = inner.carrier.recv_bytes(world, usize::MAX);
                if data.is_empty() {
                    break;
                }
                if inner.muted {
                    // A silently crashed end reads nothing: discard.
                    continue;
                }
                inner.rx.push_bytes(data);
            }
            let mut frames = Vec::new();
            loop {
                let mut header = [0u8; MUX_HEADER_BYTES];
                if inner.rx.copy_peek(&mut header) < MUX_HEADER_BYTES {
                    break;
                }
                let id = u32::from_be_bytes(header[0..4].try_into().unwrap());
                let kind = header[4];
                let len = u32::from_be_bytes(header[5..9].try_into().unwrap()) as usize;
                if inner.rx.len() < MUX_HEADER_BYTES + len {
                    break;
                }
                inner.rx.consume(MUX_HEADER_BYTES);
                // Zero-copy whenever the payload arrived in one segment.
                let payload = inner.rx.read_bytes(len);
                frames.push((id, kind, payload));
            }
            if !frames.is_empty() {
                inner.last_rx = world.now();
                if frames.iter().any(|(_, k, _)| *k != KIND_HEARTBEAT) {
                    // A probe counts as data *here* (the peer is waiting on
                    // us — answer it with heartbeats), but only genuinely
                    // real traffic re-arms our own one-shot probe: two
                    // mutually stalled ends must not ping-pong probes
                    // forever.
                    inner.last_data_rx = world.now();
                }
                if frames
                    .iter()
                    .any(|(_, k, _)| *k != KIND_HEARTBEAT && *k != KIND_PROBE)
                {
                    inner.probed = false;
                }
            }
            frames
        };
        if !frames.is_empty() {
            // Incoming traffic arms the watch so this end can heartbeat
            // back at a peer that is waiting on us.
            self.arm_health(world);
        }

        // Phase 2: deliver outside the mux borrow (acceptors may open
        // onward legs, which can touch other trunks and the runtime).
        for (id, kind, payload) in frames {
            if kind == KIND_HEARTBEAT {
                continue; // keep-alive: its work was updating last_rx
            }
            if kind == KIND_PROBE {
                // Liveness challenge: its work was updating last_data_rx,
                // which makes the armed timer answer with heartbeats.
                continue;
            }
            if kind == KIND_WARMUP {
                // Padding: its work was done on the wire. With flow
                // control the sender charged its shared budget for these
                // bytes; hand them back as mux-level credits.
                let refund = self.inner.borrow().flow.is_some() && !payload.is_empty();
                if refund {
                    let mut left = payload.len();
                    while left > 0 {
                        let part = left.min(u32::MAX as usize);
                        self.send_frame(world, 0, KIND_CREDIT, credit_payload(part));
                        left -= part;
                    }
                }
                continue;
            }
            if kind == KIND_CREDIT {
                // Window refill for a stream this side sends on. A credit
                // for an id we no longer track is stale (the stream was
                // reaped after both closes) and only refills the shared
                // budget below — it must never fabricate a fresh stream
                // through the accept path.
                if payload.len() != 4 {
                    continue;
                }
                let amount =
                    u32::from_be_bytes([payload[0], payload[1], payload[2], payload[3]]) as usize;
                // The shared trunk budget is returned at the mux level,
                // regardless of whether the stream still exists: every
                // credited byte was budget-deducted when it went out, so
                // dropping returns for reaped streams would leak the
                // budget away across stream lifetimes.
                {
                    let mut inner = self.inner.borrow_mut();
                    if let Some(b) = inner.budget.as_mut() {
                        b.left = (b.left + amount).min(b.cap);
                    }
                    // Warm-up padding coming back: its budget charge is no
                    // longer outstanding (nothing left to refund on death).
                    inner.warmup_charge = inner.warmup_charge.saturating_sub(amount);
                }
                let state = self.inner.borrow().streams.get(&id).cloned();
                if let Some(state) = &state {
                    let mut st = state.borrow_mut();
                    st.credits_received += amount as u64;
                    st.send_window = st.send_window.saturating_add(amount);
                }
                if self.inner.borrow().budget.is_some() {
                    // Shared budget freed: offer it strictly in the order
                    // streams first parked — the credited stream flushes
                    // at its own FIFO position, never ahead of older
                    // parked streams.
                    self.replenish_parked(world);
                } else if let Some(state) = state {
                    // Per-stream windows only: no shared resource was
                    // freed, so only the credited stream can have gained
                    // sendable allowance.
                    TrunkStream {
                        mux: self.clone(),
                        state,
                    }
                    .flush_pending(world);
                }
                continue;
            }
            let (state, fresh) = {
                let mut inner = self.inner.borrow_mut();
                match inner.streams.get(&id) {
                    Some(s) => (s.clone(), false),
                    None => {
                        if inner.on_accept.is_none() {
                            // A frame for an unknown stream on the
                            // connecting side: stale after close; drop.
                            continue;
                        }
                        let state = Rc::new(RefCell::new(StreamState::new(id, inner.flow)));
                        inner.streams.insert(id, state.clone());
                        (state, true)
                    }
                }
            };
            {
                let mut st = state.borrow_mut();
                match kind {
                    KIND_DATA => {
                        let mut inner = self.inner.borrow_mut();
                        inner.recv_occupancy += payload.len();
                        inner.recv_high_water = inner.recv_high_water.max(inner.recv_occupancy);
                        st.recv_buf.push_bytes(payload);
                    }
                    KIND_CLOSE => st.peer_closed = true,
                    _ => {} // unknown kind: ignore
                }
            }
            let stream = TrunkStream {
                mux: self.clone(),
                state: state.clone(),
            };
            if kind == KIND_CLOSE {
                // If the consumer already drained everything, the final
                // sub-threshold credit batch flushes now — a shared trunk
                // budget must recover those bytes even though the stream
                // is ending.
                stream.flush_final_credits(world);
            }
            // Both directions closed (and our own CLOSE actually sent):
            // the carrier's ordering guarantees no further frame with this
            // id, so the demux entry can go (live handles keep the state
            // alive through their own Rc).
            stream.maybe_reap();
            if fresh {
                // Hand the new stream out (taking the callback allows the
                // acceptor to re-enter the mux).
                let cb = self.inner.borrow_mut().on_accept.take();
                if let Some(mut cb) = cb {
                    cb(world, stream.clone());
                    let mut inner = self.inner.borrow_mut();
                    if inner.on_accept.is_none() {
                        inner.on_accept = Some(cb);
                    }
                }
            }
            stream.schedule_notify(world);
        }

        // A finished carrier means no stream on this trunk will ever see
        // another frame: declare the trunk dead (idempotent), which runs
        // any failover hooks and wakes every stream so blocked readers
        // observe the end of stream instead of waiting forever. This is
        // the *immediate* detection path — an orderly close never waits
        // for the liveness timeout.
        if self.inner.borrow().carrier.is_finished() {
            self.declare_dead(world);
        }
    }

    fn send_frame(&self, world: &mut SimWorld, id: u32, kind: u8, payload: Bytes) {
        let carrier = {
            let mut inner = self.inner.borrow_mut();
            if inner.muted || inner.dead {
                // A muted (silently crashed) or already-dead end: the
                // frame disappears as if the process had died with the
                // bytes in its buffers.
                inner.lost_bytes += (MUX_HEADER_BYTES + payload.len()) as u64;
                return;
            }
            let now = world.now();
            inner.last_tx = now;
            if kind != KIND_HEARTBEAT {
                if kind != KIND_PROBE {
                    // Real traffic re-arms the one-shot stall probe; the
                    // probe itself must not, or one tick would both spend
                    // and refresh it.
                    inner.probed = false;
                }
                if let Some(h) = inner.health {
                    // A data send after the previous expectation decayed
                    // opens a new epoch: the peer gets a full
                    // `dead_after` to answer from *here*, however stale
                    // `last_rx` is after the shared idle period.
                    let expect_window = h.dead_after + h.heartbeat_interval;
                    if now.since(inner.last_data_tx) > expect_window {
                        inner.expect_since = now;
                    }
                }
                inner.last_data_tx = now;
            }
            inner.carrier.clone()
        };
        let mut header = BytesMut::with_capacity(MUX_HEADER_BYTES);
        header.extend_from_slice(&id.to_be_bytes());
        header.extend_from_slice(&[kind]);
        header.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        let expected = MUX_HEADER_BYTES + payload.len();
        let mut parts = vec![header.freeze()];
        if !payload.is_empty() {
            parts.push(payload);
        }
        let sent = carrier.send_bytes_vectored(world, parts);
        if sent != expected {
            // The carrier died under us (a killed trunk): the frame is
            // lost on the severed wire and accounted, never retried.
            self.inner.borrow_mut().lost_bytes += (expected - sent) as u64;
        }
        // Sending while healthy keeps (or starts) the liveness watch: an
        // unanswered expectation is how silent death gets detected.
        self.arm_health(world);
    }
}

/// One relayed stream multiplexed over a gateway trunk.
#[derive(Clone)]
pub struct TrunkStream {
    mux: TrunkMux,
    state: Rc<RefCell<StreamState>>,
}

impl TrunkStream {
    /// The mux carrying this stream (failover internals).
    pub(crate) fn mux(&self) -> &TrunkMux {
        &self.mux
    }

    /// Installs an observer fired when this stream's sender parks on an
    /// exhausted window/budget (`true`) and when the backlog fully
    /// drains (`false`); failover streams feed it into their flight
    /// recorder. Replaces any previous hook.
    pub fn set_stall_hook(&self, hook: impl FnMut(&mut SimWorld, bool) + 'static) {
        self.state.borrow_mut().stall_hook = Some(Rc::new(RefCell::new(hook)));
    }

    /// Credit accounting snapshot of this stream.
    pub fn credit_stats(&self) -> TrunkCreditStats {
        let st = self.state.borrow();
        TrunkCreditStats {
            credits_received: st.credits_received,
            credits_granted: st.credits_granted,
            bytes_consumed: st.bytes_consumed,
            unreturned_bytes: st.consumed_unreturned,
            stalled_ns: st.stalled_ns,
            parked_bytes: st.pending_tx.len(),
            send_window: st.send_window,
            recv_high_water: st.recv_buf.high_water(),
        }
    }

    fn schedule_notify(&self, world: &mut SimWorld) {
        let should = {
            let mut st = self.state.borrow_mut();
            let has_event = !st.recv_buf.is_empty()
                || st.peer_closed
                || self.mux.carrier_finished()
                || self.mux.is_dead();
            if st.readable_cb.is_some() && !st.notify_pending && has_event {
                st.notify_pending = true;
                true
            } else {
                false
            }
        };
        if should {
            let stream = self.clone();
            world.schedule_after(SimDuration::ZERO, move |world| {
                let cb = {
                    let mut st = stream.state.borrow_mut();
                    st.notify_pending = false;
                    st.readable_cb.take()
                };
                if let Some(mut cb) = cb {
                    cb(world);
                    let mut st = stream.state.borrow_mut();
                    if st.readable_cb.is_none() {
                        st.readable_cb = Some(cb);
                    }
                }
            });
        }
    }

    fn queue_send(&self, world: &mut SimWorld, data: Bytes) -> usize {
        // Half-close works like TCP: only our own close stops sending.
        // With the peer's read side gone the far end still drains data
        // that was in flight, matching the per-stream legs this replaces.
        let len = data.len();
        let mut stalled_hook: Option<StallHook> = None;
        let (id, chunks) = {
            let mut st = self.state.borrow_mut();
            if st.self_closed {
                return 0;
            }
            st.bytes_sent += len as u64;
            if !st.pending_tx.is_empty() {
                // Already parked: preserve FIFO order behind the backlog.
                // Nothing hits the wire, so keep the liveness watch armed
                // by hand — the deepened expectation must stay watched.
                st.pending_tx.push_bytes(data);
                self.mux.note_expectation(world);
                return len;
            }
            let mut head = data;
            if st.flow.is_some() {
                // The window and the shared trunk budget both gate what
                // goes on the carrier; the stricter one wins and the
                // excess parks.
                let allowance = {
                    let inner = self.mux.inner.borrow();
                    inner
                        .budget
                        .map_or(st.send_window, |b| st.send_window.min(b.left))
                };
                if head.len() > allowance {
                    let tail = head.split_off(allowance);
                    st.pending_tx.push_bytes(tail);
                    self.mux.register_parked(st.id);
                    if st.stall_started.is_none() {
                        st.stall_started = Some(world.now());
                        stalled_hook = st.stall_hook.clone();
                    }
                }
                st.send_window -= head.len();
                if let Some(b) = self.mux.inner.borrow_mut().budget.as_mut() {
                    b.left -= head.len();
                }
            }
            (st.id, split_frames(head))
        };
        if let Some(hook) = stalled_hook {
            (hook.borrow_mut())(world, true);
        }
        if chunks.is_empty() && len > 0 {
            // The whole send parked (window or shared budget already at
            // zero): no frame will arm the watch, so arm it here.
            self.mux.note_expectation(world);
        }
        for chunk in chunks {
            self.mux.send_frame(world, id, KIND_DATA, chunk);
        }
        len
    }

    fn flush_pending(&self, world: &mut SimWorld) {
        loop {
            let next = {
                let mut st = self.state.borrow_mut();
                let budget_left = {
                    let inner = self.mux.inner.borrow();
                    inner.budget.map_or(usize::MAX, |b| b.left)
                };
                if st.pending_tx.is_empty() || st.send_window == 0 || budget_left == 0 {
                    None
                } else {
                    let n = st.send_window.min(budget_left).min(MAX_FRAME_PAYLOAD);
                    let chunk = st.pending_tx.pop_chunk(n);
                    st.send_window -= chunk.len();
                    if let Some(b) = self.mux.inner.borrow_mut().budget.as_mut() {
                        b.left -= chunk.len();
                    }
                    Some((st.id, chunk))
                }
            };
            match next {
                Some((id, chunk)) => self.mux.send_frame(world, id, KIND_DATA, chunk),
                None => break,
            }
        }
        let mut resumed_hook: Option<StallHook> = None;
        let deferred_close = {
            let mut st = self.state.borrow_mut();
            if st.pending_tx.is_empty() {
                if let Some(t0) = st.stall_started.take() {
                    st.stalled_ns += world.now().since(t0).as_nanos();
                    resumed_hook = st.stall_hook.clone();
                }
                if st.close_after_flush {
                    st.close_after_flush = false;
                    st.close_sent = true;
                    Some(st.id)
                } else {
                    None
                }
            } else {
                None
            }
        };
        if let Some(hook) = resumed_hook {
            (hook.borrow_mut())(world, false);
        }
        if let Some(id) = deferred_close {
            self.mux.send_frame(world, id, KIND_CLOSE, Bytes::new());
            self.maybe_reap();
        }
    }

    /// The local consumer read `n` bytes: grant credits back to the peer
    /// once the batch threshold is reached. Runs regardless of our own
    /// write-side close, so credits stay conserved across half-close.
    fn note_consumed(&self, world: &mut SimWorld, n: usize) {
        if n == 0 {
            return;
        }
        {
            let mut inner = self.mux.inner.borrow_mut();
            inner.recv_occupancy = inner.recv_occupancy.saturating_sub(n);
        }
        let grant = {
            let mut st = self.state.borrow_mut();
            st.bytes_consumed += n as u64;
            let Some(flow) = st.flow else { return };
            st.consumed_unreturned += n;
            // A stream whose peer closed and whose buffer just drained
            // returns its final sub-threshold batch immediately: with a
            // shared trunk budget those bytes must come back even though
            // no further consume will ever reach the threshold. With a
            // shared budget, *every* drain-to-empty flushes the batch:
            // otherwise N open-but-idle streams could each pin up to
            // (threshold - 1) consumed bytes and starve the whole trunk
            // of budget even though all data was delivered. (This trades
            // some CREDIT-frame batching for liveness: a keeping-up
            // consumer grants roughly once per carrier delivery burst
            // instead of once per threshold batch — any fixed batching
            // floor would re-open the starvation for enough streams.)
            let stream_done = st.peer_closed && st.recv_buf.is_empty();
            let budget_drain = flow.trunk_budget != 0 && st.recv_buf.is_empty();
            if st.consumed_unreturned >= flow.credit_grant_threshold || stream_done || budget_drain
            {
                let g = st.consumed_unreturned;
                st.consumed_unreturned = 0;
                st.credits_granted += g as u64;
                Some((st.id, g))
            } else {
                None
            }
        };
        if let Some((id, granted)) = grant {
            // Large consumes may exceed u32: return in frame-sized slices.
            let mut left = granted;
            while left > 0 {
                let part = left.min(u32::MAX as usize);
                self.mux
                    .send_frame(world, id, KIND_CREDIT, credit_payload(part));
                left -= part;
            }
        }
    }

    /// Flushes any unreturned credit batch of a stream whose peer closed
    /// and whose receive buffer is already empty (the consumer drained it
    /// before the `CLOSE` arrived).
    fn flush_final_credits(&self, world: &mut SimWorld) {
        let grant = {
            let mut st = self.state.borrow_mut();
            if st.flow.is_none()
                || !st.peer_closed
                || !st.recv_buf.is_empty()
                || st.consumed_unreturned == 0
            {
                None
            } else {
                let g = st.consumed_unreturned;
                st.consumed_unreturned = 0;
                st.credits_granted += g as u64;
                Some((st.id, g))
            }
        };
        if let Some((id, granted)) = grant {
            let mut left = granted;
            while left > 0 {
                let part = left.min(u32::MAX as usize);
                self.mux
                    .send_frame(world, id, KIND_CREDIT, credit_payload(part));
                left -= part;
            }
        }
    }

    /// Drops the demux entry once both directions are closed on the wire.
    fn maybe_reap(&self) {
        let (id, dead) = {
            let st = self.state.borrow();
            (st.id, st.peer_closed && st.close_sent)
        };
        if dead {
            self.mux.inner.borrow_mut().streams.remove(&id);
        }
    }
}

/// Splits a chunk into `MAX_FRAME_PAYLOAD`-sized frames so concurrent
/// streams interleave on the carrier.
fn split_frames(mut data: Bytes) -> Vec<Bytes> {
    let mut out = Vec::with_capacity(data.len() / MAX_FRAME_PAYLOAD + 1);
    while data.len() > MAX_FRAME_PAYLOAD {
        out.push(data.split_to(MAX_FRAME_PAYLOAD));
    }
    if !data.is_empty() {
        out.push(data);
    }
    out
}

fn credit_payload(amount: usize) -> Bytes {
    Bytes::copy_from_slice(&(amount as u32).to_be_bytes())
}

impl ByteStream for TrunkStream {
    fn send(&self, world: &mut SimWorld, data: &[u8]) -> usize {
        self.queue_send(world, Bytes::copy_from_slice(data))
    }

    fn send_bytes(&self, world: &mut SimWorld, data: Bytes) -> usize {
        self.queue_send(world, data)
    }

    fn available(&self) -> usize {
        self.state.borrow().recv_buf.len()
    }

    fn recv(&self, world: &mut SimWorld, max: usize) -> Vec<u8> {
        if max == 0 || self.available() == 0 {
            return Vec::new();
        }
        let out = self.state.borrow_mut().recv_buf.read_into(max);
        self.note_consumed(world, out.len());
        out
    }

    fn recv_bytes(&self, world: &mut SimWorld, max: usize) -> Bytes {
        let out = self.state.borrow_mut().recv_buf.pop_chunk(max);
        self.note_consumed(world, out.len());
        out
    }

    fn is_established(&self) -> bool {
        self.mux.inner.borrow().carrier.is_established()
    }

    fn is_finished(&self) -> bool {
        let st = self.state.borrow();
        // A dead carrier (closed, or declared dead by liveness) ends every
        // stream riding it: no further frame can arrive, so an empty
        // receive buffer means end of stream.
        (st.peer_closed || self.mux.carrier_finished() || self.mux.is_dead())
            && st.recv_buf.is_empty()
    }

    fn close(&self, world: &mut SimWorld) {
        let action = {
            let mut st = self.state.borrow_mut();
            if st.self_closed {
                return;
            }
            st.self_closed = true;
            if st.pending_tx.is_empty() {
                st.close_sent = true;
                Some(st.id)
            } else {
                // Parked bytes still wait for credits: defer the CLOSE so
                // the peer receives everything we accepted before EOF.
                st.close_after_flush = true;
                None
            }
        };
        if let Some(id) = action {
            self.mux.send_frame(world, id, KIND_CLOSE, Bytes::new());
            self.maybe_reap();
        } else {
            // The CLOSE is deferred behind parked bytes: another
            // expectation that begins with no frame on the wire.
            self.mux.note_expectation(world);
        }
    }

    fn set_readable_callback(&self, cb: ReadableCallback) {
        self.state.borrow_mut().readable_cb = Some(cb);
    }

    fn bytes_acked(&self) -> u64 {
        // The trunk carrier is reliable while alive: everything queued is
        // delivered (minus what a severed carrier lost, accounted at the
        // mux level).
        self.state.borrow().bytes_sent
    }

    fn bytes_unacked(&self) -> u64 {
        // Trunk-wide backlog plus this stream's parked bytes: the honest
        // backpressure signal for a stream sharing the bundle.
        let parked = self.state.borrow().pending_tx.len() as u64;
        self.mux.inner.borrow().carrier.bytes_unacked() + parked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use transport::{loopback_pair, ByteStreamExt};

    /// (connector, acceptor, accepted streams). The acceptor must stay
    /// alive for the carrier callback's weak reference to resolve.
    fn mux_pair_flow(
        world: &SimWorld,
        flow: Option<TrunkFlowConfig>,
    ) -> (TrunkMux, TrunkMux, Rc<RefCell<Vec<TrunkStream>>>) {
        let n = world.node_ids()[0];
        let (a, b) = loopback_pair(world, n);
        let connector = TrunkMux::connector(Rc::new(a), flow);
        let accepted: Rc<RefCell<Vec<TrunkStream>>> = Rc::new(RefCell::new(Vec::new()));
        let acc = accepted.clone();
        let acceptor = TrunkMux::acceptor(Rc::new(b), flow, move |_world, stream| {
            acc.borrow_mut().push(stream);
        });
        (connector, acceptor, accepted)
    }

    fn mux_pair(world: &SimWorld) -> (TrunkMux, TrunkMux, Rc<RefCell<Vec<TrunkStream>>>) {
        mux_pair_flow(world, None)
    }

    #[test]
    fn streams_multiplex_over_one_carrier() {
        let mut world = SimWorld::new(0);
        world.add_node("n");
        let (mux, _acceptor, accepted) = mux_pair(&world);
        let s1 = mux.open();
        let s2 = mux.open();
        s1.send_all(&mut world, b"first stream");
        s2.send_all(&mut world, b"second");
        world.run();
        assert_eq!(accepted.borrow().len(), 2);
        let a1 = accepted.borrow()[0].clone();
        let a2 = accepted.borrow()[1].clone();
        assert_eq!(a1.recv_all(&mut world), b"first stream");
        assert_eq!(a2.recv_all(&mut world), b"second");
        // And back over the same trunk.
        a1.send_all(&mut world, b"reply");
        world.run();
        assert_eq!(s1.recv_all(&mut world), b"reply");
        assert_eq!(s2.available(), 0);
    }

    #[test]
    fn close_propagates_per_stream() {
        let mut world = SimWorld::new(0);
        world.add_node("n");
        let (mux, _acceptor, accepted) = mux_pair(&world);
        let s1 = mux.open();
        let s2 = mux.open();
        s1.send_all(&mut world, b"bye");
        s1.close(&mut world);
        s2.send_all(&mut world, b"still open");
        world.run();
        let a1 = accepted.borrow()[0].clone();
        let a2 = accepted.borrow()[1].clone();
        assert_eq!(a1.recv_all(&mut world), b"bye");
        assert!(a1.is_finished());
        assert!(!a2.is_finished());
        assert_eq!(a2.recv_all(&mut world), b"still open");
        assert_eq!(s1.send(&mut world, b"x"), 0, "closed stream refuses data");
    }

    #[test]
    fn half_close_still_delivers_the_response() {
        let mut world = SimWorld::new(0);
        world.add_node("n");
        let (mux, _acceptor, accepted) = mux_pair(&world);
        let s = mux.open();
        s.send_all(&mut world, b"request");
        s.close(&mut world);
        world.run();
        let a = accepted.borrow()[0].clone();
        assert_eq!(a.recv_all(&mut world), b"request");
        assert!(a.is_finished());
        // Like TCP half-close: the responder's write side is still open.
        a.send_all(&mut world, b"response");
        a.close(&mut world);
        world.run();
        assert_eq!(s.recv_all(&mut world), b"response");
        assert!(s.is_finished());
    }

    #[test]
    fn large_writes_are_split_into_frames() {
        let mut world = SimWorld::new(0);
        world.add_node("n");
        let (mux, _acceptor, accepted) = mux_pair(&world);
        let s = mux.open();
        let data: Vec<u8> = (0..200_000usize).map(|i| (i % 251) as u8).collect();
        s.send_all(&mut world, &data);
        world.run();
        let a = accepted.borrow()[0].clone();
        assert_eq!(a.recv_all(&mut world), data);
    }

    // ------------------------------------------------------------------ //
    // Credit-based flow control
    // ------------------------------------------------------------------ //

    const SMALL_FLOW: TrunkFlowConfig = TrunkFlowConfig {
        initial_window: 4 * 1024,
        credit_grant_threshold: 1024,
        trunk_budget: 0,
    };

    #[test]
    fn window_parks_excess_and_credits_release_it() {
        let mut world = SimWorld::new(0);
        world.add_node("n");
        let (mux, _acceptor, accepted) = mux_pair_flow(&world, Some(SMALL_FLOW));
        let s = mux.open();
        let data: Vec<u8> = (0..20_000usize).map(|i| (i % 241) as u8).collect();
        assert_eq!(s.send(&mut world, &data), data.len(), "send accepts all");
        // Only one window's worth is on the wire; the rest is parked.
        let st = s.credit_stats();
        assert_eq!(st.parked_bytes, data.len() - SMALL_FLOW.initial_window);
        assert_eq!(st.send_window, 0);
        world.run();
        let a = accepted.borrow()[0].clone();
        // The receiver holds at most one window before the test drains it.
        assert!(a.available() <= SMALL_FLOW.initial_window);
        assert!(a.credit_stats().recv_high_water <= SMALL_FLOW.initial_window);
        // Draining grants credits, which un-park the remainder, in order.
        let mut got = Vec::new();
        while got.len() < data.len() {
            let before = got.len();
            got.extend(a.recv(&mut world, usize::MAX));
            world.run();
            assert!(got.len() > before, "transfer stalled at {before}");
        }
        assert_eq!(got, data, "no corruption across park/flush");
        let st = s.credit_stats();
        assert_eq!(st.parked_bytes, 0);
        assert!(st.stalled_ns > 0, "the stall must be accounted");
        assert!(st.credits_received > 0);
        let at = a.credit_stats();
        assert_eq!(at.bytes_consumed, data.len() as u64);
        assert_eq!(
            at.credits_granted + at.unreturned_bytes as u64,
            at.bytes_consumed,
            "granted credits + unreturned batch == consumed"
        );
    }

    #[test]
    fn close_is_deferred_until_parked_bytes_flush() {
        let mut world = SimWorld::new(0);
        world.add_node("n");
        let (mux, _acceptor, accepted) = mux_pair_flow(&world, Some(SMALL_FLOW));
        let s = mux.open();
        let data: Vec<u8> = (0..10_000usize).map(|i| (i % 239) as u8).collect();
        s.send_all(&mut world, &data);
        s.close(&mut world);
        world.run();
        let a = accepted.borrow()[0].clone();
        assert!(
            !a.is_finished(),
            "CLOSE must not overtake parked data (close is deferred)"
        );
        let mut got = Vec::new();
        loop {
            got.extend(a.recv(&mut world, usize::MAX));
            world.run();
            if a.is_finished() {
                got.extend(a.recv(&mut world, usize::MAX));
                break;
            }
        }
        assert_eq!(got, data, "everything accepted before close is delivered");
        assert!(a.is_finished());
    }

    #[test]
    fn credits_keep_flowing_across_half_close() {
        let mut world = SimWorld::new(0);
        world.add_node("n");
        let (mux, _acceptor, accepted) = mux_pair_flow(&world, Some(SMALL_FLOW));
        let s = mux.open();
        s.send_all(&mut world, &[1u8; 6 * 1024]);
        world.run();
        let a = accepted.borrow()[0].clone();
        // The acceptor closes its own write side, then keeps consuming.
        a.close(&mut world);
        let mut got = 0;
        while got < 6 * 1024 {
            got += a.recv(&mut world, usize::MAX).len();
            world.run();
        }
        let at = a.credit_stats();
        assert_eq!(
            at.credits_granted + at.unreturned_bytes as u64,
            at.bytes_consumed,
            "conservation holds across half-close: {at:?}"
        );
        // The sender's window recovered to (almost) full.
        let st = s.credit_stats();
        assert_eq!(st.parked_bytes, 0);
        assert_eq!(
            st.send_window + at.unreturned_bytes,
            SMALL_FLOW.initial_window,
            "window + in-flight batch == initial window"
        );
    }

    #[test]
    fn trunk_budget_bounds_aggregate_occupancy_across_streams() {
        // Per-stream windows of 4 KiB would admit 16 KiB for 4 streams;
        // the shared 6 KiB budget must cap the *sum* instead.
        let flow = TrunkFlowConfig {
            trunk_budget: 6 * 1024,
            ..SMALL_FLOW
        };
        let mut world = SimWorld::new(0);
        world.add_node("n");
        let (mux, acceptor, accepted) = mux_pair_flow(&world, Some(flow));
        let streams: Vec<TrunkStream> = (0..4).map(|_| mux.open()).collect();
        let data: Vec<Vec<u8>> = (0..4)
            .map(|s| (0..5_000usize).map(|i| (i + s * 31) as u8).collect())
            .collect();
        for (s, d) in streams.iter().zip(&data) {
            assert_eq!(s.send(&mut world, d), d.len(), "send accepts everything");
        }
        // Wire-resident bytes across all four streams never exceed the
        // budget, so the receiving side's aggregate occupancy is bounded.
        assert_eq!(mux.memory_stats().budget_available, 0);
        assert!(mux.memory_stats().parked_streams >= 3);
        world.run();
        assert!(
            acceptor.memory_stats().recv_high_water <= flow.trunk_budget,
            "aggregate receive occupancy must respect the trunk budget: {:?}",
            acceptor.memory_stats()
        );
        // Draining the receivers cycles credits; everything arrives
        // intact and in order, and the budget recovers fully.
        let mut got: Vec<Vec<u8>> = vec![Vec::new(); 4];
        loop {
            let mut progressed = false;
            for (i, rx) in accepted.borrow().iter().enumerate() {
                let chunk = rx.recv(&mut world, 1500);
                if !chunk.is_empty() {
                    got[i].extend(chunk);
                    progressed = true;
                }
            }
            world.run();
            if !progressed && got.iter().map(Vec::len).sum::<usize>() == 4 * 5_000 {
                break;
            }
            assert!(
                acceptor.memory_stats().recv_occupancy <= flow.trunk_budget,
                "occupancy bound must hold throughout the drain"
            );
        }
        assert_eq!(got, data, "no loss, reorder or cross-stream corruption");
        let m = mux.memory_stats();
        assert_eq!(m.parked_streams, 0, "{m:?}");
        // All four streams' credits eventually restore the full budget.
        assert!(
            m.budget_available + 4 * SMALL_FLOW.credit_grant_threshold > flow.trunk_budget,
            "budget recovers up to the unreturned grant batches: {m:?}"
        );
        // Per-stream windows still hold individually.
        for rx in accepted.borrow().iter() {
            assert!(rx.credit_stats().recv_high_water <= SMALL_FLOW.initial_window);
        }
    }

    #[test]
    fn sub_threshold_consumption_cannot_pin_the_budget() {
        // Several open streams each consume less than the grant
        // threshold; batched credits alone would never return, pinning
        // the whole shared budget with every buffer empty. Drain-to-empty
        // grants must recover it so later traffic still flows.
        let flow = TrunkFlowConfig {
            initial_window: 4 * 1024,
            credit_grant_threshold: 2 * 1024,
            trunk_budget: 4 * 1024,
        };
        let mut world = SimWorld::new(0);
        world.add_node("n");
        let (mux, _acceptor, accepted) = mux_pair_flow(&world, Some(flow));
        let streams: Vec<TrunkStream> = (0..3).map(|_| mux.open()).collect();
        for (i, s) in streams.iter().enumerate() {
            // 2000 bytes: below the 2048 grant threshold.
            s.send_all(&mut world, &[i as u8; 2000]);
        }
        world.run();
        // Consume everything; streams stay open (no CLOSE to force the
        // final grant).
        let mut drained = 0;
        loop {
            let before = drained;
            for rx in accepted.borrow().iter() {
                drained += rx.recv(&mut world, usize::MAX).len();
            }
            world.run();
            if drained == before {
                break;
            }
        }
        assert_eq!(drained, 3 * 2000, "all three transfers complete");
        assert_eq!(
            mux.memory_stats().budget_available,
            flow.trunk_budget,
            "drained streams must return their sub-threshold batches"
        );
        // The trunk is still usable: a fourth burst flows through.
        streams[0].send_all(&mut world, &[9u8; 3000]);
        world.run();
        let a0 = accepted.borrow()[0].clone();
        assert_eq!(a0.recv(&mut world, usize::MAX), vec![9u8; 3000]);
    }

    #[test]
    fn trunk_budget_recovers_after_streams_close() {
        // Sub-threshold tails and stream teardown must return their
        // budget: otherwise successive short streams leak it to zero.
        let flow = TrunkFlowConfig {
            initial_window: 4 * 1024,
            credit_grant_threshold: 1024,
            trunk_budget: 4 * 1024,
        };
        let mut world = SimWorld::new(0);
        world.add_node("n");
        let (mux, _acceptor, accepted) = mux_pair_flow(&world, Some(flow));
        for round in 0..8 {
            let s = mux.open();
            // 1.5 KiB: above the grant threshold only once, leaving a
            // sub-threshold tail that only the final grant returns.
            s.send_all(&mut world, &[round as u8; 1536]);
            s.close(&mut world);
            world.run();
            let rx = accepted.borrow().last().cloned().unwrap();
            assert_eq!(rx.recv_all(&mut world), vec![round as u8; 1536]);
            world.run();
            assert_eq!(
                mux.memory_stats().budget_available,
                flow.trunk_budget,
                "round {round}: the full budget must return once the peer drains"
            );
        }
    }

    // ------------------------------------------------------------------ //
    // Liveness detection + warm-up budget accounting
    // ------------------------------------------------------------------ //

    #[test]
    fn muted_peer_is_declared_dead_by_liveness_timeout() {
        let mut world = SimWorld::new(0);
        world.add_node("n");
        let (mux, acceptor, _accepted) = mux_pair_flow(&world, Some(SMALL_FLOW));
        let health = TrunkHealthConfig::default();
        mux.enable_health(&mut world, health);
        let died_at: Rc<RefCell<Option<simnet::SimTime>>> = Rc::new(RefCell::new(None));
        let d = died_at.clone();
        mux.on_dead(move |world, locally| {
            assert!(!locally, "a silent peer death is not a local sever");
            *d.borrow_mut() = Some(world.now());
        });
        // The peer crashes silently: no FIN ever arrives.
        acceptor.mute();
        // Send more than one window so the sender is *expecting* credits.
        let s = mux.open();
        let t0 = world.now();
        s.send_all(&mut world, &[7u8; 3 * 4096]);
        assert!(!mux.is_dead());
        world.run();
        // The expectation went unanswered past dead_after: declared dead,
        // the hook ran, the stream observed its end, the world drained
        // (no immortal heartbeat timers).
        assert!(mux.is_dead(), "liveness must declare the silent peer dead");
        let died = died_at.borrow().expect("on_dead hook must run");
        assert!(
            died.since(t0) >= health.dead_after,
            "no earlier than the timeout"
        );
        assert!(
            died.since(t0)
                <= health.dead_after + health.heartbeat_interval + health.heartbeat_interval,
            "and not much later: died after {:?}",
            died.since(t0)
        );
        assert!(s.is_finished(), "streams on a dead trunk end");
        let st = s.credit_stats();
        assert_eq!(st.credits_received, 0, "the corpse never acknowledged");
        assert!(st.parked_bytes > 0, "unsent bytes stay parked, never faked");
    }

    #[test]
    fn healthy_idle_trunk_never_false_positives_and_world_drains() {
        let mut world = SimWorld::new(0);
        world.add_node("n");
        let (mux, acceptor, accepted) = mux_pair_flow(&world, Some(SMALL_FLOW));
        mux.enable_health(&mut world, TrunkHealthConfig::default());
        acceptor.enable_health(&mut world, TrunkHealthConfig::default());
        let s = mux.open();
        s.send_all(&mut world, b"window-sized exchange");
        world.run(); // must terminate: heartbeats stop when traffic does
        let a = accepted.borrow()[0].clone();
        assert_eq!(a.recv_all(&mut world), b"window-sized exchange");
        world.run();
        assert!(!mux.is_dead(), "a drained healthy trunk stays alive");
        assert!(!acceptor.is_dead());
        // And it still works long after the idle period.
        s.send_all(&mut world, b"again");
        world.run();
        assert_eq!(a.recv_all(&mut world), b"again");
    }

    #[test]
    fn resuming_a_long_idle_trunk_does_not_false_positive() {
        // Regression: a trunk reused after a shared idle period has a
        // stale `last_rx` (idle ends stop heartbeating by design). The
        // first health tick after a multi-window resume used to measure
        // silence from that stale timestamp and declare a live peer dead
        // 20 ms into the resumed transfer. Silence must be measured from
        // the start of the new expectation epoch instead.
        let mut world = SimWorld::new(0);
        world.add_node("n");
        let (mux, acceptor, accepted) = mux_pair_flow(&world, Some(SMALL_FLOW));
        let health = TrunkHealthConfig::default();
        mux.enable_health(&mut world, health);
        acceptor.enable_health(&mut world, health);

        // Warm exchange, fully drained.
        let s = mux.open();
        s.send_all(&mut world, b"warm-up");
        world.run();
        let a = accepted.borrow()[0].clone();
        assert_eq!(a.recv_all(&mut world), b"warm-up");
        world.run();

        // Idle well past the expectation window: both ends go silent and
        // every liveness timer lapses (the world drains).
        let idle = health.dead_after + health.dead_after + health.dead_after;
        world.schedule_after(idle + idle, |_world| {});
        world.run();
        assert!(!mux.is_dead());

        // Resume with a multi-window burst: the sender now *expects*
        // credits while `last_rx` is several dead_after periods stale.
        let data: Vec<u8> = (0..3 * SMALL_FLOW.initial_window)
            .map(|i| (i % 233) as u8)
            .collect();
        s.send_all(&mut world, &data);
        world.run();
        assert!(
            !mux.is_dead(),
            "a live peer answering a resumed burst must not be declared dead"
        );
        // The transfer completes once the receiver drains (credits flow
        // over the very trunk that would have been severed).
        let mut got = Vec::new();
        while got.len() < data.len() {
            let before = got.len();
            got.extend(a.recv(&mut world, usize::MAX));
            world.run();
            assert!(got.len() > before, "resumed transfer stalled at {before}");
        }
        assert_eq!(got, data, "byte-exact across the idle resume");
        assert!(!mux.is_dead());
        assert!(!acceptor.is_dead());
    }

    #[test]
    fn silent_death_during_a_long_stall_is_probed_and_detected() {
        // Regression: a peer that died *silently* after a stream had
        // already been stalled past the expectation window used to go
        // undetected until the next wire activity (the expectation had
        // decayed, the timer lapsed). The stall probe closes this: one
        // on-wire challenge per stall epoch, opening a fresh expectation
        // that a corpse cannot answer.
        let mut world = SimWorld::new(0);
        world.add_node("n");
        let (mux, acceptor, _accepted) = mux_pair_flow(&world, Some(SMALL_FLOW));
        let health = TrunkHealthConfig::default();
        mux.enable_health(&mut world, health);
        acceptor.enable_health(&mut world, health);
        let died_at: Rc<RefCell<Option<simnet::SimTime>>> = Rc::new(RefCell::new(None));
        let d = died_at.clone();
        mux.on_dead(move |world, locally| {
            assert!(!locally, "a silent peer death is not a local sever");
            *d.borrow_mut() = Some(world.now());
        });
        // Multi-window burst: the sender parks, expecting credits a
        // never-consuming receiver will not grant.
        let s = mux.open();
        let t0 = world.now();
        s.send_all(&mut world, &[7u8; 3 * 4096]);
        // The peer crashes silently *mid-stall*, after its initial
        // heartbeats but before the sender's expectation decays — the
        // exact window the pre-probe detector could never see into.
        let acceptor_handle = acceptor.clone();
        world.schedule_after(
            health.dead_after - health.heartbeat_interval,
            move |_world| acceptor_handle.mute(),
        );
        world.run();
        assert!(mux.is_dead(), "the stall probe must catch the silent death");
        let died = died_at.borrow().expect("on_dead hook must run");
        let expect_window = health.dead_after + health.heartbeat_interval;
        assert!(
            died.since(t0) >= expect_window,
            "detection goes through the post-decay probe, died after {:?}",
            died.since(t0)
        );
        // Worst case: the peer's last heartbeat lands at the mute point
        // (dead_after - hb), the probe waits out the peer-silence
        // threshold (dead_after, + hb wait granularity), and the fresh
        // expectation epoch runs its course (dead_after, + 2 hb tick
        // granularity).
        assert!(
            died.since(t0)
                <= (health.dead_after - health.heartbeat_interval)
                    + health.dead_after
                    + health.dead_after
                    + health.heartbeat_interval
                    + health.heartbeat_interval
                    + health.heartbeat_interval,
            "one probe, one dead_after — not an unbounded wait: {:?}",
            died.since(t0)
        );
        assert!(s.is_finished(), "streams on the probed-dead trunk end");
    }

    #[test]
    fn live_but_slow_peer_survives_the_stall_probe_and_completes() {
        // The dual guarantee: the probe is one-shot per stall epoch, so a
        // receiver that legitimately sits on data for ages is challenged
        // once, answers with heartbeats, and the world still drains (no
        // probe/heartbeat ping-pong keeping the event queue alive).
        let mut world = SimWorld::new(0);
        world.add_node("n");
        let (mux, acceptor, accepted) = mux_pair_flow(&world, Some(SMALL_FLOW));
        mux.enable_health(&mut world, TrunkHealthConfig::default());
        acceptor.enable_health(&mut world, TrunkHealthConfig::default());
        let s = mux.open();
        let data: Vec<u8> = (0..3 * SMALL_FLOW.initial_window)
            .map(|i| (i % 251) as u8)
            .collect();
        s.send_all(&mut world, &data);
        world.run(); // must terminate: the stall probe never chains
        assert!(
            !mux.is_dead(),
            "a live-but-slow peer answers the probe and survives"
        );
        assert!(!acceptor.is_dead());
        // When the consumer finally drains, credits flow and the transfer
        // completes byte-exact over the very trunk a false positive would
        // have severed.
        let a = accepted.borrow()[0].clone();
        let mut got = Vec::new();
        while got.len() < data.len() {
            let before = got.len();
            got.extend(a.recv(&mut world, usize::MAX));
            world.run();
            assert!(got.len() > before, "post-stall transfer stuck at {before}");
        }
        assert_eq!(got, data, "byte-exact across the probed stall");
        assert!(!mux.is_dead());
        assert!(!acceptor.is_dead());
    }

    #[test]
    fn orderly_close_is_declared_dead_immediately() {
        let mut world = SimWorld::new(0);
        world.add_node("n");
        let (mux, acceptor, _accepted) = mux_pair_flow(&world, Some(SMALL_FLOW));
        mux.enable_health(&mut world, TrunkHealthConfig::default());
        let dead_hook = Rc::new(Cell::new(false));
        let d = dead_hook.clone();
        mux.on_dead(move |_, _locally| d.set(true));
        mux.inner.borrow().carrier.close(&mut world);
        acceptor.inner.borrow().carrier.close(&mut world);
        world.run();
        assert!(mux.is_dead(), "orderly close needs no timeout");
        assert!(dead_hook.get());
    }

    #[test]
    fn warmup_charges_the_budget_and_the_far_end_returns_it() {
        let flow = TrunkFlowConfig {
            initial_window: 64 * 1024,
            credit_grant_threshold: 1024,
            trunk_budget: 32 * 1024,
        };
        let mut world = SimWorld::new(0);
        world.add_node("n");
        let (mux, _acceptor, _accepted) = mux_pair_flow(&world, Some(flow));
        mux.warm_up(&mut world, 200 * 1024);
        // The padding charged the budget the moment it left.
        assert_eq!(mux.memory_stats().budget_available, 0);
        world.run();
        // The far end discarded it and returned the charge as credits.
        assert_eq!(
            mux.memory_stats().budget_available,
            flow.trunk_budget,
            "warm-up accounting must square with trunk_memory_stats"
        );
    }

    #[test]
    fn establishment_failure_refunds_the_warmup_charge() {
        // A carrier killed *during* warm-up used to strand the budget
        // bytes charged for the padding: the first stream then started
        // against a half-empty budget on a fresh trunk's books.
        let flow = TrunkFlowConfig {
            initial_window: 64 * 1024,
            credit_grant_threshold: 1024,
            trunk_budget: 32 * 1024,
        };
        let mut world = SimWorld::new(0);
        world.add_node("n");
        let (mux, acceptor, _accepted) = mux_pair_flow(&world, Some(flow));
        // The far end dies silently before the warm-up is answered.
        acceptor.mute();
        mux.warm_up(&mut world, 200 * 1024);
        assert_eq!(mux.memory_stats().budget_available, 0);
        mux.enable_health(&mut world, TrunkHealthConfig::default());
        world.run();
        assert!(mux.is_dead(), "unanswered warm-up must trip liveness");
        assert_eq!(
            mux.memory_stats().budget_available,
            flow.trunk_budget,
            "establishment failure returns the full charge before any \
             stream attaches"
        );
    }

    #[test]
    fn killed_carrier_ends_streams_and_accounts_lost_bytes() {
        let mut world = SimWorld::new(0);
        world.add_node("n");
        let (mux, acceptor, accepted) = mux_pair_flow(&world, Some(SMALL_FLOW));
        let s = mux.open();
        s.send_all(&mut world, b"delivered before the kill");
        world.run();
        let a = accepted.borrow()[0].clone();
        assert_eq!(a.recv_all(&mut world), b"delivered before the kill");
        // Sever the carrier from both ends (a crashed gateway), then keep
        // writing into the void.
        mux.inner.borrow().carrier.close(&mut world);
        acceptor.inner.borrow().carrier.close(&mut world);
        world.run();
        let sent = s.send(&mut world, &[7u8; 1000]);
        assert_eq!(sent, 1000, "the stream still accepts (and accounts) it");
        world.run();
        assert!(mux.lost_bytes() > 0, "bytes to a dead carrier are lost");
        assert!(a.is_finished(), "a dead carrier finishes its streams");
        assert!(s.is_finished());
        assert_eq!(a.recv_all(&mut world), b"", "no corrupt trailing data");
    }
}
