//! Circuit: the parallel-oriented abstract interface.
//!
//! A Circuit manages communications inside a definite *group* of nodes
//! (a cluster, a subset of one, or nodes spread over several sites). The
//! interface is message-based and optimized for parallel runtimes:
//! messages are lists of segments (incremental packing), delivery is
//! per-link, and each link of one Circuit instance may use a different
//! adapter — straight MadIO on a SAN, a framed stream over SysIO TCP or
//! over any VLink method when the peer is only reachable through a
//! distributed network.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use bytes::{Bytes, BytesMut};
use netaccess::{MadIO, MadIOTag};
use simnet::{NodeId, SimDuration, SimWorld};
use transport::{ByteStream, SegBuf};

/// A message received on a Circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitMessage {
    /// Rank of the sender within the Circuit group.
    pub src_rank: usize,
    /// Message segments, in packing order.
    pub segments: Vec<Bytes>,
}

impl CircuitMessage {
    /// Total payload size.
    pub fn payload_len(&self) -> usize {
        self.segments.iter().map(|s| s.len()).sum()
    }

    /// Concatenated segments.
    pub fn concat(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.payload_len());
        for s in &self.segments {
            v.extend_from_slice(s);
        }
        v
    }
}

/// The adapter used by one link of a Circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitLinkKind {
    /// Straight parallel adapter: MadIO on a SAN.
    MadIo,
    /// Cross-paradigm adapter: framed stream over SysIO TCP.
    SysIoStream,
    /// Framed stream over a VLink method (parallel streams, AdOC, …).
    VLinkStream,
    /// Intra-node loopback.
    Loopback,
}

/// One outgoing link of a Circuit.
pub trait CircuitLink {
    /// Sends one message (list of segments) to the link's destination.
    fn send(&self, world: &mut SimWorld, src_rank: usize, segments: Vec<Bytes>);
    /// The adapter kind of this link.
    fn kind(&self) -> CircuitLinkKind;
}

type MessageCallback = Box<dyn FnMut(&mut SimWorld, CircuitMessage)>;

struct CircuitInner {
    group: Vec<NodeId>,
    my_rank: usize,
    links: Vec<Option<Box<dyn CircuitLink>>>,
    incoming: VecDeque<CircuitMessage>,
    callback: Option<MessageCallback>,
    notify_pending: bool,
    messages_sent: u64,
    messages_received: u64,
    bytes_sent: u64,
}

/// A Circuit instance on one node.
#[derive(Clone)]
pub struct Circuit {
    inner: Rc<RefCell<CircuitInner>>,
    /// Fixed cost charged by the Circuit layer per message sent.
    send_overhead: SimDuration,
}

impl Circuit {
    /// Default per-message cost of the Circuit layer.
    pub const DEFAULT_SEND_OVERHEAD: SimDuration = SimDuration::from_nanos(250);

    /// Creates an (unwired) Circuit for `group`, where this node is
    /// `my_rank`. Links must be attached with [`Circuit::set_link`] (the
    /// PadicoTM runtime does this according to the selector's choices).
    pub fn new(group: Vec<NodeId>, my_rank: usize) -> Circuit {
        assert!(my_rank < group.len(), "rank outside group");
        let n = group.len();
        Circuit {
            inner: Rc::new(RefCell::new(CircuitInner {
                group,
                my_rank,
                links: (0..n).map(|_| None).collect(),
                incoming: VecDeque::new(),
                callback: None,
                notify_pending: false,
                messages_sent: 0,
                messages_received: 0,
                bytes_sent: 0,
            })),
            send_overhead: Self::DEFAULT_SEND_OVERHEAD,
        }
    }

    /// The group of this Circuit, in rank order.
    pub fn group(&self) -> Vec<NodeId> {
        self.inner.borrow().group.clone()
    }

    /// This node's rank.
    pub fn my_rank(&self) -> usize {
        self.inner.borrow().my_rank
    }

    /// Group size.
    pub fn size(&self) -> usize {
        self.inner.borrow().group.len()
    }

    /// (messages sent, messages received, payload bytes sent).
    pub fn stats(&self) -> (u64, u64, u64) {
        let st = self.inner.borrow();
        (st.messages_sent, st.messages_received, st.bytes_sent)
    }

    /// Attaches the outgoing link towards `dst_rank`.
    pub fn set_link(&self, dst_rank: usize, link: Box<dyn CircuitLink>) {
        self.inner.borrow_mut().links[dst_rank] = Some(link);
    }

    /// The adapter kind used towards `dst_rank` (None if not wired).
    pub fn link_kind(&self, dst_rank: usize) -> Option<CircuitLinkKind> {
        self.inner.borrow().links[dst_rank]
            .as_ref()
            .map(|l| l.kind())
    }

    /// Sends a message (list of segments) to `dst_rank`.
    pub fn send(&self, world: &mut SimWorld, dst_rank: usize, segments: Vec<Bytes>) {
        let my_rank = {
            let mut st = self.inner.borrow_mut();
            st.messages_sent += 1;
            st.bytes_sent += segments.iter().map(|s| s.len() as u64).sum::<u64>();
            st.my_rank
        };
        if dst_rank == my_rank {
            // Self-delivery through the loopback path.
            let circuit = self.clone();
            world.schedule_after(self.send_overhead, move |world| {
                circuit.deliver(
                    world,
                    CircuitMessage {
                        src_rank: my_rank,
                        segments,
                    },
                );
            });
            return;
        }
        let circuit = self.clone();
        world.schedule_after(self.send_overhead, move |world| {
            let link_exists = circuit.inner.borrow().links[dst_rank].is_some();
            assert!(link_exists, "no Circuit link wired towards rank {dst_rank}");
            // Call the link without holding the borrow (links may re-enter
            // the circuit for immediate local notifications).
            let st = circuit.inner.borrow();
            let link = st.links[dst_rank].as_ref().expect("checked above");
            // The link trait object lives inside the borrow; its send only
            // needs &self, and never calls back into this circuit
            // synchronously for remote destinations, so the borrow is safe.
            link.send(world, st.my_rank, segments);
        });
    }

    /// Convenience: sends one contiguous buffer.
    pub fn send_bytes(&self, world: &mut SimWorld, dst_rank: usize, data: impl Into<Bytes>) {
        self.send(world, dst_rank, vec![data.into()]);
    }

    /// Registers the message callback. Queued messages remain pollable.
    pub fn set_message_callback(&self, cb: impl FnMut(&mut SimWorld, CircuitMessage) + 'static) {
        self.inner.borrow_mut().callback = Some(Box::new(cb));
    }

    /// Pops a received message, if any.
    pub fn poll_message(&self) -> Option<CircuitMessage> {
        self.inner.borrow_mut().incoming.pop_front()
    }

    /// Number of messages waiting.
    pub fn pending_messages(&self) -> usize {
        self.inner.borrow().incoming.len()
    }

    /// Delivers a message into this Circuit (called by incoming adapters).
    pub fn deliver(&self, world: &mut SimWorld, msg: CircuitMessage) {
        {
            let mut st = self.inner.borrow_mut();
            st.messages_received += 1;
            st.incoming.push_back(msg);
        }
        self.schedule_notify(world);
    }

    fn schedule_notify(&self, world: &mut SimWorld) {
        let should = {
            let mut st = self.inner.borrow_mut();
            if st.callback.is_some() && !st.notify_pending && !st.incoming.is_empty() {
                st.notify_pending = true;
                true
            } else {
                false
            }
        };
        if should {
            let circuit = self.clone();
            world.schedule_after(SimDuration::ZERO, move |world| loop {
                let (cb, msg) = {
                    let mut st = circuit.inner.borrow_mut();
                    if st.incoming.is_empty() || st.callback.is_none() {
                        st.notify_pending = false;
                        return;
                    }
                    (
                        st.callback.take().expect("checked"),
                        st.incoming.pop_front().expect("checked"),
                    )
                };
                let mut cb = cb;
                cb(world, msg);
                let mut st = circuit.inner.borrow_mut();
                if st.callback.is_none() {
                    st.callback = Some(cb);
                } else {
                    st.notify_pending = false;
                    return;
                }
            });
        }
    }

    // ------------------------------------------------------------------ //
    // Incoming adapters
    // ------------------------------------------------------------------ //

    /// Registers this Circuit on a MadIO tag so that messages sent by
    /// [`MadIoCircuitLink`]s on other nodes are delivered here.
    pub fn attach_madio_incoming(&self, world: &mut SimWorld, madio: &MadIO, tag: MadIOTag) {
        let circuit = self.clone();
        madio.register(world, tag, move |world, m| {
            if m.segments.is_empty() || m.segments[0].len() < 4 {
                return;
            }
            let src_rank = u32::from_be_bytes(m.segments[0][0..4].try_into().unwrap()) as usize;
            circuit.deliver(
                world,
                CircuitMessage {
                    src_rank,
                    segments: m.segments[1..].to_vec(),
                },
            );
        });
    }

    /// Attaches an incoming framed stream (accepted TCP connection, VLink,
    /// …): frames parsed from it are delivered into this Circuit.
    pub fn attach_incoming_stream(&self, world: &mut SimWorld, stream: Rc<dyn ByteStream>) {
        let circuit = self.clone();
        let partial = Rc::new(RefCell::new(SegBuf::new()));
        let stream2 = stream.clone();
        stream.set_readable_callback(Box::new(move |world| {
            let mut buf = partial.borrow_mut();
            loop {
                let data = stream2.recv_bytes(world, usize::MAX);
                if data.is_empty() {
                    break;
                }
                buf.push_bytes(data);
            }
            while let Some(msg) = decode_frame(&mut buf) {
                circuit.deliver(world, msg);
            }
        }));
        let _ = world;
    }
}

// --------------------------------------------------------------------- //
// Stream framing shared by the SysIO and VLink adapters
// --------------------------------------------------------------------- //

/// Builds the frame header for a segmented Circuit message. The segment
/// payloads are not copied into the header: [`StreamCircuitLink::send`]
/// pushes the header and then each segment by refcount, so the message
/// stays segment-preserving all the way onto the carrying stream.
fn encode_frame_header(src_rank: usize, segments: &[Bytes]) -> Bytes {
    let mut out = BytesMut::with_capacity(8 + segments.len() * 4);
    out.extend_from_slice(&(src_rank as u32).to_be_bytes());
    out.extend_from_slice(&(segments.len() as u32).to_be_bytes());
    for s in segments {
        out.extend_from_slice(&(s.len() as u32).to_be_bytes());
    }
    out.freeze()
}

/// Decodes one complete frame from the reassembly buffer, consuming it.
/// Segment payloads are zero-copy slices of the buffered chunks whenever a
/// segment arrived contiguously.
fn decode_frame(buf: &mut SegBuf) -> Option<CircuitMessage> {
    let mut fixed = [0u8; 8];
    if buf.copy_peek(&mut fixed) < 8 {
        return None;
    }
    let src_rank = u32::from_be_bytes(fixed[0..4].try_into().unwrap()) as usize;
    let n_segs = u32::from_be_bytes(fixed[4..8].try_into().unwrap()) as usize;
    if n_segs > 1_000_000 {
        return None; // corrupt
    }
    let header = 8 + n_segs * 4;
    if buf.len() < header {
        return None;
    }
    let mut len_bytes = vec![0u8; header];
    buf.copy_peek(&mut len_bytes);
    let mut lens = Vec::with_capacity(n_segs);
    for i in 0..n_segs {
        lens.push(
            u32::from_be_bytes(len_bytes[8 + i * 4..12 + i * 4].try_into().unwrap()) as usize,
        );
    }
    let total: usize = lens.iter().sum();
    if buf.len() < header + total {
        return None;
    }
    buf.consume(header);
    let segments = lens.into_iter().map(|len| buf.read_bytes(len)).collect();
    Some(CircuitMessage { src_rank, segments })
}

// --------------------------------------------------------------------- //
// Outgoing link adapters
// --------------------------------------------------------------------- //

/// Straight adapter: Circuit messages carried as MadIO messages on a SAN.
pub struct MadIoCircuitLink {
    madio: MadIO,
    tag: MadIOTag,
    /// Destination rank within the MadIO channel group (which may differ
    /// from the Circuit group).
    dst_madio_rank: usize,
}

impl MadIoCircuitLink {
    /// Creates a link towards the node that has rank `dst_madio_rank` in
    /// `madio`'s channel group.
    pub fn new(madio: MadIO, tag: MadIOTag, dst_madio_rank: usize) -> Self {
        MadIoCircuitLink {
            madio,
            tag,
            dst_madio_rank,
        }
    }
}

impl CircuitLink for MadIoCircuitLink {
    fn send(&self, world: &mut SimWorld, src_rank: usize, segments: Vec<Bytes>) {
        let mut header = BytesMut::with_capacity(4);
        header.extend_from_slice(&(src_rank as u32).to_be_bytes());
        let mut mad_segments = Vec::with_capacity(segments.len() + 1);
        mad_segments.push((header.freeze(), madeleine::SendMode::Safer));
        for s in segments {
            mad_segments.push((s, madeleine::SendMode::Cheaper));
        }
        self.madio
            .send(world, self.dst_madio_rank, self.tag, mad_segments);
    }

    fn kind(&self) -> CircuitLinkKind {
        CircuitLinkKind::MadIo
    }
}

/// Cross-paradigm adapter: Circuit messages framed onto a byte stream
/// (SysIO TCP, Parallel Streams, AdOC, any VLink method).
pub struct StreamCircuitLink {
    stream: Rc<dyn ByteStream>,
    kind: CircuitLinkKind,
}

impl StreamCircuitLink {
    /// Wraps an outgoing stream as a Circuit link.
    pub fn new(stream: Rc<dyn ByteStream>, kind: CircuitLinkKind) -> Self {
        StreamCircuitLink { stream, kind }
    }
}

impl CircuitLink for StreamCircuitLink {
    fn send(&self, world: &mut SimWorld, src_rank: usize, segments: Vec<Bytes>) {
        let header = encode_frame_header(src_rank, &segments);
        let expected = header.len() + segments.iter().map(|s| s.len()).sum::<usize>();
        let mut parts = Vec::with_capacity(1 + segments.len());
        parts.push(header);
        parts.extend(segments);
        let sent = self.stream.send_bytes_vectored(world, parts);
        debug_assert_eq!(sent, expected, "stream refused Circuit frame");
    }

    fn kind(&self) -> CircuitLinkKind {
        self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netaccess::NetAccess;
    use simnet::topology;
    use transport::loopback_pair;

    #[test]
    fn frame_roundtrip() {
        let segments = vec![
            Bytes::from_static(b"header"),
            Bytes::from_static(b""),
            Bytes::from_static(b"payload data"),
        ];
        let mut wire = Vec::new();
        wire.extend_from_slice(&encode_frame_header(3, &segments));
        for s in &segments {
            wire.extend_from_slice(s);
        }
        let mut buf = SegBuf::new();
        buf.push_slice(&wire);
        let msg = decode_frame(&mut buf).unwrap();
        assert!(buf.is_empty(), "whole frame must be consumed");
        assert_eq!(msg.src_rank, 3);
        assert_eq!(msg.segments, segments);
        // Partial frames are not decoded (and nothing is consumed).
        let mut partial = SegBuf::new();
        partial.push_slice(&wire[..wire.len() - 1]);
        assert!(decode_frame(&mut partial).is_none());
        assert_eq!(partial.len(), wire.len() - 1);
        let mut tiny = SegBuf::new();
        tiny.push_slice(&wire[..4]);
        assert!(decode_frame(&mut tiny).is_none());
    }

    #[test]
    fn frame_decode_across_chunk_boundaries() {
        let segments = vec![Bytes::from(vec![9u8; 10]), Bytes::from(vec![7u8; 3])];
        let mut wire = Vec::new();
        wire.extend_from_slice(&encode_frame_header(1, &segments));
        for s in &segments {
            wire.extend_from_slice(s);
        }
        // Feed the wire one byte at a time: decode only fires once whole.
        let mut buf = SegBuf::new();
        let mut decoded = None;
        for (i, b) in wire.iter().enumerate() {
            buf.push_slice(&[*b]);
            if let Some(msg) = decode_frame(&mut buf) {
                assert_eq!(i, wire.len() - 1, "decoded before the frame was whole");
                decoded = Some(msg);
            }
        }
        let msg = decoded.expect("frame decodes at the last byte");
        assert_eq!(msg.segments, segments);
    }

    #[test]
    fn self_send_loops_back() {
        let mut world = SimWorld::new(0);
        let n = world.add_node("n");
        let circuit = Circuit::new(vec![n], 0);
        circuit.send_bytes(&mut world, 0, &b"to me"[..]);
        world.run();
        let msg = circuit.poll_message().unwrap();
        assert_eq!(msg.src_rank, 0);
        assert_eq!(msg.concat(), b"to me");
    }

    #[test]
    fn circuit_over_madio_straight_adapter() {
        let p = topology::san_pair(51);
        let mut world = p.world;
        let nodes = vec![p.a, p.b];
        let na: Vec<NetAccess> = nodes
            .iter()
            .map(|&n| NetAccess::new(&mut world, n, Some((p.san, nodes.clone()))))
            .collect();
        let c0 = Circuit::new(nodes.clone(), 0);
        let c1 = Circuit::new(nodes.clone(), 1);
        c0.attach_madio_incoming(&mut world, &na[0].madio(), MadIOTag::CIRCUIT);
        c1.attach_madio_incoming(&mut world, &na[1].madio(), MadIOTag::CIRCUIT);
        c0.set_link(
            1,
            Box::new(MadIoCircuitLink::new(na[0].madio(), MadIOTag::CIRCUIT, 1)),
        );
        c1.set_link(
            0,
            Box::new(MadIoCircuitLink::new(na[1].madio(), MadIOTag::CIRCUIT, 0)),
        );
        assert_eq!(c0.link_kind(1), Some(CircuitLinkKind::MadIo));

        c0.send(
            &mut world,
            1,
            vec![Bytes::from_static(b"hdr"), Bytes::from_static(b"body")],
        );
        c1.send_bytes(&mut world, 0, &b"reply"[..]);
        world.run();
        let m = c1.poll_message().unwrap();
        assert_eq!(m.src_rank, 0);
        assert_eq!(m.segments.len(), 2);
        assert_eq!(&m.segments[1][..], b"body");
        let m = c0.poll_message().unwrap();
        assert_eq!(m.src_rank, 1);
        assert_eq!(m.concat(), b"reply");
    }

    #[test]
    fn circuit_over_stream_adapter() {
        // Two circuit endpoints joined by a loopback byte stream, as used
        // when a Circuit link crosses a distributed network.
        let mut world = SimWorld::new(0);
        let n = world.add_node("n");
        let (sa, sb) = loopback_pair(&world, n);
        let (sa, sb): (Rc<dyn ByteStream>, Rc<dyn ByteStream>) = (Rc::new(sa), Rc::new(sb));
        let c0 = Circuit::new(vec![n, n], 0);
        let c1 = Circuit::new(vec![n, n], 1);
        c0.set_link(
            1,
            Box::new(StreamCircuitLink::new(
                sa.clone(),
                CircuitLinkKind::SysIoStream,
            )),
        );
        c1.attach_incoming_stream(&mut world, sb.clone());
        assert_eq!(c0.link_kind(1), Some(CircuitLinkKind::SysIoStream));

        for i in 0..5u8 {
            c0.send(
                &mut world,
                1,
                vec![Bytes::from(vec![i]), Bytes::from(vec![i; i as usize])],
            );
        }
        world.run();
        assert_eq!(c1.pending_messages(), 5);
        for i in 0..5u8 {
            let m = c1.poll_message().unwrap();
            assert_eq!(m.src_rank, 0);
            assert_eq!(m.segments[0][0], i);
            assert_eq!(m.segments[1].len(), i as usize);
        }
    }

    #[test]
    fn callback_delivery() {
        let mut world = SimWorld::new(0);
        let n = world.add_node("n");
        let circuit = Circuit::new(vec![n], 0);
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        circuit.set_message_callback(move |_w, m| g.borrow_mut().push(m.concat()));
        circuit.send_bytes(&mut world, 0, &b"one"[..]);
        circuit.send_bytes(&mut world, 0, &b"two"[..]);
        world.run();
        assert_eq!(*got.borrow(), vec![b"one".to_vec(), b"two".to_vec()]);
        let (sent, received, bytes) = circuit.stats();
        assert_eq!(sent, 2);
        assert_eq!(received, 2);
        assert_eq!(bytes, 6);
    }

    #[test]
    #[should_panic(expected = "no Circuit link wired")]
    fn sending_without_link_panics() {
        let mut world = SimWorld::new(0);
        let n = world.add_node("n");
        let m = world.add_node("m");
        let circuit = Circuit::new(vec![n, m], 0);
        circuit.send_bytes(&mut world, 1, &b"x"[..]);
        world.run();
    }
}
