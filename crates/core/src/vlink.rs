//! VLink: the distributed-oriented abstract interface.
//!
//! A VLink is a connected, stream-oriented link with an *asynchronous*
//! programming model: operations are posted and complete later, completion
//! being observable either by polling the descriptor or through a handler.
//! This is exactly the shape needed to build both synchronous personalities
//! (`Vio`, `SysWrap`) and asynchronous ones (`Aio`) as thin wrappers.
//!
//! A VLink does not care what carries its bytes: the *driver* below it may
//! be a SysIO TCP connection, a stream over MadIO messages (CORBA over
//! Myrinet!), Parallel Streams on a WAN, an AdOC-compressed stream, a
//! secure stream, or an intra-node loopback. The selector picks the driver;
//! the interface never changes.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use bytes::Bytes;
use simnet::{SimDuration, SimWorld};
use transport::{ByteStream, SegBuf};

/// The communication method carrying a VLink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VLinkMethod {
    /// Plain TCP through SysIO (straight adapter on distributed networks).
    SysIoTcp,
    /// Stream over MadIO messages (cross-paradigm adapter on a SAN).
    MadIo,
    /// Parallel TCP streams (WAN method).
    ParallelStreams {
        /// Number of member streams.
        width: usize,
    },
    /// AdOC adaptive online compression over TCP (slow-link method).
    Adoc,
    /// Authenticated/encrypted stream (inter-site method).
    Secure,
    /// Intra-node loopback.
    Loopback,
    /// Stream relayed through one or more gateway proxies because the
    /// endpoints share no network (see `relay::install_gateway_proxy`).
    Relayed {
        /// Number of networks the routed path crosses.
        hops: u32,
    },
}

/// Identifier of a posted (asynchronous) read operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReadOp(u64);

/// Events reported to the VLink handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VLinkEvent {
    /// The link is established end to end.
    Connected,
    /// At least one posted read completed (or new data is available).
    Readable,
    /// The peer closed the link and all data has been consumed.
    Finished,
}

type EventHandler = Box<dyn FnMut(&mut SimWorld, VLinkEvent)>;

struct VLinkState {
    buffer: SegBuf,
    pending_reads: VecDeque<(u64, usize)>,
    completed_reads: HashMap<u64, Vec<u8>>,
    next_op: u64,
    handler: Option<EventHandler>,
    announced_connected: bool,
    announced_finished: bool,
    bytes_written: u64,
    bytes_read: u64,
    bytes_refused: u64,
}

/// A VLink descriptor.
#[derive(Clone)]
pub struct VLink {
    stream: Rc<dyn ByteStream>,
    state: Rc<RefCell<VLinkState>>,
    method: VLinkMethod,
    /// Fixed cost charged by the abstraction layer per write operation.
    op_overhead: SimDuration,
}

impl VLink {
    /// Default per-operation cost of the VLink layer.
    pub const DEFAULT_OP_OVERHEAD: SimDuration = SimDuration::from_nanos(350);

    /// Wraps an established (or connecting) byte stream as a VLink.
    pub fn from_stream(stream: Rc<dyn ByteStream>, method: VLinkMethod) -> VLink {
        let vlink = VLink {
            stream: stream.clone(),
            state: Rc::new(RefCell::new(VLinkState {
                buffer: SegBuf::new(),
                pending_reads: VecDeque::new(),
                completed_reads: HashMap::new(),
                next_op: 0,
                handler: None,
                announced_connected: false,
                announced_finished: false,
                bytes_written: 0,
                bytes_read: 0,
                bytes_refused: 0,
            })),
            method,
            op_overhead: Self::DEFAULT_OP_OVERHEAD,
        };
        let v = vlink.clone();
        stream.set_readable_callback(Box::new(move |world| {
            v.on_readable(world);
        }));
        vlink
    }

    /// The method carrying this link.
    pub fn method(&self) -> VLinkMethod {
        self.method
    }

    /// The underlying byte stream (for tests and adapters).
    pub fn stream(&self) -> Rc<dyn ByteStream> {
        self.stream.clone()
    }

    /// True once the link is established end to end.
    pub fn is_established(&self) -> bool {
        self.stream.is_established()
    }

    /// True once the peer closed and everything has been read.
    pub fn is_finished(&self) -> bool {
        self.stream.is_finished() && self.state.borrow().buffer.is_empty()
    }

    /// Bytes written / read through this descriptor so far.
    pub fn io_counters(&self) -> (u64, u64) {
        let st = self.state.borrow();
        (st.bytes_written, st.bytes_read)
    }

    /// Bytes a posted write lost because the driver refused them (the
    /// carrying stream died or was closed underneath). Flow-controlled
    /// drivers park instead of refusing, so this stays zero except across
    /// genuine faults.
    pub fn bytes_refused(&self) -> u64 {
        self.state.borrow().bytes_refused
    }

    /// Bytes the driver below has accepted but not yet delivered
    /// end-to-end (including bytes a flow-controlled trunk has parked
    /// waiting for credits): the occupancy signal store-and-forward
    /// splices use to pace themselves.
    pub fn driver_backlog(&self) -> u64 {
        self.stream.bytes_unacked()
    }

    /// Registers the completion handler. Events already due (connection,
    /// pending data) are re-announced on the next completion.
    pub fn set_handler(&self, handler: impl FnMut(&mut SimWorld, VLinkEvent) + 'static) {
        self.state.borrow_mut().handler = Some(Box::new(handler));
    }

    /// Posts a write. The data is queued immediately; the VLink layer's
    /// fixed cost is charged before the bytes are handed to the driver.
    /// Returns the number of bytes accepted (always the full buffer for
    /// unbounded drivers).
    pub fn post_write(&self, world: &mut SimWorld, data: &[u8]) -> usize {
        self.post_write_bytes(world, Bytes::copy_from_slice(data))
    }

    /// Zero-copy variant of [`VLink::post_write`]: the chunk is handed to
    /// the driver by refcount, never copied. This is the fast path used by
    /// gateway relays to forward an arriving chunk onwards.
    pub fn post_write_bytes(&self, world: &mut SimWorld, data: Bytes) -> usize {
        let len = data.len();
        self.state.borrow_mut().bytes_written += len as u64;
        let stream = self.stream.clone();
        let state = self.state.clone();
        world.schedule_after(self.op_overhead, move |world| {
            let len = data.len();
            let sent = stream.send_bytes(world, data);
            if sent < len {
                // The driver died or closed under the posted write: the
                // bytes are lost and accounted, never silently retried.
                state.borrow_mut().bytes_refused += (len - sent) as u64;
            }
        });
        len
    }

    /// Posts a read of exactly `len` bytes. The operation completes once
    /// `len` bytes are available (or the link finishes early, in which case
    /// the completion holds whatever remained).
    pub fn post_read(&self, world: &mut SimWorld, len: usize) -> ReadOp {
        let op = {
            let mut st = self.state.borrow_mut();
            let id = st.next_op;
            st.next_op += 1;
            st.pending_reads.push_back((id, len));
            ReadOp(id)
        };
        // The read may already be satisfiable from buffered data.
        self.drain_completions(world);
        op
    }

    /// True if the read completed.
    pub fn test(&self, op: ReadOp) -> bool {
        self.state.borrow().completed_reads.contains_key(&op.0)
    }

    /// Takes the data of a completed read. Returns `None` while pending.
    pub fn complete_read(&self, op: ReadOp) -> Option<Vec<u8>> {
        self.state.borrow_mut().completed_reads.remove(&op.0)
    }

    /// Bytes available for immediate (synchronous) reading.
    pub fn available(&self) -> usize {
        self.state.borrow().buffer.len() + self.stream.available()
    }

    /// Reads up to `max` buffered bytes without posting an operation (used
    /// by the socket-like personalities).
    pub fn read_now(&self, world: &mut SimWorld, max: usize) -> Vec<u8> {
        if max == 0 {
            return Vec::new();
        }
        self.pull_from_stream(world);
        let mut st = self.state.borrow_mut();
        let n = max.min(st.buffer.len());
        st.bytes_read += n as u64;
        st.buffer.read_into(n)
    }

    /// Zero-copy variant of [`VLink::read_now`]: returns one buffered
    /// segment of at most `max` bytes, sharing the driver's storage. May
    /// return fewer bytes than are available; loop until empty to drain.
    pub fn read_now_bytes(&self, world: &mut SimWorld, max: usize) -> Bytes {
        if max == 0 {
            return Bytes::new();
        }
        self.pull_from_stream(world);
        let mut st = self.state.borrow_mut();
        let out = st.buffer.pop_chunk(max);
        st.bytes_read += out.len() as u64;
        out
    }

    /// Closes the link (pending writes are still delivered).
    pub fn close(&self, world: &mut SimWorld) {
        let stream = self.stream.clone();
        world.schedule_after(self.op_overhead, move |world| {
            stream.close(world);
        });
    }

    fn pull_from_stream(&self, world: &mut SimWorld) {
        // Drain the driver segment by segment; each chunk is queued by
        // refcount, not copied.
        loop {
            let data = self.stream.recv_bytes(world, usize::MAX);
            if data.is_empty() {
                break;
            }
            self.state.borrow_mut().buffer.push_bytes(data);
        }
    }

    fn drain_completions(&self, world: &mut SimWorld) {
        self.pull_from_stream(world);
        let finished = self.stream.is_finished();
        let mut completed_any = false;
        {
            let mut st = self.state.borrow_mut();
            #[allow(clippy::while_let_loop)]
            loop {
                let Some(&(id, len)) = st.pending_reads.front() else {
                    break;
                };
                if st.buffer.len() >= len {
                    let data = st.buffer.read_into(len);
                    st.bytes_read += len as u64;
                    st.pending_reads.pop_front();
                    st.completed_reads.insert(id, data);
                    completed_any = true;
                } else if finished {
                    // Short read at end of stream.
                    let data = st.buffer.read_into(usize::MAX);
                    st.bytes_read += data.len() as u64;
                    st.pending_reads.pop_front();
                    st.completed_reads.insert(id, data);
                    completed_any = true;
                } else {
                    break;
                }
            }
        }
        let _ = completed_any;
    }

    fn on_readable(&self, world: &mut SimWorld) {
        self.drain_completions(world);
        // Announce events to the handler.
        let events = {
            let mut st = self.state.borrow_mut();
            let mut events = Vec::new();
            if !st.announced_connected && self.stream.is_established() {
                st.announced_connected = true;
                events.push(VLinkEvent::Connected);
            }
            if !st.buffer.is_empty() || !st.completed_reads.is_empty() {
                events.push(VLinkEvent::Readable);
            }
            if !st.announced_finished && self.stream.is_finished() && st.buffer.is_empty() {
                st.announced_finished = true;
                events.push(VLinkEvent::Finished);
            }
            events
        };
        for ev in events {
            let handler = self.state.borrow_mut().handler.take();
            if let Some(mut h) = handler {
                h(world, ev);
                let mut st = self.state.borrow_mut();
                if st.handler.is_none() {
                    st.handler = Some(h);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimWorld;
    use transport::loopback_pair;

    fn vlink_pair() -> (SimWorld, VLink, VLink) {
        let mut world = SimWorld::new(0);
        let n = world.add_node("n");
        let (a, b) = loopback_pair(&world, n);
        let va = VLink::from_stream(Rc::new(a), VLinkMethod::Loopback);
        let vb = VLink::from_stream(Rc::new(b), VLinkMethod::Loopback);
        (world, va, vb)
    }

    #[test]
    fn post_write_and_read_exact() {
        let (mut world, va, vb) = vlink_pair();
        va.post_write(&mut world, b"0123456789");
        let op1 = vb.post_read(&mut world, 4);
        let op2 = vb.post_read(&mut world, 6);
        world.run();
        assert!(vb.test(op1));
        assert_eq!(vb.complete_read(op1).unwrap(), b"0123");
        assert_eq!(vb.complete_read(op2).unwrap(), b"456789");
        assert!(
            vb.complete_read(op2).is_none(),
            "completion is consumed once"
        );
        assert_eq!(va.io_counters().0, 10);
        assert_eq!(vb.io_counters().1, 10);
    }

    #[test]
    fn reads_posted_before_data_complete_later() {
        let (mut world, va, vb) = vlink_pair();
        let op = vb.post_read(&mut world, 5);
        world.run();
        assert!(!vb.test(op), "no data yet");
        va.post_write(&mut world, b"hello world");
        world.run();
        assert!(vb.test(op));
        assert_eq!(vb.complete_read(op).unwrap(), b"hello");
        assert_eq!(vb.read_now(&mut world, 100), b" world");
    }

    #[test]
    fn short_read_at_end_of_stream() {
        let (mut world, va, vb) = vlink_pair();
        va.post_write(&mut world, b"abc");
        va.close(&mut world);
        let op = vb.post_read(&mut world, 10);
        world.run();
        assert!(vb.test(op));
        assert_eq!(vb.complete_read(op).unwrap(), b"abc");
        assert!(vb.is_finished());
    }

    #[test]
    fn handler_receives_events() {
        let (mut world, va, vb) = vlink_pair();
        let events = Rc::new(RefCell::new(Vec::new()));
        let e = events.clone();
        vb.set_handler(move |_w, ev| e.borrow_mut().push(ev));
        va.post_write(&mut world, b"ping");
        world.run();
        assert!(events.borrow().contains(&VLinkEvent::Readable));
        va.close(&mut world);
        vb.read_now(&mut world, 100);
        world.run();
        assert!(events.borrow().contains(&VLinkEvent::Finished));
    }

    #[test]
    fn method_is_reported() {
        let (_world, va, _vb) = vlink_pair();
        assert_eq!(va.method(), VLinkMethod::Loopback);
    }

    #[test]
    fn write_charges_vlink_overhead() {
        let (mut world, va, _vb) = vlink_pair();
        va.post_write(&mut world, b"x");
        world.run();
        assert!(world.now().as_nanos() >= VLink::DEFAULT_OP_OVERHEAD.as_nanos());
    }
}
